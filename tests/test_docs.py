"""The docs stay true: package coverage, links, and code references.

Runs the same checker CI runs (``scripts/check_docs.py``) so a stale
module map, broken link, or dangling code path fails tier-1 locally,
not just in the workflow.
"""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).parent.parent
CHECKER = ROOT / "scripts" / "check_docs.py"


def test_docs_pages_exist():
    for page in ("architecture.md", "observability.md", "paper_map.md"):
        assert (ROOT / "docs" / page).exists(), f"docs/{page} missing"


def test_readme_links_paper_map():
    assert "docs/paper_map.md" in (ROOT / "README.md").read_text()


def test_docs_checker_passes():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True, timeout=60
    )
    assert result.returncode == 0, f"docs check failed:\n{result.stdout}{result.stderr}"


def test_every_package_in_architecture_md():
    text = (ROOT / "docs" / "architecture.md").read_text()
    packages = sorted(
        p.parent.name for p in (ROOT / "src" / "repro").glob("*/__init__.py")
    )
    assert packages, "no packages found under src/repro"
    missing = [p for p in packages if f"repro.{p}" not in text]
    assert not missing, f"undocumented packages: {missing}"
