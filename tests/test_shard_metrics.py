"""Cross-process metric merging regression tests.

Before this work, metrics recorded inside pool children (fork-per-batch
*and* resilient fault-injection children) died with the child process:
the parent registry only ever saw the serial path's counts.  These
tests pin the fix — for every backend, the parent-visible counters
match what a serial run of the same batch records — plus the shard
runtime's own ``shard.*`` inventory.
"""

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import decide_many, decide_many_resilient
from repro.kernel import Le
from repro.obs import instrumented
from repro.shard import ShardRouter, shutdown_pool
from repro.words import TimedWord


@pytest.fixture(autouse=True)
def fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def make_words(n):
    words = []
    for i in range(n):
        if i % 2 == 0:
            words.append(TimedWord.lasso([], [("a", 1)], shift=1))
        else:
            words.append(TimedWord.lasso([("a", 1), ("a", 6)], [("a", 7)], shift=1))
    return words


def judged(inst, strategy="lasso-exact"):
    return inst.registry.counter("engine.words_judged").labels(
        strategy=strategy
    ).value


def run_and_snapshot(backend, n=120, **kwargs):
    tba, words = bounded_gap_tba(), make_words(n)
    with instrumented() as inst:
        decide_many(tba, words, horizon=200, backend=backend, **kwargs)
    return inst


class TestBackendMetricParity:
    """Parent-visible counts must not depend on where the work ran."""

    def test_fork_pool_children_ship_their_counts(self):
        serial = run_and_snapshot("serial")
        fork = run_and_snapshot("fork", workers=2)
        assert judged(fork) == judged(serial) == 120

    def test_shard_workers_ship_their_counts(self):
        serial = run_and_snapshot("serial")
        shards = run_and_snapshot("shards", workers=2)
        assert judged(shards) == judged(serial) == 120

    def test_resilient_children_ship_their_counts(self):
        tba, words = bounded_gap_tba(), make_words(120)
        with instrumented() as serial:
            decide_many_resilient(tba, words, horizon=200, backend="serial")
        with instrumented() as fork:
            out = decide_many_resilient(
                tba, words, horizon=200, workers=2, backend="fork"
            )
        assert out.mode == "pool"
        assert judged(fork) == judged(serial) == 120
        with instrumented() as shards:
            out = decide_many_resilient(
                tba, words, horizon=200, workers=2, backend="shards"
            )
        assert out.mode == "shards"
        assert judged(shards) == judged(serial) == 120


def stream_traffic(sessions=12, events=400):
    out = []
    for i in range(events):
        out.append((f"c-{i % sessions}", "a", i // sessions + 1))
    return out


class TestShardRouterMetrics:
    def test_worker_stream_counts_merge_into_parent(self):
        tba = bounded_gap_tba()
        events = stream_traffic()
        with instrumented() as ref_inst:
            from repro.stream import SessionMux

            mux = SessionMux(tba)
            for e in events:
                mux.ingest(*e)
        ref_ingested = (
            ref_inst.registry.counter("stream.events_ingested")
            .labels(outcome="ok")
            .value
        )
        assert ref_ingested == 400
        with instrumented() as inst:
            with ShardRouter(tba, n_shards=3, batch_events=32) as router:
                router.ingest_batch(events)
                merged = router.sync_metrics()
        assert merged > 0
        assert (
            inst.registry.counter("stream.events_ingested")
            .labels(outcome="ok")
            .value
            == ref_ingested
        )

    def test_sync_metrics_never_double_counts(self):
        tba = bounded_gap_tba()
        with instrumented() as inst:
            with ShardRouter(tba, n_shards=2, batch_events=32) as router:
                router.ingest_batch(stream_traffic())
                ingested = inst.registry.counter(
                    "stream.events_ingested"
                ).labels(outcome="ok")
                router.sync_metrics()
                first = ingested.value
                router.sync_metrics()  # no new work between pulls
                second = ingested.value
        assert first == second == 400

    def test_shard_inventory_series_exist(self):
        tba = bounded_gap_tba()
        with instrumented() as inst:
            with ShardRouter(
                tba, n_shards=3, batch_events=16, checkpoint_every=100
            ) as router:
                router.ingest_batch(stream_traffic(events=600))
                router.sync_metrics()
                victim = router.shard_ids[0]
                router.crash(victim)
                router.recover(victim)
                router.rebalance(2)
        reg = inst.registry
        assert reg.counter("shard.worker_frames").labels(shard="s1").value > 0
        checkpoints = reg.counter("shard.checkpoints")
        assert sum(c.value for c in checkpoints.children()) > 0
        assert reg.counter("shard.recoveries").labels(mode="respawn").value == 1
        assert reg.get("shard.recovery_latency").labels().count == 1
        assert (
            reg.counter("shard.placement_moves")
            .labels(cause="rebalance")
            .value
            > 0
        )
        assert reg.get("shard.batch_size").labels().count > 0
        assert reg.get("shard.queue_depth") is not None
        assert reg.get("shard.worker_sessions") is not None
