"""Tests for general finite automata (§2 preliminaries)."""

import pytest

from repro.automata import LAMBDA, FiniteAutomaton


@pytest.fixture
def ab_star():
    """DFA for a·b* (total)."""
    return FiniteAutomaton(
        "ab",
        ["q0", "q1", "dead"],
        "q0",
        [
            ("q0", "q1", "a"),
            ("q1", "q1", "b"),
            ("q0", "dead", "b"),
            ("q1", "dead", "a"),
            ("dead", "dead", "a"),
            ("dead", "dead", "b"),
        ],
        ["q1"],
    )


@pytest.fixture
def nfa_ends_ab():
    """NFA for Σ*ab."""
    return FiniteAutomaton(
        "ab",
        [0, 1, 2],
        0,
        [(0, 0, "a"), (0, 0, "b"), (0, 1, "a"), (1, 2, "b")],
        [2],
    )


class TestValidation:
    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            FiniteAutomaton("a", ["s"], "t", [], [])

    def test_accepting_subset_enforced(self):
        with pytest.raises(ValueError):
            FiniteAutomaton("a", ["s"], "s", [], ["t"])

    def test_unknown_transition_symbol_rejected(self):
        with pytest.raises(ValueError):
            FiniteAutomaton("a", ["s"], "s", [("s", "s", "z")], [])

    def test_unknown_transition_state_rejected(self):
        with pytest.raises(ValueError):
            FiniteAutomaton("a", ["s"], "s", [("s", "t", "a")], [])


class TestAcceptance:
    def test_dfa_accepts(self, ab_star):
        assert ab_star.accepts("a")
        assert ab_star.accepts("abbb")
        assert not ab_star.accepts("")
        assert not ab_star.accepts("ba")
        assert not ab_star.accepts("aab")

    def test_nfa_accepts(self, nfa_ends_ab):
        assert nfa_ends_ab.accepts("ab")
        assert nfa_ends_ab.accepts("babab")
        assert not nfa_ends_ab.accepts("ba")
        assert not nfa_ends_ab.accepts("")

    def test_run_traces_state_sets(self, nfa_ends_ab):
        trace = nfa_ends_ab.run("ab")
        assert trace[0] == frozenset({0})
        assert 2 in trace[-1]


class TestLambdaMoves:
    def test_lambda_closure(self):
        fa = FiniteAutomaton(
            "a",
            ["s", "t", "u"],
            "s",
            [("s", "t", LAMBDA), ("t", "u", "a")],
            ["u"],
        )
        assert fa.lambda_closure({"s"}) == frozenset({"s", "t"})
        assert fa.accepts("a")

    def test_chained_lambda(self):
        fa = FiniteAutomaton(
            "a",
            [0, 1, 2],
            0,
            [(0, 1, LAMBDA), (1, 2, LAMBDA)],
            [2],
        )
        assert fa.accepts("")


class TestConstructions:
    def test_determinize_preserves_language(self, nfa_ends_ab):
        dfa = nfa_ends_ab.determinize()
        for word in ("", "a", "ab", "aab", "abb", "bab", "abab"):
            assert dfa.accepts(word) == nfa_ends_ab.accepts(word), word

    def test_complement_flips(self, nfa_ends_ab):
        comp = nfa_ends_ab.complement()
        for word in ("", "a", "ab", "ba", "abab", "bb"):
            assert comp.accepts(word) != nfa_ends_ab.accepts(word), word

    def test_product_is_intersection(self, ab_star, nfa_ends_ab):
        dfa2 = nfa_ends_ab.determinize()
        prod = ab_star.product(dfa2)
        for word in ("ab", "abb", "a", "abbb", "bab"):
            expected = ab_star.accepts(word) and nfa_ends_ab.accepts(word)
            assert prod.accepts(word) == expected, word

    def test_product_rejects_lambda(self):
        fa = FiniteAutomaton("a", [0, 1], 0, [(0, 1, LAMBDA)], [1])
        with pytest.raises(ValueError):
            fa.product(fa)


class TestEmptiness:
    def test_nonempty(self, ab_star):
        assert not ab_star.is_empty()

    def test_empty_when_accepting_unreachable(self):
        fa = FiniteAutomaton("a", [0, 1], 0, [(0, 0, "a")], [1])
        assert fa.is_empty()

    def test_shortest_accepted(self, nfa_ends_ab):
        word = nfa_ends_ab.shortest_accepted()
        assert word == ["a", "b"]

    def test_shortest_accepted_none_when_empty(self):
        fa = FiniteAutomaton("a", [0, 1], 0, [(0, 0, "a")], [1])
        assert fa.shortest_accepted() is None
