"""Tests for the Theorem 3.1 / Corollary 3.2 machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.automata import (
    BuchiAutomaton,
    LassoWord,
    dfa_state_lower_bound,
    fooling_set,
    l_membership,
    l_omega_lasso,
    l_omega_membership_prefix,
    l_omega_word,
    l_word,
    separating_suffix,
    theorem31_construction,
    verify_fooling_set,
)
from repro.words import Trilean


class TestLMembership:
    def test_canonical_members(self):
        assert l_membership("abcd")
        assert l_membership("aabbccdd"[0:2] + "bb" + "c" + "dd") is False or True
        assert l_membership(l_word(2, 3, 1))

    def test_mismatched_counts_rejected(self):
        assert not l_membership("abbcd")
        assert not l_membership("abcdd")

    def test_order_enforced(self):
        assert not l_membership("bacd")
        assert not l_membership("abdc")

    def test_positivity_enforced(self):
        assert not l_membership("bcd")  # u = 0
        assert not l_membership("abd")  # v = 0
        assert not l_membership("")

    def test_l_word_validation(self):
        with pytest.raises(ValueError):
            l_word(0, 1, 1)

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(1, 10))
    def test_l_word_always_member(self, u, x, v):
        assert l_membership(l_word(u, x, v))

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))
    def test_wrong_d_count_never_member(self, u, x, v, delta):
        word = "a" * u + "b" * x + "c" * v + "d" * (x + delta)
        assert not l_membership(word)


class TestFoolingSet:
    def test_pairwise_separation(self):
        assert verify_fooling_set(32)

    def test_separating_suffix_works(self):
        p1, p2 = "ab", "abb"
        z = separating_suffix(p1, p2)
        assert z is not None
        assert l_membership(p1 + z) != l_membership(p2 + z)

    def test_equal_prefixes_not_separable(self):
        assert separating_suffix("ab", "ab") is None

    def test_lower_bound_grows_unboundedly(self):
        """The non-regularity evidence: for every n the bound holds."""
        for n in (1, 4, 16, 64):
            assert dfa_state_lower_bound(n) == n

    def test_fooling_set_size(self):
        assert len(fooling_set(10)) == 10


class TestTheorem31Construction:
    def _candidate_buchi(self):
        """A (wrong) candidate acceptor of L_ω: accepts anything with
        infinitely many $'s — regular, hence necessarily wrong."""
        transitions = [("s", "s", sym) for sym in "abcd"]
        transitions += [("f", "s", sym) for sym in "abcd"]
        transitions += [("s", "f", "$"), ("f", "f", "$")]
        return BuchiAutomaton("abcd$", ["s", "f"], "s", transitions, ["f"])

    def test_surgery_produces_finite_automaton(self):
        buchi = self._candidate_buchi()
        word = l_omega_lasso([(1, 1, 1)], (1, 2, 1))
        # A concrete run of the candidate over the word (deterministic here).
        states = ["s"]
        lookup = {(t.source, t.symbol): t.target for t in buchi.transitions}
        for i in range(24):
            states.append(lookup[(states[-1], word[i])])
        a_prime = theorem31_construction(buchi, states, word)
        # The proof says A' would accept exactly L — but the candidate is
        # wrong, so A' must misclassify some word w.r.t. L.
        mistakes = 0
        for probe in ["abcd", "abbcd", "aabcdd", l_word(1, 2, 1)]:
            if a_prime.accepts(probe) != l_membership(probe):
                mistakes += 1
        assert mistakes > 0, "a regular candidate cannot decide L"

    def test_surgery_accepts_blocks_seen_on_the_run(self):
        buchi = self._candidate_buchi()
        word = l_omega_lasso([], (1, 1, 1))
        states = ["s"]
        lookup = {(t.source, t.symbol): t.target for t in buchi.transitions}
        for i in range(20):
            states.append(lookup[(states[-1], word[i])])
        a_prime = theorem31_construction(buchi, states, word)
        # the block the run parsed between $'s is accepted by A'
        assert a_prime.accepts("abcd")


class TestLOmegaWords:
    def test_lasso_structure(self):
        w = l_omega_lasso([(1, 1, 1)], (2, 1, 1))
        assert "".join(w.take(5)) == "abcd$"

    def test_timed_variant_well_behaved(self):
        """Corollary 3.2's words are well-behaved timed ω-words."""
        w = l_omega_word([(1, 2, 1)], (1, 1, 2), period=3)
        assert w.is_well_behaved() is Trilean.TRUE

    def test_timed_variant_symbols_match_lasso(self):
        lasso = l_omega_lasso([(1, 1, 1)], (1, 1, 1))
        timed = l_omega_word([(1, 1, 1)], (1, 1, 1))
        assert [s for s, _t in timed.take(10)] == lasso.take(10)

    def test_prefix_membership_checker(self):
        good = list("abcd$abbcdd$")
        bad = list("abcd$abbcd$")
        assert l_omega_membership_prefix(good)
        assert not l_omega_membership_prefix(bad)

    def test_open_block_prefix_ok(self):
        assert l_omega_membership_prefix(list("abcd$aab"))

    def test_open_block_bad_shape_rejected(self):
        assert not l_omega_membership_prefix(list("abcd$ba"))
