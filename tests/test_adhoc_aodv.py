"""Tests for the AODV-style reactive hop-by-hop router."""

import pytest

from repro.adhoc import (
    AdhocNetwork,
    AodvRouter,
    DiskRange,
    Message,
    Position,
    StationaryMobility,
)
from repro.kernel import Simulator


def line_network(n=4, spacing=10.0, radius=15.0):
    positions = {i: Position(i * spacing, 0.0) for i in range(1, n + 1)}
    mob = StationaryMobility(positions)
    pred = DiskRange(mob.trajectories(), {i: radius for i in positions})
    sim = Simulator()
    net = AdhocNetwork(sim, pred, list(positions))
    routers = {i: AodvRouter() for i in positions}
    for i, r in routers.items():
        net.attach(i, r)
    net.start()
    return sim, net, routers


class TestAodv:
    def test_idle_network_transmits_nothing(self):
        sim, net, _ = line_network()
        sim.run(until=200)
        assert len(net.trace.hops) == 0

    def test_multihop_delivery(self):
        sim, net, _ = line_network(5)
        msg = Message(src=1, dst=5, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=200)
        assert net.trace.delivery_time(msg.uid) is not None

    def test_reverse_routes_installed_by_discovery(self):
        sim, net, routers = line_network(4)
        msg = Message(src=1, dst=4, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=200)
        # every node on the path learned a route back to the origin
        assert routers[2].routes[1].next_hop == 1
        assert routers[3].routes[1].next_hop == 2
        # and the origin learned the forward route
        assert routers[1].routes[4].next_hop == 2

    def test_forward_state_is_hop_by_hop(self):
        """Data packets carry no source route: intermediate nodes
        forward on their own tables."""
        sim, net, routers = line_network(4)
        msg = Message(src=1, dst=4, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=200)
        data = net.trace.data_hops(msg.uid)
        assert all(p.body.route is None for p in data)
        assert len(data) == 3  # unicast chain 1→2→3→4

    def test_route_cache_avoids_second_discovery(self):
        sim, net, _ = line_network(4)
        m1 = Message(src=1, dst=4, body="a", created_at=0)
        net.originate(m1)
        sim.run(until=100)
        control_after_first = len(net.trace.control_hops())
        m2 = Message(src=1, dst=4, body="b", created_at=sim.now)
        net.originate(m2)
        sim.run(until=200)
        assert net.trace.delivery_time(m2.uid) is not None
        assert len(net.trace.control_hops()) == control_after_first

    def test_unreachable_destination_never_delivered(self):
        sim, net, _ = line_network(2, spacing=100.0)
        msg = Message(src=1, dst=2, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=300)
        assert net.trace.delivery_time(msg.uid) is None

    def test_fresher_request_overrides_route(self):
        from repro.adhoc.routing.aodv import AodvRouter as R, RouteState

        r = R()
        r.bind(AdhocNetwork(Simulator(), DiskRange({1: lambda t: Position(0, 0)}, {1: 1.0}), [1]), 1)
        r._install(9, next_hop=2, hops=5, freshness=1)
        r._install(9, next_hop=3, hops=9, freshness=2)  # fresher wins
        assert r.routes[9].next_hop == 3
        r._install(9, next_hop=4, hops=2, freshness=2)  # same freshness: shorter wins
        assert r.routes[9].next_hop == 4
        r._install(9, next_hop=5, hops=1, freshness=1)  # stale: ignored
        assert r.routes[9].next_hop == 4
