"""Tests for the query front-end through SessionMux and the engine.

The tentpole's integration contract: ``SessionMux(query=...)``,
``SessionMux(plan=...)`` and ``open(name, query=...)`` just work, with
batch ingestion verdict-identical to the scalar path and per-query
verdicts riding along in every :class:`SessionReport`.
"""

import pytest

from repro.query import Q, QueryPlan
from repro.stream import SessionMux, StreamVerdict, TBAMonitor
from repro.stream.session import SessionReport

PLAN_QUERIES = {
    "fast": Q.event("req", 0, 5).then("rsp").within(3).repeat(),
    "slow": Q.event("req", 0, 5).then("rsp").within(8).repeat(),
}


def plan_events(sessions=4):
    """Per-session req/rsp rounds with widening response gaps (1, 3, 5,
    7 chronons), so the channels diverge across sessions."""
    events = []
    for s in range(sessions):
        t = 0
        for _ in range(6):
            events.append((f"s{s}", "req", t))
            events.append((f"s{s}", "rsp", t + 1 + 2 * s))
            t += 3 + 2 * s
    return events


# -------------------------------------------------------------- query=


def test_query_mux_monitors_text_queries():
    mux = SessionMux(query="repeat(hb within 5)")
    for i in range(4):
        mux.ingest("s1", "hb", 3 * i)
    assert mux.verdicts() == {"s1": StreamVerdict.ACCEPTING}
    report = mux.close("s1")
    assert report.verdict is StreamVerdict.ACCEPTING
    assert report.query_verdicts is None  # plain monitor: no channels


def test_query_mux_alphabet_widens_symbols():
    mux = SessionMux(query="repeat(hb within 5)", alphabet=("hb", "noise"))
    mux.ingest("s", "hb", 0)
    mux.ingest("s", "noise", 1)  # in-alphabet non-action: budget keeps running
    mux.ingest("s", "hb", 2)
    assert mux.verdicts()["s"] is StreamVerdict.ACCEPTING


def test_constructor_validation():
    with pytest.raises(ValueError, match="exactly one"):
        SessionMux(query="a", plan=QueryPlan({"a": Q.event("a")}))
    with pytest.raises(ValueError, match="exactly one"):
        SessionMux()
    with pytest.raises(ValueError, match="alphabet"):
        SessionMux(Q.event("a").tba(), alphabet=("a", "b"))


# --------------------------------------------------------------- plan=


def test_plan_mux_sessions_share_the_fused_artifacts():
    plan = QueryPlan(PLAN_QUERIES)
    mux = SessionMux(plan=plan)
    mux.open("a")
    mux.open("b")
    assert mux.monitor("a").analysis is plan.analysis
    assert mux.monitor("b").analysis is plan.analysis
    assert mux.monitor("a").plan is plan


def test_plan_mux_batch_matches_scalar_and_reports_channels():
    plan = QueryPlan(PLAN_QUERIES)
    events = plan_events()
    batch_mux = SessionMux(plan=plan)
    vectorized = batch_mux.ingest_batch(events)
    scalar_mux = SessionMux(plan=plan)
    for name, s, t in events:
        scalar_mux.ingest(name, s, t)
    if plan.compiled is not None:
        assert vectorized > 0
    names = sorted(batch_mux.active)
    assert names == sorted(scalar_mux.active)
    for name in names:
        assert (
            batch_mux.monitor(name).query_verdicts()
            == scalar_mux.monitor(name).query_verdicts()
        )
    # s0 keeps both obligations; later sessions outlive "fast".
    assert batch_mux.monitor("s0").query_verdicts() == {
        "fast": StreamVerdict.ACCEPTING,
        "slow": StreamVerdict.ACCEPTING,
    }
    report = batch_mux.close("s2")
    assert isinstance(report, SessionReport)
    assert report.query_verdicts == {
        "fast": StreamVerdict.REJECTED,
        "slow": StreamVerdict.ACCEPTING,
    }


def test_plan_mux_eviction_reports_carry_channels():
    plan = QueryPlan(PLAN_QUERIES)
    mux = SessionMux(plan=plan, idle_ttl=5)
    mux.ingest("gone", "req", 0)
    mux.ingest("gone", "rsp", 2)
    mux.ingest("fresh", "req", 100)
    assert mux.evict_idle() == ["gone"]
    (report,) = mux.drain_evictions()
    assert report.query_verdicts == {
        "fast": StreamVerdict.ACCEPTING,
        "slow": StreamVerdict.ACCEPTING,
    }


# ------------------------------------------------- per-session queries


def test_open_with_session_private_query():
    mux = SessionMux(query="repeat(hb within 5)")
    special = mux.open("special", query="once(job deadline 7 grace 2)")
    assert isinstance(special, TBAMonitor)
    mux.ingest("special", "job", 4)
    mux.ingest("plain", "hb", 0)
    assert mux.verdicts() == {
        "special": StreamVerdict.ACCEPTING,
        "plain": StreamVerdict.ACCEPTING,
    }
    with pytest.raises(ValueError, match="already open"):
        mux.open("special", query="a")


def test_session_private_query_takes_scalar_batch_path():
    # A private query's compiled artifact differs from the shared one,
    # so ingest_batch must route its events through the scalar path —
    # and still land on the same verdicts.
    mux = SessionMux(query="repeat(hb within 5)")
    mux.open("special", query="repeat(tick within 9)")
    mux.ingest_batch(
        [("plain", "hb", 0), ("special", "tick", 0), ("plain", "hb", 3),
         ("special", "tick", 8)]
    )
    assert mux.verdicts() == {
        "plain": StreamVerdict.ACCEPTING,
        "special": StreamVerdict.ACCEPTING,
    }
