"""Cross-module integration tests: the paper's pipelines end to end."""

import pytest

from repro.adhoc import (
    FloodingRouter,
    Scenario,
    run_scenario,
    validate_route,
)
from repro.dataacc import (
    InsertionSortSolver,
    PolynomialArrivalLaw,
    dataacc_acceptor,
    encode_dataacc,
    make_instance,
    run_dalgorithm,
    termination_time,
)
from repro.deadlines import (
    DeadlineInstance,
    DeadlineKind,
    DeadlineSpec,
    decide_instance,
    encode_instance,
    language_of,
    sorting_problem,
)
from repro.rtdb import (
    QueryRegistry,
    RecognitionInstance,
    decide_aperiodic,
    figure2_query,
    ngc_example,
    recognition_word,
    recognizes,
)
from repro.words import Trilean, concat


class TestClaim1Pipeline:
    """Claim 1: well-behaved timed ω-languages model real-time
    computations — every paper construction yields well-behaved words
    whose acceptors realize the intended semantics."""

    def test_all_deadline_words_well_behaved(self):
        prob = sorting_problem()
        for spec in (
            DeadlineSpec(DeadlineKind.NONE),
            DeadlineSpec(DeadlineKind.FIRM, t_d=5),
        ):
            inst = DeadlineInstance(prob, (2, 1), (1, 2), spec)
            assert encode_instance(inst).is_well_behaved() is Trilean.TRUE

    def test_language_of_membership_via_acceptor(self):
        prob = sorting_problem()
        lang = language_of(prob)
        good = DeadlineInstance(prob, (2, 1), (1, 2), DeadlineSpec(DeadlineKind.NONE))
        bad = DeadlineInstance(prob, (2, 1), (2, 1), DeadlineSpec(DeadlineKind.NONE))
        assert lang.contains(encode_instance(good))
        assert not lang.contains(encode_instance(bad))

    def test_deadline_language_closed_under_union_with_dataacc(self):
        """Theorem 3.3 applies across application domains: the union of
        a §4.1 language and a §4.2 language is a timed language whose
        membership splits by construction."""
        prob = sorting_problem()
        l_deadline = language_of(prob)
        law = PolynomialArrivalLaw(n=5, k=1.0, beta=0.6)
        inst = make_instance(law, lambda j: j % 5, InsertionSortSolver, horizon=3000)
        from repro.words import PredicateLanguage

        l_dataacc = PredicateLanguage(
            lambda word: dataacc_acceptor(InsertionSortSolver)
            .decide(word, horizon=3000)
            .accepted,
            name="L(d)",
        )
        union = l_deadline | l_dataacc
        good_deadline = encode_instance(
            DeadlineInstance(prob, (3, 1), (1, 3), DeadlineSpec(DeadlineKind.NONE))
        )
        assert union.contains(good_deadline)
        assert union.contains(encode_dataacc(inst))


class TestSection42AgainstAnalysis:
    def test_simulation_analysis_acceptor_agree(self):
        """Three independent artifacts — the closed-form solver, the
        kernel simulation, and the ω-word acceptor — agree."""
        law = PolynomialArrivalLaw(n=8, k=1.2, gamma=0.0, beta=0.6)
        analytic = termination_time(law, 1, horizon=50_000)
        assert analytic is not None
        sim_run = run_dalgorithm(
            InsertionSortSolver(), law, data=lambda j: j % 11, horizon=50_000
        )
        assert sim_run.terminated
        assert sim_run.termination_time == analytic
        inst = make_instance(law, lambda j: j % 11, InsertionSortSolver, horizon=50_000)
        report = dataacc_acceptor(InsertionSortSolver).decide(
            encode_dataacc(inst), horizon=50_000
        )
        assert report.accepted


class TestRecognitionClassicalVsRealTime:
    def test_figure2_tuples_recognized_both_ways(self):
        """Eq. (5) classical recognition and the timed L_aq acceptor
        agree on membership of the same query results."""
        db = ngc_example()
        q = figure2_query()
        # classical
        assert recognizes(q, db.schema, recognition_word(db, ("Dieric", "Hamilton")))
        assert not recognizes(q, db.schema, recognition_word(db, ("Nobody", "Nowhere")))
        # real-time: express the same question over an object-state DB
        registry = QueryRegistry(
            queries={
                "nov": lambda st: {
                    ("Dieric", "Hamilton"),
                    ("Aelbrecht", "Hamilton"),
                    ("Schaefer", "St. Catharines"),
                }
            },
        )
        inst = RecognitionInstance(
            invariants={"catalog": "NGC"},
            derived={},
            images={"clock": (5, lambda t: t)},
            query_name="nov",
            issue_time=7,
            spec=DeadlineSpec(DeadlineKind.NONE),
        )
        ok = decide_aperiodic(registry, inst, ("Dieric", "Hamilton"), horizon=2000)
        bad = decide_aperiodic(registry, inst, ("Nobody", "Nowhere"), horizon=2000)
        assert ok.accepted and not bad.accepted


class TestAdhocPipeline:
    def test_scenario_routes_validate_against_R(self):
        """Full pipeline: mobility → simulation → trace → R_{n,u}."""
        sc = Scenario(n_nodes=10, pause_time=500, n_messages=5, horizon=250,
                      seed=13, stationary=True)
        run = run_scenario(FloodingRouter, sc)
        delivered = [
            m for m in run.messages
            if run.network.trace.delivery_time(m.uid) is not None
        ]
        assert delivered, "at least one message delivered in a static 10-node arena"
        for m in delivered:
            v = validate_route(run.range_pred, run.network.trace, m)
            assert v.in_language, v.violations


class TestDeterminismAcrossSubsystems:
    def test_full_stack_reproducibility(self):
        """Identical seeds ⇒ identical metrics, decisions, and words."""
        sc = Scenario(n_nodes=8, n_messages=4, horizon=200, seed=5)
        r1 = run_scenario(FloodingRouter, sc)
        r2 = run_scenario(FloodingRouter, sc)
        assert r1.metrics.row() == r2.metrics.row()
        prob = sorting_problem()
        inst = DeadlineInstance(prob, (5, 2, 8), (2, 5, 8), DeadlineSpec(DeadlineKind.FIRM, t_d=20))
        assert decide_instance(inst).accepted == decide_instance(inst).accepted
