"""Unit tests for stores, channels, and resources."""

import pytest

from repro.kernel import Channel, Resource, SimulationError, Simulator, Store


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append(item)

        def producer(sim):
            yield sim.timeout(5)
            yield store.put("x")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == ["x"]

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer(sim):
            for i in range(5):
                yield store.put(i)

        def consumer(sim):
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_store_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        times = []

        def producer(sim):
            yield store.put("a")
            start = sim.now
            yield store.put("b")  # blocks until the consumer drains
            times.append((start, sim.now))

        def consumer(sim):
            yield sim.timeout(10)
            yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert times == [(0, 10)]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_getter_blocks_until_item(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((item, sim.now))

        def producer(sim):
            yield sim.timeout(7)
            yield store.put(1)

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [(1, 7)]


class TestChannel:
    def test_latency_delays_delivery(self):
        sim = Simulator()
        chan = Channel(sim, latency=3)
        got = []

        def consumer(sim):
            item = yield chan.get()
            got.append((item, sim.now))

        def producer(sim):
            chan.put("msg")
            yield sim.timeout(0)

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [("msg", 3)]

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            Channel(Simulator(), latency=-1)

    def test_zero_latency_is_store(self):
        sim = Simulator()
        chan = Channel(sim, latency=0)
        got = []

        def consumer(sim):
            got.append((yield chan.get()))

        def producer(sim):
            yield chan.put(9)

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [9]


class TestResource:
    def test_capacity_admits_up_to_limit(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        grants = []

        def user(sim, uid, hold):
            req = yield res.request()
            grants.append((uid, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.process(user(sim, "a", 10))
        sim.process(user(sim, "b", 10))
        sim.process(user(sim, "c", 10))
        sim.run()
        assert grants[0] == ("a", 0)
        assert grants[1] == ("b", 0)
        assert grants[2] == ("c", 10)  # queued until a slot frees

    def test_release_foreign_request_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res2 = Resource(sim, capacity=1)
        req = res.request()
        sim.run()
        with pytest.raises(SimulationError):
            res2.release(req)

    def test_count_tracks_holders(self):
        sim = Simulator()
        res = Resource(sim, capacity=3)

        def user(sim):
            req = yield res.request()
            yield sim.timeout(5)
            res.release(req)

        for _ in range(3):
            sim.process(user(sim))
        sim.run(until=1)
        assert res.count == 3
        sim.run()
        assert res.count == 0

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)
