"""Tests for temporal databases — §5.1.2: lifespans form a boolean
algebra of interval unions."""

import pytest
from hypothesis import given, strategies as st

from repro.rtdb import Interval, Lifespan, TemporalRelation
from repro.rtdb.relational import RelationSchema


# strategy: lifespans as unions of small intervals
def lifespans():
    return st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 10)),
        max_size=4,
    ).map(lambda ps: Lifespan([Interval(lo, lo + w) for lo, w in ps]))


class TestInterval:
    def test_membership(self):
        iv = Interval(2, 5)
        assert 2 in iv and 5 in iv and 3 in iv
        assert 1 not in iv and 6 not in iv

    def test_degenerate_instant(self):
        iv = Interval(4, 4)
        assert iv.is_instant and 4 in iv

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 3)


class TestLifespanNormalization:
    def test_overlapping_merge(self):
        ls = Lifespan([Interval(0, 5), Interval(3, 8)])
        assert ls.intervals == (Interval(0, 8),)

    def test_adjacent_merge_discrete(self):
        """[0,2] ∪ [3,5] = [0,5] in discrete time."""
        ls = Lifespan([Interval(0, 2), Interval(3, 5)])
        assert ls.intervals == (Interval(0, 5),)

    def test_disjoint_stay_separate(self):
        ls = Lifespan([Interval(0, 2), Interval(5, 7)])
        assert len(ls.intervals) == 2

    def test_duration(self):
        assert Lifespan([Interval(0, 2), Interval(5, 7)]).duration() == 6
        assert Lifespan.from_(3).duration() == float("inf")

    def test_earliest(self):
        assert Lifespan([Interval(5, 7), Interval(1, 2)]).earliest() == 1
        assert Lifespan.empty().earliest() is None


class TestBooleanAlgebra:
    def test_union(self):
        a = Lifespan.between(0, 3)
        b = Lifespan.between(10, 12)
        u = a | b
        assert 2 in u and 11 in u and 5 not in u

    def test_intersection(self):
        a = Lifespan.between(0, 10)
        b = Lifespan.between(5, 15)
        assert (a & b).intervals == (Interval(5, 10),)

    def test_complement_bounded(self):
        c = Lifespan.between(3, 5).complement()
        assert 2 in c and 6 in c and 4 not in c
        assert c.intervals[-1].hi == float("inf")

    def test_complement_unbounded(self):
        c = Lifespan.from_(10).complement()
        assert c.intervals == (Interval(0, 9),)

    def test_difference(self):
        d = Lifespan.between(0, 10) - Lifespan.between(4, 6)
        assert d.intervals == (Interval(0, 3), Interval(7, 10))

    def test_always_complement_empty(self):
        assert Lifespan.always().complement().is_empty()
        assert Lifespan.empty().complement() == Lifespan.always()

    @given(lifespans())
    def test_involution(self, ls):
        assert ls.complement().complement() == ls

    @given(lifespans())
    def test_excluded_middle(self, ls):
        assert (ls | ls.complement()) == Lifespan.always()
        assert (ls & ls.complement()).is_empty()

    @given(lifespans(), lifespans())
    def test_de_morgan(self, a, b):
        assert (a | b).complement() == (a.complement() & b.complement())
        assert (a & b).complement() == (a.complement() | b.complement())

    @given(lifespans(), lifespans())
    def test_union_commutative_associative_sampled(self, a, b):
        assert (a | b) == (b | a)
        assert (a & b) == (b & a)

    @given(lifespans(), lifespans(), st.integers(0, 60))
    def test_pointwise_semantics(self, a, b, t):
        assert (t in (a | b)) == (t in a or t in b)
        assert (t in (a & b)) == (t in a and t in b)
        assert (t in a.complement()) == (t not in a)


class TestTemporalRelation:
    @pytest.fixture
    def rel(self):
        schema = RelationSchema("Readings", ("Sensor", "Value"))
        tr = TemporalRelation(schema)
        tr.assert_row(("s1", 20), Lifespan.between(0, 10))
        tr.assert_row(("s1", 25), Lifespan.from_(11))
        tr.assert_row(("s2", 7), Lifespan.between(5, 8))
        return tr

    def test_snapshot_is_instantaneous_instance(self, rel):
        assert rel.snapshot(6) == [("s1", 20), ("s2", 7)]
        assert rel.snapshot(12) == [("s1", 25)]

    def test_retract_splits_lifespan(self, rel):
        rel.retract_row(("s1", 20), Lifespan.between(3, 5))
        ls = rel.lifespan_of(("s1", 20))
        assert 2 in ls and 4 not in ls and 6 in ls

    def test_full_retraction_removes_row(self, rel):
        rel.retract_row(("s2", 7), Lifespan.always())
        assert len(rel) == 2

    def test_assert_merges_spans(self, rel):
        rel.assert_row(("s2", 7), Lifespan.between(9, 12))
        assert rel.lifespan_of(("s2", 7)) == Lifespan.between(5, 12)

    def test_schema_validated(self, rel):
        with pytest.raises(Exception):
            rel.assert_row(("only-one",), Lifespan.always())
