"""Grab-bag of edge-case tests across modules: empty structures,
degenerate parameters, and boundary semantics."""

import pytest

from repro.adhoc import HopRecord, Message, TraceLog
from repro.dataacc import PolynomialArrivalLaw, arrival_schedule
from repro.kernel import Simulator
from repro.parallel import PCGS, Component, Production
from repro.rtdb import Lifespan, db0_word, dbk_word
from repro.words import OMEGA, TimeSequence, TimedWord, Trilean, concat


class TestWordsEdges:
    def test_empty_finite_word(self):
        w = TimedWord.finite([])
        assert len(w) == 0
        assert w.is_well_behaved() is Trilean.FALSE
        assert w.take(5) == []

    def test_concat_two_empty(self):
        e = TimedWord.finite([])
        assert len(concat(e, e)) == 0

    def test_single_symbol_lasso(self):
        w = TimedWord.lasso([], [("x", 0)], shift=1)
        assert w.take(3) == [("x", 0), ("x", 1), ("x", 2)]

    def test_large_index_lasso_constant_time(self):
        """Lasso access is O(1): index 10^9 works instantly."""
        w = TimedWord.lasso([], [("x", 1)], shift=1)
        s, t = w[10**9]
        assert t == 1 + 10**9

    def test_time_sequence_large_first_index(self):
        ts = TimeSequence.lasso([], [1], shift=1)
        assert ts.first_index_reaching(10**6) == 10**6 - 1

    def test_omega_comparisons_with_floats(self):
        assert OMEGA > 10**12


class TestDb0Edges:
    def test_empty_invariants_and_derived(self):
        w = db0_word({}, {})
        # just the two phase separators
        assert [s for s, _t in w.take(len(w))] == ["$", "$"]

    def test_variable_length_encodings(self):
        w = dbk_word("x", period=2, values=lambda t: "v" * (1 + t // 2))
        pairs = w.take(30)
        times = [t for _s, t in pairs]
        assert times == sorted(times)
        # block lengths differ yet indexing stays consistent
        assert pairs == [w[i] for i in range(30)]


class TestLifespanEdges:
    def test_instant_algebra(self):
        p = Lifespan.instant(5)
        assert 5 in p and 4 not in p
        assert p.duration() == 1
        assert (p & Lifespan.instant(5)) == p
        assert (p & Lifespan.instant(6)).is_empty()

    def test_adjacent_instants_merge(self):
        merged = Lifespan.instant(3) | Lifespan.instant(4)
        assert merged == Lifespan.between(3, 4)

    def test_empty_identities(self):
        e = Lifespan.empty()
        a = Lifespan.between(1, 9)
        assert (a | e) == a
        assert (a & e).is_empty()
        assert (a - e) == a


class TestTraceLogEdges:
    def test_empty_trace(self):
        log = TraceLog()
        assert log.delivery_time(1) is None
        assert log.data_hops() == []
        assert log.control_hops() == []

    def test_delivery_recorded_once(self):
        log = TraceLog()
        msg = Message(src=1, dst=2, body="x", created_at=0)
        log.record_delivery(msg, at=5)
        log.record_delivery(msg, at=9)
        # first delivery wins in delivery_time
        assert log.delivery_time(msg.uid) == 5

    def test_hop_received_at(self):
        hop = HopRecord(sent_at=7, src=1, dst=2, body=None, kind="data")
        assert hop.received_at == 8


class TestArrivalEdges:
    def test_zero_initial_amount(self):
        law = PolynomialArrivalLaw(n=0, k=1.0, beta=1.0)
        assert law.amount(0) == 0
        assert law.arrival_time(1) == 1

    def test_schedule_is_sorted(self):
        law = PolynomialArrivalLaw(n=3, k=0.7, beta=0.8)
        sched = arrival_schedule(law, 20)
        assert sched == sorted(sched)
        assert sched[:3] == [0, 0, 0]  # the beforehand batch


class TestPcgsEdges:
    def test_single_component_plain_grammar(self):
        c = Component({"S"}, "S", [Production("S", ("a", "S")), Production("S", ("b",))])
        g = PCGS([c])
        words = g.language_sample(tries=60, seed=5)
        assert ("b",) in words
        assert any(len(w) > 1 for w in words)
        # every word is a^n b
        for w in words:
            assert w[-1] == "b" and all(s == "a" for s in w[:-1])

    def test_nonreturning_mode_accumulates(self):
        c1 = Component({"S"}, "S", [Production("S", (query(2), query(2)))])
        c2 = Component({"T"}, "T", [Production("T", ("x",))])
        g_ret = PCGS([c1, c2], returning=True)
        g_non = PCGS([c1, c2], returning=False)
        # after one rewrite + communication the master holds two copies
        forms = [(query(2), query(2)), ("x",)]
        out_ret = g_ret.communication_step(list(forms))
        out_non = g_non.communication_step(list(forms))
        assert out_ret[0] == out_non[0] == ("x", "x")
        assert out_ret[1] == ("T",)     # returning: back to axiom
        assert out_non[1] == ("x",)     # non-returning: keeps its form


def query(j):
    from repro.parallel import query as q

    return q(j)


class TestSimulatorEdges:
    def test_start_time_offset(self):
        sim = Simulator(start=100)
        fired = []

        def proc(sim):
            yield sim.timeout(5)
            fired.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert fired == [105]

    def test_run_until_zero(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(10)

        sim.process(proc(sim))
        sim.run(until=0)
        assert sim.now == 0
