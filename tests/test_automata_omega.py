"""Tests for Büchi and Muller ω-automata (§2.1)."""

import pytest

from repro.automata import BuchiAutomaton, LassoWord, MullerAutomaton


@pytest.fixture
def inf_a():
    """Büchi: infinitely many a's over {a, b}."""
    return BuchiAutomaton(
        "ab",
        ["s", "t"],
        "s",
        [("s", "t", "a"), ("s", "s", "b"), ("t", "t", "a"), ("t", "s", "b")],
        ["t"],
    )


class TestLassoWord:
    def test_indexing(self):
        w = LassoWord("ab", "cd")
        assert w.take(6) == list("abcdcd")

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            LassoWord("a", "")


class TestBuchiAcceptance:
    def test_accepts_infinitely_many_a(self, inf_a):
        assert inf_a.accepts_lasso(LassoWord("", "a"))
        assert inf_a.accepts_lasso(LassoWord("bbb", "ab"))
        assert inf_a.accepts_lasso(LassoWord("a", "ba"))

    def test_rejects_finitely_many_a(self, inf_a):
        assert not inf_a.accepts_lasso(LassoWord("", "b"))
        assert not inf_a.accepts_lasso(LassoWord("aaaa", "b"))

    def test_rejects_when_run_dies(self, inf_a):
        # symbol outside transitions kills every run
        dead = BuchiAutomaton("ab", ["s"], "s", [("s", "s", "a")], ["s"])
        assert not dead.accepts_lasso(LassoWord("b", "a"))
        assert not dead.accepts_lasso(LassoWord("", "ab"))

    def test_nondeterministic_acceptance(self):
        """NFA Büchi: guess the position after which only a's appear."""
        even_a_tail = BuchiAutomaton(
            "ab",
            [0, 1],
            0,
            [(0, 0, "a"), (0, 0, "b"), (0, 1, "a"), (1, 1, "a")],
            [1],
        )
        assert even_a_tail.accepts_lasso(LassoWord("bab", "a"))
        assert not even_a_tail.accepts_lasso(LassoWord("", "ab"))


class TestBuchiEmptiness:
    def test_nonempty_language(self, inf_a):
        assert not inf_a.is_empty_language()

    def test_empty_when_no_accepting_cycle(self):
        # accepting state has no cycle through it
        b = BuchiAutomaton("a", [0, 1], 0, [(0, 1, "a"), (1, 1, "a")], [0])
        assert b.is_empty_language()

    def test_find_accepted_lasso_is_accepted(self, inf_a):
        w = inf_a.find_accepted_lasso()
        assert w is not None
        assert inf_a.accepts_lasso(w)

    def test_find_accepted_lasso_none_for_empty(self):
        b = BuchiAutomaton("a", [0, 1], 0, [(0, 1, "a"), (1, 1, "a")], [0])
        assert b.find_accepted_lasso() is None


class TestMuller:
    @pytest.fixture
    def machine(self):
        """Deterministic automaton over {a,b}: s --a--> t, t --a--> t,
        t --b--> s, s --b--> s."""
        return MullerAutomaton(
            "ab",
            ["s", "t"],
            "s",
            [("s", "t", "a"), ("s", "s", "b"), ("t", "t", "a"), ("t", "s", "b")],
            [["t"]],
        )

    def test_accepts_exact_inf_set(self, machine):
        # (a)^ω: eventually always in t -> inf = {t} ∈ F
        assert machine.accepts_lasso(LassoWord("b", "a"))

    def test_rejects_larger_inf_set(self, machine):
        # (ab)^ω visits both s and t infinitely often -> inf = {s,t} ∉ F
        assert not machine.accepts_lasso(LassoWord("", "ab"))

    def test_rejects_smaller_inf_set(self, machine):
        # (b)^ω stays in s -> inf = {s} ∉ F
        assert not machine.accepts_lasso(LassoWord("", "b"))

    def test_family_with_both_sets(self):
        m = MullerAutomaton(
            "ab",
            ["s", "t"],
            "s",
            [("s", "t", "a"), ("s", "s", "b"), ("t", "t", "a"), ("t", "s", "b")],
            [["t"], ["s", "t"]],
        )
        assert m.accepts_lasso(LassoWord("", "ab"))
        assert m.accepts_lasso(LassoWord("b", "a"))
        assert not m.accepts_lasso(LassoWord("", "b"))

    def test_nondeterministic_rejected(self):
        m = MullerAutomaton(
            "a", [0, 1], 0, [(0, 0, "a"), (0, 1, "a")], [[1]]
        )
        with pytest.raises(ValueError):
            m.accepts_lasso(LassoWord("", "a"))

    def test_dead_run_rejects(self):
        m = MullerAutomaton("ab", [0], 0, [(0, 0, "a")], [[0]])
        assert not m.accepts_lasso(LassoWord("b", "a"))
        assert not m.accepts_lasso(LassoWord("a", "b"))
