"""Tests for the recognition problem (eq. 5) and the §5.1.3 timed-word
constructions (db_0, db_k, db_B, aq, pq, Lemma 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deadlines import DeadlineKind, DeadlineSpec, HyperbolicUsefulness
from repro.rtdb import (
    SEP,
    aq_word,
    db0_word,
    db_B_word,
    dbk_word,
    figure2_query,
    lemma51_bound,
    ngc_example,
    pq_word,
    recognition_word,
    recognizes,
)
from repro.rtdb.recognition import decode_recognition_word
from repro.words import Trilean


class TestClassicalRecognition:
    def test_positive_instance(self):
        db = ngc_example()
        word = recognition_word(db, ("Schaefer", "St. Catharines"))
        assert recognizes(figure2_query(), db.schema, word)

    def test_negative_instance(self):
        db = ngc_example()
        word = recognition_word(db, ("Thompson", "Mexico City"))
        assert not recognizes(figure2_query(), db.schema, word)

    def test_malformed_word_rejected_not_crashing(self):
        db = ngc_example()
        assert not recognizes(figure2_query(), db.schema, ["garbage"])

    def test_roundtrip_decoding(self):
        db = ngc_example()
        word = recognition_word(db, ("A", "B"))
        decoded_db, candidate = decode_recognition_word(word, db.schema)
        assert candidate == ("A", "B")
        assert decoded_db == db

    def test_word_has_single_separator(self):
        db = ngc_example()
        word = recognition_word(db, ("x",))
        assert word.count(SEP) == 1


class TestDbWords:
    def test_db0_structure(self):
        w = db0_word({"unit": "c"}, {"hi": ("temp",)})
        syms = [s for s, t in w.take(len(w))]
        times = [t for _s, t in w.take(len(w))]
        assert all(t == 0 for t in times)
        assert syms.count(SEP) >= 2  # block terminators + 2 bare seps

    def test_dbk_block_times_are_period_multiples(self):
        w = dbk_word("temp", period=4, values=lambda t: t)
        pairs = w.take(40)
        times = {t for _s, t in pairs}
        assert times <= {0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40}

    def test_dbk_rejects_bad_period(self):
        with pytest.raises(ValueError):
            dbk_word("x", period=0, values=lambda t: 0)

    def test_db_B_merges_phases_in_order(self):
        """Eq. (6): invariants, then derived, then image samples."""
        w = db_B_word({"u": 1}, {"d": ("img",)}, {"img": (3, lambda t: t)})
        syms = [s for s, _t in w.take(60)]
        # find the two bare separators ending phase 0 and phase 1
        text_syms = []
        for s in syms:
            text_syms.append(s[1] if isinstance(s, tuple) else s)
        joined = "".join(text_syms)
        assert joined.index("u=1") < joined.index("d<-img") < joined.index("img=0")


class TestAqWords:
    def test_no_deadline_shape(self):
        w = aq_word("q", ("x",), issue_time=10, spec=DeadlineSpec(DeadlineKind.NONE))
        pairs = w.take(25)
        header = [p for p in pairs if p[1] == 10]
        assert header, "header symbols at the issue time"
        assert ("wq", 10) in [s for s, _t in pairs]
        assert w.is_well_behaved() is Trilean.TRUE

    def test_firm_deadline_markers(self):
        spec = DeadlineSpec(DeadlineKind.FIRM, t_d=5)
        w = aq_word("q", ("x",), issue_time=10, spec=spec)
        syms = [s for s, _t in w.take(60)]
        dq = ("dq", 10)
        assert dq in syms
        at = syms.index(dq)
        assert syms[at + 1] == 0  # eq. (7): firm usefulness is 0

    def test_firm_deadline_at_absolute_time(self):
        """Deadline occurs at t + t_d (the paper's relative deadline)."""
        spec = DeadlineSpec(DeadlineKind.FIRM, t_d=5)
        w = aq_word("q", ("x",), issue_time=10, spec=spec)
        first_dq_time = next(t for s, t in w.take(60) if s == ("dq", 10))
        assert first_dq_time == 15

    def test_soft_deadline_usefulness_decays(self):
        spec = DeadlineSpec(
            DeadlineKind.SOFT,
            t_d=3,
            usefulness=HyperbolicUsefulness(max_value=6, t_d=13),
            min_acceptable=2,
        )
        w = aq_word("q", ("x",), issue_time=10, spec=spec)
        pairs = w.take(60)
        values = [s for s, _t in pairs if isinstance(s, int) and s != 2]
        # skip header min_acc (2); the sequence of u-values is non-increasing
        u_vals = [s for s, _t in pairs if isinstance(s, int)][1:]
        assert u_vals == sorted(u_vals, reverse=True)

    def test_min_acceptable_is_first_symbol(self):
        spec = DeadlineSpec(DeadlineKind.FIRM, t_d=5, min_acceptable=7)
        w = aq_word("q", ("x",), issue_time=4, spec=spec)
        assert w[0] == (7, 4)


class TestPqWordsAndLemma51:
    def _pq(self, period=10, t=5):
        return pq_word(
            "q",
            lambda i: (f"s{i}",),
            issue_time=t,
            period=period,
            spec_for=lambda i: DeadlineSpec(DeadlineKind.FIRM, t_d=4),
        )

    def test_monotone_times(self):
        w = self._pq()
        times = [t for _s, t in w.take(300)]
        assert times == sorted(times)

    def test_headers_of_each_invocation_present(self):
        w = self._pq(period=8, t=3)
        pairs = w.take(400)
        times = [t for s, t in pairs if isinstance(s, tuple) and s[0] == "q"]
        assert 3 in times and 11 in times and 19 in times

    def test_earlier_invocation_wins_ties(self):
        """At a shared chronon, query i's symbols precede query i+1's
        (left-to-right Definition 3.5 concatenation)."""
        w = self._pq(period=4, t=2)
        pairs = w.take(200)
        # at invocation 2's issue time (6), markers of invocation 1
        # (wq/dq tagged 2) must appear before invocation 2's header
        at6 = [s for s, t in pairs if t == 6]
        tag1 = [i for i, s in enumerate(at6) if isinstance(s, tuple) and s[0] in ("wq", "dq") and s[1] == 2]
        hdr2 = [i for i, s in enumerate(at6) if isinstance(s, tuple) and s[0] == "q"]
        if tag1 and hdr2:
            assert max(tag1) < min(hdr2)

    def test_progress_lemma51(self):
        """Lemma 5.1: the word is well-behaved — for every k a finite
        index k′ has τ_{k′} ≥ k, and k′ respects the paper's bound."""
        w = self._pq(period=10, t=5)
        ts = w.time_sequence
        header_len = len(repr(("s1",))) + len("q@5") + 2 + 1
        for k in (8, 16, 32, 64):
            kprime = ts.first_index_reaching(k, horizon=200_000)
            assert kprime is not None
            assert kprime <= lemma51_bound(k, 5, 10, header_len + 4)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            pq_word("q", lambda i: (), 0, 0, lambda i: DeadlineSpec(DeadlineKind.NONE))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 10))
    def test_pq_always_monotone(self, period, t):
        w = pq_word(
            "q",
            lambda i: (i,),
            issue_time=t,
            period=period,
            spec_for=lambda i: DeadlineSpec(DeadlineKind.NONE),
        )
        times = [tt for _s, tt in w.take(150)]
        assert times == sorted(times)
