"""Unit tests for the simulator and process machinery."""

import pytest

from repro.kernel import (
    Interrupt,
    ProcessDied,
    SimulationError,
    Simulator,
)


class TestBasicExecution:
    def test_empty_run_returns(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0

    def test_run_until_horizon_advances_clock(self):
        sim = Simulator()
        sim.run(until=50)
        assert sim.now == 50

    def test_process_return_value_becomes_event_value(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(3)
            return "result"

        def parent(sim, out):
            value = yield sim.process(child(sim))
            out.append(value)

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["result"]

    def test_step_on_empty_queue_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.step()

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_unwatched_crash_propagates(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1)
            raise ValueError("crash")

        sim.process(bad(sim))
        with pytest.raises(ValueError):
            sim.run()

    def test_watched_crash_flows_to_waiter(self):
        sim = Simulator()
        caught = []

        def bad(sim):
            yield sim.timeout(1)
            raise ValueError("crash")

        def watcher(sim):
            try:
                yield sim.process(bad(sim))
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(watcher(sim))
        sim.run()
        assert caught == ["crash"]

    def test_horizon_stops_before_later_events(self):
        sim = Simulator()
        seen = []

        def proc(sim):
            yield sim.timeout(10)
            seen.append("early")
            yield sim.timeout(100)
            seen.append("late")

        sim.process(proc(sim))
        sim.run(until=50)
        assert seen == ["early"]
        assert sim.now == 50

    def test_run_until_event(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5)
            return "done"

        p = sim.process(proc(sim))
        value = sim.run(until=p)
        assert value == "done"
        assert sim.now == 5

    def test_run_until_failed_event_raises(self):
        # Regression: the failure arm of run(until=event) used to fall
        # through to StopSimulation(ev.value), silently *returning* the
        # exception instead of raising it.
        sim = Simulator()
        ev = sim.event(name="doomed")
        ev.fail(ValueError("boom"), delay=3)
        with pytest.raises(ValueError, match="boom"):
            sim.run(until=ev)
        assert sim.now == 3

    def test_run_until_already_failed_event_raises(self):
        sim = Simulator()
        ev = sim.event(name="doomed")
        ev.fail(ValueError("boom"), delay=0)
        sim.run()  # fires (and defuses via this watcher-less dispatch)
        assert not ev.ok
        with pytest.raises(ValueError, match="boom"):
            sim.run(until=ev)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build():
            sim = Simulator()
            log = []

            def worker(sim, wid):
                for i in range(3):
                    yield sim.timeout(2)
                    log.append((sim.now, wid, i))

            for w in range(4):
                sim.process(worker(sim, w))
            sim.run()
            return log

        assert build() == build()

    def test_equal_time_processes_fifo(self):
        sim = Simulator()
        order = []

        def worker(sim, wid):
            yield sim.timeout(5)
            order.append(wid)

        for w in range(5):
            sim.process(worker(sim, w))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
                log.append("overslept")
            except Interrupt as i:
                log.append(("interrupted", i.cause, sim.now))

        def interrupter(sim, target):
            yield sim.timeout(3)
            target.interrupt(cause="wake!")

        target = sim.process(sleeper(sim))
        sim.process(interrupter(sim, target))
        sim.run()
        assert log == [("interrupted", "wake!", 3)]

    def test_interrupt_dead_process_raises(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(ProcessDied):
            p.interrupt()

    def test_interrupted_process_can_continue(self):
        sim = Simulator()
        log = []

        def resilient(sim):
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            log.append(sim.now)

        def interrupter(sim, target):
            yield sim.timeout(10)
            target.interrupt()

        target = sim.process(resilient(sim))
        sim.process(interrupter(sim, target))
        sim.run()
        assert log == [15]


class TestProcessState:
    def test_is_alive_transitions(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_self_interrupt_rejected(self):
        sim = Simulator()
        errors = []

        def proc(sim):
            me = sim.active_process
            try:
                me.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))
            yield sim.timeout(1)

        sim.process(proc(sim))
        sim.run()
        assert len(errors) == 1
