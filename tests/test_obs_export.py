"""Exporter contracts: Chrome trace schema round-trip, metrics dumps."""

import json

import pytest

from repro.obs import (
    MetricRegistry,
    SpanRecorder,
    chrome_trace,
    metrics_dict,
    render_metrics_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


class FakeClock:
    def __init__(self):
        self.t = 0

    def __call__(self):
        self.t += 500
        return self.t


def sample_spans():
    rec = SpanRecorder(clock=FakeClock())
    with rec.span("kernel.run", until="100"):
        with rec.span("machine.decide", algorithm="A"):
            pass
    return rec


def sample_registry():
    reg = MetricRegistry()
    reg.counter("kernel.events_dispatched").inc(7)
    reg.counter("adhoc.frames_transmitted").labels(kind="data").inc(3)
    reg.gauge("kernel.pending_events").set(2)
    h = reg.histogram("rtdb.service_latency")
    for v in (1, 2, 3, 4):
        h.observe(v)
    return reg


class TestChromeTrace:
    def test_json_round_trip_preserves_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), sample_spans(), sample_registry())
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert validate_chrome_trace(loaded) == []

    def test_event_fields(self):
        doc = chrome_trace(sample_spans())
        evs = doc["traceEvents"]
        assert [e["name"] for e in evs] == ["kernel.run", "machine.decide"]
        for e in evs:
            assert e["ph"] == "X"
            assert e["cat"] == "repro"
            assert e["ts"] >= 0 and e["dur"] > 0
        # nested span sits inside its parent's interval
        outer, inner = evs
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert inner["args"] == {"algorithm": "A"}

    def test_timestamps_rebased_to_zero(self):
        doc = chrome_trace(sample_spans())
        assert min(e["ts"] for e in doc["traceEvents"]) == 0

    def test_metrics_ride_in_other_data(self):
        doc = chrome_trace(sample_spans(), sample_registry())
        names = {m["name"] for m in doc["otherData"]["metrics"]["metrics"]}
        assert "kernel.events_dispatched" in names

    def test_open_spans_are_excluded(self):
        rec = SpanRecorder(clock=FakeClock())
        rec.begin("never-closed")
        assert chrome_trace(rec)["traceEvents"] == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_event = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0, "pid": 0, "tid": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(bad_event))
        ok = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 0, "tid": 0}]}
        assert validate_chrome_trace(ok) == []


class TestMetricsDump:
    def test_json_dump_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        doc = write_metrics(str(path), sample_registry())
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))
        assert doc == metrics_dict(sample_registry())

    def test_text_dump_shape(self):
        text = render_metrics_text(sample_registry())
        lines = text.strip().splitlines()
        assert 'adhoc.frames_transmitted{kind="data"} 3' in lines
        assert "kernel.events_dispatched 7" in lines
        assert "kernel.pending_events 2" in lines
        assert "rtdb.service_latency_count 4" in lines
        assert "rtdb.service_latency_q0.5 2.5" in lines

    def test_text_file_write(self, tmp_path):
        path = tmp_path / "metrics.txt"
        text = write_metrics(str(path), sample_registry(), fmt="text")
        assert path.read_text() == text

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_metrics(str(tmp_path / "m"), sample_registry(), fmt="xml")

    def test_empty_registry(self):
        assert render_metrics_text(MetricRegistry()) == ""
        assert metrics_dict(MetricRegistry()) == {"metrics": []}
