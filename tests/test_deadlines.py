"""Tests for Section 4.1: computing with deadlines.

The central property (experiment E5 in miniature): the acceptor's
decision equals the instance oracle on every instance class.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deadlines import (
    DEADLINE,
    WAIT,
    DeadlineInstance,
    DeadlineKind,
    DeadlineSpec,
    HyperbolicUsefulness,
    LinearDecayUsefulness,
    StepUsefulness,
    decide_instance,
    decode_prefix,
    encode_instance,
    sorting_problem,
)
from repro.words import Trilean


PROB = sorting_problem(time_per_item=2)  # duration = 2n
INP = (3, 1, 2)
GOOD = (1, 2, 3)
BAD = (3, 2, 1)


def spec_none():
    return DeadlineSpec(DeadlineKind.NONE)


def spec_firm(t_d):
    return DeadlineSpec(DeadlineKind.FIRM, t_d=t_d)


def spec_soft(t_d, max_value=10, min_acc=1):
    return DeadlineSpec(
        DeadlineKind.SOFT,
        t_d=t_d,
        usefulness=HyperbolicUsefulness(max_value=max_value, t_d=t_d),
        min_acceptable=min_acc,
    )


class TestSpecValidation:
    def test_none_with_t_d_rejected(self):
        with pytest.raises(ValueError):
            DeadlineSpec(DeadlineKind.NONE, t_d=5)

    def test_firm_needs_positive_t_d(self):
        with pytest.raises(ValueError):
            DeadlineSpec(DeadlineKind.FIRM, t_d=0)

    def test_soft_needs_usefulness(self):
        with pytest.raises(ValueError):
            DeadlineSpec(DeadlineKind.SOFT, t_d=5)

    def test_min_acceptable_positive(self):
        with pytest.raises(ValueError):
            DeadlineSpec(DeadlineKind.FIRM, t_d=5, min_acceptable=0)

    def test_firm_usefulness_is_zero(self):
        assert spec_firm(5).usefulness_at(5) == 0
        assert spec_firm(5).usefulness_at(100) == 0


class TestUsefulnessFunctions:
    def test_hyperbolic_paper_example(self):
        """u(t) = max·1/(t − t_d) with max=10, t_d=20."""
        u = HyperbolicUsefulness(max_value=10, t_d=20)
        assert u(20) == 10  # clamped at the deadline
        assert u(21) == 10
        assert u(22) == 5
        assert u(30) == 1
        assert u(31) == 0

    def test_hyperbolic_stabilizes(self):
        u = HyperbolicUsefulness(max_value=10, t_d=20)
        t_s = u.stable_after(20)
        assert u(t_s) == u(t_s + 100) == 0

    def test_linear_decay(self):
        u = LinearDecayUsefulness(max_value=6, t_d=10, slope=2)
        assert u(10) == 6 and u(11) == 4 and u(13) == 0

    def test_step(self):
        u = StepUsefulness(max_value=5, t_d=10, grace=3)
        assert u(13) == 5 and u(14) == 0


class TestEncoding:
    def test_case_i_shape(self):
        inst = DeadlineInstance(PROB, INP, GOOD, spec_none())
        word = encode_instance(inst)
        pairs = word.take(10)
        # header at time 0: o then ι (no min_acc)
        assert pairs[0] == (("O", 1), 0)
        assert pairs[3] == (("I", 3), 0)
        # then w's, one per chronon
        assert pairs[6] == (WAIT, 1)
        assert pairs[7] == (WAIT, 2)

    def test_case_ii_shape(self):
        inst = DeadlineInstance(PROB, INP, GOOD, spec_firm(4))
        pairs = encode_instance(inst).take(14)
        assert pairs[0] == (1, 0)  # min acceptable
        assert pairs[7] == (WAIT, 1)
        assert (DEADLINE, 4) in pairs
        at = pairs.index((DEADLINE, 4))
        assert pairs[at + 1] == (0, 4)  # eq. (2): usefulness 0

    def test_case_iii_usefulness_values(self):
        inst = DeadlineInstance(PROB, INP, GOOD, spec_soft(4, max_value=6))
        pairs = encode_instance(inst).take(30)
        at = pairs.index((DEADLINE, 4))
        assert pairs[at + 1] == (6, 4)  # u(4) clamped to max
        at5 = pairs.index((DEADLINE, 5))
        assert pairs[at5 + 1] == (6, 5)  # 6 // 1
        at7 = pairs.index((DEADLINE, 7))
        assert pairs[at7 + 1] == (2, 7)  # 6 // 3

    def test_words_are_well_behaved(self):
        for spec in (spec_none(), spec_firm(5), spec_soft(5)):
            inst = DeadlineInstance(PROB, INP, GOOD, spec)
            assert encode_instance(inst).is_well_behaved() is Trilean.TRUE

    def test_decode_roundtrip(self):
        inst = DeadlineInstance(PROB, INP, GOOD, spec_firm(9))
        word = encode_instance(inst)
        header = decode_prefix(word.take(7))
        assert header.min_acceptable == 1
        assert header.proposed_output == GOOD
        assert header.input_word == INP

    def test_decode_no_deadline_header(self):
        inst = DeadlineInstance(PROB, INP, GOOD, spec_none())
        header = decode_prefix(encode_instance(inst).take(6))
        assert header.min_acceptable is None


class TestAcceptorMatchesOracle:
    """Acceptor decision ≡ oracle — the E5 property."""

    CASES = [
        (GOOD, spec_none(), True),
        (BAD, spec_none(), False),
        (GOOD, spec_firm(10), True),   # duration 6 < 10
        (GOOD, spec_firm(6), False),   # completion == deadline: late
        (GOOD, spec_firm(3), False),
        (BAD, spec_firm(10), False),
        (GOOD, spec_soft(5, 10, 1), True),   # u(6) = 10 ≥ 1
        (GOOD, spec_soft(5, 10, 11), False),
        (BAD, spec_soft(5, 10, 1), False),
    ]

    @pytest.mark.parametrize("proposed,spec,expected", CASES)
    def test_acceptor_equals_oracle(self, proposed, spec, expected):
        inst = DeadlineInstance(PROB, INP, proposed, spec)
        assert inst.oracle() == expected
        report = decide_instance(inst)
        assert report.accepted == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=4),
        st.integers(1, 20),
        st.booleans(),
    )
    def test_firm_random_instances(self, data, t_d, truthful):
        inp = tuple(data)
        proposed = tuple(sorted(inp)) if truthful else tuple(sorted(inp)) + (99,)
        inst = DeadlineInstance(PROB, inp, proposed, spec_firm(t_d))
        assert decide_instance(inst).accepted == inst.oracle()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=4),
        st.integers(1, 12),
        st.integers(1, 12),
    )
    def test_soft_random_instances(self, data, t_d, min_acc):
        inp = tuple(data)
        inst = DeadlineInstance(
            PROB, inp, tuple(sorted(inp)), spec_soft(t_d, max_value=8, min_acc=min_acc)
        )
        assert decide_instance(inst).accepted == inst.oracle()


class TestAbsorbingStates:
    def test_accept_emits_f_forever(self):
        inst = DeadlineInstance(PROB, INP, GOOD, spec_none())
        report = decide_instance(inst)
        assert report.f_count > 5

    def test_reject_never_emits_f(self):
        inst = DeadlineInstance(PROB, INP, BAD, spec_none())
        report = decide_instance(inst)
        assert report.f_count == 0
