"""Tests for the TBA → real-time algorithm compilation (§3.1.1 claim)."""

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.kernel import Le, gt
from repro.machine import NondeterministicTBAError, tba_to_algorithm
from repro.words import TimedWord


def bounded_gap_tba(bound=2):
    """Deterministic TBA: every inter-arrival gap ≤ bound."""
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def two_phase_tba():
    """Deterministic: accept iff eventually gaps exceed 2 forever."""
    return TimedBuchiAutomaton(
        "ab",
        ["fast", "slow"],
        "fast",
        [
            TimedTransition.make("fast", "fast", "a", resets=["x"], guard=Le("x", 2)),
            TimedTransition.make("fast", "slow", "b", resets=["x"]),
            TimedTransition.make("slow", "slow", "a", resets=["x"], guard=gt("x", 2)),
        ],
        ["x"],
        ["slow"],
    )


class TestCompilation:
    def test_nondeterministic_rejected_by_default(self):
        tba = TimedBuchiAutomaton(
            "a",
            ["s", "t"],
            "s",
            [
                TimedTransition.make("s", "s", "a"),
                TimedTransition.make("s", "t", "a"),
            ],
            [],
            ["t"],
        )
        with pytest.raises(NondeterministicTBAError):
            tba_to_algorithm(tba)
        # but allowed explicitly
        tba_to_algorithm(tba, allow_nondeterministic=True)


class TestAgreementWithAutomatonJudge:
    """On lasso words, the compiled machine's f-rate verdict equals the
    region-graph decision procedure."""

    @pytest.mark.parametrize("shift,expected", [(2, True), (5, False)])
    def test_bounded_gap_language(self, shift, expected):
        tba = bounded_gap_tba(2)
        word = TimedWord.lasso([], [("a", 1)], shift=shift)
        assert tba.accepts_lasso(word) is expected
        machine = tba_to_algorithm(tba)
        if expected:
            report = machine.count_f(word, horizon=100)
            # accepting configs recur: f's keep coming
            assert report.f_count >= 20
        else:
            report = machine.decide(word, horizon=100)
            assert not report.accepted  # the run died → s_r

    def test_two_phase_language(self):
        tba = two_phase_tba()
        good = TimedWord.lasso([("a", 1), ("a", 2), ("b", 3)], [("a", 7)], shift=4)
        bad = TimedWord.lasso([], [("a", 1)], shift=1)
        assert tba.accepts_lasso(good)
        assert not tba.accepts_lasso(bad)
        machine_good = tba_to_algorithm(tba).count_f(good, horizon=200)
        assert machine_good.f_count >= 10
        machine_bad = tba_to_algorithm(tba).count_f(bad, horizon=200)
        assert machine_bad.f_count == 0

    def test_dead_run_enters_reject(self):
        tba = bounded_gap_tba(1)
        slow = TimedWord.lasso([], [("a", 3)], shift=3)
        report = tba_to_algorithm(tba).decide(slow, horizon=100)
        assert not report.accepted
        assert report.decided_at is not None

    def test_storage_holds_clock_valuations(self):
        """The §3.1.1 point: clocks live in working storage."""
        tba = bounded_gap_tba(2)
        machine = tba_to_algorithm(tba)
        report = machine.count_f(
            TimedWord.lasso([], [("a", 1)], shift=2), horizon=50
        )
        assert report.space_peak >= 2  # configs + prev_t cells
