"""Tests for the L(Π) language API (sampler path, robustness)."""

import random

import pytest

from repro.deadlines import (
    DeadlineInstance,
    DeadlineKind,
    DeadlineSpec,
    encode_instance,
    language_of,
    sorting_problem,
)
from repro.words import TimedWord


PROB = sorting_problem(time_per_item=1)


def random_instance(rng: random.Random) -> DeadlineInstance:
    n = rng.randint(1, 4)
    data = tuple(rng.randint(0, 9) for _ in range(n))
    return DeadlineInstance(
        PROB, data, tuple(sorted(data)), DeadlineSpec(DeadlineKind.NONE)
    )


class TestLanguageOf:
    def test_sampler_generates_members(self):
        lang = language_of(PROB, rng_instances=random_instance)
        rng = random.Random(1)
        for _ in range(3):
            w = lang.sample(rng)
            assert lang.contains(w)

    def test_rejects_foreign_words(self):
        lang = language_of(PROB)
        # a §4.2-style word is not an encoded §4.1 instance
        foreign = TimedWord.lasso([(("X", 1), 0)], [("w", 1)], shift=1)
        assert not lang.contains(foreign)

    def test_rejects_wrong_solutions(self):
        lang = language_of(PROB)
        inst = DeadlineInstance(
            PROB, (3, 1), (3, 1), DeadlineSpec(DeadlineKind.NONE)
        )
        assert not lang.contains(encode_instance(inst))

    def test_closure_with_itself(self):
        """L(Π) ∪ L(Π) = L(Π) pointwise (sanity of the predicate)."""
        lang = language_of(PROB)
        good = encode_instance(
            DeadlineInstance(PROB, (2, 1), (1, 2), DeadlineSpec(DeadlineKind.NONE))
        )
        union = lang | lang
        assert union.contains(good) == lang.contains(good)
