"""Tests for repro.txn.protocol — the timed 2PC/3PC simulator."""

import pytest

from repro.txn import (
    PROTOCOLS,
    TxnConfig,
    atomicity_ok,
    decided_within,
    run_many,
    run_transaction,
)

# Small delays keep the derived deadlines (and so the compiled
# automata the property tests build) tight; semantics are unchanged.
CALM = TxnConfig(n_participants=3, d_lo=1, d_hi=2)
CRASHY = TxnConfig(
    n_participants=3,
    d_lo=1,
    d_hi=2,
    abort_vote_rate=0.1,
    participant_crash_rate=0.25,
    coordinator_crash_rate=0.3,
)


class TestConfig:
    def test_derived_deadlines_are_ordered(self):
        for proto in PROTOCOLS:
            assert CALM.happy_deadline(proto) < CALM.recovery_deadline(proto)
            assert CALM.recovery_deadline(proto) < CALM.report_at(proto)
            assert CALM.decision_timeout(proto) < CALM.recovery_start(proto)

    def test_3pc_budgets_extend_2pc(self):
        assert CALM.decision_timeout("3pc") > CALM.decision_timeout("2pc")
        assert CALM.report_at("3pc") > CALM.report_at("2pc")

    @pytest.mark.parametrize(
        "bad",
        [
            dict(n_participants=0),
            dict(d_lo=-1),
            dict(d_lo=3, d_hi=2),
            dict(abort_vote_rate=1.5),
            dict(participant_crash_rate=-0.1),
            dict(loss_rate=2.0),
            dict(extra_delay=(3, 1)),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            TxnConfig(**bad)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_transaction("1pc", CALM, 0)


class TestFaultFree:
    def test_2pc_commits_unanimously_and_fast(self):
        for seed in range(10):
            run = run_transaction("2pc", CALM, seed)
            assert run.outcome == "commit"
            assert atomicity_ok(run)
            within = decided_within(run, CALM.happy_deadline("2pc"))
            assert all(within.values())
            assert all(run.alive(p) for p in run.processes)

    def test_3pc_commits_through_precommit_round(self):
        run = run_transaction("3pc", CALM, 0)
        assert run.outcome == "commit"
        symbols = [s for s, _t in run.events["C"]]
        # The coordinator's round trip in protocol order.
        assert symbols.index("send_prepare") < symbols.index("send_precommit")
        assert symbols.index("send_precommit") < symbols.index("commit")
        ready = [s for s in symbols if s == "recv_ready"]
        assert len(ready) == CALM.n_participants

    def test_unanimous_no_vote_aborts(self):
        cfg = TxnConfig(n_participants=3, d_lo=1, d_hi=2, abort_vote_rate=1.0)
        for proto in PROTOCOLS:
            run = run_transaction(proto, cfg, 3)
            assert run.outcome == "abort"
            assert all(dec[0] == "abort" for dec in run.decisions.values())

    def test_handshake_word_is_monotone(self):
        for proto in PROTOCOLS:
            run = run_transaction(proto, CALM, 5)
            word = run.handshake_word()
            times = [t for _s, t in word.prefix]
            assert times == sorted(times)


class TestDeterminism:
    def test_same_seed_same_run(self):
        for proto in PROTOCOLS:
            a = run_transaction(proto, CRASHY, 17)
            b = run_transaction(proto, CRASHY, 17)
            assert a.events == b.events
            assert a.decisions == b.decisions
            assert a.crashed == b.crashed
            assert a.outcome == b.outcome

    def test_seeds_vary_outcomes(self):
        outcomes = {run_transaction("2pc", CRASHY, s).outcome for s in range(40)}
        assert len(outcomes) > 1


class TestFailureSemantics:
    def test_crash_only_3pc_is_atomic_and_nonblocking(self):
        # The 3PC guarantee the protocol was invented for: with crashes
        # but no message loss, every surviving process decides, and no
        # two processes decide differently.
        cfg = TxnConfig(
            n_participants=3,
            d_lo=1,
            d_hi=2,
            participant_crash_rate=0.3,
            coordinator_crash_rate=0.4,
        )
        crashes = 0
        for run in run_many("3pc", cfg, list(range(60))):
            assert atomicity_ok(run), run.seed
            crashes += sum(1 for t in run.crashed.values() if t is not None)
            for p in run.processes:
                if run.alive(p):
                    assert run.decisions[p] is not None, (run.seed, p)
            # Never blocked (a survivor stuck undecided) and never
            # mixed; "stalled" is allowed only when nobody survived.
            assert run.outcome not in ("blocked", "mixed")
            if run.outcome == "stalled":
                assert not any(run.alive(p) for p in run.processes)
        assert crashes > 0  # the sweep actually injected failures

    def test_2pc_coordinator_crash_can_block(self):
        cfg = TxnConfig(
            n_participants=3, d_lo=1, d_hi=2, coordinator_crash_rate=0.8
        )
        runs = run_many("2pc", cfg, list(range(60)))
        blocked = [r for r in runs for _ in [0] if r.outcome == "blocked"]
        assert blocked, "no blocking run in the sweep"
        for run in blocked:
            # Blocked ⟺ some survivor is uncertain; atomicity still holds.
            assert atomicity_ok(run)
            undecided = [
                p
                for p in run.processes
                if run.alive(p) and run.decisions[p] is None
            ]
            assert undecided

    def test_crashed_processes_stop_recording(self):
        cfg = TxnConfig(n_participants=3, d_lo=1, d_hi=2, participant_crash_rate=1.0)
        run = run_transaction("2pc", cfg, 2)
        for p, t_crash in run.crashed.items():
            if t_crash is None:
                continue
            assert all(t <= t_crash for _s, t in run.events[p])

    def test_message_loss_is_counted(self):
        cfg = TxnConfig(n_participants=3, d_lo=1, d_hi=2, loss_rate=0.3)
        runs = run_many("2pc", cfg, list(range(20)))
        assert sum(r.messages["lost"] for r in runs) > 0
        assert all(r.messages["sent"] >= r.messages["lost"] for r in runs)


class TestWords:
    def test_decision_word_tails(self):
        run = run_transaction("2pc", CALM, 0)
        adv = run.decision_word("P1", tail="advancing")
        frozen = run.decision_word("P1", tail="frozen")
        assert adv.shift == 1 and frozen.shift == 0
        assert adv.prefix == frozen.prefix
        assert adv.prefix[0][0] in ("commit", "abort")
        with pytest.raises(ValueError):
            run.decision_word("P1", tail="nope")

    def test_undecided_process_reads_none(self):
        cfg = TxnConfig(
            n_participants=3, d_lo=1, d_hi=2, coordinator_crash_rate=0.8
        )
        blocked = next(
            r
            for r in run_many("2pc", cfg, list(range(60)))
            if r.outcome == "blocked"
        )
        p = next(
            p
            for p in blocked.processes
            if blocked.alive(p) and blocked.decisions[p] is None
        )
        word = blocked.decision_word(p)
        assert word.prefix == (("none", blocked.report_at),)

    def test_process_words_are_monotone(self):
        for proto in PROTOCOLS:
            run = run_transaction(proto, CRASHY, 9)
            for p in run.processes:
                word = run.process_word(p)
                times = [t for _s, t in word.prefix]
                assert times == sorted(times)
