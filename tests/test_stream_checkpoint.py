"""Tests for repro.stream.checkpoint — snapshot/resume round-trips."""

import json

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm
from repro.stream import (
    Monitor,
    SessionMux,
    StreamVerdict,
    TBAMonitor,
    checkpoint,
    checkpoint_mux,
    load_json,
    restore,
    restore_mux,
    save_json,
)


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def make_parity_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


def drive_both(a, b, events):
    for symbol, t in events:
        va = a.ingest(symbol, t)
        vb = b.ingest(symbol, t)
        assert va is vb


class TestTBASnapshots:
    def test_round_trip_resumes_identically(self):
        tba = bounded_gap_tba()
        original = TBAMonitor(tba, lateness=2)
        for t in (1, 2, 4):
            original.ingest("a", t)
        snap = checkpoint(original)
        resumed = restore(snap, tba=tba)
        assert resumed.verdict is original.verdict
        assert resumed.configs == original.configs
        assert resumed.prev_t == original.prev_t
        assert resumed.accept_visits == original.accept_visits
        assert resumed.events_ingested == original.events_ingested
        # the resumed monitor and the original agree on the future,
        # including the buffered tail and a later guard violation
        drive_both(original, resumed, [("a", 5), ("a", 6), ("a", 20)])
        # the gap of 14 rejects once the buffered tail is applied
        assert original.flush() is StreamVerdict.REJECTED
        assert resumed.flush() is StreamVerdict.REJECTED

    def test_snapshot_carries_the_reorder_buffer(self):
        tba = bounded_gap_tba(10)
        original = TBAMonitor(tba, lateness=5)
        original.ingest("a", 8)
        original.ingest("a", 6)  # buffered: watermark is 3
        assert original.pending == 2
        resumed = restore(checkpoint(original), tba=tba)
        assert resumed.pending == 2
        assert resumed.flush() is original.flush()
        assert resumed.prev_t == original.prev_t

    def test_snapshot_is_json_serializable(self):
        monitor = TBAMonitor(bounded_gap_tba())
        monitor.ingest("a", 1)
        text = json.dumps(checkpoint(monitor))
        assert "tba" in text

    def test_save_and_load_json(self, tmp_path):
        monitor = TBAMonitor(bounded_gap_tba())
        monitor.ingest("a", 1)
        path = str(tmp_path / "snap.json")
        save_json(path, checkpoint(monitor))
        resumed = restore(load_json(path), tba=bounded_gap_tba())
        assert resumed.verdict is monitor.verdict
        assert resumed.configs == monitor.configs

    def test_restore_requires_the_automaton(self):
        snap = checkpoint(TBAMonitor(bounded_gap_tba()))
        with pytest.raises(ValueError, match="needs tba"):
            restore(snap)


class TestMachineSnapshots:
    def events(self):
        return [(3, 0), (1, 1), (1, 2)]

    def test_round_trip_by_replay(self):
        original = Monitor(make_parity_acceptor(), keep_history=True)
        for symbol, t in self.events():
            original.ingest(symbol, t)
        snap = checkpoint(original)
        resumed = restore(snap, acceptor=make_parity_acceptor())
        assert resumed.verdict is original.verdict
        assert resumed.f_count == original.f_count
        assert resumed.events_released == original.events_released
        assert resumed.history == original.history
        # one more symbol decides the parity for both alike
        drive_both(original, resumed, [(1, 3)])
        assert original.verdict is resumed.verdict
        assert original.verdict is StreamVerdict.REJECTED  # 1+1+1 is odd

    def test_checkpoint_requires_history(self):
        monitor = Monitor(make_parity_acceptor())
        with pytest.raises(ValueError, match="keep_history"):
            checkpoint(monitor)

    def test_restore_requires_the_acceptor(self):
        monitor = Monitor(make_parity_acceptor(), keep_history=True)
        with pytest.raises(ValueError, match="needs acceptor"):
            restore(checkpoint(monitor))


class TestGuards:
    def test_non_literal_symbols_refuse_to_serialize(self):
        monitor = TBAMonitor(bounded_gap_tba(), lateness=100)
        monitor._heap.append((5, 0, object()))
        with pytest.raises(ValueError, match="literal-evaluable"):
            checkpoint(monitor)

    def test_unknown_version_rejected(self):
        snap = checkpoint(TBAMonitor(bounded_gap_tba()))
        snap["version"] = 99
        with pytest.raises(ValueError, match="version"):
            restore(snap, tba=bounded_gap_tba())

    def test_unknown_monitor_type_rejected(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            checkpoint(object())


class TestMuxSnapshots:
    def test_round_trip_restores_every_session(self):
        tba = bounded_gap_tba()
        mux = SessionMux(tba, lateness=1)
        mux.ingest("alpha", "a", 1)
        mux.ingest("alpha", "a", 2)
        mux.ingest("beta", "a", 1)
        mux.ingest("beta", "a", 10)  # beta is doomed
        mux.ingest("beta", "a", 11)
        snap = checkpoint_mux(mux)
        fresh = SessionMux(tba, lateness=1)
        restored = restore_mux(snap, fresh, tba=tba)
        assert restored is fresh
        assert sorted(restored.active) == ["alpha", "beta"]
        assert restored.verdicts() == mux.verdicts()
        assert restored.verdicts()["beta"] is StreamVerdict.REJECTED
        assert restored.stats() == mux.stats()
        # the restored sessions keep monitoring
        assert restored.ingest("alpha", "a", 3) is mux.ingest("alpha", "a", 3)

    def test_restore_needs_an_empty_mux(self):
        tba = bounded_gap_tba()
        mux = SessionMux(tba)
        mux.ingest("s", "a", 1)
        snap = checkpoint_mux(mux)
        with pytest.raises(ValueError, match="empty mux"):
            restore_mux(snap, mux, tba=tba)

    def test_mux_snapshot_survives_json(self, tmp_path):
        tba = bounded_gap_tba()
        mux = SessionMux(tba)
        mux.ingest("s", "a", 1)
        path = str(tmp_path / "mux.json")
        save_json(path, checkpoint_mux(mux))
        restored = restore_mux(load_json(path), SessionMux(tba), tba=tba)
        assert restored.verdicts() == {"s": StreamVerdict.ACCEPTING}

    def test_wrong_kind_rejected(self):
        snap = checkpoint(TBAMonitor(bounded_gap_tba()))
        with pytest.raises(ValueError, match="not a mux snapshot"):
            restore_mux(snap, SessionMux(bounded_gap_tba()), tba=bounded_gap_tba())
