"""Differential suite: compiled TBA stepping vs the interpreter.

The compiled path (`src/repro/stream/compiled.py`) is only allowed to
exist because it is verdict-identical to the interpreted one.  These
tests pin that, adversarially: random timed words (including foreign
symbols and guard violations) through both `TBAMonitor` paths event by
event, checkpoints taken mid-stream and restored across paths, the
bulk `ingest_many` scan against the scalar loop, the mux's vectorized
`ingest_batch` against scalar mux ingestion, lasso acceptance against
`TimedBuchiAutomaton.accepts_lasso`, every fallback gate, and the
one-analysis-build / one-compile-per-language cache invariants.

The CI stream-smoke job runs this file twice — compiled path active
and with ``REPRO_STREAM_COMPILED=0`` — so the fallback really is the
same runtime, not a separate code path rotting in the dark.
"""

import random

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import clear_caches
from repro.kernel import Le
from repro.obs import install, uninstall
from repro.stream import (
    SessionMux,
    StreamVerdict,
    TBAAnalysis,
    TBAMonitor,
    analysis_for,
    checkpoint,
    checkpoint_mux,
    compilation_enabled,
    compiled_for,
    restore,
    restore_mux,
)
from repro.stream import compiled as compiled_mod

from test_stream_monitor import TBA_FAMILY, bounded_gap_tba, random_lasso

needs_compiled = pytest.mark.skipif(
    not compilation_enabled(),
    reason="compiled stepping disabled (numpy absent or REPRO_STREAM_COMPILED=0)",
)


def nondet_tba():
    """Nondeterministic TBA: on 'a' state s may stay or move to t."""
    return TimedBuchiAutomaton(
        "ab",
        ["s", "t", "u"],
        "s",
        [
            TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", 3)),
            TimedTransition.make("s", "t", "a", resets=[], guard=Le("x", 3)),
            TimedTransition.make("t", "u", "b", resets=["x"], guard=Le("x", 5)),
            TimedTransition.make("u", "u", "b", resets=["x"], guard=Le("x", 2)),
            TimedTransition.make("u", "s", "a", resets=["x"], guard=Le("x", 2)),
        ],
        ["x"],
        ["u"],
    )


CORPUS = TBA_FAMILY + [nondet_tba()]


def random_stream(rng, tba, n, foreign=True):
    """A monotone random event stream, with occasional foreign symbols."""
    symbols = sorted(tba.alphabet)
    if foreign:
        symbols = symbols + ["?not-in-alphabet"]
    t = 0
    out = []
    for _ in range(n):
        t += rng.randint(0, 4)
        out.append((rng.choice(symbols), t))
    return out


def monitor_state(m):
    """Everything observable about a monitor that must agree across paths."""
    return (
        m.verdict,
        m.configs,
        m.prev_t,
        m.max_seen,
        m.events_ingested,
        m.events_released,
        m.late_events,
        m.accept_visits,
        m.verdict_flips,
        m._green_locked,
        m._seq,
    )


# -- event-by-event differential -------------------------------------------

class TestDifferentialStepping:
    @needs_compiled
    @pytest.mark.parametrize("ti", range(len(CORPUS)))
    def test_random_streams_verdict_identical(self, ti):
        tba = CORPUS[ti]
        analysis = analysis_for(tba)
        assert compiled_for(analysis) is not None
        for seed in range(20):
            rng = random.Random(7000 + 31 * ti + seed)
            interp = TBAMonitor(tba, analysis=analysis, compiled=False)
            comp = TBAMonitor(tba, analysis=analysis, compiled=True)
            assert not interp.compiled and comp.compiled
            for symbol, t in random_stream(rng, tba, 60):
                vi = interp.ingest(symbol, t)
                vc = comp.ingest(symbol, t)
                assert vi is vc, (ti, seed, symbol, t)
                assert interp.configs == comp.configs, (ti, seed, symbol, t)
            assert monitor_state(interp) == monitor_state(comp)

    @needs_compiled
    def test_nondeterministic_path_really_is_nondeterministic(self):
        comp = compiled_for(analysis_for(nondet_tba()))
        assert comp is not None and not comp.deterministic
        assert comp.table is None and comp.succ_int is not None

    @needs_compiled
    @pytest.mark.parametrize("ti", range(len(CORPUS)))
    def test_absorbing_rejection_early_stop(self, ti):
        """Once REJECTED both paths freeze run state and stay REJECTED."""
        tba = CORPUS[ti]
        analysis = analysis_for(tba)
        interp = TBAMonitor(tba, analysis=analysis, compiled=False)
        comp = TBAMonitor(tba, analysis=analysis, compiled=True)
        for m in (interp, comp):
            m.ingest("?kill", 1)  # foreign symbol murders every run
            assert m.verdict is StreamVerdict.REJECTED and m.absorbed
            frozen_prev_t = m.prev_t
            for t in (2, 5, 9):
                assert m.ingest("a", t) is StreamVerdict.REJECTED
            assert m.prev_t == frozen_prev_t  # run state frozen
            assert m.max_seen == 9  # but the watermark still advances
        assert monitor_state(interp) == monitor_state(comp)

    @needs_compiled
    @pytest.mark.parametrize("ti", range(len(CORPUS)))
    def test_checkpoint_restore_mid_stream_across_paths(self, ti):
        """A snapshot taken on either path resumes on either path."""
        tba = CORPUS[ti]
        analysis = analysis_for(tba)
        rng = random.Random(4200 + ti)
        events = random_stream(rng, tba, 40)
        half, rest = events[:20], events[20:]
        interp = TBAMonitor(tba, analysis=analysis, compiled=False)
        comp = TBAMonitor(tba, analysis=analysis, compiled=True)
        for symbol, t in half:
            interp.ingest(symbol, t)
            comp.ingest(symbol, t)
        resumed = [
            restore(checkpoint(comp), tba=tba, analysis=analysis),
            restore(checkpoint(interp), tba=tba, analysis=analysis),
        ]
        assert all(r.configs == comp.configs for r in resumed)
        for symbol, t in rest:
            verdicts = {m.ingest(symbol, t) for m in [interp, comp] + resumed}
            assert len(verdicts) == 1, (ti, symbol, t)
        for r in resumed:
            assert monitor_state(r) == monitor_state(comp)

    @needs_compiled
    def test_foreign_snapshot_drops_to_interpreter(self):
        """Assigning configs outside the compiled universe falls back
        gracefully instead of raising (checkpoint compatibility)."""
        tba = bounded_gap_tba(2)
        m = TBAMonitor(tba)
        assert m.compiled
        alien = frozenset({("no-such-state", (0,))})
        m.configs = alien
        assert not m.compiled
        assert m.configs == alien


# -- bulk scan vs scalar loop ----------------------------------------------

class TestIngestMany:
    @needs_compiled
    @pytest.mark.parametrize("ti", range(len(CORPUS)))
    def test_ingest_many_equals_scalar_loop(self, ti):
        tba = CORPUS[ti]
        analysis = analysis_for(tba)
        for seed in range(10):
            rng = random.Random(9900 + 17 * ti + seed)
            events = random_stream(rng, tba, 80)
            bulk = TBAMonitor(tba, analysis=analysis)
            loop = TBAMonitor(tba, analysis=analysis)
            bulk.ingest_many(events)
            for symbol, t in events:
                loop.ingest(symbol, t)
            assert monitor_state(bulk) == monitor_state(loop)

    @needs_compiled
    def test_ingest_many_late_events_delegate_to_scalar_policy(self):
        tba = bounded_gap_tba(2)
        events = [("a", 1), ("a", 2), ("a", 1), ("a", 3)]  # one late
        bulk = TBAMonitor(tba, late_policy="drop")
        loop = TBAMonitor(tba, late_policy="drop")
        bulk.ingest_many(events)
        for symbol, t in events:
            loop.ingest(symbol, t)
        assert bulk.late_events == 1
        assert monitor_state(bulk) == monitor_state(loop)

    def test_generic_ingest_many_on_interpreted_path(self):
        tba = bounded_gap_tba(2)
        events = [("a", t) for t in range(1, 30)]
        bulk = TBAMonitor(tba, compiled=False)
        loop = TBAMonitor(tba, compiled=False)
        bulk.ingest_many(events)
        for symbol, t in events:
            loop.ingest(symbol, t)
        assert monitor_state(bulk) == monitor_state(loop)


# -- mux batch stepping ----------------------------------------------------

class TestMuxBatch:
    @pytest.mark.parametrize("ti", range(len(CORPUS)))
    def test_ingest_batch_equals_scalar_mux(self, ti):
        """Batched ingestion (waves + per-session bulk + scalar
        fallback for late traffic) matches one-at-a-time ingestion."""
        tba = CORPUS[ti]
        rng = random.Random(1300 + ti)
        events = []
        clocks = {}
        for _ in range(1500):
            name = f"s{rng.randrange(29)}"
            t = max(0, clocks.get(name, 0) + rng.randint(-1, 4))  # some late
            clocks[name] = max(clocks.get(name, 0), t)
            symbol = rng.choice(sorted(tba.alphabet) + ["?foreign"])
            events.append((name, symbol, t))
        batched = SessionMux(tba, late_policy="drop")
        scalar = SessionMux(tba, late_policy="drop", compiled=False)
        i = 0
        while i < len(events):
            n = rng.randint(1, 200)
            batched.ingest_batch(events[i : i + n])
            i += n
        for name, symbol, t in events:
            scalar.ingest(name, symbol, t)
        assert batched.verdicts() == scalar.verdicts()
        assert batched.stats() == scalar.stats()
        for name in batched.active:
            assert monitor_state(batched.monitor(name)) == monitor_state(
                scalar.monitor(name)
            )

    @needs_compiled
    def test_deep_slices_take_the_bulk_path(self):
        """Few sessions × many events routes through ingest_many and
        still matches (the heuristic's other arm)."""
        tba = bounded_gap_tba(2)
        events = [(f"s{i % 2}", "a", t) for t, i in enumerate(range(200))]
        batched = SessionMux(tba)
        scalar = SessionMux(tba, compiled=False)
        assert batched.ingest_batch(events) == len(events)
        for name, symbol, t in events:
            scalar.ingest(name, symbol, t)
        assert batched.verdicts() == scalar.verdicts()

    def test_machine_factory_mux_falls_back_to_scalar(self):
        """A mux over non-TBA monitors accepts ingest_batch (all
        events routed through the scalar path)."""
        mux = SessionMux(
            monitor_factory=lambda: TBAMonitor(bounded_gap_tba(1))
        )
        assert mux._tba_compiled is None
        assert mux.ingest_batch([("s0", "a", 1), ("s1", "a", 1)]) == 0
        assert len(mux) == 2


# -- lasso acceptance ------------------------------------------------------

class TestAcceptsLasso:
    @needs_compiled
    @pytest.mark.parametrize("ti", range(len(CORPUS)))
    def test_agrees_with_interpreter(self, ti):
        tba = CORPUS[ti]
        comp = compiled_for(analysis_for(tba))
        rng = random.Random(880 + ti)
        checked = 0
        for _ in range(40):
            word = random_lasso(rng, tba.alphabet)
            assert comp.accepts_lasso(word) == tba.accepts_lasso(word)
            checked += 1
        assert checked == 40

    @needs_compiled
    def test_rejects_non_lasso_words(self):
        from repro.words import TimedWord

        comp = compiled_for(analysis_for(bounded_gap_tba(1)))
        with pytest.raises(ValueError):
            comp.accepts_lasso(TimedWord.finite([("a", 1)]))


# -- cache invariants ------------------------------------------------------

class TestOneBuildPerLanguage:
    def test_one_analysis_build_across_mux_lifecycle(self):
        """open / evict / reopen / close / checkpoint / restore on one
        language trigger exactly one TBAAnalysis construction."""
        clear_caches()
        tba = bounded_gap_tba(2)
        inst = install()
        try:
            mux = SessionMux(tba, idle_ttl=5)
            for i in range(15):
                mux.ingest(f"s{i}", "a", 1)
            mux.close("s0")
            assert mux.evict_idle(now=100) != []
            for i in range(15):
                mux.ingest(f"s{i}", "a", 200)
            snap = checkpoint_mux(mux)
            mux2 = SessionMux(tba, idle_ttl=5)
            restore_mux(snap, mux2, tba=tba)
            assert mux2.verdicts() == mux.verdicts()
            builds = inst.registry.counter("stream.analysis_builds").value
            assert builds == 1, f"expected 1 analysis build, saw {builds}"
        finally:
            uninstall()

    @needs_compiled
    def test_one_compile_per_language(self):
        clear_caches()
        tba = bounded_gap_tba(2)
        inst = install()
        try:
            analysis = analysis_for(tba)
            first = compiled_for(analysis)
            again = compiled_for(analysis)
            assert first is not None and first is again
            # the mux and every monitor share that same artifact
            mux = SessionMux(tba)
            mux.ingest("s0", "a", 1)
            assert mux._tba_compiled is first
            assert mux.monitor("s0")._compiled is first
            reg = inst.registry
            built = reg.counter("stream.compile").labels(outcome="built").value
            assert built == 1
            assert reg.counter("stream.compile").labels(outcome="cached").value >= 1
        finally:
            uninstall()


# -- fallback gates --------------------------------------------------------

class TestFallbacks:
    def test_compiled_false_forces_interpreter(self):
        m = TBAMonitor(bounded_gap_tba(1), compiled=False)
        assert not m.compiled
        assert m.ingest("a", 1) is StreamVerdict.ACCEPTING

    def test_env_toggle_disables_compilation(self, monkeypatch):
        monkeypatch.setenv(compiled_mod.ENV_TOGGLE, "0")
        assert not compilation_enabled()
        tba = bounded_gap_tba(1)
        analysis = TBAAnalysis(tba)
        assert compiled_for(analysis) is None
        assert not TBAMonitor(tba, analysis=analysis).compiled
        with pytest.raises(ValueError):
            TBAMonitor(tba, analysis=analysis, compiled=True)

    def test_numpy_absent_falls_back(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "NUMPY", None)
        tba = bounded_gap_tba(1)
        analysis = TBAAnalysis(tba)
        inst = install()
        try:
            assert compiled_for(analysis) is None
            reason = (
                inst.registry.counter("stream.compile_fallbacks")
                .labels(reason="numpy-absent")
                .value
            )
            assert reason == 1
        finally:
            uninstall()
        m = TBAMonitor(tba, analysis=analysis)
        assert not m.compiled
        assert m.ingest("a", 1) is StreamVerdict.ACCEPTING

    @needs_compiled
    def test_bounds_fallback_is_cached_on_the_analysis(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "MAX_CONFIGS", 0)
        analysis = TBAAnalysis(bounded_gap_tba(1))  # fresh, not shared
        inst = install()
        try:
            assert compiled_for(analysis) is None
            assert compiled_for(analysis) is None  # cached None, no rebuild
            reason = (
                inst.registry.counter("stream.compile_fallbacks")
                .labels(reason="bounds")
                .value
            )
            assert reason == 2
        finally:
            uninstall()
        assert not TBAMonitor(analysis.tba, analysis=analysis).compiled

    def test_fallback_monitor_still_agrees(self, monkeypatch):
        """The point of the gates: numpy-absent verdicts are the same."""
        monkeypatch.setattr(compiled_mod, "NUMPY", None)
        tba = nondet_tba()
        analysis = TBAAnalysis(tba)
        fallback = TBAMonitor(tba, analysis=analysis)
        reference = TBAMonitor(tba, analysis=analysis, compiled=False)
        rng = random.Random(5)
        for symbol, t in random_stream(rng, tba, 50):
            assert fallback.ingest(symbol, t) is reference.ingest(symbol, t)
