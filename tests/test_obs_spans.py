"""Span nesting, deterministic ordering, thread locality, and limits."""

import threading

from repro.obs import SpanRecorder


class FakeClock:
    """Deterministic nanosecond clock: +1000 ns per reading."""

    def __init__(self):
        self.t = 0

    def __call__(self) -> int:
        self.t += 1000
        return self.t


def recorder():
    return SpanRecorder(clock=FakeClock())


class TestNesting:
    def test_depths_and_parents(self):
        rec = recorder()
        with rec.span("outer") as outer:
            with rec.span("mid") as mid:
                with rec.span("inner") as inner:
                    pass
        assert (outer.depth, mid.depth, inner.depth) == (0, 1, 2)
        assert inner.parent_seq == mid.seq
        assert mid.parent_seq == outer.seq
        assert outer.parent_seq is None

    def test_sibling_spans_share_parent(self):
        rec = recorder()
        with rec.span("outer") as outer:
            with rec.span("a") as a:
                pass
            with rec.span("b") as b:
                pass
        assert a.parent_seq == b.parent_seq == outer.seq
        assert a.depth == b.depth == 1

    def test_open_depth_tracks_stack(self):
        rec = recorder()
        assert rec.open_depth() == 0
        with rec.span("s"):
            assert rec.open_depth() == 1
        assert rec.open_depth() == 0

    def test_end_closes_dangling_children(self):
        rec = recorder()
        outer = rec.begin("outer")
        rec.begin("leaked")
        rec.end(outer)  # must close the leaked child too
        assert rec.open_depth() == 0
        assert all(s.end_ns is not None for s in rec.completed())


class TestDeterminism:
    def run_workload(self):
        rec = recorder()
        with rec.span("run", until=100):
            for i in range(3):
                with rec.span("step", i=i):
                    pass
        return [
            (s.name, s.seq, s.depth, s.start_ns, s.end_ns, tuple(sorted(s.args.items())))
        for s in rec.completed()]

    def test_identical_runs_identical_spans(self):
        assert self.run_workload() == self.run_workload()

    def test_completed_is_start_ordered(self):
        rec = recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        # inner *finishes* first but outer *started* first
        assert [s.name for s in rec.completed()] == ["outer", "inner"]
        seqs = [s.seq for s in rec.completed()]
        assert seqs == sorted(seqs)

    def test_durations_positive_with_fake_clock(self):
        rec = recorder()
        with rec.span("s"):
            pass
        (s,) = rec.completed()
        assert s.duration_ns == 1000


class TestThreads:
    def test_stacks_are_thread_local(self):
        rec = SpanRecorder(clock=FakeClock())
        done = threading.Event()
        depths = {}

        def worker():
            with rec.span("worker-span"):
                depths["worker"] = rec.open_depth()
            done.set()

        with rec.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            done.wait(5)
            t.join(5)
            depths["main"] = rec.open_depth()
        # each thread saw only its own open span
        assert depths == {"worker": 1, "main": 1}
        tids = {s.name: s.tid for s in rec.spans}
        assert tids["main-span"] != tids["worker-span"]

    def test_thread_numbering_is_small_ints(self):
        rec = recorder()
        with rec.span("s") as s:
            pass
        assert s.tid == 0


class TestLimit:
    def test_drops_beyond_limit(self):
        rec = SpanRecorder(clock=FakeClock(), limit=2)
        for i in range(5):
            with rec.span(f"s{i}"):
                pass
        assert len(rec) == 2
        assert rec.dropped == 3

    def test_clear(self):
        rec = recorder()
        with rec.span("s"):
            pass
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0
