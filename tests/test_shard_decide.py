"""Tests for the ``backend="shards"`` decide path.

The contract under test: the persistent shard pool returns reports
**bit-identical** to the serial loop (verdicts, f-counts, evidence),
stays warm across calls, falls back with a *recorded reason* when the
language cannot cross a pipe, and survives a SIGKILLed pool worker.
"""

import os
import signal

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import decide_many, decide_many_resilient
from repro.kernel import Le
from repro.obs import instrumented
from repro.shard import shared_pool, shutdown_pool
from repro.shard.pool import pool_is_warm
from repro.words import TimedWord


@pytest.fixture(autouse=True)
def fresh_pool():
    """Every test starts cold and leaves nothing resident."""
    shutdown_pool()
    yield
    shutdown_pool()


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def make_words(n):
    words = []
    for i in range(n):
        if i % 2 == 0:
            words.append(TimedWord.lasso([], [("a", 1)], shift=1))
        else:
            words.append(TimedWord.lasso([("a", 1), ("a", 6)], [("a", 7)], shift=1))
    return words


def fingerprint(reports):
    return [(r.verdict, r.f_count, r.evidence) for r in reports]


class Unpicklable:
    """A valid acceptor whose closure cannot cross a pipe."""

    def __init__(self):
        from repro.engine.batch import compiled_tba

        base = compiled_tba(bounded_gap_tba())
        self._count = lambda word, horizon: base.count_f(word, horizon)

    def count_f(self, word, horizon):
        return self._count(word, horizon)


def test_shards_backend_is_bit_identical_to_serial():
    tba, words = bounded_gap_tba(), make_words(200)
    serial = decide_many(tba, words, horizon=300, backend="serial")
    sharded = decide_many(tba, words, horizon=300, workers=2, backend="shards")
    assert fingerprint(sharded) == fingerprint(serial)


def test_second_call_reuses_the_warm_pool():
    tba, words = bounded_gap_tba(), make_words(80)
    decide_many(tba, words, horizon=200, workers=2, backend="shards")
    assert pool_is_warm()
    router = shared_pool()
    pids = {s.proc.pid for s in router._shards.values()}
    decide_many(tba, words, horizon=200, workers=2, backend="shards")
    assert {s.proc.pid for s in router._shards.values()} == pids


def test_unshippable_acceptor_falls_back_with_recorded_reason():
    words = make_words(70)
    serial = decide_many(
        Unpicklable(), words, horizon=200, strategy="f-rate", backend="serial"
    )
    with instrumented() as inst:
        fell_back = decide_many(
            Unpicklable(),
            words,
            horizon=200,
            strategy="f-rate",
            workers=2,
            backend="shards",
        )
    assert fingerprint(fell_back) == fingerprint(serial)
    counter = inst.registry.counter("engine.backend_fallbacks")
    assert counter.labels(reason="unshippable-acceptor").value == 1
    assert not pool_is_warm()  # nothing was spun up for the fallback


def test_auto_routes_small_batches_to_serial():
    tba, words = bounded_gap_tba(), make_words(8)
    with instrumented() as inst:
        decide_many(tba, words, horizon=200, workers=4, backend="auto")
    fallbacks = inst.registry.counter("engine.backend_fallbacks")
    assert fallbacks.labels(reason="small-batch").value == 1
    assert inst.registry.counter("engine.batches").labels(mode="serial").value == 1
    assert not pool_is_warm()


def test_auto_prefers_a_warm_pool_for_large_batches():
    tba, words = bounded_gap_tba(), make_words(300)
    shared_pool(2)  # pre-warm
    with instrumented() as inst:
        auto = decide_many(tba, words, horizon=200, workers=2, backend="auto")
    assert inst.registry.counter("engine.batches").labels(mode="shards").value == 1
    serial = decide_many(tba, words, horizon=200, backend="serial")
    assert fingerprint(auto) == fingerprint(serial)


def test_invalid_backend_is_rejected():
    with pytest.raises(ValueError, match="backend"):
        decide_many(bounded_gap_tba(), make_words(4), backend="threads")
    with pytest.raises(ValueError, match="backend"):
        decide_many_resilient(bounded_gap_tba(), make_words(4), backend="threads")


def test_pool_survives_a_sigkilled_worker():
    tba, words = bounded_gap_tba(), make_words(200)
    serial = decide_many(tba, words, horizon=300, backend="serial")
    router = shared_pool(2)
    victim = router._shards[router.shard_ids[0]]
    os.kill(victim.proc.pid, signal.SIGKILL)
    victim.proc.join()
    sharded = decide_many(tba, words, horizon=300, workers=2, backend="shards")
    assert fingerprint(sharded) == fingerprint(serial)
    # the pool healed itself back to strength
    assert all(s.proc.is_alive() for s in router._shards.values())


def test_resilient_shards_backend_clean_run():
    tba, words = bounded_gap_tba(), make_words(150)
    serial = decide_many_resilient(tba, words, horizon=250, backend="serial")
    out = decide_many_resilient(
        tba, words, horizon=250, workers=2, backend="shards"
    )
    assert out.mode == "shards"
    assert out.clean
    assert fingerprint(out.reports) == fingerprint(serial.reports)


def test_resilient_shards_heals_sigkill_mid_ladder():
    tba, words = bounded_gap_tba(), make_words(150)
    serial = decide_many_resilient(tba, words, horizon=250, backend="serial")
    router = shared_pool(2)
    victim = router._shards[router.shard_ids[1]]
    os.kill(victim.proc.pid, signal.SIGKILL)
    victim.proc.join()
    out = decide_many_resilient(
        tba, words, horizon=250, workers=2, backend="shards"
    )
    assert out.mode == "shards"
    assert fingerprint(out.reports) == fingerprint(serial.reports)
