"""Tests for the Definition 3.3/3.4 acceptor substrate."""

import pytest

from repro.machine import (
    ACCEPT_SYMBOL,
    InputTape,
    OutputTape,
    RealTimeAlgorithm,
    SpaceLimitExceeded,
    TapeProtocolError,
    Verdict,
    WorkerMonitorAcceptor,
    WorkerSignal,
    WorkingStorage,
)
from repro.kernel import Simulator
from repro.words import TimedWord


class TestInputTape:
    def test_availability_rule(self):
        """A symbol with timestamp τ is not readable before τ."""
        sim = Simulator()
        word = TimedWord.finite([("a", 0), ("b", 5)])
        tape = InputTape(sim, word)
        reads = []

        def reader(sim):
            for _ in range(2):
                pair = yield tape.read()
                reads.append((pair, sim.now))

        sim.process(reader(sim))
        sim.run()
        assert reads == [(("a", 0), 0), (("b", 5), 5)]

    def test_poll_drains_arrived(self):
        sim = Simulator()
        word = TimedWord.finite([("a", 0), ("b", 0), ("c", 9)])
        tape = InputTape(sim, word)
        polled = []

        def poller(sim):
            yield sim.timeout(1)
            polled.extend(tape.poll())

        sim.process(poller(sim))
        sim.run()
        assert polled == [("a", 0), ("b", 0)]

    def test_peek_does_not_consume(self):
        sim = Simulator()
        tape = InputTape(sim, TimedWord.finite([("a", 0)]))
        got = []

        def proc(sim):
            yield sim.timeout(1)
            assert tape.peek_pending() == [("a", 0)]
            assert tape.peek_pending() == [("a", 0)]
            got.append((yield tape.read()))

        sim.process(proc(sim))
        sim.run()
        assert got == [("a", 0)]

    def test_current_symbol_tracks_latest(self):
        sim = Simulator()
        tape = InputTape(sim, TimedWord.finite([("a", 0), ("b", 3)]))
        seen = []

        def proc(sim):
            yield sim.timeout(1)
            seen.append(tape.current_symbol())
            yield sim.timeout(5)
            seen.append(tape.current_symbol())

        sim.process(proc(sim))
        sim.run()
        assert seen == ["a", "b"]

    def test_nonmonotone_word_raises(self):
        sim = Simulator()
        InputTape(sim, TimedWord.finite([("a", 5), ("b", 1)]))
        with pytest.raises(TapeProtocolError):
            sim.run()

    def test_infinite_word_fed_lazily(self):
        sim = Simulator()
        tape = InputTape(sim, TimedWord.lasso([], [("x", 1)], shift=1))
        sim.run(until=10)
        assert tape.arrived_count == 10


class TestOutputTape:
    def test_one_symbol_per_chronon(self):
        sim = Simulator()
        out = OutputTape(sim)
        out.write("f")
        with pytest.raises(TapeProtocolError):
            out.write("f")

    def test_writes_at_distinct_times(self):
        sim = Simulator()
        out = OutputTape(sim)

        def writer(sim):
            for _ in range(3):
                out.write("f")
                yield sim.timeout(1)

        sim.process(writer(sim))
        sim.run()
        assert out.count("f") == 3
        assert out.observed_contents() == [("f", 0), ("f", 1), ("f", 2)]

    def test_can_write_reflects_rule(self):
        sim = Simulator()
        out = OutputTape(sim)
        assert out.can_write()
        out.write("f")
        assert not out.can_write()


class TestWorkingStorage:
    def test_peak_tracking(self):
        st = WorkingStorage()
        st["a"] = 1
        st["b"] = 2
        del st["a"]
        st["c"] = 3
        assert st.used == 2
        assert st.peak == 2
        st["d"] = 4
        assert st.peak == 3

    def test_limit_enforced(self):
        st = WorkingStorage(limit=2)
        st["a"] = 1
        st["b"] = 2
        st["a"] = 99  # overwrite is fine
        with pytest.raises(SpaceLimitExceeded):
            st["c"] = 3

    def test_get_and_contains(self):
        st = WorkingStorage()
        st["k"] = "v"
        assert "k" in st and st.get("k") == "v"
        assert st.get("missing", 0) == 0


class TestRealTimeAlgorithm:
    def test_accept_writes_f_forever(self):
        def prog(ctx):
            sym, _t = yield ctx.input.read()
            ctx.accept()

        alg = RealTimeAlgorithm(prog)
        report = alg.decide(TimedWord.lasso([("a", 0)], [("w", 1)], shift=1))
        assert report.accepted
        assert report.f_count > 5  # the absorbing state keeps writing f

    def test_reject_writes_no_f(self):
        def prog(ctx):
            yield ctx.input.read()
            ctx.reject()

        alg = RealTimeAlgorithm(prog)
        report = alg.decide(TimedWord.lasso([("a", 0)], [("w", 1)], shift=1))
        assert not report.accepted
        assert report.f_count == 0

    def test_undecided_within_horizon(self):
        def prog(ctx):
            while True:
                yield ctx.timeout(1)

        alg = RealTimeAlgorithm(prog)
        report = alg.decide(TimedWord.lasso([], [("w", 1)], shift=1), horizon=50)
        assert report.verdict is Verdict.UNDECIDED

    def test_space_metering_reported(self):
        def prog(ctx):
            for i in range(5):
                ctx.storage[i] = i
            yield ctx.input.read()
            ctx.accept()

        report = RealTimeAlgorithm(prog).decide(
            TimedWord.lasso([("a", 0)], [("w", 1)], shift=1)
        )
        assert report.space_peak == 5

    def test_space_limit_enforced_through_decide(self):
        def prog(ctx):
            for i in range(100):
                ctx.storage[i] = i
            yield ctx.input.read()
            ctx.accept()

        alg = RealTimeAlgorithm(prog, space_limit=10)
        with pytest.raises(SpaceLimitExceeded):
            alg.decide(TimedWord.lasso([("a", 0)], [("w", 1)], shift=1))

    def test_count_f_runs_fixed_horizon(self):
        def prog(ctx):
            while True:
                if ctx.output.can_write():
                    ctx.emit_f()
                yield ctx.timeout(2)

        report = RealTimeAlgorithm(prog).count_f(
            TimedWord.lasso([], [("w", 1)], shift=1), horizon=20
        )
        assert report.f_count == 11  # t = 0, 2, ..., 20

    def test_decided_at_recorded(self):
        def prog(ctx):
            yield ctx.timeout(7)
            ctx.accept()

        report = RealTimeAlgorithm(prog).decide(
            TimedWord.lasso([], [("w", 1)], shift=1)
        )
        assert report.decided_at == 7


class TestWorkerMonitor:
    def test_monitor_imposes_verdict_on_signal(self):
        def worker(ctx, signals):
            yield ctx.timeout(3)
            yield signals.put(WorkerSignal("done", payload=42))

        def decision(ctx, sig):
            return Verdict.ACCEPT if sig.payload == 42 else Verdict.REJECT

        acceptor = WorkerMonitorAcceptor(worker, decision)
        report = acceptor.decide(TimedWord.lasso([], [("w", 1)], shift=1))
        assert report.accepted
        assert report.decided_at == 3

    def test_monitor_can_defer(self):
        """None from the decision keeps monitoring until a later signal."""

        def worker(ctx, signals):
            yield signals.put(WorkerSignal("progress"))
            yield ctx.timeout(5)
            yield signals.put(WorkerSignal("done"))

        def decision(ctx, sig):
            return Verdict.ACCEPT if sig.kind == "done" else None

        report = WorkerMonitorAcceptor(worker, decision).decide(
            TimedWord.lasso([], [("w", 1)], shift=1)
        )
        assert report.accepted and report.decided_at == 5

    def test_signal_timestamps(self):
        stamps = []

        def worker(ctx, signals):
            yield ctx.timeout(4)
            yield signals.put(WorkerSignal("done"))

        def decision(ctx, sig):
            stamps.append(sig.at)
            return Verdict.REJECT

        WorkerMonitorAcceptor(worker, decision).decide(
            TimedWord.lasso([], [("w", 1)], shift=1)
        )
        assert stamps == [4]


class TestGeneratorBackedWords:
    """decide/count_f on functional (non-lasso) words — the arrival-law
    regime of Section 4.2, where the word has no finite description."""

    @staticmethod
    def accept_after(n):
        def prog(ctx):
            total = 0
            for _ in range(n):
                v, _t = yield ctx.input.read()
                total += v
            if total == n:
                ctx.accept()
            else:
                ctx.reject()

        return RealTimeAlgorithm(prog)

    def test_decide_on_functional_word(self):
        # symbol 1 arrives at every chronon i, forever — no lasso form.
        word = TimedWord.functional(lambda i: (1, i))
        report = self.accept_after(6).decide(word, horizon=1_000)
        assert report.accepted
        assert report.decided_at == 5  # sixth symbol arrives at chronon 5
        assert report.f_count > 0

    def test_decide_rejects_on_functional_word(self):
        word = TimedWord.functional(lambda i: (2, i))
        report = self.accept_after(6).decide(word, horizon=1_000)
        assert not report.accepted
        assert report.f_count == 0

    def test_count_f_on_functional_word(self):
        # Quadratic arrival law: datum i arrives at i^2 — genuinely
        # non-periodic timing, still judged over a fixed prefix.
        word = TimedWord.functional(lambda i: (1, i * i))
        report = self.accept_after(4).count_f(word, horizon=100)
        assert report.verdict is Verdict.ACCEPT  # absorbing state reached
        # f flows every chronon from the decision (at 3^2=9) to the horizon
        assert report.f_count > 50
