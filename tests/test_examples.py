"""Smoke tests: every example script runs to completion.

The examples are part of the public contract (README links them); each
carries its own assertions, so exit code 0 means the narrative holds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
