"""Tests for the c-algorithm word encoding and acceptor (§4.2 tail)."""

import pytest

from repro.dataacc import (
    CAlgInstance,
    Correction,
    CorrectingSortSolver,
    PolynomialArrivalLaw,
    calgorithm_acceptor,
    encode_calgorithm,
    make_c_instance,
)
from repro.words import Trilean

LAW = PolynomialArrivalLaw(n=4, k=1.0, gamma=0.0, beta=0.6)
INITIAL = (5, 3, 8, 1)


def corrections(j):
    return Correction(j % 4, j * 10)


class TestEncoding:
    def test_header_layout(self):
        inst = CAlgInstance(LAW, INITIAL, corrections, proposed_output=(1, 3, 5, 8))
        word = encode_calgorithm(inst)
        pairs = word.take(8)
        assert pairs[0] == (("O", 1), 0)
        assert pairs[4] == (("I", 5), 0)
        assert all(t == 0 for _s, t in pairs)

    def test_corrections_announced_by_markers(self):
        inst = CAlgInstance(LAW, INITIAL, corrections, proposed_output=())
        word = encode_calgorithm(inst)
        tail = word.take(16)[4:]
        markers = [p for p in tail if p[0] == "c"]
        corrs = [p for p in tail if isinstance(p[0], tuple) and p[0][0] == "C"]
        assert markers and corrs
        for marker, corr in zip(markers, corrs):
            assert marker[1] <= corr[1]

    def test_word_times_monotone(self):
        inst = CAlgInstance(LAW, INITIAL, corrections, proposed_output=())
        word = encode_calgorithm(inst)
        times = [t for _s, t in word.take(60)]
        assert times == sorted(times)


class TestAcceptor:
    def test_truthful_instance_accepted(self):
        inst = make_c_instance(LAW, INITIAL, corrections, CorrectingSortSolver, horizon=3000)
        assert inst is not None
        rep = calgorithm_acceptor(CorrectingSortSolver).decide(
            encode_calgorithm(inst), horizon=3000
        )
        assert rep.accepted
        assert rep.f_count > 1

    def test_bogus_instance_rejected(self):
        inst = make_c_instance(
            LAW, INITIAL, corrections, CorrectingSortSolver, horizon=3000,
            truthful=False,
        )
        rep = calgorithm_acceptor(CorrectingSortSolver).decide(
            encode_calgorithm(inst), horizon=3000
        )
        assert not rep.accepted
        assert rep.f_count == 0

    def test_solution_is_corrected_not_initial(self):
        """The accepted proposal reflects applied corrections."""
        inst = make_c_instance(LAW, INITIAL, corrections, CorrectingSortSolver, horizon=3000)
        assert inst.proposed_output != tuple(sorted(INITIAL))
        assert list(inst.proposed_output) == sorted(inst.proposed_output)

    def test_diverging_corrections_no_instance(self):
        fast = PolynomialArrivalLaw(n=2, k=4.0, beta=1.0)
        inst = make_c_instance(
            fast, (1, 2), lambda j: Correction(j % 2, j), CorrectingSortSolver,
            horizon=400,
        )
        assert inst is None
