"""Tests for kernel execution tracing."""

import pytest

from repro.kernel import Simulator, Tracer


def two_workers(sim):
    def worker(sim, wid, period):
        for _ in range(3):
            yield sim.timeout(period)

    sim.process(worker(sim, "a", 2), name="worker-a")
    sim.process(worker(sim, "b", 3), name="worker-b")


class TestTracer:
    def test_records_dispatched_events(self):
        sim = Simulator()
        tracer = Tracer(sim)
        two_workers(sim)
        sim.run()
        assert len(tracer) > 0
        assert any(name.startswith("Timeout") for _t, name in tracer.timeline())

    def test_times_are_monotone(self):
        sim = Simulator()
        tracer = Tracer(sim)
        two_workers(sim)
        sim.run()
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_deterministic_traces(self):
        def run():
            sim = Simulator()
            tracer = Tracer(sim)
            two_workers(sim)
            sim.run()
            return tracer.timeline()

        assert run() == run()

    def test_name_filter(self):
        sim = Simulator()
        tracer = Tracer(sim, name_filter=lambda n: n.startswith("init"))
        two_workers(sim)
        sim.run()
        assert all(n.startswith("init") for _t, n in tracer.timeline())
        assert len(tracer) == 2  # the two process boot events

    def test_limit_and_dropped(self):
        sim = Simulator()
        tracer = Tracer(sim, limit=3)
        two_workers(sim)
        sim.run()
        assert len(tracer) == 3
        assert tracer.dropped > 0

    def test_events_at_and_first(self):
        sim = Simulator()
        tracer = Tracer(sim)
        two_workers(sim)
        sim.run()
        at2 = tracer.events_at(2)
        assert at2 and all(r.time == 2 for r in at2)
        first_init = tracer.first("init:worker-a")
        assert first_init is not None and first_init.time == 0

    def test_counts(self):
        sim = Simulator()
        tracer = Tracer(sim)
        two_workers(sim)
        sim.run()
        counts = tracer.counts()
        assert counts.get("Timeout(2)") == 3
        assert counts.get("Timeout(3)") == 3

    def test_single_tracer_per_sim(self):
        sim = Simulator()
        Tracer(sim)
        with pytest.raises(RuntimeError):
            Tracer(sim)

    def test_detach_stops_recording(self):
        sim = Simulator()
        tracer = Tracer(sim)
        two_workers(sim)
        sim.run(until=2)
        n = len(tracer)
        tracer.detach()
        sim.run()
        assert len(tracer) == n

    def test_tracing_does_not_change_behavior(self):
        def run(traced):
            sim = Simulator()
            if traced:
                Tracer(sim)
            out = []

            def proc(sim):
                for i in range(4):
                    yield sim.timeout(i + 1)
                    out.append(sim.now)

            sim.process(proc(sim))
            sim.run()
            return out

        assert run(True) == run(False)
