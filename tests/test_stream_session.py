"""Tests for repro.stream.session — bounded multi-stream fan-in."""

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import compiled_tba
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm
from repro.obs import instrumented
from repro.stream import BackpressureError, SessionMux, StreamVerdict, TBAMonitor
from repro.words import TimedWord


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def make_parity_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


def buffering_mux(**kwargs):
    """A mux whose sessions buffer everything (huge lateness), so the
    reorder heap fills deterministically for backpressure tests."""
    return SessionMux(bounded_gap_tba(), lateness=1_000, **kwargs)


class TestSessionTable:
    def test_sessions_open_on_first_event(self):
        mux = SessionMux(bounded_gap_tba())
        assert mux.ingest("alpha", "a", 1) is StreamVerdict.ACCEPTING
        assert "alpha" in mux
        assert len(mux) == 1
        assert isinstance(mux.monitor("alpha"), TBAMonitor)

    def test_explicit_open_rejects_duplicates(self):
        mux = SessionMux(bounded_gap_tba())
        mux.open("alpha")
        with pytest.raises(ValueError, match="already open"):
            mux.open("alpha")

    def test_max_sessions_backpressure(self):
        mux = SessionMux(bounded_gap_tba(), max_sessions=2)
        mux.open("a")
        mux.open("b")
        with pytest.raises(BackpressureError, match="session table full"):
            mux.open("c")
        mux.close("a")
        mux.open("c")  # room again after close
        assert sorted(mux.active) == ["b", "c"]

    def test_sessions_share_one_analysis(self):
        mux = SessionMux(bounded_gap_tba())
        mux.open("a")
        mux.open("b")
        assert mux.monitor("a").analysis is mux.monitor("b").analysis

    def test_exactly_one_language_artifact_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            SessionMux()
        with pytest.raises(ValueError, match="exactly one"):
            SessionMux(bounded_gap_tba(), monitor_factory=lambda: None)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="buffer_limit"):
            SessionMux(bounded_gap_tba(), buffer_limit=0)
        with pytest.raises(ValueError, match="drop_policy"):
            SessionMux(bounded_gap_tba(), drop_policy="spill")


class TestBackpressure:
    def fill(self, mux, name="s", n=4):
        for t in range(1, n + 1):
            mux.ingest(name, "a", t)
        return mux.monitor(name)

    def test_drop_new_discards_the_incoming_event(self):
        mux = buffering_mux(buffer_limit=4, drop_policy="drop-new")
        monitor = self.fill(mux)
        assert monitor.pending == 4
        v = mux.ingest("s", "a", 5)
        assert v is monitor.verdict
        assert monitor.pending == 4  # nothing new buffered
        assert mux.drops == 1
        assert mux.stats()["drops"] == 1

    def test_drop_old_force_applies_the_oldest(self):
        mux = buffering_mux(buffer_limit=4, drop_policy="drop-old")
        monitor = self.fill(mux)
        mux.ingest("s", "a", 5)
        assert monitor.pending == 4  # one out (applied), one in
        assert monitor.events_released == 1
        assert mux.drops == 1

    def test_reject_raises(self):
        mux = buffering_mux(buffer_limit=4, drop_policy="reject")
        self.fill(mux)
        with pytest.raises(BackpressureError, match="buffer full"):
            mux.ingest("s", "a", 5)

    def test_buffers_are_per_session(self):
        mux = buffering_mux(buffer_limit=4, drop_policy="reject")
        self.fill(mux, "one")
        # a second session has its own (empty) buffer
        mux.ingest("two", "a", 1)
        assert mux.monitor("two").pending == 1


class TestLifecycle:
    def test_close_reports_the_session_story(self):
        mux = SessionMux(bounded_gap_tba())
        mux.ingest("s", "a", 1)
        mux.ingest("s", "a", 2)
        report = mux.close("s")
        assert report.name == "s"
        assert report.verdict is StreamVerdict.ACCEPTING
        assert report.events_ingested == 2
        assert report.decision is None
        assert "s" not in mux
        assert mux.sessions_closed == 1

    def test_close_with_horizon_finishes_machine_monitors(self):
        mux = SessionMux(compiled_tba(bounded_gap_tba()))
        word = TimedWord.lasso([("a", 1), ("a", 10)], [("a", 11)], shift=1)
        for i in range(3):
            mux.ingest("s", *word[i])
        report = mux.close("s", horizon=400)
        assert report.decision is not None
        assert not report.decision.accepted  # the gap of 9 broke the bound

    def test_evict_idle_by_event_time(self):
        mux = SessionMux(bounded_gap_tba(), idle_ttl=50)
        mux.ingest("old", "a", 10)
        mux.ingest("new", "a", 100)
        victims = mux.evict_idle()
        assert victims == ["old"]
        assert mux.active == ["new"]
        assert mux.sessions_evicted == 1

    def test_evict_idle_explicit_now_and_ttl(self):
        mux = SessionMux(bounded_gap_tba())
        mux.ingest("s", "a", 10)
        assert mux.evict_idle(now=200, idle_ttl=100) == ["s"]
        with pytest.raises(ValueError, match="idle_ttl"):
            mux.evict_idle()

    def test_stats_shape(self):
        mux = buffering_mux(buffer_limit=8)
        mux.ingest("a", "a", 1)
        mux.ingest("b", "a", 1)
        mux.close("a")
        stats = mux.stats()
        assert stats == {
            "active": 1,
            "opened": 2,
            "closed": 1,
            "evicted": 0,
            "eviction_reports_dropped": 0,
            "drops": 0,
            "pending_total": 1,
        }


class TestMachineBackedSessions:
    def test_monitor_factory_override(self):
        mux = SessionMux(monitor_factory=lambda: TBAMonitor(bounded_gap_tba()))
        assert mux.ingest("s", "a", 1) is StreamVerdict.ACCEPTING

    def test_sessions_wrap_the_shared_program(self):
        acceptor = make_parity_acceptor()
        mux = SessionMux(acceptor)
        # two sessions, two verdicts, one acceptor object
        for name, member in [("yes", True), ("no", False)]:
            total_parity = 0 if member else 1
            syms = [1, 1]
            if sum(syms) % 2 != total_parity:
                syms[0] = 2
            mux.ingest(name, 2, 0)
            mux.ingest(name, syms[0], 1)
            mux.ingest(name, syms[1], 2)
            mux.ingest(name, "w", 3)
        assert mux.monitor("yes").acceptor is mux.monitor("no").acceptor
        assert mux.verdicts() == {
            "yes": StreamVerdict.ACCEPTING,
            "no": StreamVerdict.REJECTED,
        }


class TestSessionObservability:
    def test_lifecycle_counters_reach_obs(self):
        with instrumented() as inst:
            mux = SessionMux(bounded_gap_tba(), idle_ttl=10)
            mux.ingest("a", "a", 1)
            mux.ingest("b", "a", 100)
            mux.close("b")
            mux.evict_idle(now=100)
        counter = inst.registry.counter("stream.sessions")
        assert counter.labels(op="opened").value == 2
        assert counter.labels(op="closed").value == 1
        assert counter.labels(op="evicted").value == 1
        assert inst.registry.gauge("stream.sessions_active").value == 0
        assert inst.registry.gauge("stream.sessions_active").peak == 2

    def test_drop_counter_reaches_obs(self):
        with instrumented() as inst:
            mux = buffering_mux(buffer_limit=1, drop_policy="drop-new")
            mux.ingest("s", "a", 1)
            mux.ingest("s", "a", 2)
        assert (
            inst.registry.counter("stream.drops").labels(policy="drop-new").value
            == 1
        )


class TestEvictionReports:
    """Eviction is not a verdict: a mid-flight session must surface as
    UNDECIDED with its circumstances on record, never silently drop."""

    def test_mid_flight_eviction_is_undecided_with_evidence(self):
        from repro.engine import Verdict

        mux = SessionMux(bounded_gap_tba(), idle_ttl=50)
        mux.ingest("txn", "a", 1)
        mux.ingest("txn", "a", 2)  # in-bound gaps: ACCEPTING, not absorbed
        mux.ingest("fresh", "a", 100)
        assert mux.evict_idle() == ["txn"]
        (report,) = mux.eviction_reports
        assert report.name == "txn"
        assert report.verdict is StreamVerdict.ACCEPTING  # verdict-so-far
        decision = report.decision
        assert decision.verdict is Verdict.UNDECIDED  # but not a claim
        assert decision.strategy == "evicted"
        assert decision.evidence["evicted"] == "idle"
        assert decision.evidence["stream_verdict"] == "accepting"
        assert decision.evidence["last_event_time"] == 2
        assert decision.evidence["now"] == 100
        assert report.events_ingested == 2

    def test_absorbed_session_keeps_its_verdict(self):
        from repro.engine import Verdict

        mux = SessionMux(bounded_gap_tba(), idle_ttl=50)
        mux.ingest("dead", "a", 1)
        mux.ingest("dead", "a", 10)  # gap 9 breaks the bound: REJECTED
        assert mux.monitor("dead").absorbed
        mux.ingest("fresh", "a", 100)
        mux.evict_idle()
        (report,) = mux.drain_evictions()
        # REJECTED is absorbing — no continuation changes it, so the
        # eviction may keep the real verdict instead of UNDECIDED.
        assert report.verdict is StreamVerdict.REJECTED
        assert report.decision.verdict is Verdict.REJECT

    def test_close_after_evict_raises(self):
        mux = SessionMux(bounded_gap_tba(), idle_ttl=10)
        mux.ingest("gone", "a", 1)
        mux.ingest("fresh", "a", 100)
        mux.evict_idle()
        with pytest.raises(KeyError):
            mux.close("gone")
        # The session is genuinely retired, not resurrectable by close;
        # its story lives in the eviction report alone.
        assert [r.name for r in mux.eviction_reports] == ["gone"]

    def test_eviction_reports_capped_drop_oldest(self):
        # An undrained mux must not grow its report backlog without
        # bound: the cap drops the oldest summaries and counts them.
        mux = SessionMux(bounded_gap_tba(), idle_ttl=1, max_eviction_reports=3)
        for i in range(8):
            mux.ingest(f"s{i}", "a", 1)
        mux.evict_idle(now=1000)
        assert len(mux.eviction_reports) == 3
        assert [r.name for r in mux.eviction_reports] == ["s5", "s6", "s7"]
        assert mux.eviction_reports_dropped == 5
        assert mux.stats()["eviction_reports_dropped"] == 5
        # Uncapped muxes keep everything (and report zero drops).
        mux2 = SessionMux(bounded_gap_tba(), idle_ttl=1)
        for i in range(8):
            mux2.ingest(f"s{i}", "a", 1)
        mux2.evict_idle(now=1000)
        assert len(mux2.eviction_reports) == 8
        assert mux2.eviction_reports_dropped == 0
        with pytest.raises(ValueError, match="max_eviction_reports"):
            SessionMux(bounded_gap_tba(), max_eviction_reports=0)

    def test_drain_evictions_hands_over_and_clears(self):
        mux = SessionMux(bounded_gap_tba(), idle_ttl=10)
        mux.ingest("one", "a", 1)
        mux.ingest("fresh", "a", 100)
        mux.evict_idle()
        drained = mux.drain_evictions()
        assert [r.name for r in drained] == ["one"]
        assert mux.eviction_reports == []
        assert mux.drain_evictions() == []

    def test_buffered_events_are_not_flushed(self):
        from repro.engine import Verdict

        # A session with events parked in its reorder buffer: eviction
        # must not fabricate releases the watermark never authorized.
        mux = SessionMux(bounded_gap_tba(), lateness=1_000, idle_ttl=10)
        mux.ingest("held", "a", 1)
        mux.ingest("held", "a", 2)
        monitor = mux.monitor("held")
        assert monitor.pending == 2 and monitor.events_released == 0
        mux.ingest("fresh", "a", 5_000)
        mux.evict_idle()
        (report,) = mux.drain_evictions()
        assert report.decision.verdict is Verdict.UNDECIDED
        assert report.decision.evidence["pending"] == 2
        assert report.events_released == 0
