"""Tests for the multiprocessor real-time algorithm (rt-PROC concrete)."""

import pytest

from repro.complexity import run_stream_echo, stream_word
from repro.machine import MultiProcessorAlgorithm, stream_echo_acceptor
from repro.machine.rtalgorithm import Verdict
from repro.words import TimedWord


class TestConstruction:
    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            stream_echo_acceptor(0, deadline=4)


class TestStreamEchoAcceptor:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_sufficient_processors_accept(self, k):
        rep = stream_echo_acceptor(k, deadline=8).decide(
            stream_word(k), horizon=1_000
        )
        assert rep.accepted
        assert rep.f_count > 0

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_insufficient_processors_reject(self, k):
        rep = stream_echo_acceptor(k - 1, deadline=8).decide(
            stream_word(k), horizon=1_000
        )
        assert rep.verdict is Verdict.REJECT
        assert rep.f_count == 0

    def test_overprovisioning_also_accepts(self):
        rep = stream_echo_acceptor(7, deadline=8).decide(
            stream_word(3), horizon=1_000
        )
        assert rep.accepted

    def test_machine_agrees_with_queue_recursion(self):
        """The Definition 3.3 machine and the abstract queue model of
        repro.complexity give the same success split."""
        for k in (2, 3, 5):
            for p in (k - 1, k):
                machine = stream_echo_acceptor(p, deadline=8).decide(
                    stream_word(k), horizon=1_500
                )
                abstract = run_stream_echo(k, p, deadline=8, horizon=1_500)
                assert machine.accepted == abstract.success, (k, p)

    def test_reject_time_near_predicted_miss(self):
        """The machine detects the miss within a few chronons of the
        queue model's first-miss closed form (pipeline offsets differ
        by small constants)."""
        from repro.complexity import predicted_first_miss

        for k in (2, 3, 4):
            rep = stream_echo_acceptor(k - 1, deadline=8).decide(
                stream_word(k), horizon=1_000
            )
            predicted = predicted_first_miss(k, k - 1, 8)
            assert rep.decided_at is not None
            assert abs(rep.decided_at - predicted) <= 4, (k, rep.decided_at, predicted)


class TestCustomPrograms:
    def test_supervisor_and_workers_share_storage(self):
        """A 2-processor machine summing the first 6 tape values."""

        def supervisor(ctx, work):
            ctx.storage["sum"] = 0
            ctx.storage["done"] = 0
            for _ in range(6):
                sym, t = yield ctx.input.read()
                yield work.put(sym)
            while ctx.storage["done"] < 6:
                yield ctx.timeout(1)
            if ctx.storage["sum"] == 21:
                ctx.accept()
            else:
                ctx.reject()

        def worker(wid, ctx, work):
            while True:
                value = yield work.get()
                yield ctx.timeout(1)
                ctx.storage["sum"] = ctx.storage["sum"] + value
                ctx.storage["done"] = ctx.storage["done"] + 1

        machine = MultiProcessorAlgorithm(2, supervisor, worker)
        word = TimedWord.lasso(
            [(v, i) for i, v in enumerate([1, 2, 3, 4, 5, 6])],
            [(0, 6)],
            shift=1,
        )
        rep = machine.decide(word, horizon=200)
        assert rep.accepted
