"""Tests for §5.2 geometry, the range predicate, and mobility models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.adhoc import (
    Arena,
    ConstantVelocityMobility,
    DiskRange,
    Position,
    RandomWaypointMobility,
    StationaryMobility,
    distance,
)


class TestGeometry:
    def test_distance(self):
        assert distance(Position(0, 0), Position(3, 4)) == 5.0

    def test_position_iterable(self):
        x, y = Position(1.5, 2.5)
        assert (x, y) == (1.5, 2.5)


class TestDiskRange:
    def _pred(self, radius=10.0):
        positions = {
            1: Position(0, 0),
            2: Position(5, 0),
            3: Position(50, 0),
        }
        mob = StationaryMobility(positions)
        return DiskRange(mob.trajectories(), {n: radius for n in positions})

    def test_in_range(self):
        pred = self._pred()
        assert pred(1, 2, t=0)
        assert not pred(1, 3, t=0)

    def test_never_self_range(self):
        pred = self._pred()
        assert not pred(1, 1, t=0)

    def test_asymmetric_radii(self):
        positions = {1: Position(0, 0), 2: Position(5, 0)}
        mob = StationaryMobility(positions)
        pred = DiskRange(mob.trajectories(), {1: 10.0, 2: 1.0})
        assert pred(1, 2, 0)  # 1's big radio reaches 2
        assert not pred(2, 1, 0)  # 2's tiny radio does not reach 1

    def test_obstacle_blocks(self):
        positions = {1: Position(0, 0), 2: Position(5, 0)}
        mob = StationaryMobility(positions)
        pred = DiskRange(
            mob.trajectories(),
            {1: 10.0, 2: 10.0},
            obstacle=lambda a, b: True,
        )
        assert not pred(1, 2, 0)

    def test_neighbours_sorted(self):
        pred = self._pred(radius=100.0)
        assert pred.neighbours(1, 0) == (2, 3)

    def test_positions_at(self):
        pred = self._pred()
        snap = pred.positions_at(0)
        assert snap[2] == Position(5, 0)


class TestConstantVelocity:
    def test_straight_line(self):
        arena = Arena(1000, 1000)
        mob = ConstantVelocityMobility(
            arena, {1: Position(0, 0)}, {1: (2.0, 1.0)}
        )
        traj = mob.trajectory(1)
        assert traj(10) == Position(20.0, 10.0)

    def test_reflection_at_walls(self):
        arena = Arena(10, 10)
        mob = ConstantVelocityMobility(arena, {1: Position(0, 0)}, {1: (3.0, 0.0)})
        traj = mob.trajectory(1)
        assert traj(4).x == pytest.approx(8.0)  # 12 reflected to 8
        assert 0 <= traj(7).x <= 10

    @given(st.integers(0, 500))
    def test_always_inside_arena(self, t):
        arena = Arena(100, 50)
        mob = ConstantVelocityMobility(
            arena, {1: Position(3, 4)}, {1: (7.3, -2.9)}
        )
        p = mob.trajectory(1)(t)
        assert 0 <= p.x <= arena.width
        assert 0 <= p.y <= arena.height


class TestRandomWaypoint:
    def test_deterministic_given_seed(self):
        a = RandomWaypointMobility(Arena(), 5, seed=42)
        b = RandomWaypointMobility(Arena(), 5, seed=42)
        for node in range(1, 6):
            for t in (0, 10, 100):
                assert a.position(node, t) == b.position(node, t)

    def test_different_seeds_differ(self):
        a = RandomWaypointMobility(Arena(), 3, seed=1)
        b = RandomWaypointMobility(Arena(), 3, seed=2)
        assert any(
            a.position(n, 50) != b.position(n, 50) for n in range(1, 4)
        )

    @settings(max_examples=30)
    @given(st.integers(1, 5), st.integers(0, 300))
    def test_positions_inside_arena(self, node, t):
        arena = Arena(200, 100)
        mob = RandomWaypointMobility(arena, 5, seed=9)
        p = mob.position(node, t)
        assert -1e-9 <= p.x <= arena.width + 1e-9
        assert -1e-9 <= p.y <= arena.height + 1e-9

    def test_speed_respected(self):
        mob = RandomWaypointMobility(Arena(), 2, min_speed=1, max_speed=5, seed=3)
        for t in range(0, 100):
            p0 = mob.position(1, t)
            p1 = mob.position(1, t + 1)
            assert distance(p0, p1) <= 5.0 + 1e-6

    def test_pause_time_freezes_position(self):
        """A paused node sits still at its waypoint."""
        mob = RandomWaypointMobility(Arena(100, 100), 1, pause_time=1000,
                                     min_speed=10, max_speed=10, seed=5)
        # Travel to the first waypoint takes < 100·√2/10 ≈ 15 chronons;
        # afterwards the long pause holds the position.
        p50 = mob.position(1, 50)
        p60 = mob.position(1, 60)
        assert p50 == p60

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(Arena(), 0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(Arena(), 1, min_speed=5, max_speed=1)
        with pytest.raises(ValueError):
            RandomWaypointMobility(Arena(), 1, min_speed=0)

    def test_negative_time_rejected(self):
        mob = RandomWaypointMobility(Arena(), 1)
        with pytest.raises(ValueError):
            mob.position(1, -1)
