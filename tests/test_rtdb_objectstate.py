"""Tests for the acceptor-side database state (repro.rtdb.queries)."""

import pytest

from repro.rtdb.queries import ObjectState, QueryRegistry


class TestObjectState:
    def test_invariant_lookup(self):
        st = ObjectState(invariants={"unit": "c"})
        assert st.value("unit", {}) == "c"

    def test_image_lookup(self):
        st = ObjectState(images={"temp": 21}, image_stamp={"temp": 9})
        assert st.value("temp", {}) == 21

    def test_derived_recomputes_through_sources(self):
        st = ObjectState(
            images={"a": 3, "b": 4},
            derived_sources={"sum": ("a", "b")},
        )
        assert st.value("sum", {"sum": lambda x, y: x + y}) == 7

    def test_derived_chains(self):
        """Derived objects may depend on other derived objects."""
        st = ObjectState(
            images={"x": 2},
            derived_sources={"d1": ("x",), "d2": ("d1",)},
        )
        derivations = {"d1": lambda v: v * 10, "d2": lambda v: v + 1}
        assert st.value("d2", derivations) == 21

    def test_unknown_object_raises(self):
        st = ObjectState()
        with pytest.raises(KeyError):
            st.value("ghost", {})

    def test_invariants_shadow_nothing(self):
        """Lookup order is invariants → images → derived; names are
        disjoint by construction, so any hit is unambiguous."""
        st = ObjectState(
            invariants={"k": 1},
            images={"m": 2},
            derived_sources={"d": ("m",)},
        )
        assert st.value("k", {}) == 1
        assert st.value("m", {}) == 2
        assert st.value("d", {"d": lambda v: -v}) == -2


class TestQueryRegistry:
    def test_default_eval_cost(self):
        reg = QueryRegistry(queries={"q": lambda st: set()})
        assert reg.eval_cost("q", ObjectState()) == 1

    def test_queries_receive_state(self):
        reg = QueryRegistry(
            queries={"names": lambda st: {(n,) for n in st.images}}
        )
        st = ObjectState(images={"s1": 0, "s2": 1})
        assert reg.queries["names"](st) == {("s1",), ("s2",)}
