"""Tests for repro.query.builder — the fluent CER-style query surface.

Covers construction/validation, lowering onto the spec combinators,
S3's structural contracts (``to_source`` round-trips of query-built
specs; ``phases_of``/``actions_of``/``is_deterministic_spec`` over
query-lowered specs), and the end-to-end ``decide``/monitor paths.
"""

import pytest

from repro.engine import Verdict, decide
from repro.query import AndQuery, ChainQuery, OrQuery, Q, QStep, as_query
from repro.spec import (
    Spec,
    actions_of,
    alt,
    both,
    eventually,
    is_deterministic_spec,
    loop,
    phases_of,
    rt_bound,
    seq,
    to_source,
)
from repro.stream import StreamVerdict
from repro.words import TimedWord


# ------------------------------------------------------------ building


def test_event_then_within_after_build_steps():
    q = Q.event("req").then("rsp").within(5).after(1)
    assert q.steps == (QStep("req", 0, 0), QStep("rsp", 1, 5))


def test_after_widens_window():
    q = Q.event("a").after(3)
    assert q.steps[-1] == QStep("a", 3, 3)


def test_step_validation():
    with pytest.raises(ValueError):
        QStep("a", -1, 2)
    with pytest.raises(ValueError):
        Q.event("a", 3, 1)
    with pytest.raises(ValueError):
        ChainQuery(())
    with pytest.raises(ValueError):
        ChainQuery((QStep("a"),), mode="sometimes")


def test_q_is_a_namespace():
    with pytest.raises(TypeError):
        Q()


def test_omega_operators_close_the_chain():
    q = Q.event("a").repeat()
    for op in ("then", "within", "after", "deadline", "repeat", "once"):
        with pytest.raises(ValueError, match="must come before"):
            getattr(q, op)(*(("b",) if op == "then" else (2,) if op not in ("repeat", "once") else ()))


def test_deadline_firm_and_soft_windows():
    # Firm (§4.1 class ii): completion strictly before t_d.
    firm = Q.event("job").deadline(7)
    assert firm.steps[-1] == QStep("job", 0, 6)
    # Step-soft (class iii): usefulness holds through t_d + grace.
    soft = Q.event("job").deadline(7, grace=2)
    assert soft.steps[-1] == QStep("job", 0, 9)
    with pytest.raises(ValueError):
        Q.event("job").deadline(0)
    with pytest.raises(ValueError):
        Q.event("job").deadline(5, grace=-1)


def test_or_and_flatten():
    a, b, c = Q.event("a"), Q.event("b"), Q.event("c")
    assert isinstance(a | b, OrQuery)
    assert len(((a | b) | c).parts) == 3
    assert len((a & b & c).parts) == 3
    with pytest.raises(TypeError):
        a | "not a query"
    with pytest.raises(ValueError):
        OrQuery((a,))
    with pytest.raises(ValueError):
        AndQuery((a,))


# ------------------------------------------------------------ lowering


def test_chain_lowers_to_seq_of_rt_bounds():
    q = Q.event("req").then("rsp", 1, 5)
    assert q.lower() == seq(rt_bound("req", 0, 0), rt_bound("rsp", 1, 5))
    assert q.spec() == eventually(q.lower())  # bare chain ω-coerces


def test_repeat_once_lower_to_loop_eventually():
    body = seq(rt_bound("hb", 0, 10))
    assert Q.event("hb").within(10).repeat().lower() == loop(body)
    assert Q.event("hb").within(10).once().lower() == eventually(body)


def test_or_and_lower_to_alt_both():
    a = Q.event("a").repeat()
    b = Q.event("b").within(3).once()
    assert (a | b).lower() == alt(a.lower(), b.lower())
    assert (a & b).lower() == both(a.lower(), b.lower())


def test_default_alphabet_is_sorted_actions():
    q = Q.event("z").then("a") | Q.event("m").repeat()
    assert q.default_alphabet() == ("a", "m", "z")


# ------------------------------------------- S3: structural contracts


S3_QUERIES = [
    Q.event("a"),
    Q.event("req").then("rsp").within(5),
    Q.event("req").then("rsp").after(1).within(4),
    Q.event("hb").within(10).repeat(),
    Q.event("job").deadline(7, grace=2).once(),
    Q.event("a") | Q.event("b").within(3).repeat(),
    Q.event("a").repeat() & Q.event("b").within(3).once(),
    (Q.event("a") | Q.event("b")) & Q.event("c").repeat(),
    Q.parse("a ; b within 5"),
    Q.parse("repeat(hb within 10) | once(job deadline 7 grace 2)"),
]


@pytest.mark.parametrize("q", S3_QUERIES, ids=lambda q: q.to_text())
def test_to_source_round_trips_query_specs(q):
    """Every operator's lowered spec reconstructs from its source."""
    spec = q.spec()
    namespace = {
        "rt_bound": rt_bound,
        "seq": seq,
        "loop": loop,
        "eventually": eventually,
        "alt": alt,
        "both": both,
    }
    rebuilt = eval(to_source(spec), namespace)
    assert rebuilt == spec


def test_structural_queries_over_lowered_specs():
    q = Q.event("req").then("rsp", 1, 5).repeat()
    body = q.lower().body
    assert [p.action for p in phases_of(body)] == ["req", "rsp"]
    assert actions_of(q.spec()) == {"req", "rsp"}
    assert is_deterministic_spec(q.spec())
    # Disjunctions of chains sharing a first action are the classic
    # nondeterministic shape.
    nd = (Q.event("a").then("b") | Q.event("a").then("c")).spec()
    assert actions_of(nd) == {"a", "b", "c"}
    assert not is_deterministic_spec(nd)


# ------------------------------------------------------------ end-to-end


def test_query_decide_and_holds():
    q = Q.event("hb").within(5).repeat()
    good = TimedWord.lasso([], [("hb", 0)], shift=3)
    bad = TimedWord.lasso([("hb", 0)], [("hb", 10)], shift=10)
    assert q.holds(good)
    assert not q.holds(bad)
    assert decide(q.acceptor(), good).verdict is Verdict.ACCEPT
    assert decide(word=good, query=q).verdict is Verdict.ACCEPT
    assert decide(word=bad, query=q).verdict is Verdict.REJECT


def test_decide_validates_query_kwargs():
    q = Q.event("a")
    w = TimedWord.lasso([], [("a", 0)], shift=1)
    with pytest.raises(ValueError, match="exactly one"):
        decide(q.acceptor(), w, query=q)
    with pytest.raises(ValueError, match="exactly one"):
        decide(word=w)
    with pytest.raises(ValueError, match="alphabet"):
        decide(q.acceptor(), w, alphabet=("a", "b"))


def test_query_monitor_streams_verdicts():
    m = Q.event("req").then("rsp").within(5).repeat().monitor()
    assert m.ingest("req", 0) is StreamVerdict.INCONCLUSIVE
    assert m.ingest("rsp", 3) is StreamVerdict.ACCEPTING
    # f_window=None: one accept visit keeps ACCEPTING while live.
    assert m.ingest("req", 3) is StreamVerdict.ACCEPTING
    # Blowing the window kills the iteration permanently.
    assert m.ingest("rsp", 20) is StreamVerdict.REJECTED


def test_as_query_coerces_text_and_rejects_junk():
    assert as_query("a ; b").spec() == Q.event("a").then("b").spec()
    q = Q.event("a")
    assert as_query(q) is q
    with pytest.raises(TypeError):
        as_query(42)
