"""Tests for the radio network and the four routing protocols."""

import pytest

from repro.adhoc import (
    AdhocNetwork,
    DiskRange,
    DreamRouter,
    DsdvRouter,
    DsrRouter,
    FloodingRouter,
    Message,
    Position,
    Scenario,
    StationaryMobility,
    run_scenario,
)
from repro.kernel import Simulator


def line_network(n=4, spacing=10.0, radius=15.0):
    """Nodes on a line, each reaching only its neighbours."""
    positions = {i: Position(i * spacing, 0.0) for i in range(1, n + 1)}
    mob = StationaryMobility(positions)
    pred = DiskRange(mob.trajectories(), {i: radius for i in positions})
    sim = Simulator()
    net = AdhocNetwork(sim, pred, list(positions))
    return sim, net, pred


class TestRadio:
    def test_unit_time_delivery(self):
        """§5.2.1: t′ = t + 1."""
        sim, net, _ = line_network(2)
        net.attach(1, FloodingRouter())
        net.attach(2, FloodingRouter())
        net.start()
        msg = Message(src=1, dst=2, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=10)
        assert net.trace.delivery_time(msg.uid) == 1

    def test_out_of_range_not_delivered(self):
        sim, net, _ = line_network(2, spacing=100.0, radius=15.0)
        net.attach(1, FloodingRouter())
        net.attach(2, FloodingRouter())
        net.start()
        msg = Message(src=1, dst=2, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=20)
        assert net.trace.delivery_time(msg.uid) is None

    def test_trace_records_hops_and_receives(self):
        sim, net, _ = line_network(3)
        for i in (1, 2, 3):
            net.attach(i, FloodingRouter())
        net.start()
        msg = Message(src=1, dst=3, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=20)
        assert len(net.trace.hops) >= 2
        assert net.trace.receives

    def test_connectivity_snapshot(self):
        _sim, net, _ = line_network(3)
        snap = net.connectivity_snapshot(0)
        assert snap[1] == [2]
        assert snap[2] == [1, 3]

    def test_attach_unknown_node_rejected(self):
        _sim, net, _ = line_network(2)
        with pytest.raises(ValueError):
            net.attach(99, FloodingRouter())

    def test_double_start_rejected(self):
        sim, net, _ = line_network(2)
        net.attach(1, FloodingRouter())
        net.attach(2, FloodingRouter())
        net.start()
        with pytest.raises(RuntimeError):
            net.start()


def deliver_over_line(router_factory, n=4, horizon=300):
    sim, net, pred = line_network(n)
    for i in range(1, n + 1):
        net.attach(i, router_factory())
    net.start()
    # let proactive protocols converge
    sim.run(until=horizon // 2)
    msg = Message(src=1, dst=n, body="payload", created_at=sim.now)
    net.originate(msg)
    sim.run(until=horizon)
    return net, msg


class TestFlooding:
    def test_delivers_multihop(self):
        net, msg = deliver_over_line(FloodingRouter)
        assert net.trace.delivery_time(msg.uid) is not None

    def test_duplicate_suppression(self):
        net, msg = deliver_over_line(FloodingRouter, n=4)
        # each node transmits the packet at most once: ≤ n data hops
        assert len(net.trace.data_hops(msg.uid)) <= 4

    def test_ttl_limits_propagation(self):
        sim, net, _ = line_network(6)
        for i in range(1, 7):
            net.attach(i, FloodingRouter(ttl=2))
        net.start()
        msg = Message(src=1, dst=6, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=100)
        assert net.trace.delivery_time(msg.uid) is None


class TestDsdv:
    def test_delivers_after_convergence(self):
        net, msg = deliver_over_line(lambda: DsdvRouter(beacon_period=10), n=4)
        assert net.trace.delivery_time(msg.uid) is not None

    def test_control_traffic_flows_continuously(self):
        """Proactive: beacons happen without any data traffic."""
        sim, net, _ = line_network(3)
        for i in (1, 2, 3):
            net.attach(i, DsdvRouter(beacon_period=10))
        net.start()
        sim.run(until=100)
        assert len(net.trace.control_hops()) >= 3 * 9

    def test_routes_use_next_hops_not_floods(self):
        net, msg = deliver_over_line(lambda: DsdvRouter(beacon_period=10), n=5)
        data = net.trace.data_hops(msg.uid)
        # unicast chain: one hop per link, ≈ 4, definitely < flood count
        assert 1 <= len(data) <= 6

    def test_sequence_numbers_prefer_fresh_routes(self):
        sim, net, _ = line_network(2)
        r1 = DsdvRouter(beacon_period=10)
        net.attach(1, r1)
        net.attach(2, DsdvRouter(beacon_period=10))
        net.start()
        sim.run(until=60)
        entry = r1.table[2]
        assert entry.next_hop == 2 and entry.metric == 1


class TestDsr:
    def test_reactive_no_idle_control(self):
        """Without data traffic, DSR transmits nothing."""
        sim, net, _ = line_network(4)
        for i in range(1, 5):
            net.attach(i, DsrRouter())
        net.start()
        sim.run(until=200)
        assert len(net.trace.hops) == 0

    def test_discovery_then_source_routing(self):
        net, msg = deliver_over_line(DsrRouter, n=4)
        assert net.trace.delivery_time(msg.uid) is not None
        # control traffic exists (RREQ/RREP) but is bounded per discovery
        assert 0 < len(net.trace.control_hops()) < 40

    def test_route_cache_reused(self):
        sim, net, _ = line_network(4)
        routers = {i: DsrRouter() for i in range(1, 5)}
        for i, r in routers.items():
            net.attach(i, r)
        net.start()
        m1 = Message(src=1, dst=4, body="a", created_at=0)
        net.originate(m1)
        sim.run(until=100)
        control_after_first = len(net.trace.control_hops())
        m2 = Message(src=1, dst=4, body="b", created_at=sim.now)
        net.originate(m2)
        sim.run(until=200)
        assert net.trace.delivery_time(m2.uid) is not None
        # no new discovery needed: control count unchanged
        assert len(net.trace.control_hops()) == control_after_first


class TestDream:
    def test_delivers_with_position_knowledge(self):
        net, msg = deliver_over_line(
            lambda: DreamRouter(beacon_period=10, beacon_scope=4), n=4
        )
        assert net.trace.delivery_time(msg.uid) is not None

    def test_beacons_populate_location_tables(self):
        sim, net, _ = line_network(3)
        routers = {i: DreamRouter(beacon_period=10, beacon_scope=3) for i in (1, 2, 3)}
        for i, r in routers.items():
            net.attach(i, r)
        net.start()
        sim.run(until=60)
        assert 3 in routers[1].locations
        assert 1 in routers[3].locations

    def test_greedy_forwarding_progress(self):
        net, msg = deliver_over_line(
            lambda: DreamRouter(beacon_period=10, beacon_scope=4), n=5
        )
        data = net.trace.data_hops(msg.uid)
        assert data, "data hops were made"


class TestScenarioDriver:
    def test_seeded_scenarios_reproducible(self):
        sc = Scenario(n_nodes=8, n_messages=3, horizon=150, seed=11)
        a = run_scenario(FloodingRouter, sc)
        b = run_scenario(FloodingRouter, sc)
        assert a.metrics.row() == b.metrics.row()

    def test_metrics_fields_populated(self):
        sc = Scenario(n_nodes=8, n_messages=3, horizon=150, seed=2)
        run = run_scenario(FloodingRouter, sc)
        m = run.metrics
        assert m.messages == 3
        assert m.overhead == m.control_hops + m.data_hops
        assert 0.0 <= m.delivery_ratio <= 1.0
