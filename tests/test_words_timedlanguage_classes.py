"""Direct tests for the language combinator classes (names, nesting,
error paths) that the operator-level tests exercise only implicitly."""

import random

import pytest

from repro.words import (
    ComplementLanguage,
    ConcatLanguage,
    FiniteLanguage,
    IntersectionLanguage,
    MembershipUndecidable,
    PredicateLanguage,
    TimedLanguage,
    TimedWord,
    UnionLanguage,
)


W1 = TimedWord.finite([("a", 0)])
W2 = TimedWord.finite([("b", 1)])
LA = FiniteLanguage([W1], name="A")
LB = FiniteLanguage([W2], name="B")


class TestNames:
    def test_operation_names_compose(self):
        assert (LA | LB).name == "(A ∪ B)"
        assert (LA & LB).name == "(A ∩ B)"
        assert (~LA).name == "¬A"
        assert LA.concatenate(LB).name == "A·B"
        assert LA.kleene().name == "(A)*"

    def test_nested_names(self):
        lang = ~(LA | LB)
        assert lang.name == "¬(A ∪ B)"


class TestAbstractBase:
    def test_base_contains_undecidable(self):
        with pytest.raises(MembershipUndecidable):
            TimedLanguage().contains(W1)

    def test_base_sample_undecidable(self):
        with pytest.raises(MembershipUndecidable):
            TimedLanguage().sample(random.Random(0))


class TestCombinatorErrorPaths:
    def test_complement_of_predicate(self):
        lang = ComplementLanguage(PredicateLanguage(lambda w: len(w) == 1))
        assert not lang.contains(W1)
        assert lang.contains(TimedWord.finite([("a", 0), ("b", 1)]))

    def test_intersection_sampler_rejection_exhausts(self):
        """Sampling an empty intersection raises after bounded tries."""
        inter = IntersectionLanguage(LA, LB)  # disjoint singletons
        with pytest.raises(MembershipUndecidable):
            inter.sample(random.Random(0))

    def test_union_sampler_falls_back(self):
        """If one side cannot sample, the union samples the other."""
        no_sampler = PredicateLanguage(lambda w: False, name="P")
        union = UnionLanguage(no_sampler, LA)
        # try enough times to hit both branch orders
        for seed in range(6):
            w = union.sample(random.Random(seed))
            assert w == W1

    def test_concat_sampler_gives_up_on_undefined_pairs(self):
        """If every sampled pair fails to concatenate, sampling raises."""
        stuck = FiniteLanguage(
            [TimedWord.lasso([], [("s", 5)], shift=0)], name="stuck"
        )
        late = FiniteLanguage([TimedWord.finite([("z", 99)])], name="late")
        lang = ConcatLanguage(late, stuck)
        with pytest.raises(MembershipUndecidable):
            lang.sample(random.Random(0))

    def test_kleene_power_one_is_base(self):
        star = LA.kleene()
        p1 = star.power(1)
        assert p1.contains(W1)

    def test_kleene_membership_requires_finite_base(self):
        star = PredicateLanguage(lambda w: True).kleene()
        with pytest.raises(MembershipUndecidable):
            star.contains(W1)
