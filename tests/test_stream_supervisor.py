"""Failover tests for repro.stream.supervisor — the crash-recovering mux.

The pinned guarantee: a recovered mux re-emits no wrong verdicts and
loses none for events the supervisor accepted — with the journal on,
it agrees with an uninterrupted run event for event; with the journal
off, everything up to the latest checkpoint (in particular every
watermarked event) survives.
"""

import random

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm
from repro.obs import instrumented
from repro.stream import (
    CrashedError,
    Monitor,
    MuxSupervisor,
    SessionMux,
    load_json,
)


def bounded_gap_tba(bound=3):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def traffic(sessions=10, events=400, seed=7):
    """Deterministic multi-session feed with rejecting gaps mixed in."""
    rng = random.Random(seed)
    clock = {f"s{i}": 0 for i in range(sessions)}
    out = []
    for _ in range(events):
        name = rng.choice(list(clock))
        clock[name] += rng.choice([1, 2, 3, 3, 5])  # gap 5 breaks the bound
        out.append((name, "a", clock[name]))
    return out


@pytest.fixture
def tba():
    return bounded_gap_tba()


@pytest.fixture
def factory(tba):
    return lambda: SessionMux(
        tba,
        lateness=2,
        late_policy="drop",
        buffer_limit=8,
        drop_policy="drop-old",
    )


class TestFailover:
    def test_crash_recovery_agrees_with_uninterrupted_run(self, tba, factory):
        events = traffic()
        reference = factory()
        for name, sym, t in events:
            reference.ingest(name, sym, t)

        supervisor = MuxSupervisor(factory, checkpoint_every=50, tba=tba)
        for k, (name, sym, t) in enumerate(events):
            if k in (137, 291):  # two mid-stream host losses
                supervisor.crash()
            supervisor.ingest(name, sym, t)  # auto-recovers

        assert supervisor.failovers == 2
        assert supervisor.verdicts() == reference.verdicts()
        assert supervisor.mux.stats()["drops"] == reference.stats()["drops"]

    def test_no_wrong_verdicts_without_journal(self, tba, factory):
        # journal off: recovery restarts from the checkpoint; everything
        # the checkpoint holds (all watermarked events plus the
        # serialized reorder buffers) survives, and nothing is invented
        events = traffic(events=150)
        supervisor = MuxSupervisor(
            factory, checkpoint_every=10_000, journal=False, tba=tba,
            auto_recover=False,
        )
        for name, sym, t in events[:100]:
            supervisor.ingest(name, sym, t)
        supervisor.checkpoint()
        at_checkpoint = dict(supervisor.verdicts())
        for name, sym, t in events[100:]:
            supervisor.ingest(name, sym, t)
        supervisor.crash()
        supervisor.recover()
        assert supervisor.verdicts() == at_checkpoint

    def test_recovery_latency_is_measured(self, tba, factory):
        supervisor = MuxSupervisor(factory, checkpoint_every=50, tba=tba)
        for name, sym, t in traffic(events=120):
            supervisor.ingest(name, sym, t)
        supervisor.crash()
        latency = supervisor.recover()
        assert latency > 0
        assert supervisor.last_recovery_s == latency

    def test_crashed_guard_without_auto_recover(self, tba, factory):
        supervisor = MuxSupervisor(factory, tba=tba, auto_recover=False)
        supervisor.crash()
        assert supervisor.crashed
        with pytest.raises(CrashedError, match="recover"):
            supervisor.ingest("s0", "a", 1)
        supervisor.recover()
        assert not supervisor.crashed
        supervisor.ingest("s0", "a", 1)


class TestMachineBackedSessions:
    def test_machine_monitor_failover(self):
        def prog(ctx):
            total = 0
            for _ in range(3):
                v, _t = yield ctx.input.read()
                total += v
            if total % 2 == 0:
                ctx.accept()
            else:
                ctx.reject()

        acceptor = RealTimeAlgorithm(prog)
        factory = lambda: SessionMux(  # noqa: E731
            monitor_factory=lambda: Monitor(
                acceptor, lateness=1, late_policy="drop", keep_history=True
            )
        )
        events = [
            ("even", 1, 1), ("odd", 1, 1), ("even", 1, 2), ("odd", 1, 2),
            ("even", 2, 3), ("odd", 1, 3), ("even", 1, 5), ("odd", 1, 5),
        ]
        reference = factory()
        for name, sym, t in events:
            reference.ingest(name, sym, t)

        supervisor = MuxSupervisor(
            factory, checkpoint_every=3, acceptor=acceptor
        )
        for k, (name, sym, t) in enumerate(events):
            if k == 5:
                supervisor.crash()
            supervisor.ingest(name, sym, t)
        assert supervisor.failovers == 1
        assert supervisor.verdicts() == reference.verdicts()


class TestSupervisorLedger:
    def test_checkpoint_cadence_and_journal_depth(self, tba, factory):
        supervisor = MuxSupervisor(factory, checkpoint_every=25, tba=tba)
        for name, sym, t in traffic(events=110):
            supervisor.ingest(name, sym, t)
        stats = supervisor.stats()
        assert stats["checkpoints"] == 4
        assert stats["journal_depth"] == 10
        assert stats["events_since_checkpoint"] == 10
        assert stats["failovers"] == 0

    def test_snapshot_path_persists_json(self, tba, factory, tmp_path):
        path = tmp_path / "mux.json"
        supervisor = MuxSupervisor(
            factory, checkpoint_every=20, tba=tba, snapshot_path=str(path)
        )
        for name, sym, t in traffic(events=60):
            supervisor.ingest(name, sym, t)
        doc = load_json(str(path))
        assert doc["kind"] == "mux"
        assert doc["sessions"]

    def test_validation(self, tba, factory):
        with pytest.raises(ValueError, match="checkpoint_every"):
            MuxSupervisor(factory, checkpoint_every=0, tba=tba)

    def test_failover_metrics(self, tba, factory):
        with instrumented() as inst:
            supervisor = MuxSupervisor(factory, checkpoint_every=30, tba=tba)
            for name, sym, t in traffic(events=90):
                supervisor.ingest(name, sym, t)
            supervisor.crash()
            supervisor.recover()
        assert inst.registry.counter("stream.failovers").value == 1
        assert (
            inst.registry.counter("stream.supervisor_checkpoints").value == 3
        )
        spans = [s.name for s in inst.spans.completed()]
        assert "stream.failover" in spans
