"""Tests for repro.shard.placement — the consistent-hash ring.

Pins the three properties the shard runtime's session placement relies
on: determinism across runs and processes (BLAKE2b, not salted
``hash``), stability under membership change (only ~K/N names move),
and reasonable balance from the virtual nodes.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.shard import HashRing

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

NAMES = [f"session-{i}" for i in range(600)]


def test_placement_deterministic_across_ring_builds():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s2", "s0", "s1"])  # insertion order must not matter
    assert a.place_many(NAMES) == b.place_many(NAMES)


def test_placement_deterministic_across_processes():
    # Python's builtin hash is salted per process; the ring must not be.
    code = (
        "from repro.shard import HashRing;"
        "r = HashRing(['s0','s1','s2']);"
        "print(','.join(r.place(f'session-{i}') for i in range(40)))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": "random"},
    ).stdout.strip()
    local = ",".join(HashRing(["s0", "s1", "s2"]).place(n) for n in NAMES[:40])
    assert out == local


def test_adding_a_shard_moves_only_its_slice():
    ring = HashRing(["s0", "s1", "s2"])
    before = ring.place_many(NAMES)
    ring.add("s3")
    after = ring.place_many(NAMES)
    moved = [n for n in NAMES if before[n] != after[n]]
    # Every moved name moved *to* the new shard, never between old ones.
    assert all(after[n] == "s3" for n in moved)
    # ~1/4 of the names move; allow generous slack around K/N.
    assert 0.05 * len(NAMES) < len(moved) < 0.5 * len(NAMES)


def test_removing_a_shard_strands_only_its_sessions():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    before = ring.place_many(NAMES)
    ring.remove("s1")
    after = ring.place_many(NAMES)
    for name in NAMES:
        if before[name] != "s1":
            assert after[name] == before[name]
        else:
            assert after[name] != "s1"


def test_virtual_nodes_balance_the_load():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    counts = {s: 0 for s in ring.shards}
    for name in NAMES:
        counts[ring.place(name)] += 1
    # 600 names over 4 shards: every shard holds a real share.
    assert min(counts.values()) > len(NAMES) / 16


def test_membership_errors():
    ring = HashRing(["s0"])
    with pytest.raises(ValueError):
        ring.add("s0")
    with pytest.raises(ValueError):
        ring.remove("s9")
    ring.remove("s0")
    with pytest.raises(ValueError):
        ring.place("anything")
    with pytest.raises(ValueError):
        HashRing(["s0"], replicas=0)


def test_membership_introspection():
    ring = HashRing(["s0", "s1"])
    assert len(ring) == 2
    assert "s1" in ring and "s7" not in ring
    assert ring.shards == ["s0", "s1"]
