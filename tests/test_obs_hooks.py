"""Hook installation semantics and the no-interference guarantee.

The load-bearing test here is the regression at the bottom: an
instrumented run must dispatch the *identical* TraceRecord sequence as
an uninstrumented one — observability must never perturb the kernel's
determinism contract.
"""

import pytest

from repro.adhoc import FloodingRouter, Scenario, run_scenario
from repro.kernel import Simulator
from repro.kernel.trace import Tracer
from repro.machine import RealTimeAlgorithm
from repro.obs import Instrumentation, current, install, instrumented, uninstall
from repro.rtdb import figure2_query, ngc_example, recognition_word, recognizes
from repro.words import TimedWord


@pytest.fixture(autouse=True)
def no_leaked_hooks():
    assert current() is None, "another test leaked installed hooks"
    yield
    uninstall()


class TestInstallation:
    def test_install_uninstall(self):
        inst = install()
        assert current() is inst
        assert uninstall() is inst
        assert current() is None

    def test_instrumented_restores_previous(self):
        outer = install()
        with instrumented() as inner:
            assert current() is inner and inner is not outer
        assert current() is outer

    def test_instrumented_accepts_existing(self):
        mine = Instrumentation()
        with instrumented(mine) as got:
            assert got is mine


def kernel_workload(tracer_on: bool):
    """A deterministic multi-process run; returns the trace timeline."""
    sim = Simulator()
    tracer = Tracer(sim) if tracer_on else None

    def ticker(period, n):
        for _ in range(n):
            yield sim.timeout(period)

    def waiter(proc):
        yield proc

    fast = sim.process(ticker(2, 5), name="fast")
    sim.process(ticker(3, 4), name="slow")
    sim.process(waiter(fast), name="waiter")
    sim.run(until=30)
    return [(r.time, r.name, r.ok, r.seq) for r in tracer.records] if tracer else None


class TestNoInterference:
    def test_identical_trace_with_and_without_hooks(self):
        bare = kernel_workload(tracer_on=True)
        with instrumented():
            hooked = kernel_workload(tracer_on=True)
        assert hooked == bare

    def test_identical_acceptor_report_with_and_without_hooks(self):
        def program(ctx):
            sym, _at = yield ctx.input.read()
            ctx.accept() if sym == "go" else ctx.reject()

        word = TimedWord.finite([("go", 1)])
        bare = RealTimeAlgorithm(program, name="A").decide(word)
        with instrumented():
            hooked = RealTimeAlgorithm(program, name="A").decide(word)
        assert (hooked.verdict, hooked.f_count, hooked.decided_at) == (
            bare.verdict,
            bare.f_count,
            bare.decided_at,
        )

    def test_identical_scenario_with_and_without_hooks(self):
        scn = Scenario(n_nodes=8, n_messages=4, horizon=120, seed=7)
        bare = run_scenario(FloodingRouter, scn).metrics
        with instrumented():
            hooked = run_scenario(FloodingRouter, scn).metrics
        assert hooked == bare


class TestSubsystemCounters:
    def test_kernel_counters(self):
        with instrumented() as inst:
            kernel_workload(tracer_on=True)
        reg = inst.registry
        assert reg.counter("kernel.events_dispatched").value > 0
        assert reg.counter("kernel.events_scheduled").value > 0
        assert reg.counter("kernel.processes_started").value == 3
        assert reg.counter("kernel.trace_records").value > 0
        assert len(inst.spans.by_name("kernel.run")) == 1

    def test_machine_counters(self):
        def program(ctx):
            yield ctx.timeout(1)
            ctx.accept()

        with instrumented() as inst:
            RealTimeAlgorithm(program, name="A").decide(TimedWord.finite([("x", 0)]))
        reg = inst.registry
        assert reg.counter("machine.runs").labels(mode="decide").value == 1
        assert reg.counter("machine.verdicts").labels(verdict="accept").value == 1
        assert reg.counter("machine.f_symbols").value > 0
        assert len(inst.spans.by_name("machine.decide")) == 1

    def test_rtdb_counters(self):
        db = ngc_example()
        q = figure2_query()
        with instrumented() as inst:
            word = recognition_word(db, ("Schaefer", "St. Catharines"))
            assert recognizes(q, db.schema, word)
            assert not recognizes(q, db.schema, ["garbage"])
        reg = inst.registry
        assert reg.counter("rtdb.words_encoded").value == 1
        assert reg.counter("rtdb.recognitions").labels(outcome="hit").value == 1
        assert reg.counter("rtdb.recognitions").labels(outcome="malformed").value == 1
        assert len(inst.spans.by_name("rtdb.recognize")) == 2

    def test_adhoc_counters(self):
        with instrumented() as inst:
            run_scenario(FloodingRouter, Scenario(n_nodes=8, n_messages=4, horizon=120, seed=7))
        reg = inst.registry
        sent = reg.counter("adhoc.frames_transmitted")
        assert sent.labels(kind="data").value > 0
        assert reg.counter("adhoc.scenarios").labels(protocol="flooding").value == 1
        assert reg.counter("adhoc.delivered").labels(protocol="flooding").value > 0
        assert reg.histogram("adhoc.delivery_latency").count > 0
        assert len(inst.spans.by_name("adhoc.scenario")) == 1

    def test_disabled_hooks_record_nothing(self):
        inst = Instrumentation()
        kernel_workload(tracer_on=False)
        assert inst.registry.counter("kernel.events_dispatched").value == 0
        assert len(inst.spans) == 0
