"""Repo hygiene: no tracked build artifacts, .gitignore coverage.

Runs the same checks as ``scripts/check_tracked.py`` (the CI guard), so
a locally-committed ``__pycache__`` fails the tier-1 suite before it
ever reaches CI.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

import check_tracked  # noqa: E402


def test_no_tracked_pyc_or_pycache():
    assert check_tracked.check_no_tracked_artifacts() == []


def test_gitignore_covers_artifact_patterns():
    assert check_tracked.check_gitignore() == []


def test_guard_script_exits_zero():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_tracked.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
