"""Tests for timed Büchi automata (§2.1, Alur–Dill)."""

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition, max_constant
from repro.kernel import And, Ge, Le, Not, TrueConstraint, gt, lt
from repro.words import TimedWord


def bounded_gap_tba(bound=2):
    """Accepts timed words over {a} whose inter-arrival gap is ≤ bound."""
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


class TestValidation:
    def test_unknown_clock_in_reset_rejected(self):
        with pytest.raises(ValueError):
            TimedBuchiAutomaton(
                "a",
                ["s"],
                "s",
                [TimedTransition.make("s", "s", "a", resets=["y"])],
                ["x"],
                ["s"],
            )

    def test_unknown_clock_in_guard_rejected(self):
        with pytest.raises(ValueError):
            TimedBuchiAutomaton(
                "a",
                ["s"],
                "s",
                [TimedTransition.make("s", "s", "a", guard=Le("y", 1))],
                ["x"],
                ["s"],
            )

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError):
            TimedBuchiAutomaton(
                "a",
                ["s"],
                "s",
                [TimedTransition.make("s", "s", "z")],
                [],
                ["s"],
            )


class TestMaxConstant:
    def test_collects_largest(self):
        g = And(Le("x", 3), Not(Ge("y", 7)))
        assert max_constant(g) == 7

    def test_true_constraint_zero(self):
        assert max_constant(TrueConstraint()) == 0


class TestRuns:
    def test_guard_blocks_run(self):
        tba = bounded_gap_tba(bound=2)
        fast = TimedWord.finite([("a", 1), ("a", 2), ("a", 4)])
        slow = TimedWord.finite([("a", 1), ("a", 5)])
        assert tba.has_run_over_prefix(fast, 3)
        assert not tba.has_run_over_prefix(slow, 2)

    def test_reset_semantics(self):
        """Clock measures since last reset, not absolute time."""
        tba = bounded_gap_tba(bound=3)
        word = TimedWord.finite([("a", 3), ("a", 6), ("a", 9)])
        assert tba.has_run_over_prefix(word, 3)

    def test_initial_valuation_zero(self):
        """First symbol at a large time fails a tight guard without reset."""
        tba = TimedBuchiAutomaton(
            "a",
            ["s"],
            "s",
            [TimedTransition.make("s", "s", "a", guard=Le("x", 1))],
            ["x"],
            ["s"],
        )
        late = TimedWord.finite([("a", 10)])
        assert not tba.has_run_over_prefix(late, 1)

    def test_configs_after_prefix_counts(self):
        tba = bounded_gap_tba(2)
        word = TimedWord.finite([("a", 1), ("a", 2)])
        configs = tba.configs_after_prefix(word, 2)
        assert len(configs) == 1
        state, vals = next(iter(configs))
        assert state == "s" and vals == (0,)


class TestLassoAcceptance:
    def test_accepts_fast_lasso(self):
        tba = bounded_gap_tba(2)
        fast = TimedWord.lasso([], [("a", 1)], shift=2)
        assert tba.accepts_lasso(fast)

    def test_rejects_slow_lasso(self):
        tba = bounded_gap_tba(2)
        slow = TimedWord.lasso([], [("a", 1)], shift=5)
        assert not tba.accepts_lasso(slow)

    def test_boundary_gap_exactly_bound(self):
        tba = bounded_gap_tba(2)
        boundary = TimedWord.lasso([], [("a", 1)], shift=2)
        assert tba.accepts_lasso(boundary)
        over = TimedWord.lasso([], [("a", 1)], shift=3)
        assert not tba.accepts_lasso(over)

    def test_prefix_violation_forgiven_nowhere(self):
        """A guard violation in the prefix kills all runs forever."""
        tba = bounded_gap_tba(2)
        word = TimedWord.lasso([("a", 1), ("a", 9)], [("a", 10)], shift=1)
        assert not tba.accepts_lasso(word)

    def test_accepting_state_must_recur(self):
        """Two states; only 'u' accepts, and 'u' is reached on a slow
        symbol — the fast lasso never visits it."""
        tba = TimedBuchiAutomaton(
            "a",
            ["s", "u"],
            "s",
            [
                TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", 2)),
                TimedTransition.make("s", "u", "a", resets=["x"], guard=gt("x", 2)),
                TimedTransition.make("u", "u", "a", resets=["x"], guard=gt("x", 2)),
            ],
            ["x"],
            ["u"],
        )
        fast = TimedWord.lasso([], [("a", 1)], shift=1)
        slow = TimedWord.lasso([], [("a", 3)], shift=3)
        assert not tba.accepts_lasso(fast)
        assert tba.accepts_lasso(slow)

    def test_requires_lasso_word(self):
        tba = bounded_gap_tba(2)
        with pytest.raises(ValueError):
            tba.accepts_lasso(TimedWord.finite([("a", 1)]))
        with pytest.raises(ValueError):
            tba.accepts_lasso(TimedWord.functional(lambda i: ("a", i)))

    def test_corollary_32_tba_without_clocks_is_buchi(self):
        """A TBA with C = ∅ behaves as a plain Büchi automaton — the
        device invoked in the Corollary 3.2 proof."""
        tba = TimedBuchiAutomaton(
            "ab",
            ["s", "t"],
            "s",
            [
                TimedTransition.make("s", "t", "a"),
                TimedTransition.make("t", "t", "a"),
                TimedTransition.make("t", "s", "b"),
                TimedTransition.make("s", "s", "b"),
            ],
            [],
            ["t"],
        )
        only_a = TimedWord.lasso([], [("a", 1)], shift=1)
        only_b = TimedWord.lasso([], [("b", 1)], shift=1)
        assert tba.accepts_lasso(only_a)
        assert not tba.accepts_lasso(only_b)
