"""Tests for Definition 3.5 concatenation and Definition 3.6 closure.

The property-based block checks the three defining clauses on random
finite operands: the result is a timed word (monotone), both operands
embed as subsequences (item 1), equal-time runs stay contiguous in
operand order (items 2–3), and the merge is an exact interleaving.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.words import (
    ConcatUndefined,
    TimedWord,
    Trilean,
    complementary_split,
    concat,
    concat_many,
    is_subsequence,
    naive_concat,
)
from repro.words.concat import _functional_merge


def finite_words(alphabet="ab", max_size=8):
    return st.lists(
        st.tuples(st.sampled_from(alphabet), st.integers(0, 12)),
        min_size=0,
        max_size=max_size,
    ).map(lambda ps: TimedWord.finite(sorted(ps, key=lambda p: p[1])))


class TestFiniteConcat:
    def test_merge_orders_by_time(self):
        a = TimedWord.finite([("a", 0), ("b", 5)])
        b = TimedWord.finite([("x", 2), ("y", 7)])
        m = concat(a, b)
        assert m.take(4) == [("a", 0), ("x", 2), ("b", 5), ("y", 7)]

    def test_tie_break_first_operand_wins(self):
        """Item 3: equal arrival times → first word's symbol precedes."""
        a = TimedWord.finite([("a", 5)])
        b = TimedWord.finite([("b", 5)])
        assert concat(a, b).take(2) == [("a", 5), ("b", 5)]
        assert concat(b, a).take(2) == [("b", 5), ("a", 5)]

    def test_equal_time_runs_stay_contiguous(self):
        """Item 2: a same-time subword of one operand stays a subword."""
        a = TimedWord.finite([("a1", 3), ("a2", 3), ("a3", 3)])
        b = TimedWord.finite([("b1", 3)])
        m = concat(a, b)
        assert m.take(4) == [("a1", 3), ("a2", 3), ("a3", 3), ("b1", 3)]

    def test_empty_operands(self):
        a = TimedWord.finite([])
        b = TimedWord.finite([("x", 1)])
        assert concat(a, b) == b
        assert concat(b, a) == b

    @settings(max_examples=200)
    @given(finite_words(), finite_words("xy"))
    def test_definition_35_clauses(self, a, b):
        m = concat(a, b)
        pairs = m.take(len(a) + len(b))
        # result is a timed word
        assert m.is_valid() is not Trilean.FALSE
        # both operands are subsequences (item 1)
        assert is_subsequence(a.take(len(a)), pairs)
        assert is_subsequence(b.take(len(b)), pairs)
        # exact interleaving: every symbol comes from one operand
        assert complementary_split(pairs, a.take(len(a)), b.take(len(b)))

    @settings(max_examples=100)
    @given(finite_words(), finite_words("xy"))
    def test_concat_is_deterministic(self, a, b):
        assert concat(a, b) == concat(a, b)

    @settings(max_examples=100)
    @given(finite_words(), finite_words("xy"))
    def test_length_additivity(self, a, b):
        assert len(concat(a, b)) == len(a) + len(b)


class TestFiniteInfiniteConcat:
    def test_finite_into_lasso_prefix(self):
        fin = TimedWord.finite([("z", 2)])
        inf = TimedWord.lasso([("h", 0)], [("w", 1)], shift=1)
        m = concat(fin, inf)
        assert m.fn is None and not m.is_finite  # still a lasso
        assert m.take(5) == [("h", 0), ("w", 1), ("z", 2), ("w", 2), ("w", 3)]

    def test_lasso_then_finite(self):
        inf = TimedWord.lasso([], [("w", 1)], shift=1)
        fin = TimedWord.finite([("z", 3)])
        m = concat(inf, fin)
        # tie at 3 goes to the lasso (first operand)
        assert m.take(5) == [("w", 1), ("w", 2), ("w", 3), ("z", 3), ("w", 4)]

    def test_result_still_well_behaved(self):
        fin = TimedWord.finite([("z", 100)])
        inf = TimedWord.lasso([], [("w", 1)], shift=1)
        assert concat(fin, inf).is_well_behaved() is Trilean.TRUE

    def test_finite_outlasting_stuck_lasso_undefined(self):
        """A symbol after infinitely many bounded-time symbols has no
        position in an ω-word."""
        fin = TimedWord.finite([("z", 10)])
        stuck = TimedWord.lasso([], [("w", 5)], shift=0)
        with pytest.raises(ConcatUndefined):
            concat(fin, stuck)

    def test_finite_at_stuck_time_is_fine(self):
        fin = TimedWord.finite([("z", 5)])
        stuck = TimedWord.lasso([], [("w", 5)], shift=0)
        m = concat(fin, stuck)
        assert m.take(3) == [("z", 5), ("w", 5), ("w", 5)]

    @given(finite_words(max_size=5), st.integers(1, 4))
    def test_finite_lasso_matches_lazy_merge(self, fin, shift):
        inf = TimedWord.lasso([("h", 0)], [("u", 1), ("v", 2)], shift=shift)
        exact = concat(fin, inf)
        lazy = _functional_merge(fin, inf)
        assert exact.take(40) == lazy.take(40)


class TestLassoLassoConcat:
    def test_commensurable_shifts_give_lasso(self):
        a = TimedWord.lasso([("p", 0)], [("a", 1)], shift=2)
        b = TimedWord.lasso([], [("b", 2)], shift=3)
        m = concat(a, b)
        assert m.fn is None, "expected an exact lasso result"
        assert m.shift == 6  # lcm(2, 3)

    def test_matches_lazy_merge_long_prefix(self):
        a = TimedWord.lasso([("p", 0)], [("a", 1)], shift=2)
        b = TimedWord.lasso([], [("b", 2)], shift=3)
        exact = concat(a, b)
        lazy = _functional_merge(a, b)
        assert exact.take(200) == lazy.take(200)

    def test_result_well_behaved(self):
        a = TimedWord.lasso([], [("a", 1)], shift=1)
        b = TimedWord.lasso([], [("b", 1)], shift=1)
        assert concat(a, b).is_well_behaved() is Trilean.TRUE

    def test_progressing_with_stuck_undefined(self):
        a = TimedWord.lasso([], [("a", 1)], shift=1)
        stuck = TimedWord.lasso([], [("w", 5)], shift=0)
        with pytest.raises(ConcatUndefined):
            concat(a, stuck)

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_lasso_lasso_always_matches_lazy(self, s1, s2, t1, t2):
        a = TimedWord.lasso([], [("a", t1)], shift=s1)
        b = TimedWord.lasso([], [("b", t2)], shift=s2)
        exact = concat(a, b)
        lazy = _functional_merge(a, b)
        assert exact.take(120) == lazy.take(120)


class TestConcatMany:
    def test_left_fold(self):
        words = [
            TimedWord.finite([("a", 0)]),
            TimedWord.finite([("b", 1)]),
            TimedWord.finite([("c", 2)]),
        ]
        assert concat_many(words).take(3) == [("a", 0), ("b", 1), ("c", 2)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_many([])


class TestNaiveConcatAblation:
    """The paper's point: naive concatenation usually breaks
    monotonicity — this is the E15 ablation in miniature."""

    def test_naive_breaks_monotonicity(self):
        a = TimedWord.finite([("a", 9)])
        b = TimedWord.finite([("b", 1)])
        bad = naive_concat(a, b)
        assert bad.is_valid() is Trilean.FALSE
        good = concat(a, b)
        assert good.is_valid() is Trilean.TRUE

    def test_naive_ok_only_when_presorted(self):
        a = TimedWord.finite([("a", 1)])
        b = TimedWord.finite([("b", 5)])
        assert naive_concat(a, b).is_valid() is Trilean.TRUE

    @settings(max_examples=100)
    @given(finite_words(max_size=6), finite_words("xy", max_size=6))
    def test_definition_35_never_fails_where_naive_may(self, a, b):
        assert concat(a, b).is_valid() is Trilean.TRUE
