"""Tests for anytime/approximate query processing (Vrbsky [34])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtdb import (
    AnytimeEvaluator,
    DatabaseInstance,
    DatabaseSchema,
    Difference,
    NaturalJoin,
    NonMonotoneQueryError,
    Projection,
    Relation,
    RelationSchema,
    Selection,
    figure2_query,
    ngc_example,
)


@pytest.fixture
def evaluator():
    return AnytimeEvaluator(figure2_query(), ngc_example())


class TestGuarantees:
    def test_subset_guarantee_at_every_budget(self, evaluator):
        """Vrbsky's certainty property: every partial answer is a
        subset of the exact one."""
        exact = evaluator.exact()
        for budget in range(0, evaluator.total_inputs + 2):
            ans = evaluator.evaluate(budget)
            assert ans.tuples <= exact, budget

    def test_monotone_improvement(self, evaluator):
        sizes = [
            len(evaluator.evaluate(b).tuples)
            for b in range(0, evaluator.total_inputs + 1)
        ]
        assert sizes == sorted(sizes)

    def test_full_budget_is_exact(self, evaluator):
        ans = evaluator.evaluate(evaluator.total_inputs)
        assert ans.exhausted
        assert ans.tuples == evaluator.exact()
        assert ans.completeness == 1.0

    def test_zero_budget_is_empty(self, evaluator):
        ans = evaluator.evaluate(0)
        assert ans.tuples == set()
        assert ans.completeness == 0.0

    def test_difference_rejected(self):
        db = ngc_example()
        q = Difference(Relation("Schedules"), Relation("Schedules"))
        with pytest.raises(NonMonotoneQueryError):
            AnytimeEvaluator(q, db)

    def test_negative_budget_rejected(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate(-1)


class TestQualityCurve:
    def test_recall_reaches_one(self, evaluator):
        curve = evaluator.quality_curve([0, 3, 6, 9, 12])
        recalls = [rec for _b, _c, rec in curve]
        assert recalls[-1] == 1.0
        assert recalls == sorted(recalls)

    def test_recall_empty_exact_is_one(self):
        db = ngc_example()
        q = Selection(Relation("Schedules"), "City", "=", "Nowhere")
        ev = AnytimeEvaluator(q, db)
        assert ev.evaluate(1).recall_against(ev.exact()) == 1.0


class TestRoundRobin:
    def test_budget_spread_across_relations(self):
        """Join queries need tuples from both sides early; round-robin
        consumption gives joins a chance at small budgets."""
        ev = AnytimeEvaluator(
            NaturalJoin(Relation("Exhibitions"), Relation("Schedules")),
            ngc_example(),
        )
        ans = ev.evaluate(4)  # 2 from each relation
        assert ans.consumed == 4
        # with 2 exhibitions + 2 schedules consumed, a match can exist
        assert isinstance(ans.tuples, set)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=12))
    def test_subset_property_random_instances(self, rows):
        rs = RelationSchema("R", ("A", "B"))
        db = DatabaseInstance(DatabaseSchema([rs]))
        for row in rows:
            db.insert("R", row)
        q = Projection(Selection(Relation("R"), "A", ">=", 2), ("B",))
        ev = AnytimeEvaluator(q, db)
        exact = ev.exact()
        for b in range(0, len(rows) + 1, max(1, len(rows) // 3 or 1)):
            assert ev.evaluate(b).tuples <= exact
