"""Tests for repro.query.grammar — the text form of the query algebra."""

import pytest

from repro.query import AndQuery, ChainQuery, OrQuery, ParseError, Q, parse, to_text


# ------------------------------------------------------------ parsing


def test_parse_chain_with_modifiers():
    q = parse("req ; rsp after 1 within 5")
    assert q == Q.event("req").then("rsp").after(1).within(5)


def test_parse_omega_closers():
    assert parse("repeat(hb within 10)") == Q.event("hb").within(10).repeat()
    assert parse("once(a ; b)") == Q.event("a").then("b").once()


def test_parse_deadline_with_grace():
    assert parse("once(job deadline 7 grace 2)") == (
        Q.event("job").deadline(7, grace=2).once()
    )
    # Firm: deadline 7 == window [0, 6].
    assert parse("job deadline 7") == Q.event("job").deadline(7)


def test_parse_precedence_and_parens():
    q = parse("a | b & c")
    assert isinstance(q, OrQuery)
    assert isinstance(q.parts[1], AndQuery)
    grouped = parse("(a | b) & c")
    assert isinstance(grouped, AndQuery)
    assert isinstance(grouped.parts[0], OrQuery)


def test_parse_errors():
    for text in (
        "",
        "   ",
        "a ;",
        "; a",
        "a within",
        "within 3",
        "a deadline",
        "repeat(a",
        "a b",  # two names, no separator
        "a ! b",  # untokenizable
        "repeat(a) extra",  # trailing
    ):
        with pytest.raises(ParseError):
            parse(text)


def test_reserved_words_are_not_event_names():
    with pytest.raises(ParseError):
        parse("within ; a")


# ---------------------------------------------------------- rendering


ROUND_TRIPS = [
    "a",
    "a ; b within 5",
    "req ; rsp after 1 within 5",
    "repeat(hb within 10)",
    "once(a ; b within 3)",
    "a within 3 | b after 1 within 4",
    "repeat(a) & once(b)",
    "(a | b) & repeat(c)",
]


@pytest.mark.parametrize("text", ROUND_TRIPS)
def test_text_round_trips(text):
    q = parse(text)
    assert to_text(q) == text
    assert parse(to_text(q)) == q


def test_builder_round_trips_through_text():
    q = (Q.event("req").then("rsp").within(5).repeat()
         | Q.event("job").deadline(7, grace=2).once())
    assert parse(q.to_text()) == q


def test_deadline_renders_as_normalized_window():
    # deadline is sugar for its normalized window; the text form keeps
    # the window (the §4.1 bound the oracle accepts) and round-trips by
    # spec equality.
    q = Q.event("job").deadline(7, grace=2)
    assert to_text(q) == "job within 9"
    assert parse(to_text(q)).spec() == q.spec()


def test_unrenderable_action_raises():
    q = Q.event(("tuple", "action"))
    with pytest.raises(ValueError, match="no text form"):
        to_text(q)
    with pytest.raises(ValueError, match="no text form"):
        to_text(Q.event("within"))


def test_exactly_window_omits_within():
    # lo == hi > 0 renders as "after N" alone and still round-trips.
    q = Q.event("a", 2, 2)
    assert to_text(q) == "a after 2"
    assert parse(to_text(q)) == q
