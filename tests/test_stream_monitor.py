"""Tests for repro.stream monitors — incremental verdicts online.

The load-bearing invariant: judging a word online, one event at a
time, agrees with the batch ``lasso-exact`` judgement on the full
property-test corpus (zero disagreements).  Plus watermark/late-event
regressions and the TBAMonitor's exact-liveness semantics.
"""

import random

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import Verdict, clear_caches, compiled_tba, decide
from repro.kernel import And, Ge, Le, TrueConstraint
from repro.machine import RealTimeAlgorithm
from repro.stream import (
    LateEventError,
    Monitor,
    StreamVerdict,
    TBAMonitor,
    analysis_for,
    events_of,
)
from repro.words import TimedWord


# -- corpus builders --------------------------------------------------------

def bounded_gap_tba(bound):
    """Deterministic TBA: every inter-arrival gap ≤ bound."""
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def alternating_tba():
    """Deterministic two-symbol TBA: strict a/b alternation, accepting on b."""
    return TimedBuchiAutomaton(
        "ab",
        ["s", "t"],
        "s",
        [
            TimedTransition.make("s", "t", "a", resets=["x"], guard=Le("x", 4)),
            TimedTransition.make("t", "s", "b", resets=["x"], guard=Le("x", 4)),
        ],
        ["x"],
        ["s"],
    )


def window_tba():
    """Deterministic TBA: gaps must land in the window [1, 3]."""
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [
            TimedTransition.make(
                "s", "s", "a", resets=["x"], guard=And(Ge("x", 1), Le("x", 3))
            )
        ],
        ["x"],
        ["s"],
    )


TBA_FAMILY = [bounded_gap_tba(1), bounded_gap_tba(2), alternating_tba(), window_tba()]


def random_lasso(rng, alphabet):
    """A random lasso word: short prefix, short loop, gaps in 1..4."""
    alphabet = sorted(alphabet)
    t = 0
    prefix = []
    for _ in range(rng.randint(0, 4)):
        t += rng.randint(1, 4)
        prefix.append((rng.choice(alphabet), t))
    start = prefix[-1][1] if prefix else 0
    loop = []
    for _ in range(rng.randint(1, 3)):
        t += rng.randint(1, 4)
        loop.append((rng.choice(alphabet), t))
    return TimedWord.lasso(prefix, loop, shift=loop[-1][1] - start)


def make_parity_word(n, member):
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_parity_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


def report_key(report):
    return (report.verdict, report.f_count, report.decided_at, report.space_peak)


# -- stream-vs-batch agreement ---------------------------------------------

class TestOnlineBatchAgreement:
    def test_compiled_tba_corpus_zero_disagreements(self):
        """~60 seeded (automaton, lasso word) cases: the online strategy
        must render the identical report the batch judge does."""
        clear_caches()
        disagreements = []
        for ti, tba in enumerate(TBA_FAMILY):
            acceptor = compiled_tba(tba)
            rng = random.Random(1000 + ti)
            for wi in range(15):
                word = random_lasso(rng, tba.alphabet)
                batch = decide(acceptor, word, horizon=300, strategy="lasso-exact")
                online = decide(
                    acceptor, word, horizon=300, strategy="online-incremental"
                )
                if report_key(batch) != report_key(online):
                    disagreements.append((ti, wi, batch, online))
        assert disagreements == []

    def test_machine_acceptor_agreement_covers_all_verdicts(self):
        for n in (4, 8, 16):
            for member in (True, False):
                word = make_parity_word(n, member)
                batch = decide(make_parity_acceptor(), word, horizon=2_000)
                online = decide(
                    make_parity_acceptor(),
                    word,
                    horizon=2_000,
                    strategy="online-incremental",
                )
                assert report_key(batch) == report_key(online)
                assert online.accepted == member
                assert online.strategy == "online-incremental"
                assert online.evidence["events_ingested"] > 0

    def test_online_strategy_stops_at_absorbing_verdict(self):
        # A rejecting word decides early; the monitor must not ingest
        # the entire horizon's worth of events past that point.
        tba = bounded_gap_tba(2)
        word = TimedWord.lasso([("a", 1), ("a", 10)], [("a", 11)], shift=1)
        report = decide(
            compiled_tba(tba), word, horizon=5_000, strategy="online-incremental"
        )
        assert report.verdict is Verdict.REJECT
        assert report.evidence["events_ingested"] <= 3


# -- the generic machine monitor -------------------------------------------

class TestMonitor:
    def test_verdict_so_far_tracks_f_obligations(self):
        tba = bounded_gap_tba(2)
        monitor = Monitor(compiled_tba(tba))
        assert monitor.verdict is StreamVerdict.INCONCLUSIVE
        v = monitor.ingest("a", 1)
        assert v is StreamVerdict.ACCEPTING  # an f per accepting visit
        assert monitor.f_count >= 1

    def test_rejection_is_absorbing(self):
        tba = bounded_gap_tba(2)
        monitor = Monitor(compiled_tba(tba))
        monitor.ingest("a", 1)
        assert monitor.ingest("a", 10) is StreamVerdict.REJECTED
        assert monitor.absorbed
        # further events are no-ops, not errors
        assert monitor.ingest("a", 11) is StreamVerdict.REJECTED

    def test_f_window_degrades_stalled_stream(self):
        tba = bounded_gap_tba(10)
        monitor = Monitor(compiled_tba(tba), f_window=2)
        assert monitor.ingest("a", 1) is StreamVerdict.ACCEPTING
        # the next event arrives 8 chronons later: the last f is stale
        # at ingestion time even though the step itself re-accepts
        # (the new f lands at t, so the verdict recovers immediately)
        v = monitor.ingest("a", 9)
        assert v is StreamVerdict.ACCEPTING
        assert monitor.f_count == 2

    def test_finish_matches_batch_report(self):
        word = make_parity_word(8, True)
        monitor = Monitor(make_parity_acceptor())
        for symbol, t in events_of(word, until=200):
            monitor.ingest(symbol, t)
            if monitor.absorbed:
                break
        online = monitor.finish(2_000)
        batch = decide(make_parity_acceptor(), word, horizon=2_000)
        assert report_key(online) == report_key(batch)
        assert online.evidence["events_released"] == monitor.events_released

    def test_keep_history_records_released_events(self):
        monitor = Monitor(make_parity_acceptor(), keep_history=True)
        monitor.ingest(2, 0)
        monitor.ingest(1, 1)
        assert monitor.history == [(2, 0), (1, 1)]


# -- watermark / out-of-order ----------------------------------------------

class TestWatermark:
    def test_watermark_none_before_first_event(self):
        monitor = TBAMonitor(bounded_gap_tba(2), lateness=2)
        assert monitor.watermark is None
        monitor.ingest("a", 5)
        assert monitor.watermark == 3

    def test_out_of_order_within_lateness_is_buffered_and_reordered(self):
        monitor = Monitor(
            make_parity_acceptor(), lateness=3, keep_history=True
        )
        monitor.ingest(3, 2)  # arrives first ...
        monitor.ingest(3, 1)  # ... but t=1 precedes it
        monitor.ingest(2, 0)
        monitor.ingest("w", 6)  # watermark 3: releases 0,1,2
        assert [t for _s, t in monitor.history] == [0, 1, 2]
        assert monitor.pending == 1
        monitor.flush()
        assert [t for _s, t in monitor.history] == [0, 1, 2, 6]
        assert monitor.pending == 0

    def test_late_event_raises_by_default(self):
        monitor = TBAMonitor(bounded_gap_tba(2), lateness=1)
        monitor.ingest("a", 10)
        with pytest.raises(LateEventError):
            monitor.ingest("a", 5)
        assert monitor.late_events == 1

    def test_late_event_drop_policy_counts_and_discards(self):
        monitor = TBAMonitor(bounded_gap_tba(2), lateness=1, late_policy="drop")
        monitor.ingest("a", 10)
        v = monitor.ingest("a", 5)
        assert v is monitor.verdict
        assert monitor.late_events == 1
        assert monitor.events_ingested == 1  # the late event never counted

    def test_lateness_zero_applies_immediately(self):
        monitor = TBAMonitor(bounded_gap_tba(2))
        monitor.ingest("a", 1)
        assert monitor.pending == 0
        assert monitor.events_released == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="lateness"):
            TBAMonitor(bounded_gap_tba(2), lateness=-1)
        with pytest.raises(ValueError, match="late_policy"):
            TBAMonitor(bounded_gap_tba(2), late_policy="ignore")
        with pytest.raises(ValueError, match="negative timestamp"):
            TBAMonitor(bounded_gap_tba(2)).ingest("a", -1)


# -- the direct TBA monitor -------------------------------------------------

class TestTBAMonitor:
    def test_rejection_agrees_with_lasso_membership(self):
        """REJECTED is exact: whenever the monitor rejects a lasso's
        prefix, the lasso is genuinely outside the language."""
        for ti, tba in enumerate(TBA_FAMILY):
            rng = random.Random(2000 + ti)
            for _ in range(15):
                word = random_lasso(rng, tba.alphabet)
                monitor = TBAMonitor(tba)
                for symbol, t in events_of(word, until=200):
                    monitor.ingest(symbol, t)
                    if monitor.absorbed:
                        break
                if monitor.verdict is StreamVerdict.REJECTED:
                    assert not tba.accepts_lasso(word)

    def test_green_lock_on_total_accepting_tba(self):
        tba = TimedBuchiAutomaton(
            "a",
            ["s"],
            "s",
            [TimedTransition.make("s", "s", "a", guard=TrueConstraint())],
            [],
            ["s"],
        )
        analysis = analysis_for(tba)
        assert analysis.deterministic
        assert analysis.green  # every continuation accepts
        monitor = TBAMonitor(tba)
        assert monitor.verdict is StreamVerdict.ACCEPTING
        assert monitor.absorbed  # the guarantee is absorbing

    def test_no_green_guarantee_for_nondeterministic_tba(self):
        tba = TimedBuchiAutomaton(
            "a",
            ["s", "t"],
            "s",
            [
                TimedTransition.make("s", "s", "a", guard=TrueConstraint()),
                TimedTransition.make("s", "t", "a", guard=TrueConstraint()),
                TimedTransition.make("t", "t", "a", guard=TrueConstraint()),
            ],
            [],
            ["s"],
        )
        analysis = analysis_for(tba)
        assert not analysis.deterministic
        assert analysis.green == frozenset()

    def test_guard_violation_rejects_immediately(self):
        monitor = TBAMonitor(bounded_gap_tba(2))
        assert monitor.ingest("a", 1) is StreamVerdict.ACCEPTING
        assert monitor.ingest("a", 10) is StreamVerdict.REJECTED
        assert monitor.absorbed
        # absorbed: the step is a no-op
        monitor.ingest("a", 11)
        assert monitor.verdict is StreamVerdict.REJECTED

    def test_f_window_inconclusive_between_accepting_visits(self):
        monitor = TBAMonitor(alternating_tba(), f_window=0)
        assert monitor.ingest("a", 1) is StreamVerdict.INCONCLUSIVE
        assert monitor.ingest("b", 2) is StreamVerdict.ACCEPTING
        assert monitor.ingest("a", 3) is StreamVerdict.INCONCLUSIVE
        assert monitor.verdict_flips >= 2

    def test_accept_visits_counted(self):
        monitor = TBAMonitor(bounded_gap_tba(2))
        for t in (1, 2, 3):
            monitor.ingest("a", t)
        assert monitor.accept_visits == 3

    def test_analysis_cached_per_automaton(self):
        tba = bounded_gap_tba(3)
        assert analysis_for(tba) is analysis_for(tba)


class TestStreamVerdict:
    def test_projection_onto_batch_vocabulary(self):
        assert StreamVerdict.ACCEPTING.as_verdict() is Verdict.ACCEPT
        assert StreamVerdict.REJECTED.as_verdict() is Verdict.REJECT
        assert StreamVerdict.INCONCLUSIVE.as_verdict() is Verdict.UNDECIDED
