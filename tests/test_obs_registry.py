"""Metric registry semantics: counters, gauges, exact histograms, labels."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricError, MetricRegistry


class TestCounter:
    def test_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(MetricError):
            Counter("c").inc(-1)

    def test_invalid_name(self):
        with pytest.raises(MetricError):
            Counter("9bad name!")


class TestGauge:
    def test_set_inc_dec_and_peak(self):
        g = Gauge("g")
        g.set(3)
        g.inc(2)
        g.dec(4)
        assert g.value == 1
        assert g.peak == 5

    def test_dec_does_not_move_peak(self):
        g = Gauge("g")
        g.set(2)
        g.dec(10)
        assert g.value == -8 and g.peak == 2


class TestHistogram:
    def test_exact_quantiles(self):
        h = Histogram("h")
        for v in [5, 1, 3, 2, 4]:  # insertion order must not matter
            h.observe(v)
        assert h.quantile(0) == 1
        assert h.quantile(1) == 5
        assert h.quantile(0.5) == 3
        assert h.quantile(0.25) == 2
        assert h.count == 5 and h.sum == 15
        assert h.min == 1 and h.max == 5

    def test_quantile_interpolates(self):
        h = Histogram("h")
        h.observe(0)
        h.observe(10)
        assert h.quantile(0.5) == 5
        assert h.quantile(0.9) == 9

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        assert h.min is None and h.max is None
        assert h.sample()["count"] == 0

    def test_quantile_domain(self):
        with pytest.raises(MetricError):
            Histogram("h").quantile(1.5)

    def test_order_independence(self):
        a, b = Histogram("a"), Histogram("b")
        for v in [3, 1, 2]:
            a.observe(v)
        for v in [1, 2, 3]:
            b.observe(v)
        sa, sb = a.sample(), b.sample()
        sa.pop("name"), sb.pop("name")
        assert sa == sb


class TestLabels:
    def test_children_are_cached(self):
        c = Counter("adhoc.sent")
        assert c.labels(protocol="aodv") is c.labels(protocol="aodv")
        assert c.labels(protocol="aodv") is not c.labels(protocol="dsr")

    def test_label_order_is_canonical(self):
        c = Counter("c")
        assert c.labels(a="1", b="2") is c.labels(b="2", a="1")

    def test_no_labels_returns_parent(self):
        c = Counter("c")
        assert c.labels() is c

    def test_collect_lists_children_sorted(self):
        reg = MetricRegistry()
        c = reg.counter("frames")
        c.labels(kind="data").inc(2)
        c.labels(kind="control").inc(1)
        samples = reg.collect()
        assert [s["labels"]["kind"] for s in samples] == ["control", "data"]
        assert [s["value"] for s in samples] == [1, 2]


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_collect_is_name_sorted_and_plain(self):
        reg = MetricRegistry()
        reg.gauge("b").set(1)
        reg.counter("a").inc()
        reg.histogram("c").observe(2)
        samples = reg.collect()
        assert [s["name"] for s in samples] == ["a", "b", "c"]
        assert [s["type"] for s in samples] == ["counter", "gauge", "histogram"]

    def test_reset_and_len(self):
        reg = MetricRegistry()
        reg.counter("a")
        assert len(reg) == 1 and "a" in reg
        reg.reset()
        assert len(reg) == 0 and "a" not in reg
