"""Tests for DFA minimization and the bounded-L growth experiment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    FiniteAutomaton,
    bounded_l_dfa,
    l_membership,
    minimal_states_for_bounded_l,
    minimize_dfa,
)


def ab_star_redundant():
    """a·b* with duplicated equivalent states."""
    return FiniteAutomaton(
        "ab",
        ["q0", "q1", "q1bis", "dead", "dead2"],
        "q0",
        [
            ("q0", "q1", "a"),
            ("q1", "q1bis", "b"),
            ("q1bis", "q1", "b"),
            ("q0", "dead", "b"),
            ("q1", "dead2", "a"),
            ("q1bis", "dead", "a"),
            ("dead", "dead", "a"),
            ("dead", "dead2", "b"),
            ("dead2", "dead", "a"),
            ("dead2", "dead2", "b"),
        ],
        ["q1", "q1bis"],
    )


class TestMinimize:
    def test_merges_equivalent_states(self):
        m = minimize_dfa(ab_star_redundant())
        assert len(m.states) == 3  # start, accept, sink

    def test_language_preserved(self):
        fa = ab_star_redundant()
        m = minimize_dfa(fa)
        for word in ("", "a", "ab", "abb", "abbb", "ba", "aa", "abab"):
            assert m.accepts(word) == fa.accepts(word), word

    def test_minimizing_twice_is_stable(self):
        m1 = minimize_dfa(ab_star_redundant())
        m2 = minimize_dfa(m1)
        assert len(m1.states) == len(m2.states)

    def test_nfa_input_determinized_first(self):
        nfa = FiniteAutomaton(
            "ab", [0, 1, 2], 0,
            [(0, 0, "a"), (0, 0, "b"), (0, 1, "a"), (1, 2, "b")],
            [2],
        )
        m = minimize_dfa(nfa)
        for word in ("ab", "aab", "bab", "ba", "", "abab"):
            assert m.accepts(word) == nfa.accepts(word), word

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", max_size=10))
    def test_minimized_equivalence_property(self, word):
        fa = ab_star_redundant()
        assert minimize_dfa(fa).accepts(word) == fa.accepts(word)


class TestBoundedL:
    def test_bounded_dfa_agrees_with_oracle(self):
        dfa = bounded_l_dfa(3)
        for u in range(0, 3):
            for x in range(0, 5):
                for v in range(0, 3):
                    for d in range(0, 5):
                        w = "a" * u + "b" * x + "c" * v + "d" * d
                        expected = (
                            l_membership(w) and 1 <= x <= 3 and x == d
                        )
                        assert dfa.accepts(w) == expected, w

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            bounded_l_dfa(0)

    def test_minimal_growth_is_linear(self):
        """|minimal DFA for L_X| = 3X + 3 — growing without bound, the
        mechanical complement to the fooling-set certificate."""
        sizes = {x: minimal_states_for_bounded_l(x) for x in (1, 2, 4, 8)}
        assert sizes == {1: 6, 2: 9, 4: 15, 8: 27}
        for x, n in sizes.items():
            assert n == 3 * x + 3

    def test_growth_strictly_monotone(self):
        values = [minimal_states_for_bounded_l(x) for x in range(1, 7)]
        assert all(b > a for a, b in zip(values, values[1:]))
