"""Tests for the relational model and algebra — §5.1.1, Figures 1–2."""

import pytest
from hypothesis import given, strategies as st

from repro.rtdb import (
    DatabaseInstance,
    DatabaseSchema,
    Difference,
    NaturalJoin,
    Product,
    Projection,
    Relation,
    RelationInstance,
    RelationSchema,
    Rename,
    SchemaError,
    Selection,
    Union,
    figure2_query,
    ngc_example,
)


class TestSchemas:
    def test_arity(self):
        rs = RelationSchema("R", ("A", "B", "C"))
        assert rs.arity == 3

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A", "A"))

    def test_tuple_arity_validated(self):
        rs = RelationSchema("R", ("A", "B"))
        inst = RelationInstance(rs)
        with pytest.raises(SchemaError):
            inst.add((1,))

    def test_domain_mapping_enforced(self):
        rs = RelationSchema(
            "R", ("A",), domains={"A": frozenset({"x", "y"})}
        )
        inst = RelationInstance(rs)
        inst.add(("x",))
        with pytest.raises(SchemaError):
            inst.add(("z",))

    def test_database_schema_nonempty(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([])

    def test_duplicate_relation_names_rejected(self):
        r = RelationSchema("R", ("A",))
        with pytest.raises(SchemaError):
            DatabaseSchema([r, RelationSchema("R", ("B",))])


class TestInstances:
    def test_set_semantics(self):
        rs = RelationSchema("R", ("A",))
        inst = RelationInstance(rs)
        inst.add((1,))
        inst.add((1,))
        assert len(inst) == 1

    def test_contains_and_discard(self):
        rs = RelationSchema("R", ("A", "B"))
        inst = RelationInstance(rs, [(1, 2)])
        assert (1, 2) in inst
        inst.discard((1, 2))
        assert (1, 2) not in inst

    def test_copy_independent(self):
        db = ngc_example()
        db2 = db.copy()
        db2.insert("Schedules", ("Kingston", "Terre Sauvage", "December 1999"))
        assert db.total_rows() + 1 == db2.total_rows()


class TestFigure1:
    def test_schema_matches_paper(self):
        db = ngc_example()
        assert db.schema.names() == ["Exhibitions", "Schedules"]
        assert db["Exhibitions"].schema.sort == ("Title", "Description", "Artist")
        assert db["Exhibitions"].schema.arity == 3

    def test_cardinalities_match_paper(self):
        """Fig. 1: 6 Exhibitions tuples, 3 Schedules tuples."""
        db = ngc_example()
        assert len(db["Exhibitions"]) == 6
        assert len(db["Schedules"]) == 3

    def test_sample_tuples(self):
        db = ngc_example()
        assert ("Painter of the Soil", "Works on Paper", "Schaefer") in db["Exhibitions"]
        assert ("Mexico City", "Terre Sauvage", "October 1999") in db["Schedules"]


class TestFigure2:
    def test_query_reproduces_figure_2(self):
        """The paper's query answer, tuple for tuple."""
        result = figure2_query()(ngc_example())
        assert {r.values for r in result} == {
            ("Schaefer", "St. Catharines"),
            ("Aelbrecht", "Hamilton"),
            ("Dieric", "Hamilton"),
        }

    def test_result_sort(self):
        result = figure2_query()(ngc_example())
        assert result.schema.sort == ("Artist", "City")


class TestAlgebraOperators:
    @pytest.fixture
    def db(self):
        return ngc_example()

    def test_selection(self, db):
        q = Selection(Relation("Schedules"), "City", "=", "Hamilton")
        assert len(q(db)) == 1

    def test_selection_contains(self, db):
        q = Selection(Relation("Schedules"), "Date", "contains", "1999")
        assert len(q(db)) == 3

    def test_selection_unknown_attr(self, db):
        q = Selection(Relation("Schedules"), "Nope", "=", 1)
        with pytest.raises(SchemaError):
            q(db)

    def test_selection_bad_operator(self, db):
        q = Selection(Relation("Schedules"), "City", "~", 1)
        with pytest.raises(SchemaError):
            q(db)

    def test_projection_set_semantics(self, db):
        q = Projection(Relation("Exhibitions"), ("Title",))
        assert len(q(db)) == 3  # three distinct titles among 6 rows

    def test_projection_unknown_attr(self, db):
        with pytest.raises(SchemaError):
            Projection(Relation("Exhibitions"), ("Nope",))(db)

    def test_natural_join_on_title(self, db):
        q = NaturalJoin(Relation("Exhibitions"), Relation("Schedules"))
        joined = q(db)
        # every Exhibitions row has exactly one Schedules partner
        assert len(joined) == 6
        assert set(joined.schema.sort) == {
            "Title", "Description", "Artist", "City", "Date",
        }

    def test_join_is_commutative_up_to_sort(self, db):
        a = NaturalJoin(Relation("Exhibitions"), Relation("Schedules"))(db)
        b = NaturalJoin(Relation("Schedules"), Relation("Exhibitions"))(db)
        key = lambda rel: {
            tuple(sorted(zip(rel.schema.sort, row.values))) for row in rel
        }
        assert key(a) == key(b)

    def test_rename(self, db):
        q = Rename(Relation("Schedules"), (("City", "Location"),))
        assert q(db).schema.sort == ("Location", "Title", "Date")

    def test_union_and_difference(self, db):
        nov = Selection(Relation("Schedules"), "Date", "contains", "November")
        okt = Selection(Relation("Schedules"), "Date", "contains", "October")
        assert len(Union(nov, okt)(db)) == 3
        assert len(Difference(Relation("Schedules"), nov)(db)) == 1

    def test_union_incompatible_sorts(self, db):
        with pytest.raises(SchemaError):
            Union(Relation("Schedules"), Relation("Exhibitions"))(db)

    def test_product_requires_disjoint_sorts(self, db):
        with pytest.raises(SchemaError):
            Product(Relation("Schedules"), Relation("Schedules"))(db)

    def test_product_cardinality(self, db):
        ren = Rename(
            Relation("Schedules"),
            (("City", "C2"), ("Title", "T2"), ("Date", "D2")),
        )
        q = Product(Relation("Schedules"), ren)
        assert len(q(db)) == 9

    def test_selection_projection_commute_when_attr_kept(self, db):
        """σ then π == π then σ when the selection attribute survives."""
        a = Projection(
            Selection(Relation("Schedules"), "City", "=", "Hamilton"),
            ("City", "Title"),
        )(db)
        b = Selection(
            Projection(Relation("Schedules"), ("City", "Title")),
            "City", "=", "Hamilton",
        )(db)
        assert {r.values for r in a} == {r.values for r in b}

    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12))
    def test_union_idempotent_property(self, rows):
        rs = RelationSchema("R", ("A", "B"))
        db = DatabaseInstance(DatabaseSchema([rs]))
        for row in rows:
            db.insert("R", row)
        u = Union(Relation("R"), Relation("R"))(db)
        assert {r.values for r in u} == rows

    @given(st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10))
    def test_difference_self_is_empty_property(self, rows):
        rs = RelationSchema("R", ("A", "B"))
        db = DatabaseInstance(DatabaseSchema([rs]))
        for row in rows:
            db.insert("R", row)
        assert len(Difference(Relation("R"), Relation("R"))(db)) == 0
