"""Tests for the Definition 5.1 recognition acceptors (L_aq, L_pq) and
the running RealTimeDatabase integration."""

import pytest

from repro.deadlines import DeadlineKind, DeadlineSpec, HyperbolicUsefulness
from repro.kernel import Simulator
from repro.rtdb import (
    FiringMode,
    QueryRegistry,
    RealTimeDatabase,
    RecognitionInstance,
    decide_aperiodic,
    serve_periodic,
)


REGISTRY = QueryRegistry(
    queries={
        "hot": lambda st: {(n,) for n, v in st.images.items() if v >= 25},
        "all": lambda st: {(n,) for n in st.images},
    },
    derivations={"hi": lambda a: a + 1},
    eval_cost=lambda name, st: 2,
)


def instance(spec, issue_time=12, temp=lambda t: 30):
    return RecognitionInstance(
        invariants={"unit": "c"},
        derived={"hi": ("temp",)},
        images={"temp": (3, temp)},
        query_name="hot",
        issue_time=issue_time,
        spec=spec,
    )


class TestAperiodicAcceptor:
    def test_member_accepted(self):
        inst = instance(DeadlineSpec(DeadlineKind.NONE))
        report = decide_aperiodic(REGISTRY, inst, ("temp",), horizon=3000)
        assert report.accepted

    def test_nonmember_rejected(self):
        inst = instance(DeadlineSpec(DeadlineKind.NONE))
        report = decide_aperiodic(REGISTRY, inst, ("nothot",), horizon=3000)
        assert not report.accepted

    def test_query_sees_state_at_issue_time(self):
        """Image value crosses the threshold at t=9; a query at t=12
        sees the hot value, a query whose images never reach it fails."""
        warm = instance(DeadlineSpec(DeadlineKind.NONE), temp=lambda t: 20 + t)
        report = decide_aperiodic(REGISTRY, warm, ("temp",), horizon=3000)
        assert report.accepted
        cold = instance(DeadlineSpec(DeadlineKind.NONE), temp=lambda t: 10)
        report2 = decide_aperiodic(REGISTRY, cold, ("temp",), horizon=3000)
        assert not report2.accepted

    def test_firm_deadline_met(self):
        inst = instance(DeadlineSpec(DeadlineKind.FIRM, t_d=10))
        report = decide_aperiodic(REGISTRY, inst, ("temp",), horizon=3000)
        assert report.accepted

    def test_firm_deadline_missed(self):
        slow = QueryRegistry(
            queries=REGISTRY.queries,
            derivations=REGISTRY.derivations,
            eval_cost=lambda name, st: 50,
        )
        inst = instance(DeadlineSpec(DeadlineKind.FIRM, t_d=10))
        report = decide_aperiodic(slow, inst, ("temp",), horizon=3000)
        assert not report.accepted

    def test_soft_deadline_grace(self):
        """Completion after t_d but while usefulness ≥ min: accepted."""
        slowish = QueryRegistry(
            queries=REGISTRY.queries,
            derivations=REGISTRY.derivations,
            eval_cost=lambda name, st: 6,
        )
        spec = DeadlineSpec(
            DeadlineKind.SOFT,
            t_d=4,
            usefulness=HyperbolicUsefulness(max_value=8, t_d=16),
            min_acceptable=1,
        )
        inst = instance(spec)
        report = decide_aperiodic(slowish, inst, ("temp",), horizon=3000)
        assert report.accepted

    def test_soft_deadline_exhausted(self):
        very_slow = QueryRegistry(
            queries=REGISTRY.queries,
            derivations=REGISTRY.derivations,
            eval_cost=lambda name, st: 40,
        )
        spec = DeadlineSpec(
            DeadlineKind.SOFT,
            t_d=4,
            usefulness=HyperbolicUsefulness(max_value=8, t_d=16),
            min_acceptable=2,
        )
        inst = instance(spec)
        report = decide_aperiodic(very_slow, inst, ("temp",), horizon=3000)
        assert not report.accepted


class TestPeriodicAcceptor:
    def test_all_served_counts_f_per_invocation(self):
        inst = instance(DeadlineSpec(DeadlineKind.NONE), issue_time=10)
        report = serve_periodic(
            REGISTRY, inst, candidates=lambda i: ("temp",), period=20, horizon=210
        )
        assert report.f_count == 10  # invocations at 10, 30, …, 190, 210... within horizon

    def test_failure_stops_serving(self):
        """A failed invocation imposes s_r: no further f's."""
        inst = instance(DeadlineSpec(DeadlineKind.NONE), issue_time=10)
        report = serve_periodic(
            REGISTRY,
            inst,
            candidates=lambda i: ("temp",) if i < 3 else ("bogus",),
            period=20,
            horizon=300,
        )
        assert report.f_count == 2


class TestRealTimeDatabaseIntegration:
    def _db(self, mode=FiringMode.DEFERRED):
        sim = Simulator()
        db = RealTimeDatabase(sim, lambda name, t: t * 2, derived_mode=mode)
        db.add_image("sensor", period=4)
        db.add_invariant("unit", "c")
        db.add_derived("double", ["sensor"], lambda v: v * 2)
        return sim, db

    def test_sampling_updates_images(self):
        sim, db = self._db()
        db.start_sampling(horizon=20)
        sim.run(until=20)
        assert db.images["sensor"].value() == 40
        assert len(db.images["sensor"].history) == 6  # t = 0,4,...,20

    def test_derived_refresh_follows_sampling(self):
        sim, db = self._db()
        db.start_sampling(horizon=20)
        sim.run(until=20)
        assert db.derived["double"].value() == 80

    def test_archival_snapshot(self):
        sim, db = self._db()
        db.start_sampling(horizon=20)
        sim.run(until=20)
        assert db.archival_snapshot(9)["sensor"] == 16  # sample at t=8

    def test_consistency_depends_on_period(self):
        sim, db = self._db()
        db.start_sampling(horizon=21)
        sim.run(until=21)
        # last sample at t=20, age 1 at t=21
        report = db.check_consistency(absolute_threshold=1, relative_threshold=0)
        assert report.absolute and report.relative
        sim2 = Simulator()
        db2 = RealTimeDatabase(sim2, lambda n, t: 0)
        db2.add_image("slow", period=50)
        db2.start_sampling(horizon=60)
        sim2.run(until=99)
        late = db2.check_consistency(absolute_threshold=10, relative_threshold=10)
        assert not late.absolute

    def test_double_start_rejected(self):
        sim, db = self._db()
        db.start_sampling(horizon=10)
        with pytest.raises(RuntimeError):
            db.start_sampling(horizon=10)

    def test_unknown_source_object_rejected(self):
        sim, db = self._db()
        with pytest.raises(KeyError):
            db.add_derived("bad", ["nope"], lambda v: v)
