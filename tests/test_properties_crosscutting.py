"""Cross-cutting property-based tests: algebraic laws spanning modules.

These are the invariants a user composing the library relies on:
Definition 3.5 merge laws, retiming/iteration interplay, tape/word
round trips, and determinism of the full stack.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import Simulator
from repro.machine import InputTape
from repro.words import (
    TimedWord,
    Trilean,
    concat,
    delay,
    filter_symbols,
    is_subsequence,
    iterate_omega,
    relabel,
    stretch,
)


def finite_words(tag="a", max_size=6):
    return st.lists(
        st.integers(0, 10), min_size=0, max_size=max_size
    ).map(lambda ts: TimedWord.finite([(f"{tag}{i}", t) for i, t in enumerate(sorted(ts))]))


class TestMergeAlgebra:
    @settings(max_examples=100)
    @given(finite_words("a"), finite_words("b"), finite_words("c"))
    def test_concat_associative_on_disjoint_alphabets(self, a, b, c):
        """(a·b)·c = a·(b·c) when symbols are distinct: both sides are
        the unique stable 3-way merge with priority a > b > c."""
        assert concat(concat(a, b), c) == concat(a, concat(b, c))

    @settings(max_examples=100)
    @given(finite_words("a"), finite_words("b"))
    def test_concat_length_and_multiset(self, a, b):
        m = concat(a, b)
        assert len(m) == len(a) + len(b)
        assert sorted(map(repr, m.take(len(m)))) == sorted(
            map(repr, a.take(len(a)) + b.take(len(b)))
        )

    @settings(max_examples=60)
    @given(finite_words("a"), finite_words("b"))
    def test_operand_recovery(self, a, b):
        """filter ∘ concat recovers each operand exactly."""
        m = concat(a, b)
        back_a = filter_symbols(m, lambda s: s.startswith("a"))
        back_b = filter_symbols(m, lambda s: s.startswith("b"))
        assert back_a == a
        assert back_b == b


class TestRetimingAlgebra:
    @settings(max_examples=60)
    @given(finite_words(), st.integers(0, 8), st.integers(0, 8))
    def test_delay_composes_additively(self, w, d1, d2):
        assert delay(delay(w, d1), d2) == delay(w, d1 + d2)

    @settings(max_examples=60)
    @given(finite_words(), st.integers(1, 4), st.integers(1, 4))
    def test_stretch_composes_multiplicatively(self, w, f1, f2):
        assert stretch(stretch(w, f1), f2) == stretch(w, f1 * f2)

    @settings(max_examples=60)
    @given(finite_words("a"), finite_words("b"), st.integers(1, 4))
    def test_stretch_distributes_over_concat(self, a, b, f):
        assert stretch(concat(a, b), f) == concat(stretch(a, f), stretch(b, f))

    @settings(max_examples=40)
    @given(finite_words(), st.integers(0, 6))
    def test_relabel_delay_commute(self, w, d):
        up = lambda s: s.upper()
        assert relabel(delay(w, d), up) == delay(relabel(w, up), d)


class TestIterateOmega:
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=5))
    def test_iteration_well_behaved(self, ts):
        w = TimedWord.finite([(i, t) for i, t in enumerate(sorted(ts))])
        ww = iterate_omega(w)
        assert ww.is_well_behaved() is Trilean.TRUE

    def test_copies_do_not_interleave(self):
        w = TimedWord.finite([("x", 0), ("y", 3)])
        ww = iterate_omega(w)
        assert ww.take(4) == [("x", 0), ("y", 3), ("x", 4), ("y", 7)]

    def test_explicit_period_spacing(self):
        w = TimedWord.finite([("x", 0)])
        ww = iterate_omega(w, period=10)
        assert [t for _s, t in ww.take(3)] == [0, 10, 20]

    def test_too_small_period_rejected(self):
        w = TimedWord.finite([("x", 0), ("y", 5)])
        with pytest.raises(ValueError):
            iterate_omega(w, period=3)

    def test_infinite_or_empty_rejected(self):
        with pytest.raises(ValueError):
            iterate_omega(TimedWord.lasso([], [("x", 1)], 1))
        with pytest.raises(ValueError):
            iterate_omega(TimedWord.finite([]))

    def test_each_copy_is_subsequence(self):
        w = TimedWord.finite([("p", 1), ("q", 2)])
        ww = iterate_omega(w)
        window = ww.take(10)
        assert is_subsequence(w.take(2), window)


class TestTapeWordRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(finite_words(max_size=5))
    def test_tape_delivers_exactly_the_word(self, w):
        sim = Simulator()
        tape = InputTape(sim, w)
        got = []

        def reader(sim):
            for _ in range(len(w)):
                pair = yield tape.read()
                got.append(pair)

        sim.process(reader(sim))
        sim.run()
        assert got == w.take(len(w))

    @settings(max_examples=30, deadline=None)
    @given(finite_words(max_size=5))
    def test_arrival_times_respected(self, w):
        """Each pair is delivered at exactly its timestamp."""
        sim = Simulator()
        tape = InputTape(sim, w)
        stamps = []

        def reader(sim):
            for _ in range(len(w)):
                _pair = yield tape.read()
                stamps.append(sim.now)

        sim.process(reader(sim))
        sim.run()
        assert stamps == [t for _s, t in w.take(len(w))]
