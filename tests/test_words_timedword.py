"""Tests for timed ω-words — Definition 3.2 and the §3.2 embedding."""

import pytest
from hypothesis import given, strategies as st

from repro.words import OMEGA, TimedWord, Trilean


def simple_lasso(shift=1):
    return TimedWord.lasso([("a", 0)], [("b", 1), ("c", 1)], shift=shift)


class TestConstruction:
    def test_finite_word(self):
        w = TimedWord.finite([("a", 0), ("b", 2)])
        assert w.is_finite and len(w) == 2
        assert w[1] == ("b", 2)

    def test_from_parts_zips(self):
        w = TimedWord.from_parts("abc", [0, 1, 2])
        assert w.take(3) == [("a", 0), ("b", 1), ("c", 2)]

    def test_from_parts_length_mismatch(self):
        with pytest.raises(ValueError):
            TimedWord.from_parts("ab", [0])

    def test_lasso_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            TimedWord.lasso([("a", 0)], [], 1)

    def test_lasso_indexing_shifts_times(self):
        w = simple_lasso(shift=2)
        assert w.take(5) == [("a", 0), ("b", 1), ("c", 1), ("b", 3), ("c", 3)]

    def test_infinite_length_is_omega(self):
        assert simple_lasso().length == OMEGA
        with pytest.raises(TypeError):
            len(simple_lasso())


class TestClassicEmbedding:
    """Section 3.2: classical words embed with τ = 00…0 and are never
    well-behaved — the crisp real-time/classical delimitation."""

    def test_embedding_times_are_zero(self):
        w = TimedWord.from_classic("hello")
        assert all(t == 0 for _s, t in w.take(5))

    def test_embedding_is_a_timed_word(self):
        w = TimedWord.from_classic("hello")
        assert w.is_valid() is Trilean.TRUE

    def test_embedding_is_never_well_behaved(self):
        w = TimedWord.from_classic("hello")
        assert w.is_well_behaved() is Trilean.FALSE

    @given(st.text(alphabet="abc", min_size=1, max_size=20))
    def test_embedding_never_well_behaved_property(self, text):
        assert TimedWord.from_classic(text).is_well_behaved() is Trilean.FALSE


class TestAvailability:
    """Definition 3.3 semantics: σᵢ unavailable before τᵢ."""

    def test_available_by_respects_timestamps(self):
        w = TimedWord.finite([("a", 0), ("b", 3), ("c", 7)])
        assert w.available_by(0) == [("a", 0)]
        assert w.available_by(3) == [("a", 0), ("b", 3)]
        assert w.available_by(10) == w.take(3)

    def test_available_by_on_lasso(self):
        w = TimedWord.lasso([], [("x", 1)], shift=1)
        assert len(w.available_by(5)) == 5

    @given(st.integers(0, 30))
    def test_available_symbols_all_within_bound(self, t):
        w = TimedWord.lasso([("h", 0)], [("x", 2)], shift=3)
        for _s, ti in w.available_by(t):
            assert ti <= t


class TestPredicates:
    def test_valid_detects_nonmonotone(self):
        w = TimedWord.finite([("a", 5), ("b", 3)])
        assert w.is_valid() is Trilean.FALSE

    def test_well_behaved_lasso(self):
        assert simple_lasso(shift=1).is_well_behaved() is Trilean.TRUE
        assert simple_lasso(shift=0).is_well_behaved() is Trilean.FALSE

    def test_occurs_infinitely_on_lasso(self):
        w = simple_lasso()
        assert w.occurs_infinitely("b") is Trilean.TRUE
        assert w.occurs_infinitely("a") is Trilean.FALSE

    def test_occurs_infinitely_finite_word(self):
        w = TimedWord.finite([("f", 0)])
        assert w.occurs_infinitely("f") is Trilean.FALSE

    def test_count_symbol(self):
        w = simple_lasso()
        assert w.count_symbol("b", 7) == 3  # indices 1, 3, 5


class TestEquality:
    def test_finite_equality(self):
        a = TimedWord.finite([("a", 0), ("b", 1)])
        b = TimedWord.finite([("a", 0), ("b", 1)])
        c = TimedWord.finite([("a", 0), ("b", 2)])
        assert a == b and a != c
        assert hash(a) == hash(b)

    def test_lasso_equality_different_representations(self):
        # (ab)^ω with shift 2 == a(ba)^ω suitably phased
        a = TimedWord.lasso([], [("x", 1), ("y", 2)], shift=2)
        b = TimedWord.lasso([("x", 1)], [("y", 2), ("x", 3)], shift=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_lasso_unrolled_equality(self):
        a = TimedWord.lasso([], [("x", 1)], shift=1)
        b = TimedWord.lasso([("x", 1), ("x", 2)], [("x", 3)], shift=1)
        assert a == b

    def test_lasso_different_shift_unequal(self):
        a = TimedWord.lasso([], [("x", 1)], shift=1)
        b = TimedWord.lasso([], [("x", 1)], shift=2)
        assert a != b

    def test_finite_vs_lasso_unequal(self):
        assert TimedWord.finite([("x", 1)]) != TimedWord.lasso([], [("x", 1)], 1)

    def test_equal_up_to(self):
        a = TimedWord.lasso([], [("x", 1)], shift=1)
        b = TimedWord.lasso([], [("x", 1)], shift=2)
        assert a.equal_up_to(b, 1)
        assert not a.equal_up_to(b, 3)

    @given(st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 9)),
                    min_size=1, max_size=8))
    def test_prefix_word_roundtrip(self, pairs):
        pairs = sorted(pairs, key=lambda p: p[1])
        w = TimedWord.finite(pairs)
        assert w.prefix_word(len(pairs)) == w


class TestTimeSequenceView:
    def test_lasso_view_matches(self):
        w = simple_lasso(shift=4)
        ts = w.time_sequence
        assert ts.take(6) == [t for _s, t in w.take(6)]

    def test_functional_view(self):
        w = TimedWord.functional(lambda i: ("z", 2 * i))
        assert w.time_sequence.take(4) == [0, 2, 4, 6]
