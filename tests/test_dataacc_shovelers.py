"""Tests for the p-shovelers problem (Luccio–Pagli [26, 27])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataacc import (
    InsertionSortSolver,
    PolynomialArrivalLaw,
    PrefixSumSolver,
    minimum_processors,
    parallel_termination_time,
    run_parallel_dalgorithm,
    run_dalgorithm,
    strict_parallel_termination_time,
    termination_time,
)


class TestAnalysis:
    def test_p1_reduces_to_sequential(self):
        law = PolynomialArrivalLaw(n=64, k=0.5, beta=1.0)
        assert parallel_termination_time(law, 1, 1) == termination_time(law, 1)

    def test_more_processors_never_slower(self):
        law = PolynomialArrivalLaw(n=100, k=0.5, beta=1.0)
        times = [parallel_termination_time(law, 1, p) for p in (1, 2, 4, 8)]
        assert all(t is not None for t in times)
        assert times == sorted(times, reverse=True)

    def test_parallelism_rescues_divergence(self):
        """The paper's 'difference between success and failure'."""
        law = PolynomialArrivalLaw(n=32, k=2.5, beta=1.0)  # ck = 2.5 > 1
        assert parallel_termination_time(law, 1, 1, horizon=20_000) is None
        assert parallel_termination_time(law, 1, 3, horizon=20_000) is not None

    def test_minimum_processors_closed_form_beta1(self):
        for k in (0.5, 1.5, 2.5, 3.9):
            law = PolynomialArrivalLaw(n=32, k=k, gamma=0.0, beta=1.0)
            p_min = minimum_processors(law, 1)
            assert p_min == int(k) + 1, (k, p_min)

    def test_minimum_processors_sublinear_is_one(self):
        law = PolynomialArrivalLaw(n=1000, k=50.0, beta=0.5)
        assert minimum_processors(law, 1) == 1

    def test_minimum_processors_gamma_dependence(self):
        """p_min grows with the beforehand amount when γ > 0."""
        p_small = minimum_processors(PolynomialArrivalLaw(n=16, k=1.0, gamma=0.5, beta=1.0), 1)
        p_large = minimum_processors(PolynomialArrivalLaw(n=256, k=1.0, gamma=0.5, beta=1.0), 1)
        assert p_small < p_large
        assert p_small == 5  # ⌊√16⌋ + 1
        assert p_large == 17  # ⌊√256⌋ + 1

    def test_superlinear_early_crossing(self):
        """β > 1 has no *asymptotic* fix, but an early crossing can
        clear the pile before the law takes off: amount(t)/t = 4/t + t
        is minimized at t=2 with value 4, so p=4 crosses there."""
        law = PolynomialArrivalLaw(n=4, k=1.0, beta=2.0)
        assert minimum_processors(law, 1, p_max=32, horizon=5_000) == 4
        assert parallel_termination_time(law, 1, 4, horizon=100) == 2
        assert parallel_termination_time(law, 1, 3, horizon=5_000) is None

    def test_invalid_arguments(self):
        law = PolynomialArrivalLaw(n=4)
        with pytest.raises(ValueError):
            parallel_termination_time(law, 1, 0)
        with pytest.raises(ValueError):
            parallel_termination_time(law, 0, 1)


class TestSimulation:
    def test_simulation_matches_strict_analysis(self):
        """The exact discrete recursion predicts the simulator."""
        for k, p in ((0.5, 1), (0.5, 2), (0.8, 2), (1.5, 3), (2.5, 4)):
            law = PolynomialArrivalLaw(n=40, k=k, gamma=0.0, beta=1.0)
            strict = strict_parallel_termination_time(law, p, horizon=10_000)
            sim = run_parallel_dalgorithm(
                PrefixSumSolver, law, data=lambda j: 1, p=p, horizon=10_000
            )
            assert sim.terminated == (strict is not None), (k, p)
            if strict is not None:
                assert sim.termination_time == strict, (k, p)

    def test_fluid_vs_strict_gap_free_law(self):
        """The model subtlety: with k ≥ 1 (an arrival every chronon),
        fluid catch-up exists for p > ck but the paper's strict
        termination ('…before another datum arrives') never happens —
        there is no arrival-free instant, for ANY p."""
        law = PolynomialArrivalLaw(n=60, k=1.5, gamma=0.0, beta=1.0)
        assert parallel_termination_time(law, 1, 2) is not None  # fluid: fine
        for p in (2, 8, 64):
            assert strict_parallel_termination_time(law, p, horizon=5_000) is None
        sim = run_parallel_dalgorithm(
            PrefixSumSolver, law, data=lambda j: 1, p=8, horizon=2_000
        )
        assert not sim.terminated  # the simulator agrees with strict

    def test_p1_simulation_equals_sequential_runner(self):
        law = PolynomialArrivalLaw(n=30, k=0.5, beta=1.0)
        seq = run_dalgorithm(InsertionSortSolver(), law, data=lambda j: j, horizon=5_000)
        par = run_parallel_dalgorithm(
            InsertionSortSolver, law, data=lambda j: j, p=1, horizon=5_000
        )
        assert par.terminated and seq.terminated
        assert par.termination_time == seq.termination_time

    def test_under_provisioned_diverges(self):
        law = PolynomialArrivalLaw(n=16, k=2.5, beta=1.0)
        sim = run_parallel_dalgorithm(
            PrefixSumSolver, law, data=lambda j: 1, p=2, horizon=2_000
        )
        assert not sim.terminated

    def test_work_is_shared(self):
        law = PolynomialArrivalLaw(n=100, k=0.5, beta=1.0)
        sim = run_parallel_dalgorithm(
            PrefixSumSolver, law, data=lambda j: 1, p=4, horizon=5_000
        )
        assert sim.terminated
        busy = [w for w in sim.per_worker if w > 0]
        assert len(busy) == 4  # everyone shoveled
        assert sum(sim.per_worker) == sim.items_processed

    def test_zero_processors_rejected(self):
        law = PolynomialArrivalLaw(n=4)
        with pytest.raises(ValueError):
            run_parallel_dalgorithm(PrefixSumSolver, law, lambda j: 1, p=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 6), st.floats(0.15, 0.95))
    def test_strict_recursion_matches_sim_property(self, p, k):
        """Across random (p, k < 1) pairs the recursion and the kernel
        simulation agree exactly (gaps exist, so termination happens)."""
        law = PolynomialArrivalLaw(n=24, k=k, gamma=0.0, beta=1.0)
        strict = strict_parallel_termination_time(law, p, horizon=4_000)
        sim = run_parallel_dalgorithm(
            PrefixSumSolver, law, data=lambda j: 1, p=p, horizon=4_000
        )
        assert sim.terminated == (strict is not None)
        if strict is not None:
            assert sim.termination_time == strict
