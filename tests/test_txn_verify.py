"""Tests for repro.txn.verify — three verification paths, one story.

The acceptance corpus below is the PR's contract: ≥200 seeded runs
*including injected crashes*, judged offline-exact (region
mathematics), offline-batched through ``decide_many`` on both the
serial and shards backends, and online through compiled
:class:`SessionMux` monitors — verdict-identical everywhere.
"""

import pytest

from repro.engine import Verdict
from repro.txn import (
    TxnConfig,
    atomicity_ok,
    corpus,
    corpus_stats,
    corpus_verdicts,
    cross_check,
    offline_batched,
    offline_exact,
    online_verdicts,
    run_workload,
    txn_verdicts,
)

CRASHY = TxnConfig(
    n_participants=2,
    d_lo=1,
    d_hi=2,
    abort_vote_rate=0.1,
    participant_crash_rate=0.2,
    coordinator_crash_rate=0.3,
    loss_rate=0.05,
)


@pytest.fixture(scope="module")
def acceptance_corpus():
    # ≥200 runs spanning both protocols, same crashy config.
    return corpus("2pc", CRASHY, 100) + corpus("3pc", CRASHY, 100, base_seed=1000)


@pytest.fixture(scope="module")
def exact(acceptance_corpus):
    return offline_exact(acceptance_corpus)


class TestAcceptanceCorpus:
    def test_corpus_is_big_and_actually_faulty(self, acceptance_corpus):
        stats = corpus_stats(acceptance_corpus)
        assert stats["runs"] >= 200
        assert stats["crashes"] > 0
        assert stats["messages_lost"] > 0
        # Outcome diversity: the sweep exercises more than happy paths.
        assert len(stats["outcomes"]) >= 3

    def test_all_paths_agree(self, acceptance_corpus):
        result = cross_check(acceptance_corpus, backends=("serial", "shards"))
        assert result.ok, result.mismatches[:5]
        assert result.runs >= 200
        # exact+online over every key, both batched backends over the
        # deterministic keys.
        assert result.checks > 4 * len(acceptance_corpus)

    def test_online_matches_exact_per_key(self, acceptance_corpus, exact):
        online, stats = online_verdicts(acceptance_corpus)
        assert set(online) == set(exact)
        assert all(online[k] is exact[k] for k in exact)
        assert stats["sessions"] > 0
        assert stats["vectorized"] > 0  # the compiled batch path engaged

    def test_shards_matches_serial_per_key(self, acceptance_corpus):
        serial = offline_batched(acceptance_corpus, backend="serial")
        shards = offline_batched(acceptance_corpus, backend="shards", workers=2)
        assert set(serial) == set(shards)
        assert all(serial[k] is shards[k] for k in serial)

    def test_every_verdict_is_decisive(self, exact):
        # Frozen/advancing tails close every word past its deadline, so
        # no path should ever be left UNDECIDED.
        assert all(v is not Verdict.UNDECIDED for v in exact.values())


class TestCombinedJudgements:
    def test_atomicity_matches_the_oracle(self, acceptance_corpus, exact):
        for i, run in enumerate(acceptance_corpus):
            tv = txn_verdicts(run, exact, i)
            assert tv["atomic"] == atomicity_ok(run), run.seed

    def test_blocked_runs_fail_blocking_freedom(self, acceptance_corpus, exact):
        blocked = [
            (i, r)
            for i, r in enumerate(acceptance_corpus)
            if r.outcome == "blocked"
        ]
        assert blocked, "corpus has no blocked run; widen the sweep"
        for i, run in blocked:
            assert not txn_verdicts(run, exact, i)["all_decided"]

    def test_uniform_outcomes_decide_every_survivor(
        self, acceptance_corpus, exact
    ):
        for i, run in enumerate(acceptance_corpus):
            if run.outcome in ("commit", "abort"):
                tv = txn_verdicts(run, exact, i)
                assert tv["all_decided"], run.seed

    def test_corpus_verdicts_aggregates(self, acceptance_corpus, exact):
        agg = corpus_verdicts(acceptance_corpus, exact)
        assert agg["runs"] == len(acceptance_corpus)
        assert 0 < agg["all_decided"] <= agg["runs"]
        assert agg["atomic"] == sum(
            1 for r in acceptance_corpus if atomicity_ok(r)
        )


class TestWorkload:
    def test_run_workload_with_monitors_and_backend(self):
        result = run_workload(
            "2pc", CRASHY, 10, monitors=True, offline_backend="serial"
        )
        assert result["runs"] == 10
        assert result["verdicts"]["runs"] == 10
        assert result["stream"]["sessions"] > 0
        assert result["offline"]["backend"] == "serial"
        assert result["offline"]["checks"] > 0
