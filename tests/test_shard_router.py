"""Tests for repro.shard.router — the sharded mux front.

The load-bearing invariant everywhere: a ShardRouter over N workers
produces *exactly* the verdicts a single in-process SessionMux would,
through crashes, recoveries, fail-overs, and rebalances.
"""

import random

import pytest

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.kernel import Le
from repro.shard import ShardError, ShardRouter
from repro.stream import SessionMux


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def traffic(sessions=30, events=1500, seed=11):
    """Mixed traffic: most gaps in-bound, some breaking the bound."""
    rng = random.Random(seed)
    clocks = {f"c-{i}": 0 for i in range(sessions)}
    out = []
    for _ in range(events):
        name = rng.choice(list(clocks))
        gap = rng.choice([1, 1, 1, 2, 2, 5])
        clocks[name] += gap
        out.append((name, "a", clocks[name]))
    return out


@pytest.fixture
def tba():
    return bounded_gap_tba()


def reference_verdicts(tba, events):
    mux = SessionMux(tba)
    for e in events:
        mux.ingest(*e)
    return mux.verdicts()


def test_verdicts_identical_to_single_mux(tba):
    events = traffic()
    with ShardRouter(tba, n_shards=3, batch_events=64) as router:
        router.ingest_batch(events)
        assert router.verdicts() == reference_verdicts(tba, events)
        stats = router.stats()
        assert stats["active"] == 30
        assert stats["opened"] == 30
        assert router.session_count == 30


def test_scalar_ingest_and_close_session(tba):
    events = traffic(sessions=6, events=200)
    ref = SessionMux(tba)
    with ShardRouter(tba, n_shards=2, batch_events=16) as router:
        for name, sym, t in events:
            router.ingest(name, sym, t)
            ref.ingest(name, sym, t)
        name = events[0][0]
        want = ref.close(name)
        got = router.close_session(name)
        assert (got.name, got.verdict, got.events_ingested) == (
            want.name, want.verdict, want.events_ingested
        )
        assert router.session_count == ref.stats()["active"]
        assert router.verdicts() == ref.verdicts()


def test_evict_idle_matches_mux(tba):
    events = [("hot", "a", t) for t in range(1, 40)] + [("cold", "a", 1)]
    ref = SessionMux(tba)
    for e in events:
        ref.ingest(*e)
    with ShardRouter(tba, n_shards=2) as router:
        router.ingest_batch(events)
        assert sorted(router.evict_idle(idle_ttl=10)) == sorted(
            ref.evict_idle(idle_ttl=10)
        )
        assert router.verdicts() == ref.verdicts()


def test_crash_then_recover_is_verdict_identical(tba):
    events = traffic(events=1200)
    head, tail = events[:700], events[700:]
    with ShardRouter(tba, n_shards=3, batch_events=50) as router:
        router.ingest_batch(head)
        router.checkpoint()
        router.ingest_batch(tail)
        victim = router.shard_ids[1]
        router.crash(victim)
        latency = router.recover(victim)
        assert latency >= 0
        assert router.verdicts() == reference_verdicts(tba, events)


def test_crash_without_checkpoint_replays_whole_journal(tba):
    events = traffic(events=400)
    with ShardRouter(tba, n_shards=2, batch_events=32) as router:
        router.ingest_batch(events)
        victim = router.shard_ids[0]
        router.crash(victim)
        router.recover(victim)
        assert router.verdicts() == reference_verdicts(tba, events)


def test_events_buffered_while_dead_are_replayed(tba):
    events = traffic(events=600)
    head, tail = events[:300], events[300:]
    with ShardRouter(tba, n_shards=2, batch_events=10_000) as router:
        router.ingest_batch(head)
        router.sync()
        victim = router.shard_ids[0]
        router.crash(victim)
        # These buffer parent-side for the dead shard (no flush raises).
        router.ingest_batch(tail)
        router.recover(victim)
        assert router.verdicts() == reference_verdicts(tba, events)


def test_fail_over_replaces_sessions_on_survivors(tba):
    events = traffic(events=1000)
    head, tail = events[:600], events[600:]
    with ShardRouter(tba, n_shards=3, batch_events=40) as router:
        router.ingest_batch(head)
        router.checkpoint()
        router.ingest_batch(tail)
        victim = router.shard_ids[0]
        router.crash(victim)
        router.fail_over(victim)
        assert victim not in router.shard_ids
        assert router.n_shards == 2
        assert router.verdicts() == reference_verdicts(tba, events)


def test_rebalance_grow_and_shrink_preserve_verdicts(tba):
    events = traffic(events=900)
    with ShardRouter(tba, n_shards=2, batch_events=64) as router:
        router.ingest_batch(events[:450])
        grown = router.rebalance(4)
        assert router.n_shards == 4
        # consistent hashing: growing 2 -> 4 moves roughly half, never all
        assert 0 < len(grown["moved"]) < router.session_count
        router.ingest_batch(events[450:])
        assert router.verdicts() == reference_verdicts(tba, events)
        shrunk = router.rebalance(2)
        assert router.n_shards == 2
        assert shrunk["moved"]
        assert router.verdicts() == reference_verdicts(tba, events)


def test_rebalance_then_crash_recovers_on_new_layout(tba):
    events = traffic(events=800)
    with ShardRouter(tba, n_shards=2, batch_events=64) as router:
        router.ingest_batch(events[:400])
        router.rebalance(3)
        router.ingest_batch(events[400:])
        victim = router.shard_ids[2]
        router.crash(victim)
        router.recover(victim)
        assert router.verdicts() == reference_verdicts(tba, events)


def test_reject_policy_errors_surface_at_sync(tba):
    with ShardRouter(
        tba,
        n_shards=2,
        batch_events=8,
        mux_kwargs={"buffer_limit": 1, "drop_policy": "reject", "lateness": 4},
    ) as router:
        # out-of-order events pile into the reorder buffer and overflow
        for i in range(12):
            router.ingest("s", "a", 10 - (i % 3))
        with pytest.raises(ShardError):
            router.sync()


def test_router_validates_configuration(tba):
    with pytest.raises(ValueError):
        ShardRouter(tba, n_shards=0)
    with pytest.raises(ValueError):
        ShardRouter(tba, mux_factory=lambda: None)
    with pytest.raises(ValueError):
        ShardRouter(mux_kwargs={"lateness": 1})
    with pytest.raises(ValueError):
        ShardRouter(tba, max_inflight=0)


def test_fail_over_refuses_last_shard(tba):
    with ShardRouter(tba, n_shards=1) as router:
        with pytest.raises(ShardError):
            router.fail_over(router.shard_ids[0])


def test_auto_checkpoint_bounds_the_journal(tba):
    events = traffic(events=600)
    with ShardRouter(
        tba, n_shards=2, batch_events=25, checkpoint_every=100
    ) as router:
        router.ingest_batch(events)
        router.sync()
        for shard in router._shards.values():
            assert len(shard.journal) <= 200
            assert shard.snapshot is not None
        victim = router.shard_ids[1]
        router.crash(victim)
        router.recover(victim)
        assert router.verdicts() == reference_verdicts(tba, events)
