"""Direct tests for the subsequence machinery (§2, used by Def. 3.5)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.words import (
    TimedWord,
    complementary_split,
    is_subsequence,
    is_timed_subsequence,
)


class TestIsSubsequence:
    def test_basic_cases(self):
        assert is_subsequence("ace", "abcde")
        assert is_subsequence("", "abc")
        assert is_subsequence("abc", "abc")
        assert not is_subsequence("aa", "a")
        assert not is_subsequence("ba", "ab")

    def test_multiset_respecting(self):
        assert is_subsequence("aab", "aaab")
        assert not is_subsequence("aaab", "aab")

    @given(st.text("ab", max_size=8), st.text("ab", max_size=8))
    def test_greedy_equals_bruteforce(self, small, big):
        """Greedy matching is complete for the subsequence relation."""
        def brute(s, b):
            if len(s) > len(b):
                return False
            return any(
                all(s[i] == b[j] for i, j in enumerate(idxs))
                for idxs in itertools.combinations(range(len(b)), len(s))
            )

        assert is_subsequence(small, big) == brute(small, big)

    @given(st.text("abc", max_size=10))
    def test_reflexive(self, word):
        assert is_subsequence(word, word)


class TestTimedSubsequence:
    def test_finite_in_finite(self):
        small = TimedWord.finite([("a", 1), ("c", 5)])
        big = TimedWord.finite([("a", 1), ("b", 3), ("c", 5)])
        assert is_timed_subsequence(small, big)
        assert not is_timed_subsequence(big, small)

    def test_finite_in_lasso(self):
        small = TimedWord.finite([("w", 2), ("w", 4)])
        big = TimedWord.lasso([], [("w", 1)], shift=1)
        assert is_timed_subsequence(small, big)

    def test_finite_not_in_lasso_wrong_times(self):
        small = TimedWord.finite([("w", 2), ("w", 2)])  # two at time 2
        big = TimedWord.lasso([], [("w", 1)], shift=1)  # one per chronon
        assert not is_timed_subsequence(small, big)

    def test_empty_always_subsequence(self):
        big = TimedWord.lasso([], [("x", 1)], shift=1)
        assert is_timed_subsequence(TimedWord.finite([]), big)


class TestComplementarySplit:
    def test_valid_interleaving(self):
        a = [("a", 0), ("a", 2)]
        b = [("b", 1)]
        merged = [("a", 0), ("b", 1), ("a", 2)]
        assert complementary_split(merged, a, b)

    def test_length_mismatch(self):
        assert not complementary_split([("a", 0)], [("a", 0)], [("b", 1)])

    def test_wrong_symbol_rejected(self):
        a = [("a", 0)]
        b = [("b", 1)]
        assert not complementary_split([("a", 0), ("x", 1)], a, b)

    def test_ambiguous_interleaving_needs_dp(self):
        """A case where greedy assignment to one operand fails but the
        DP finds the split: identical symbols in both operands."""
        a = [("x", 0), ("y", 1)]
        b = [("x", 0)]
        merged = [("x", 0), ("x", 0), ("y", 1)]
        assert complementary_split(merged, a, b)
        assert complementary_split(merged, b, a)

    def test_order_within_operand_enforced(self):
        a = [("p", 0), ("q", 1)]
        merged = [("q", 1), ("p", 0)]
        assert not complementary_split(merged, a, [])

    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 5)), max_size=5),
        st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 5)), max_size=5),
    )
    def test_any_true_interleaving_accepted(self, a, b):
        """Zip-style interleavings of the operands always validate."""
        merged = []
        ia = ib = 0
        # deterministic alternation interleaving
        while ia < len(a) or ib < len(b):
            if ia < len(a):
                merged.append(a[ia])
                ia += 1
            if ib < len(b):
                merged.append(b[ib])
                ib += 1
        assert complementary_split(merged, a, b)
