"""Tests for Section 4.2: the data-accumulating paradigm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataacc import (
    Correction,
    CorrectingSortSolver,
    DataAccInstance,
    InsertionSortSolver,
    PolynomialArrivalLaw,
    PrefixSumSolver,
    RunningMinSolver,
    dataacc_acceptor,
    encode_dataacc,
    make_instance,
    run_calgorithm,
    run_dalgorithm,
    termination_time,
)


class TestArrivalLaw:
    def test_amount_at_zero_is_n(self):
        law = PolynomialArrivalLaw(n=10, k=2, gamma=0.5, beta=1.0)
        assert law.amount(0) == 10

    def test_amount_monotone(self):
        law = PolynomialArrivalLaw(n=5, k=1.5, gamma=0.3, beta=0.8)
        values = [law.amount(t) for t in range(50)]
        assert values == sorted(values)

    def test_arrival_time_inverts_amount(self):
        law = PolynomialArrivalLaw(n=5, k=0.7, gamma=0.0, beta=1.0)
        for j in range(1, 40):
            t = law.arrival_time(j)
            assert law.amount(t) >= j
            if t > 0:
                assert law.amount(t - 1) < j

    def test_initial_batch_at_time_zero(self):
        law = PolynomialArrivalLaw(n=5, k=1, beta=1)
        assert all(law.arrival_time(j) == 0 for j in range(1, 6))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PolynomialArrivalLaw(n=-1)
        with pytest.raises(ValueError):
            PolynomialArrivalLaw(n=1, k=0)
        with pytest.raises(ValueError):
            PolynomialArrivalLaw(n=1, beta=0)

    @given(st.integers(0, 100), st.integers(1, 50))
    def test_amount_nonnegative_monotone_property(self, t, n):
        law = PolynomialArrivalLaw(n=n, k=1.0, gamma=0.2, beta=0.7)
        assert law.amount(t) >= n
        assert law.amount(t + 1) >= law.amount(t)


class TestTerminationAnalysis:
    def test_sublinear_always_terminates(self):
        law = PolynomialArrivalLaw(n=100, k=3.0, beta=0.5)
        assert law.terminates_asymptotically(1)
        assert termination_time(law, 1, horizon=100_000) is not None

    def test_critical_below_threshold_terminates(self):
        law = PolynomialArrivalLaw(n=50, k=0.5, beta=1.0)  # c·k = 0.5 < 1
        assert law.terminates_asymptotically(1)
        assert termination_time(law, 1) is not None

    def test_critical_above_threshold_diverges(self):
        law = PolynomialArrivalLaw(n=50, k=1.5, beta=1.0)  # c·k = 1.5 > 1
        assert not law.terminates_asymptotically(1)
        assert termination_time(law, 1, horizon=20_000) is None

    def test_superlinear_diverges(self):
        law = PolynomialArrivalLaw(n=10, k=1.0, beta=2.0)
        assert not law.terminates_asymptotically(1)

    def test_closed_form_crossover(self):
        """β = 1: termination time ≈ c·n/(1 − c·k) (= 200 here, ±1 for
        the integer floor in the law)."""
        law = PolynomialArrivalLaw(n=100, k=0.5, gamma=0.0, beta=1.0)
        t = termination_time(law, 1)
        assert t is not None and 198 <= t <= 201
        # exact fixed-point property: first t with t ≥ c·f(n, t)
        assert t >= law.amount(t)
        assert t - 1 < law.amount(t - 1)

    def test_invalid_cost(self):
        law = PolynomialArrivalLaw(n=1)
        with pytest.raises(ValueError):
            termination_time(law, 0)


class TestDAlgorithm:
    def test_simulation_matches_analysis(self):
        law = PolynomialArrivalLaw(n=50, k=0.5, gamma=0.0, beta=1.0)
        analytic = termination_time(law, 1)
        result = run_dalgorithm(InsertionSortSolver(), law, data=lambda j: j % 7, horizon=5_000)
        assert result.terminated
        assert result.termination_time == analytic

    def test_divergence_detected(self):
        law = PolynomialArrivalLaw(n=20, k=2.0, beta=1.0)
        result = run_dalgorithm(InsertionSortSolver(), law, data=lambda j: j, horizon=1_000)
        assert not result.terminated
        assert result.termination_time is None

    def test_online_invariant_solution_sorted(self):
        law = PolynomialArrivalLaw(n=10, k=0.3, beta=1.0)
        result = run_dalgorithm(InsertionSortSolver(), law, data=lambda j: (j * 13) % 30)
        assert result.terminated
        assert list(result.solution) == sorted(result.solution)
        assert len(result.solution) == result.items_processed

    def test_running_min_solver(self):
        law = PolynomialArrivalLaw(n=10, k=0.3, beta=1.0)
        result = run_dalgorithm(RunningMinSolver(), law, data=lambda j: 100 - j)
        assert result.terminated
        assert result.solution == (100 - result.items_processed,)

    def test_prefix_sum_solver(self):
        law = PolynomialArrivalLaw(n=5, k=0.2, beta=1.0)
        result = run_dalgorithm(PrefixSumSolver(), law, data=lambda j: j)
        assert result.terminated
        p = result.items_processed
        assert result.solution == (p * (p + 1) // 2,)

    def test_slower_worker_diverges_where_faster_terminates(self):
        law = PolynomialArrivalLaw(n=30, k=0.6, beta=1.0)
        fast = run_dalgorithm(InsertionSortSolver(cost_per_item=1), law, data=lambda j: j, horizon=3_000)
        slow = run_dalgorithm(InsertionSortSolver(cost_per_item=2), law, data=lambda j: j, horizon=3_000)
        assert fast.terminated
        assert not slow.terminated  # c·k = 1.2 > 1

    def test_lead_narrows_termination_window(self):
        """lead=1 (the §4.2 marker semantics) requires a two-chronon
        quiet period, so it terminates no earlier than the plain rule;
        a β<1 law guarantees such gaps eventually appear."""
        law = PolynomialArrivalLaw(n=10, k=2.0, beta=0.5)
        plain = run_dalgorithm(InsertionSortSolver(), law, data=lambda j: j, horizon=10_000)
        with_lead = run_dalgorithm(
            InsertionSortSolver(), law, data=lambda j: j, horizon=10_000, lead=1
        )
        assert plain.terminated and with_lead.terminated
        assert with_lead.termination_time >= plain.termination_time

    def test_steady_beta1_law_never_opens_marker_window(self):
        """With k = 0.5 exactly, a datum arrives every second chronon —
        the §4.2 window (two quiet chronons) never opens even though the
        plain d-algorithm terminates.  A genuine model subtlety."""
        law = PolynomialArrivalLaw(n=10, k=0.5, beta=1.0)
        plain = run_dalgorithm(InsertionSortSolver(), law, data=lambda j: j, horizon=2_000)
        with_lead = run_dalgorithm(
            InsertionSortSolver(), law, data=lambda j: j, horizon=2_000, lead=1
        )
        assert plain.terminated
        assert not with_lead.terminated


class TestCAlgorithm:
    def test_terminates_and_applies_corrections(self):
        law = PolynomialArrivalLaw(n=4, k=0.3, beta=1.0)
        result = run_calgorithm(
            CorrectingSortSolver(),
            [5, 3, 8, 1],
            law,
            corrections=lambda j: Correction(j % 4, j * 10),
            horizon=2_000,
        )
        assert result.terminated
        assert list(result.solution) == sorted(result.solution)

    def test_correction_replaces_value(self):
        solver = CorrectingSortSolver()
        solver.initialize([5, 3, 8])
        solver.apply(Correction(index=1, value=100))
        assert solver.solution() == (5, 8, 100)

    def test_fast_corrections_diverge(self):
        law = PolynomialArrivalLaw(n=2, k=3.0, beta=1.0)
        result = run_calgorithm(
            CorrectingSortSolver(),
            [1, 2],
            law,
            corrections=lambda j: Correction(j % 2, j),
            horizon=500,
        )
        assert not result.terminated


class TestSection42Acceptor:
    LAW = PolynomialArrivalLaw(n=5, k=0.4, gamma=0.0, beta=1.0)

    @staticmethod
    def data(j):
        return (j * 3) % 17

    def test_truthful_instance_accepted(self):
        inst = make_instance(self.LAW, self.data, InsertionSortSolver, horizon=5_000)
        assert inst is not None
        report = dataacc_acceptor(InsertionSortSolver).decide(
            encode_dataacc(inst), horizon=5_000
        )
        assert report.accepted

    def test_bogus_instance_rejected(self):
        inst = make_instance(
            self.LAW, self.data, InsertionSortSolver, horizon=5_000, truthful=False
        )
        report = dataacc_acceptor(InsertionSortSolver).decide(
            encode_dataacc(inst), horizon=5_000
        )
        assert not report.accepted

    def test_diverging_law_has_no_instance(self):
        law = PolynomialArrivalLaw(n=5, k=2.0, beta=1.0)
        assert make_instance(law, self.data, InsertionSortSolver, horizon=500) is None

    def test_word_header_carries_proposed_output(self):
        inst = make_instance(self.LAW, self.data, InsertionSortSolver, horizon=5_000)
        word = encode_dataacc(inst)
        m = len(inst.proposed_output)
        header = [s for s, _t in word.take(m)]
        assert header == [("O", y) for y in inst.proposed_output]

    def test_markers_precede_data_by_one_chronon(self):
        inst = make_instance(self.LAW, self.data, InsertionSortSolver, horizon=5_000)
        word = encode_dataacc(inst)
        m, n = len(inst.proposed_output), self.LAW.n
        pairs = word.take(m + n + 8)
        tail = pairs[m + n :]
        for marker, datum in zip(tail[0::2], tail[1::2]):
            assert marker[0] == "c"
            assert marker[1] == max(0, datum[1] - 1)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.5, 2.0), st.integers(3, 10))
    def test_acceptor_roundtrip_random_laws(self, k, n):
        # β < 1 so inter-arrival gaps grow and the §4.2 marker window
        # is guaranteed to open eventually (see the lead tests above).
        law = PolynomialArrivalLaw(n=n, k=k, gamma=0.0, beta=0.6)
        inst = make_instance(law, self.data, RunningMinSolver, horizon=3_000)
        assert inst is not None
        report = dataacc_acceptor(RunningMinSolver).decide(
            encode_dataacc(inst), horizon=3_000
        )
        assert report.accepted
