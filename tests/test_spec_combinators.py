"""Tests for repro.spec — combinators, compilation, direct semantics."""

import pytest

from repro.deadlines.spec import DeadlineKind, DeadlineSpec, StepUsefulness
from repro.engine import Verdict, decide
from repro.spec import (
    actions_of,
    alt,
    as_omega,
    both,
    eventually,
    from_deadline_spec,
    holds,
    is_deterministic_spec,
    loop,
    max_bound,
    phases_of,
    rt_bound,
    seq,
    spec_acceptor,
    spec_monitor,
    to_deadline_spec,
    to_source,
    to_tba,
)
from repro.stream import StreamVerdict
from repro.words import TimedWord

AB = ("a", "b")


def lasso(prefix, loop_pairs, shift):
    return TimedWord.lasso(prefix, loop_pairs, shift=shift)


# ---------------------------------------------------------------- shapes


def test_rt_bound_validates():
    with pytest.raises(ValueError):
        rt_bound("a", -1, 2)
    with pytest.raises(ValueError):
        rt_bound("a", 3, 2)


def test_seq_flattens_and_needs_phases():
    s = seq(rt_bound("a", 0, 1), seq(rt_bound("b", 0, 2)))
    assert len(s.phases) == 2
    with pytest.raises(ValueError, match=r"seq\(\) needs at least one"):
        seq()


def test_alt_both_need_parts():
    # The zero-arg constructors explain themselves — they must not leak
    # the internal "at least two components" dataclass invariant.
    with pytest.raises(ValueError, match=r"alt\(\) needs at least one"):
        alt()
    with pytest.raises(ValueError, match=r"both\(\) needs at least one"):
        both()
    one = loop(rt_bound("a", 0, 1))
    assert alt(one) == one  # single part collapses
    assert both(one) == one


def test_as_omega_wraps_chains():
    # A bare phase chain is a one-shot obligation: ω-coercion is the
    # absorbing "eventually", not iteration.
    assert as_omega(rt_bound("a", 0, 1)) == eventually(rt_bound("a", 0, 1))
    w = loop(rt_bound("a", 0, 1))
    assert as_omega(w) is w


def test_queries():
    s = both(loop(rt_bound("a", 0, 3)), eventually(rt_bound("b", 1, 5)))
    assert actions_of(s) == {"a", "b"}
    assert [p.action for p in phases_of(seq(rt_bound("a", 0, 1)))] == ["a"]
    assert max_bound(s) == 5
    assert not is_deterministic_spec(alt(loop(rt_bound("a", 0, 1)), loop(rt_bound("b", 0, 1))))
    assert is_deterministic_spec(loop(rt_bound("a", 0, 1)))


def test_to_source_round_trips():
    s = both(
        loop(seq(rt_bound("a", 0, 3), rt_bound("b", 1, 2))),
        alt(eventually(rt_bound("a", 0, 1)), loop(rt_bound("b", 0, 4))),
    )
    namespace = {
        "rt_bound": rt_bound,
        "seq": seq,
        "loop": loop,
        "eventually": eventually,
        "alt": alt,
        "both": both,
    }
    assert eval(to_source(s), namespace) == s


# ----------------------------------------------------------- compilation


def test_to_tba_rejects_foreign_actions():
    with pytest.raises(ValueError):
        to_tba(loop(rt_bound("z", 0, 1)), AB)


def test_loop_accepts_periodic_word():
    tba = to_tba(loop(rt_bound("a", 0, 2)), AB)
    assert tba.accepts_lasso(lasso([], [("a", 0)], 2))
    assert not tba.accepts_lasso(lasso([], [("a", 0)], 3))  # gap 3 > hi


def test_eventually_is_absorbing():
    tba = to_tba(eventually(rt_bound("a", 1, 2)), AB)
    # completes once at the right distance, then anything goes
    assert tba.accepts_lasso(lasso([("a", 1)], [("b", 2)], 9))
    # too early: the MinTime lower bound kills the run
    assert not tba.accepts_lasso(lasso([("a", 0)], [("b", 1)], 9))
    # never completes: 'b' forever
    assert not tba.accepts_lasso(lasso([], [("b", 0)], 1))


def test_alt_accepts_either_branch():
    s = alt(loop(rt_bound("a", 0, 1)), loop(rt_bound("b", 0, 3)))
    tba = to_tba(s, AB)
    assert tba.accepts_lasso(lasso([], [("a", 0)], 1))
    assert tba.accepts_lasso(lasso([], [("b", 0)], 3))
    assert not tba.accepts_lasso(lasso([], [("b", 0)], 4))


def test_both_needs_fair_interleaving():
    s = both(loop(rt_bound("a", 0, 2)), loop(rt_bound("b", 0, 2)))
    tba = to_tba(s, AB)
    assert tba.accepts_lasso(lasso([], [("a", 0), ("b", 1)], 2))
    # only ever 'a': the second component starves
    assert not tba.accepts_lasso(lasso([], [("a", 0)], 1))


def test_compiled_agrees_with_holds_on_hand_built_words():
    cases = [
        (loop(rt_bound("a", 0, 2)), lasso([("b", 0)], [("a", 1), ("a", 2)], 2)),
        (eventually(rt_bound("a", 1, 3)), lasso([], [("a", 0), ("b", 2)], 3)),
        (
            both(loop(rt_bound("a", 0, 4)), eventually(rt_bound("b", 0, 9))),
            lasso([("b", 0)], [("a", 1)], 2),
        ),
    ]
    for spec, word in cases:
        assert holds(spec, word, AB) == to_tba(spec, AB).accepts_lasso(word)


def test_spec_acceptor_joins_the_engine():
    report = decide(
        spec_acceptor(loop(rt_bound("a", 0, 2)), AB),
        lasso([], [("a", 0)], 2),
        strategy="lasso-exact",
    )
    assert report.verdict is Verdict.ACCEPT


def test_spec_monitor_streams():
    monitor = spec_monitor(loop(rt_bound("a", 0, 2)), AB)
    for t in range(4):
        verdict = monitor.ingest("a", t)
    assert verdict is StreamVerdict.ACCEPTING


def test_holds_requires_lasso_words():
    with pytest.raises(TypeError):
        holds(loop(rt_bound("a", 0, 1)), [("a", 0)], AB)


# ------------------------------------------------------- deadline bridge


def test_firm_deadline_round_trip():
    spec = DeadlineSpec(kind=DeadlineKind.FIRM, t_d=20)
    bound = from_deadline_spec(spec, "done")
    assert (bound.lo, bound.hi) == (0, 19)
    back = to_deadline_spec(bound)
    assert back.t_d == 20 and back.kind is DeadlineKind.FIRM


def test_soft_deadline_round_trip():
    spec = DeadlineSpec(
        kind=DeadlineKind.SOFT,
        t_d=20,
        usefulness=StepUsefulness(max_value=1, t_d=20, grace=5),
    )
    bound = from_deadline_spec(spec, "done")
    assert (bound.lo, bound.hi) == (0, 25)
    back = to_deadline_spec(bound, grace=5)
    assert back.t_d == 20 and back.kind is DeadlineKind.SOFT
    # §4.1 acceptance rule and the compiled bound agree at every
    # completion time around the deadline.
    tba = to_tba(eventually(bound), ("done", "tick"))
    for t in range(0, 28):
        word = lasso([("done", t)], [("tick", t + 1)], 1)
        accepted = tba.accepts_lasso(word)
        assert accepted == (t <= 25), t


def test_to_deadline_spec_validates_grace():
    with pytest.raises(ValueError):
        to_deadline_spec(rt_bound("done", 0, 3), grace=3)
