"""Tests for repro.spec.conformance — the differential fuzzing harness.

The seeded corpus tests pin the "all decision paths agree" property at
a fixed budget; the regression tests below them are minimized
counterexamples the harness surfaced, committed alongside their fixes.
"""

import json
import random

import pytest

from repro.spec import eventually, loop, rt_bound, seq, to_tba
from repro.spec.conformance import (
    PAIRS,
    check_pair,
    gen_spec,
    gen_word,
    minimize,
    run,
)
from repro.stream import SessionMux, checkpoint_mux, restore_mux
from repro.words import TimedWord

try:
    from hypothesis import HealthCheck, given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the image
    HAVE_HYPOTHESIS = False


# ------------------------------------------------------ seeded corpus


def test_seeded_corpus_agrees():
    stats = run(seed=0, cases=40)
    assert stats.disagreements == []
    assert set(stats.checks) == set(PAIRS)


def test_seeded_corpus_deep_grammar_agrees():
    stats = run(seed=7, cases=15, depth=3)
    assert stats.disagreements == []


def test_seeded_corpus_query_gen_agrees():
    # The query front-end mode: lowered specs through every pair, plus
    # the text round-trip and fused-plan differentials.
    stats = run(seed=3, cases=12, gen="query")
    assert stats.disagreements == []
    assert stats.checks["query-roundtrip"] == 12
    assert stats.checks["query-plan"] == 12
    assert set(PAIRS) <= set(stats.checks)


def test_unknown_pair_rejected():
    with pytest.raises(ValueError):
        run(cases=1, pairs=("nope",))


def test_minimize_rejects_agreeing_case():
    spec = loop(rt_bound("a", 0, 2))
    word = TimedWord.lasso([], [("a", 0)], shift=2)
    # minimize() is only meaningful on a disagreeing case; feeding it a
    # passing one is a harness bug and fails fast.
    with pytest.raises(AssertionError):
        minimize("semantics", spec, ("a",), word)


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_random_cases_agree(seed):
        rng = random.Random(seed)
        actions = ["a", "b"][: rng.randrange(1, 3)]
        alphabet = ("a", "b", "c")[: len(actions) + rng.randrange(2)]
        spec = gen_spec(rng, actions)
        word = gen_word(rng, spec, alphabet)
        for pair in PAIRS:
            if pair == "shards":
                continue  # pool spin-up per example is too heavy here
            assert check_pair(pair, spec, alphabet, word) is None, pair


# ------------------------------------------- whole-mux JSON round-trip


def test_mux_json_round_trip_mid_fuzz_matches_uninterrupted():
    spec = loop(seq(rt_bound("a", 0, 3), rt_bound("b", 0, 2)))
    tba = to_tba(spec, ("a", "b", "c"))
    rng = random.Random(11)
    events = [
        (f"s{rng.randrange(4)}", rng.choice("abc"), t)
        for t in range(0, 60)
        for _ in range(rng.randrange(3))
    ]
    cut = len(events) // 2

    plain = SessionMux(tba, lateness=2)
    for name, sym, t in events:
        plain.ingest(name, sym, t)
    baseline = plain.verdicts()

    first = SessionMux(tba, lateness=2)
    for name, sym, t in events[:cut]:
        first.ingest(name, sym, t)
    snapshot = json.loads(json.dumps(checkpoint_mux(first)))
    second = restore_mux(snapshot, SessionMux(tba, lateness=2), tba=tba)
    for name, sym, t in events[cut:]:
        second.ingest(name, sym, t)
    assert second.verdicts() == baseline
    assert second.sessions_opened == plain.sessions_opened

    # Cross-path restore: interpreted snapshot resumed on the compiled
    # stepper (and vice versa) must continue identically too.
    for src, dst in ((False, None), (None, False)):
        one = SessionMux(tba, lateness=2, compiled=src)
        for name, sym, t in events[:cut]:
            one.ingest(name, sym, t)
        snap = json.loads(json.dumps(checkpoint_mux(one)))
        other = restore_mux(
            snap, SessionMux(tba, lateness=2, compiled=dst), tba=tba, compiled=dst
        )
        for name, sym, t in events[cut:]:
            other.ingest(name, sym, t)
        assert other.verdicts() == baseline


# ------------------------------------------------ pinned counterexamples
#
# Minimized by the harness, committed with the fix that makes them pass.
# Before the zeno fix (machine.tape.zeno_event_cap +
# engine.strategies.resolve_zeno), this frozen-time lasso made both
# machine strategies grind to the tape's 1M-event feeder cap (~15s) and
# return UNDECIDED, while exact region mathematics decides ACCEPT — a
# violation of the lasso-exact contract ("exact on lasso words,
# O(decision point) regardless of horizon").


def test_conformance_strategy_regression():
    # minimized by repro.spec.conformance
    spec = loop(seq(rt_bound('a', 0, 2)))
    word = TimedWord.lasso(
        [],
        [('a', 0)],
        shift=0,
    )
    assert check_pair('strategy', spec, ('a', 'b'), word) is None


def test_conformance_strategy_regression_rejecting_zeno():
    # companion case: a frozen-time lasso the language rejects
    spec = loop(seq(rt_bound('a', 0, 2)))
    word = TimedWord.lasso(
        [('a', 0)],
        [('b', 0)],
        shift=0,
    )
    assert check_pair('strategy', spec, ('a', 'b'), word) is None


def test_conformance_shards_cover_zeno_words():
    spec = loop(seq(rt_bound('a', 0, 2)))
    words = [
        TimedWord.lasso([], [('a', 0)], shift=0),
        TimedWord.lasso([], [('a', 0)], shift=2),
    ]
    from repro.spec.conformance import _check_shards

    assert _check_shards(spec, ('a', 'b'), words) is None


def test_zeno_cap_only_fires_on_frozen_lassos():
    # Finite and functional words carry the dataclass default shift=0
    # too; capping them starved infinite functional words (e.g. the rtdb
    # periodic-query feed) at ZENO_UNROLL events and zeroed their
    # f-counts.  Only a genuine lasso can freeze time forever.
    from repro.machine.tape import ZENO_UNROLL, zeno_event_cap

    assert zeno_event_cap(TimedWord.finite([("a", 0), ("b", 1)])) is None
    assert zeno_event_cap(TimedWord.functional(lambda i: ("a", i))) is None
    assert zeno_event_cap(TimedWord.lasso([], [("a", 0)], shift=1)) is None
    assert (
        zeno_event_cap(TimedWord.lasso([("b", 0)], [("a", 1)], shift=0))
        == 1 + ZENO_UNROLL
    )


def test_functional_words_outrun_the_zeno_cap():
    # End-to-end shape of the rtdb regression: a functional word with
    # advancing time must be fed past ZENO_UNROLL events.
    from repro.machine import RealTimeAlgorithm
    from repro.machine.tape import ZENO_UNROLL

    def program(ctx):
        while True:
            yield ctx.input.read()
            ctx.emit_f()

    word = TimedWord.functional(lambda i: ("tick", i))
    report = RealTimeAlgorithm(program).count_f(word, horizon=200)
    assert report.f_count > ZENO_UNROLL


# ------------------------------------------------- raw-random-TBA mode


def test_tba_corpus_agrees():
    stats = run(seed=0, cases=25, gen="tba")
    assert stats.disagreements == []
    assert set(stats.checks) == set(PAIRS)


def test_unknown_gen_rejected():
    with pytest.raises(ValueError, match="unknown gen"):
        run(cases=1, gen="dfa")


def test_gen_tba_is_seed_deterministic():
    from repro.spec.conformance import gen_tba

    a = gen_tba(random.Random(4), ("a", "b"))
    b = gen_tba(random.Random(4), ("a", "b"))
    assert a.states == b.states
    assert a.transitions == b.transitions
    assert a.accepting == b.accepting


def test_gen_tba_produces_nondeterministic_shapes():
    from repro.machine.from_tba import _is_deterministic
    from repro.spec.conformance import gen_tba

    rng = random.Random(0)
    dets = [_is_deterministic(gen_tba(rng, ("a", "b"))) for _ in range(30)]
    assert any(dets) and not all(dets)  # both shapes appear in the pool


def test_tba_case_source_round_trips():
    from repro.automata import TimedBuchiAutomaton, TimedTransition
    from repro.kernel.clock import And, Ge, Le, Not, TrueConstraint
    from repro.spec.conformance import case_source, gen_tba, gen_word

    rng = random.Random(2)
    tba = gen_tba(rng, ("a", "b"))
    namespace = {
        "TimedBuchiAutomaton": TimedBuchiAutomaton,
        "TimedTransition": TimedTransition,
        "And": And,
        "Ge": Ge,
        "Le": Le,
        "Not": Not,
        "TrueConstraint": TrueConstraint,
    }
    rebuilt = eval(case_source(tba), namespace)
    assert rebuilt.states == tba.states
    assert rebuilt.accepting == tba.accepting
    assert sorted(rebuilt.transitions, key=repr) == sorted(
        tba.transitions, key=repr
    )
    # Same language on a sample of words — the rebuilt automaton is the
    # same automaton, not just the same shape.
    for _ in range(10):
        word = gen_word(rng, tba, ("a", "b"))
        assert rebuilt.accepts_lasso(word) == tba.accepts_lasso(word)


def test_tba_minimizer_shrinks_a_seeded_disagreement():
    from repro.spec.conformance import _tba_shrinks, gen_tba

    # No known real disagreement to shrink (the sweeps are clean), so
    # pin the machinery instead: every shrink of a generated automaton
    # is structurally smaller-or-equal and still a valid TBA.
    rng = random.Random(6)
    tba = gen_tba(rng, ("a", "b"))
    shrinks = list(_tba_shrinks(tba))
    assert shrinks
    for small in shrinks:
        assert small.alphabet == tba.alphabet
        assert len(small.transitions) <= len(tba.transitions)
        assert small.accepting  # never shrinks to an empty Büchi set


def test_tba_mode_word_bias_uses_transition_symbols():
    from repro.spec.conformance import gen_tba, gen_word

    rng = random.Random(1)
    tba = gen_tba(rng, ("a", "b", "c"))
    used = {tr.symbol for tr in tba.transitions}
    words = [gen_word(rng, tba, ("a", "b", "c")) for _ in range(20)]
    seen = {s for w in words for s, _t in list(w.prefix) + list(w.loop)}
    assert seen & used  # the bias steers words onto the automaton
