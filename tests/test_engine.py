"""Tests for repro.engine — the unified decision layer."""

import threading

import pytest

from repro import engine
from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import (
    AcceptorCache,
    DecisionReport,
    FunctionAcceptor,
    Verdict,
    clear_caches,
    compiled_tba,
    decide,
    decide_many,
    get_strategy,
)
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm
from repro.obs import instrumented
from repro.words import TimedWord


def make_word(n, member):
    """E14 parity word: accept iff the n-symbol header sums even."""
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


def sweep_words():
    return [make_word(n, member) for n in (4, 8, 16, 32) for member in (True, False)]


class TestStrategies:
    def test_lasso_exact_matches_membership(self):
        for n in (8, 16):
            for member in (True, False):
                report = decide(make_acceptor(), make_word(n, member), horizon=5_000)
                assert report.accepted == member
                assert report.strategy == "lasso-exact"
                assert report.evidence["discipline"] == "absorbing-verdict"

    def test_empirical_agrees_with_exact_on_e14_sweep(self):
        acceptor = make_acceptor()
        for word in sweep_words():
            exact = decide(acceptor, word, horizon=5_000)
            empirical = decide(
                acceptor, word, horizon=5_000, strategy="long-prefix-empirical"
            )
            assert exact.verdict == empirical.verdict
            assert "raw_verdict" in empirical.evidence

    def test_f_rate_leaves_verdict_untouched(self):
        # count_f never waits for the absorbing state, so with no
        # rewrite the raw verdict comes back as judged.
        report = decide(
            make_acceptor(), make_word(8, True), horizon=5_000, strategy="f-rate"
        )
        assert report.f_count > 0
        assert report.evidence["discipline"] == "prefix-f-count"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown decision strategy"):
            get_strategy("guesswork")

    def test_online_incremental_resolves_lazily(self):
        # The stream package registers itself on first lookup.
        strat = get_strategy("online-incremental")
        assert strat.name == "online-incremental"

    def test_strategy_instance_passes_through(self):
        strat = engine.LassoExact()
        assert get_strategy(strat) is strat

    def test_seed_recorded_in_evidence(self):
        report = decide(make_acceptor(), make_word(4, True), seed=7)
        assert report.evidence["seed"] == 7


class TestFunctionAcceptor:
    def test_wraps_plain_function(self):
        def judge(word, horizon):
            return DecisionReport(
                verdict=Verdict.ACCEPT if word == "yes" else Verdict.REJECT,
                horizon=horizon,
            )

        acceptor = FunctionAcceptor(judge, name="oracle")
        assert decide(acceptor, "yes").accepted
        assert not decide(acceptor, "no").accepted


class TestDecideMany:
    def test_serial_reports_in_word_order(self):
        words = sweep_words()
        reports = decide_many(make_acceptor(), words, horizon=5_000)
        assert len(reports) == len(words)
        for i, (word, report) in enumerate(zip(words, reports)):
            assert report.evidence["index"] == i
            assert report.accepted == decide(make_acceptor(), word, horizon=5_000).accepted

    def test_pool_bit_identical_to_serial(self):
        words = sweep_words()
        acceptor = make_acceptor()
        serial = decide_many(acceptor, words, horizon=5_000, workers=1, seed=3)
        pooled = decide_many(acceptor, words, horizon=5_000, workers=4, seed=3)
        assert serial == pooled

    def test_pool_bit_identical_under_empirical_strategy(self):
        words = sweep_words()
        acceptor = make_acceptor()
        serial = decide_many(
            acceptor, words, horizon=2_000, strategy="long-prefix-empirical"
        )
        pooled = decide_many(
            acceptor, words, horizon=2_000, strategy="long-prefix-empirical", workers=4
        )
        assert serial == pooled

    def test_seed_stamps_offset_by_index(self):
        reports = decide_many(make_acceptor(), sweep_words()[:3], seed=100, workers=2)
        assert [r.evidence["seed"] for r in reports] == [100, 101, 102]

    def test_chunk_size_override(self):
        words = sweep_words()
        reports = decide_many(make_acceptor(), words, workers=4, chunk_size=1)
        assert [r.evidence["index"] for r in reports] == list(range(len(words)))

    def test_counts_batches_and_words(self):
        with instrumented() as inst:
            decide_many(make_acceptor(), sweep_words()[:4], horizon=1_000)
        snap = inst.registry.counter("engine.batch_words").value
        assert snap == 4

    def test_rejects_invalid_chunk_size(self):
        words = sweep_words()[:4]
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            decide_many(make_acceptor(), words, workers=2, chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            decide_many(make_acceptor(), words, workers=2, chunk_size=-3)

    def test_rejects_invalid_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            decide_many(make_acceptor(), sweep_words()[:2], workers=0)

    def test_concurrent_calls_do_not_clobber_jobs(self):
        # regression: the in-flight pooled job used to live in a single
        # module global, so two threads forking at once could inherit
        # each other's (acceptor, words) and return interleaved garbage
        words_a = sweep_words()
        words_b = list(reversed(sweep_words()))
        acceptor = make_acceptor()
        expected_a = decide_many(acceptor, words_a, horizon=2_000, seed=1)
        expected_b = decide_many(acceptor, words_b, horizon=2_000, seed=2)
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def run(tag, words, seed):
            try:
                barrier.wait(timeout=30)
                results[tag] = decide_many(
                    acceptor, words, horizon=2_000, workers=3, seed=seed
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        for _ in range(3):  # a few rounds to give the race room to bite
            threads = [
                threading.Thread(target=run, args=("a", words_a, 1)),
                threading.Thread(target=run, args=("b", words_b, 2)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            assert results["a"] == expected_a
            assert results["b"] == expected_b


class TestAcceptorCache:
    def test_hit_and_miss_accounting(self):
        cache = AcceptorCache(maxsize=4)
        key = ("k", 1)
        built = []
        factory = lambda: built.append(1) or object()  # noqa: E731
        first = cache.get_or_build(key, factory)
        second = cache.get_or_build(key, factory)
        assert first is second
        assert (cache.hits, cache.misses, len(built)) == (1, 1, 1)

    def test_lru_eviction(self):
        cache = AcceptorCache(maxsize=2)
        for i in range(3):
            cache.get_or_build(("k", i), object)
        assert len(cache) == 2
        assert cache.evictions == 1
        # key 0 was evicted: rebuilding it is a miss (and evicts key 1)
        cache.get_or_build(("k", 0), object)
        assert cache.misses == 4
        assert cache.evictions == 2

    def test_eviction_counters_reach_obs(self):
        with instrumented() as inst:
            cache = AcceptorCache(maxsize=2)
            for i in range(3):
                cache.get_or_build(("k", i), object)
            cache.get_or_build(("k", 2), object)  # one hit
        counter = inst.registry.counter("engine.acceptor_cache")
        assert counter.labels(outcome="miss").value == 3
        assert counter.labels(outcome="eviction").value == 1
        assert counter.labels(outcome="hit").value == 1
        assert inst.registry.gauge("engine.acceptor_cache_size").value == 2

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize must be >= 0"):
            AcceptorCache(maxsize=-1)

    def test_maxsize_zero_is_explicit_no_caching(self):
        # regression: maxsize=0 used to insert then immediately evict
        # its own entry, reporting a hit-capable cache that never hit
        cache = AcceptorCache(maxsize=0)
        built = []
        factory = lambda: built.append(1) or object()  # noqa: E731
        with instrumented() as inst:
            first = cache.get_or_build(("k", 1), factory)
            second = cache.get_or_build(("k", 1), factory)
        assert first is not second  # rebuilt every time, never served
        assert len(built) == 2
        assert len(cache) == 0
        assert cache.hits == 0 and cache.evictions == 0
        assert cache.misses == 2
        counter = inst.registry.counter("engine.acceptor_cache")
        assert counter.labels(outcome="bypass").value == 2
        assert inst.registry.gauge("engine.acceptor_cache_size").value == 0

    def test_clear_resets_eviction_count(self):
        cache = AcceptorCache(maxsize=1)
        cache.get_or_build(("k", 0), object)
        cache.get_or_build(("k", 1), object)
        assert cache.evictions == 1
        cache.clear()
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)

    def test_compiled_tba_reuses_compilation(self):
        clear_caches()
        tba = TimedBuchiAutomaton(
            "a",
            ["s"],
            "s",
            [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", 2))],
            ["x"],
            ["s"],
        )
        first = compiled_tba(tba)
        second = compiled_tba(tba)
        assert first is second
        # The compiled machine judges by f-rate (one f per accepting
        # visit), so the empirical strategy is the right judge here.
        word = TimedWord.lasso([], [("a", 1)], shift=1)
        assert decide(
            first, word, horizon=200, strategy="long-prefix-empirical"
        ).accepted
        clear_caches()
        assert compiled_tba(tba) is not first


class TestEngineObservability:
    def test_decide_counts_and_spans(self):
        with instrumented() as inst:
            decide(make_acceptor(), make_word(4, True), horizon=1_000)
        counters = inst.registry.counter("engine.decisions")
        assert counters.labels(strategy="lasso-exact").value == 1
        assert any(s.name == "engine.decide" for s in inst.spans.completed())
