"""Tests for the Büchi union/intersection constructions."""

import itertools

import pytest

from repro.automata import BuchiAutomaton, LassoWord, buchi_intersection, buchi_union


def inf_symbol_automaton(symbol: str, alphabet: str = "ab") -> BuchiAutomaton:
    """Accepts words with infinitely many occurrences of ``symbol``."""
    transitions = []
    for a in alphabet:
        target = "hit" if a == symbol else "idle"
        transitions.append(("idle", target, a))
        transitions.append(("hit", target, a))
    return BuchiAutomaton(alphabet, ["idle", "hit"], "idle", transitions, ["hit"])


INF_A = inf_symbol_automaton("a")
INF_B = inf_symbol_automaton("b")

WORDS = [
    LassoWord("", "a"),      # only a's
    LassoWord("", "b"),      # only b's
    LassoWord("", "ab"),     # both infinitely often
    LassoWord("ab", "a"),    # finitely many b's
    LassoWord("ba", "b"),    # finitely many a's
    LassoWord("aabb", "ba"), # both, phase-shifted
]


class TestUnion:
    def test_union_semantics_on_lassos(self):
        u = buchi_union(INF_A, INF_B)
        for w in WORDS:
            expected = INF_A.accepts_lasso(w) or INF_B.accepts_lasso(w)
            assert u.accepts_lasso(w) == expected, w

    def test_union_with_empty_language(self):
        empty = BuchiAutomaton("ab", [0], 0, [(0, 0, "a"), (0, 0, "b")], [])
        u = buchi_union(INF_A, empty)
        for w in WORDS:
            assert u.accepts_lasso(w) == INF_A.accepts_lasso(w)

    def test_union_alphabets_merge(self):
        c_machine = inf_symbol_automaton("c", alphabet="c")
        u = buchi_union(INF_A, c_machine)
        assert u.accepts_lasso(LassoWord("", "c"))
        assert u.accepts_lasso(LassoWord("", "a"))


class TestIntersection:
    def test_intersection_semantics_on_lassos(self):
        i = buchi_intersection(INF_A, INF_B)
        for w in WORDS:
            expected = INF_A.accepts_lasso(w) and INF_B.accepts_lasso(w)
            assert i.accepts_lasso(w) == expected, w

    def test_intersection_with_itself(self):
        i = buchi_intersection(INF_A, INF_A)
        for w in WORDS:
            assert i.accepts_lasso(w) == INF_A.accepts_lasso(w)

    def test_intersection_emptiness(self):
        """inf-many-a's ∩ finitely-many-a's = ∅ … approximated here by
        intersecting with an automaton accepting only bω-tails."""
        only_b_tail = BuchiAutomaton(
            "ab",
            [0, 1],
            0,
            [(0, 0, "a"), (0, 0, "b"), (0, 1, "b"), (1, 1, "b")],
            [1],
        )
        i = buchi_intersection(INF_A, only_b_tail)
        assert i.is_empty_language()

    def test_de_morgan_style_crosscheck(self):
        """(L₁ ∩ L₂) ⊆ L₁ ∪ L₂ on every probe word."""
        i = buchi_intersection(INF_A, INF_B)
        u = buchi_union(INF_A, INF_B)
        for w in WORDS:
            if i.accepts_lasso(w):
                assert u.accepts_lasso(w)

    def test_found_lasso_in_both(self):
        i = buchi_intersection(INF_A, INF_B)
        witness = i.find_accepted_lasso()
        assert witness is not None
        assert INF_A.accepts_lasso(witness)
        assert INF_B.accepts_lasso(witness)
