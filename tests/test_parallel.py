"""Tests for the §6 explicit parallel/distributed models."""

import pytest

from repro.parallel import (
    PCGS,
    Component,
    ParallelSystem,
    Pram,
    PramConflictError,
    PramVariant,
    ProcessBehaviour,
    Production,
    query,
)
from repro.words import Trilean


class TestProcessBehaviour:
    def test_word_views(self):
        b = ProcessBehaviour(1)
        b.record_compute("init", 0)
        b.record_send(2, "hi", 1)
        b.record_receive(2, "yo", 4)
        assert b.c_word().take(1) == [(("c", 1, "init"), 0)]
        assert b.l_word().take(1) == [(("l", 1, 2, "hi"), 1)]
        assert b.r_word().take(1) == [(("r", 1, 2, "yo"), 4)]

    def test_behaviour_word_merges_by_time(self):
        """c_k l_k r_k via Definition 3.5: time-ordered."""
        b = ProcessBehaviour(1)
        b.record_compute("late", 9)
        b.record_send(2, "m", 3)
        b.record_receive(2, "x", 5)
        word = b.behaviour_word()
        times = [t for _s, t in word.take(3)]
        assert times == [3, 5, 9]

    def test_communication_free_flag(self):
        b = ProcessBehaviour(1)
        b.record_compute("only", 0)
        assert b.communication_free
        b.record_send(2, "m", 1)
        assert not b.communication_free


class TestParallelSystem:
    def test_ping_pong(self):
        system = ParallelSystem(2, latency=1)

        def p1(ctx):
            yield ctx.send(2, "ping")
            frm, msg = yield ctx.recv()
            return (frm, msg)

        def p2(ctx):
            frm, msg = yield ctx.recv()
            yield ctx.send(1, "pong")

        system.add_process(1, p1)
        system.add_process(2, p2)
        run = system.run(until=100)
        assert run.results[1] == (2, "pong")

    def test_latency_delays_messages(self):
        system = ParallelSystem(2, latency=5)
        arrival = []

        def p1(ctx):
            yield ctx.send(2, "x")

        def p2(ctx):
            yield ctx.recv()
            arrival.append(ctx.now)

        system.add_process(1, p1)
        system.add_process(2, p2)
        system.run(until=100)
        assert arrival == [5]

    def test_behaviour_tuple_shape(self):
        system = ParallelSystem(3, latency=1)

        def worker(ctx):
            yield ctx.compute("w", 2)

        for pid in (1, 2, 3):
            system.add_process(pid, worker)
        run = system.run()
        words = run.behaviour_tuple()
        assert len(words) == 3

    def test_sends_recorded_in_l_and_r(self):
        system = ParallelSystem(2, latency=1)

        def p1(ctx):
            yield ctx.send(2, "data")

        def p2(ctx):
            yield ctx.recv()

        system.add_process(1, p1)
        system.add_process(2, p2)
        run = system.run()
        assert len(run.behaviours[1].sent) == 1
        assert len(run.behaviours[2].received) == 1

    def test_pid_out_of_range(self):
        system = ParallelSystem(2)
        with pytest.raises(ValueError):
            system.add_process(5, lambda ctx: iter(()))

    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            ParallelSystem(0)


class TestPram:
    def _sum_program(self, n):
        def program(pid, step, mem):
            stride = 2**step
            base = (pid - 1) * 2 * stride
            if stride >= n:
                return False
            if base + stride < n:
                a = mem.read(base)
                b = mem.read(base + stride)
                mem.write(base, (a or 0) + (b or 0))
            return True

        return program

    def test_tree_reduction(self):
        pram = Pram(4, PramVariant.EREW)
        pram.load(list(range(1, 9)))
        run = pram.run(self._sum_program(8))
        assert run.memory[0] == 36

    def test_pram_runs_are_communication_free(self):
        """§6: on the PRAM, l_k and r_k are null words."""
        pram = Pram(4, PramVariant.EREW)
        pram.load(list(range(8)))
        run = pram.run(self._sum_program(8))
        assert run.communication_free

    def test_erew_detects_concurrent_read(self):
        pram = Pram(2, PramVariant.EREW)
        pram.load([1])

        def program(pid, step, mem):
            mem.read(0)
            return False

        with pytest.raises(PramConflictError):
            pram.run(program)

    def test_crew_allows_concurrent_read(self):
        pram = Pram(2, PramVariant.CREW)
        pram.load([1])

        def program(pid, step, mem):
            mem.read(0)
            return False

        run = pram.run(program)
        assert run.steps == 1

    def test_crew_rejects_concurrent_write(self):
        pram = Pram(2, PramVariant.CREW)

        def program(pid, step, mem):
            mem.write(0, pid)
            return False

        with pytest.raises(PramConflictError):
            pram.run(program)

    def test_crcw_common_allows_agreeing_writes(self):
        pram = Pram(3, PramVariant.CRCW_COMMON)

        def program(pid, step, mem):
            mem.write(0, 42)
            return False

        run = pram.run(program)
        assert run.memory[0] == 42

    def test_crcw_common_rejects_disagreement(self):
        pram = Pram(2, PramVariant.CRCW_COMMON)

        def program(pid, step, mem):
            mem.write(0, pid)
            return False

        with pytest.raises(PramConflictError):
            pram.run(program)

    def test_synchronous_reads_see_pre_step_memory(self):
        """A swap without a temporary works on a synchronous PRAM."""
        pram = Pram(2, PramVariant.EREW)
        pram.load([10, 20])

        def program(pid, step, mem):
            if step == 0:
                other = 1 - (pid - 1)
                mem.write(pid - 1, mem.read(other))
            return step < 1

        run = pram.run(program)
        assert run.memory[0] == 20 and run.memory[1] == 10


class TestPCGS:
    def test_communication_step_copies_form(self):
        c1 = Component({"S"}, "S", [Production("S", ("a", query(2), "b"))])
        c2 = Component({"T"}, "T", [Production("T", ("c",))])
        g = PCGS([c1, c2])
        forms = [("a", query(2), "b"), ("c",)]
        out = g.communication_step(forms)
        assert out[0] == ("a", "c", "b")

    def test_returning_resets_queried_component(self):
        c1 = Component({"S"}, "S", [])
        c2 = Component({"T"}, "T", [])
        g = PCGS([c1, c2], returning=True)
        out = g.communication_step([(query(2),), ("x", "y")])
        assert out[0] == ("x", "y")
        assert out[1] == ("T",)

    def test_nonreturning_keeps_form(self):
        c1 = Component({"S"}, "S", [])
        c2 = Component({"T"}, "T", [])
        g = PCGS([c1, c2], returning=False)
        out = g.communication_step([(query(2),), ("x",)])
        assert out[1] == ("x",)

    def test_derivation_terminates_on_terminal_master(self):
        c1 = Component({"S"}, "S", [Production("S", ("a", "b"))])
        g = PCGS([c1])
        assert g.derive() == ("a", "b")

    def test_query_out_of_range_rejected(self):
        c1 = Component({"S"}, "S", [])
        g = PCGS([c1])
        with pytest.raises(ValueError):
            g.communication_step([(query(9),)])

    def test_language_sample_two_components(self):
        """Master pulls from the helper: words contain helper output."""
        c1 = Component(
            {"S"}, "S",
            [Production("S", ("a", query(2), "b")), Production("S", ("a", "b"))],
        )
        c2 = Component({"T"}, "T", [Production("T", ("c",))])
        g = PCGS([c1, c2])
        words = g.language_sample(tries=100)
        assert ("a", "b") in words
        assert ("a", "c", "b") in words

    def test_blocked_derivation_returns_none(self):
        c1 = Component({"S"}, "S", [Production("S", ("S",))])
        g = PCGS([c1])
        assert g.derive(max_steps=10) is None

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            PCGS([])
