"""Tests for repro.query.adapters — the worked domains as one-liners."""

import pytest

from repro.adhoc.messages import HopRecord, TraceLog
from repro.deadlines.spec import DeadlineKind, DeadlineSpec, StepUsefulness
from repro.engine import Verdict, decide
from repro.query import (
    aq_query,
    deadline_query,
    delivery_events,
    pq_query,
    route_delivery_query,
)
from repro.query.builder import QStep
from repro.stream import StreamVerdict
from repro.words import TimedWord


# ------------------------------------------------------- §4.1 deadlines


def test_deadline_query_firm_matches_oracle_window():
    q = deadline_query(DeadlineSpec(kind=DeadlineKind.FIRM, t_d=5))
    assert q.steps == (QStep("done", 0, 4),)  # strictly before t_d
    assert q.mode == "once"
    on_time = TimedWord.lasso([("done", 4)], [("done", 10)], shift=10)
    late = TimedWord.lasso([("done", 5)], [("done", 10)], shift=10)
    assert decide(word=on_time, query=q).verdict is Verdict.ACCEPT
    assert decide(word=late, query=q).verdict is Verdict.REJECT


def test_deadline_query_step_soft_gets_grace():
    dspec = DeadlineSpec(
        kind=DeadlineKind.SOFT,
        t_d=5,
        usefulness=StepUsefulness(max_value=1, t_d=5, grace=3),
        min_acceptable=1,
    )
    q = deadline_query(dspec, action="commit")
    assert q.steps == (QStep("commit", 0, 8),)  # through t_d + grace


# -------------------------------------------------- rtdb L_aq and L_pq


def test_aq_query_is_the_eq9_skeleton():
    q = aq_query(5, issue_within=2)
    assert q.steps == (QStep("issue", 0, 2), QStep("answer", 0, 4))
    assert q.mode == "once"
    m = q.monitor()
    m.ingest("issue", 1)
    assert m.ingest("answer", 5) is StreamVerdict.ACCEPTING


def test_pq_query_is_the_eq10_buchi_obligation():
    q = pq_query(d_q=5, t_p=8)
    assert q.mode == "repeat"
    assert q.steps == (QStep("issue", 0, 8), QStep("answer", 0, 4))
    with pytest.raises(ValueError, match="t_p"):
        pq_query(5, 0)
    m = q.monitor()
    # Two full on-time cycles, then the answers stop: the iteration
    # starves and the stream is rejected once the window is blown.
    for s, t in [("issue", 0), ("answer", 2), ("issue", 6), ("answer", 8)]:
        m.ingest(s, t)
    assert m.verdict is StreamVerdict.ACCEPTING
    m.ingest("issue", 10)
    assert m.ingest("issue", 20) is StreamVerdict.REJECTED


# --------------------------------------------------- §5.2 routing hops


def test_route_delivery_query_bounds_inter_arrival():
    q = route_delivery_query(bound=4)
    assert q.steps == (QStep("r", 0, 4),)
    assert q.mode == "repeat"
    with pytest.raises(ValueError, match="bound"):
        route_delivery_query(-1)


def test_delivery_events_bridges_trace_logs():
    trace = TraceLog()
    for sent_at, src, dst in [(0, 1, 2), (3, 2, 3), (1, 1, 3)]:
        hop = HopRecord(sent_at=sent_at, src=src, dst=dst, body="b", kind="data")
        trace.record_receive(hop, dst)
    # Time-ordered, one (symbol, received_at) pair per receive.
    assert delivery_events(trace) == [("r", 1), ("r", 2), ("r", 4)]
    # Node filter: only the hops node 3 heard.
    assert delivery_events(trace, node=3) == [("r", 2), ("r", 4)]
    # And the stream feeds the routing query directly.
    m = route_delivery_query(bound=4).monitor()
    m.ingest_many(delivery_events(trace))
    assert m.verdict is StreamVerdict.ACCEPTING
