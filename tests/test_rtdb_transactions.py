"""Tests for the deadline-aware transaction scheduler (§5.1.2 / [24])."""

import pytest

from repro.deadlines import DeadlineKind
from repro.rtdb import Policy, Transaction, TransactionScheduler, run_workload
from repro.kernel import Simulator


def txn(name, release, work, deadline, kind=DeadlineKind.FIRM):
    return Transaction(name, release, work, deadline, kind)


class TestValidation:
    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError):
            txn("t", 0, 0, 10)

    def test_deadline_after_release(self):
        with pytest.raises(ValueError):
            txn("t", 10, 1, 10)

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        sched = TransactionScheduler(sim)
        sched.submit(txn("t", 0, 1, 10))
        with pytest.raises(ValueError):
            sched.submit(txn("t", 0, 1, 10))


class TestUncontended:
    def test_single_transaction_runs_at_release(self):
        out = run_workload(Policy.FIFO, [txn("a", 5, 3, 20)])
        r = out.results[0]
        assert r.started == 5 and r.finished == 8
        assert r.met_deadline and out.miss_rate == 0.0

    def test_sequential_nonoverlapping(self):
        out = run_workload(
            Policy.FIFO,
            [txn("a", 0, 3, 10), txn("b", 20, 3, 30)],
        )
        assert all(r.met_deadline for r in out.results)


class TestPolicies:
    """Two transactions arrive together; only EDF/LSF order them so
    both (or the more urgent one) meet their deadlines."""

    WORKLOAD = [
        txn("lazy", 0, 10, 100),   # loose deadline
        txn("urgent", 0, 4, 6),    # tight deadline
    ]

    def test_fifo_misses_the_urgent_one(self):
        out = run_workload(Policy.FIFO, list(self.WORKLOAD))
        by_name = {r.transaction.name: r for r in out.results}
        assert by_name["lazy"].met_deadline
        assert not by_name["urgent"].met_deadline

    def test_edf_serves_urgent_first(self):
        out = run_workload(Policy.EDF, list(self.WORKLOAD))
        by_name = {r.transaction.name: r for r in out.results}
        assert by_name["urgent"].met_deadline
        assert by_name["lazy"].met_deadline  # still fits before t=100

    def test_lsf_also_serves_urgent_first(self):
        out = run_workload(Policy.LSF, list(self.WORKLOAD))
        by_name = {r.transaction.name: r for r in out.results}
        assert by_name["urgent"].met_deadline

    def test_edf_beats_fifo_on_overload_sweep(self):
        """The classic result: under contention EDF's miss rate is no
        worse than FIFO's (here: strictly better on a staggered load)."""
        workload = []
        for i in range(8):
            workload.append(txn(f"bg{i}", i, 6, 200))          # background
            workload.append(txn(f"rt{i}", i, 2, 12 + 6 * i))    # urgent
        fifo = run_workload(Policy.FIFO, [Transaction(t.name, t.release, t.work, t.deadline, t.kind) for t in workload])
        edf = run_workload(Policy.EDF, [Transaction(t.name, t.release, t.work, t.deadline, t.kind) for t in workload])
        assert edf.miss_rate < fifo.miss_rate


class TestFirmAbort:
    def test_late_firm_transaction_aborted(self):
        """A firm transaction whose deadline passed while queued is
        aborted, not executed ('useless' work)."""
        out = run_workload(
            Policy.FIFO,
            [txn("hog", 0, 50, 60), txn("dead", 0, 1, 10)],
        )
        by_name = {r.transaction.name: r for r in out.results}
        assert by_name["hog"].met_deadline
        assert not by_name["dead"].completed  # aborted, never started

    def test_late_soft_transaction_still_runs(self):
        out = run_workload(
            Policy.FIFO,
            [
                txn("hog", 0, 50, 60),
                txn("late-soft", 0, 5, 10, kind=DeadlineKind.SOFT),
            ],
        )
        by_name = {r.transaction.name: r for r in out.results}
        r = by_name["late-soft"]
        assert r.completed and not r.met_deadline
        assert r.tardiness == 55 - 10

    def test_tardiness_zero_when_met(self):
        out = run_workload(Policy.EDF, [txn("a", 0, 2, 10)])
        assert out.results[0].tardiness == 0


class TestOutcomeAggregates:
    def test_miss_rate_and_mean_tardiness(self):
        out = run_workload(
            Policy.FIFO,
            [
                txn("ok", 0, 2, 10),
                txn("late", 0, 10, 5, kind=DeadlineKind.SOFT),
            ],
        )
        assert out.miss_count == 1
        assert out.miss_rate == 0.5
        assert out.mean_tardiness == (12 - 5) / 2

    def test_empty_workload(self):
        out = run_workload(Policy.EDF, [])
        assert out.miss_rate == 0.0 and out.mean_tardiness == 0.0
