"""Unit tests for the event primitives (repro.kernel.events)."""

import pytest

from repro.kernel import (
    AllOf,
    AnyOf,
    Event,
    EventQueue,
    EventState,
    Priority,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_fresh_event_is_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.ok

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_then_run_triggers(self, sim):
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failed_event_carries_exception(self, sim):
        ev = sim.event()
        exc = RuntimeError("boom")
        ev.fail(exc)
        sim.run()
        assert ev.triggered and not ev.ok
        assert ev.value is exc

    def test_callback_after_trigger_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(1)
        sim.run()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        assert hits == [1]


class TestTimeout:
    def test_timeout_fires_at_delay(self, sim):
        seen = []

        def proc(sim):
            yield sim.timeout(7)
            seen.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert seen == [7]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeout_value_passthrough(self, sim):
        got = []

        def proc(sim):
            v = yield sim.timeout(3, value="hello")
            got.append(v)

        sim.process(proc(sim))
        sim.run()
        assert got == ["hello"]

    def test_non_integer_time_rejected_in_integer_mode(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(0.5)

    def test_dense_time_allowed_when_disabled(self):
        sim = Simulator(integer_time=False)
        done = []

        def proc(sim):
            yield sim.timeout(0.5)
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [0.5]


class TestConditions:
    def test_any_of_fires_on_first(self, sim):
        t1, t2 = sim.timeout(5), sim.timeout(9)
        any_ev = sim.any_of([t1, t2])
        sim.run(until=any_ev)
        assert sim.now == 5
        assert t1.triggered and not t2.triggered

    def test_all_of_waits_for_all(self, sim):
        t1, t2 = sim.timeout(5), sim.timeout(9)
        all_ev = sim.all_of([t1, t2])
        sim.run(until=all_ev)
        assert sim.now == 9

    def test_empty_condition_vacuously_true(self, sim):
        ev = sim.all_of([])
        sim.run()
        assert ev.triggered and ev.ok

    def test_all_of_value_maps_children(self, sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(2, value="b")
        all_ev = sim.all_of([t1, t2])
        sim.run()
        assert set(all_ev.value.values()) == {"a", "b"}


class TestEventQueue:
    def test_fifo_within_equal_time_and_priority(self):
        q = EventQueue()
        sim = Simulator()
        events = [Event(sim, name=str(i)) for i in range(5)]
        for ev in events:
            q.push(10, Priority.NORMAL, ev)
        popped = [q.pop()[1].name for _ in range(5)]
        assert popped == ["0", "1", "2", "3", "4"]

    def test_priority_orders_equal_times(self):
        q = EventQueue()
        sim = Simulator()
        low = Event(sim, name="low")
        urgent = Event(sim, name="urgent")
        q.push(10, Priority.LOW, low)
        q.push(10, Priority.URGENT, urgent)
        assert q.pop()[1].name == "urgent"

    def test_time_orders_before_priority(self):
        q = EventQueue()
        sim = Simulator()
        early = Event(sim, name="early")
        urgent = Event(sim, name="urgent-late")
        q.push(5, Priority.LOW, early)
        q.push(10, Priority.URGENT, urgent)
        assert q.pop()[1].name == "early"

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1, 0, Event(Simulator()))
        assert q and len(q) == 1
