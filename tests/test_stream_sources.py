"""Tests for repro.stream.sources — domain adapters into monitors."""

from repro.adhoc.messages import HopRecord, TraceLog
from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.deadlines import DeadlineKind, DeadlineSpec
from repro.kernel import Le
from repro.obs import instrumented
from repro.rtdb import QueryRegistry, RecognitionInstance
from repro.stream import (
    SessionMux,
    StreamVerdict,
    TBAMonitor,
    events_of,
    receive_stream,
    replay,
    replay_into_mux,
    rtdb_periodic_monitor,
    rtdb_periodic_stream,
)
from repro.words import TimedWord


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


REGISTRY = QueryRegistry(
    queries={
        "hot": lambda st: {(n,) for n, v in st.images.items() if v >= 20},
    },
    derivations={},
    eval_cost=lambda name, st: 2,
)


def rtdb_instance():
    return RecognitionInstance(
        invariants={"site": "plant"},
        derived={},
        images={"temp0": (3, lambda t: 20 + t % 10)},
        query_name="hot",
        issue_time=12,
        spec=DeadlineSpec(DeadlineKind.NONE),
    )


class TestEventsOf:
    def test_finite_word_ends_the_stream(self):
        word = TimedWord.finite([("a", 1), ("b", 3)])
        assert list(events_of(word)) == [("a", 1), ("b", 3)]

    def test_lasso_clipped_by_until(self):
        word = TimedWord.lasso([], [("a", 1)], shift=1)
        events = list(events_of(word, until=5))
        assert events == [("a", t) for t in range(1, 6)]

    def test_limit_caps_event_count(self):
        word = TimedWord.lasso([], [("a", 1)], shift=1)
        assert len(list(events_of(word, limit=3))) == 3


class TestReplay:
    def test_yields_per_event_verdicts(self):
        word = TimedWord.lasso([], [("a", 1)], shift=1)
        steps = list(replay(word, TBAMonitor(bounded_gap_tba()), until=4))
        assert [v for _e, v in steps] == [StreamVerdict.ACCEPTING] * 4

    def test_stops_at_the_absorbing_verdict(self):
        word = TimedWord.lasso([("a", 1), ("a", 10)], [("a", 11)], shift=1)
        steps = list(replay(word, TBAMonitor(bounded_gap_tba()), until=100))
        assert len(steps) == 2  # the gap of 9 rejects; nothing after
        assert steps[-1][1] is StreamVerdict.REJECTED

    def test_stop_when_absorbed_false_keeps_streaming(self):
        word = TimedWord.lasso([("a", 1), ("a", 10)], [("a", 11)], shift=1)
        monitor = TBAMonitor(bounded_gap_tba())
        steps = list(replay(word, monitor, until=15, stop_when_absorbed=False))
        assert len(steps) == 7  # t = 1, 10, 11, 12, 13, 14, 15


class TestRtdbAdapters:
    def test_periodic_serving_monitored_online(self):
        """The §5.1 L_pq feed: database then periodic invocations, each
        served one earns an f; the verdict-so-far reads ACCEPTING."""
        monitor = rtdb_periodic_monitor(REGISTRY)
        stream = rtdb_periodic_stream(
            rtdb_instance(), lambda i: ("temp0",), 10, until=80
        )
        for symbol, t in stream:
            monitor.ingest(symbol, t)
        assert monitor.verdict is StreamVerdict.ACCEPTING
        assert monitor.f_count >= 1
        report = monitor.finish(100)
        assert report.f_count >= monitor.f_count > 0

    def test_period_sets_the_f_window(self):
        monitor = rtdb_periodic_monitor(REGISTRY, period=10)
        assert monitor.f_window == 10


class TestReceiveStream:
    def trace(self):
        log = TraceLog()
        hops = [
            HopRecord(sent_at=4, src=1, dst=2, body="m", kind="data"),
            HopRecord(sent_at=1, src=0, dst=1, body="m", kind="data"),
            HopRecord(sent_at=2, src=0, dst=3, body="m", kind="data"),
        ]
        for hop in hops:
            log.record_hop(hop)
            log.record_receive(hop, hop.dst)
        return log

    def test_receives_stream_in_time_order(self):
        events = list(receive_stream(self.trace()))
        assert events == [("r", 2), ("r", 3), ("r", 5)]

    def test_node_filter_and_symbol_override(self):
        events = list(receive_stream(self.trace(), node=1, symbol="heard"))
        assert events == [("heard", 2)]

    def test_feeds_a_liveness_tba(self):
        # gaps between receives stay ≤ 2: traffic keeps flowing
        monitor = TBAMonitor(bounded_gap_tba(2))
        for symbol, t in receive_stream(self.trace(), symbol="a"):
            monitor.ingest(symbol, t)
        assert monitor.verdict is StreamVerdict.ACCEPTING


class TestReplayIntoMux:
    def words(self, n):
        words = {}
        for i in range(n):
            if i % 2 == 0:
                words[f"s{i:03d}"] = TimedWord.lasso([], [("a", 1)], shift=1)
            else:
                words[f"s{i:03d}"] = TimedWord.lasso(
                    [("a", 1), ("a", 10)], [("a", 11)], shift=1
                )
        return words

    def test_merged_replay_renders_per_stream_verdicts(self):
        mux = SessionMux(bounded_gap_tba())
        verdicts = replay_into_mux(mux, self.words(6), until=40)
        for name, verdict in verdicts.items():
            expected = (
                StreamVerdict.ACCEPTING
                if int(name[1:]) % 2 == 0
                else StreamVerdict.REJECTED
            )
            assert verdict is expected
        assert mux.stats()["active"] == 6

    def test_replay_emits_an_obs_span(self):
        with instrumented() as inst:
            mux = SessionMux(bounded_gap_tba())
            replay_into_mux(mux, self.words(2), until=10)
        spans = [s for s in inst.spans.completed() if s.name == "stream.replay"]
        assert len(spans) == 1
