"""Tests for word transformations (delay/stretch/filter/relabel)."""

import pytest
from hypothesis import given, strategies as st

from repro.words import (
    TimedWord,
    Trilean,
    concat,
    delay,
    filter_symbols,
    relabel,
    stretch,
)


FIN = TimedWord.finite([("a", 0), ("b", 3), ("c", 3)])
LASSO = TimedWord.lasso([("h", 0)], [("x", 2), ("y", 3)], shift=2)


class TestDelay:
    def test_shifts_times(self):
        w = delay(FIN, 5)
        assert w.take(3) == [("a", 5), ("b", 8), ("c", 8)]

    def test_preserves_well_behavedness(self):
        assert delay(LASSO, 7).is_well_behaved() is Trilean.TRUE

    def test_negative_delay_validated(self):
        with pytest.raises(ValueError):
            delay(FIN, -1)
        # but a word starting later can be advanced
        w = delay(delay(FIN, 5), -2)
        assert w.time_at(0) == 3

    def test_functional_delay(self):
        w = TimedWord.functional(lambda i: ("z", i))
        assert delay(w, 4).take(3) == [("z", 4), ("z", 5), ("z", 6)]

    def test_section_513_idiom(self):
        """aq-at-time-t ≡ delay of the time-0 shape — the §5.1.3 move."""
        base = TimedWord.lasso([("hdr", 0)], [("w", 1)], shift=1)
        at_t = delay(base, 12)
        assert at_t.time_at(0) == 12
        assert at_t.is_well_behaved() is Trilean.TRUE

    @given(st.integers(0, 50))
    def test_delay_distributes_over_concat(self, dt):
        a = TimedWord.finite([("a", 1)])
        b = TimedWord.finite([("b", 4)])
        lhs = delay(concat(a, b), dt)
        rhs = concat(delay(a, dt), delay(b, dt))
        assert lhs == rhs


class TestStretch:
    def test_multiplies_times(self):
        w = stretch(FIN, 3)
        assert w.take(3) == [("a", 0), ("b", 9), ("c", 9)]

    def test_lasso_shift_scaled(self):
        w = stretch(LASSO, 2)
        assert w.shift == 4
        assert w.is_well_behaved() is Trilean.TRUE

    def test_identity(self):
        assert stretch(FIN, 1) == FIN

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            stretch(FIN, 0)

    @given(st.integers(1, 6))
    def test_monotone_preserved(self, f):
        w = stretch(LASSO, f)
        times = [t for _s, t in w.take(20)]
        assert times == sorted(times)


class TestFilter:
    def test_finite_filter(self):
        w = filter_symbols(FIN, lambda s: s != "b")
        assert w.take(2) == [("a", 0), ("c", 3)]

    def test_lasso_filter_keeps_loop(self):
        w = filter_symbols(LASSO, lambda s: s != "x")
        assert not w.is_finite
        assert w.take(3) == [("h", 0), ("y", 3), ("y", 5)]

    def test_lasso_filter_collapsing_loop(self):
        """Filtering every loop symbol collapses to a finite word."""
        w = filter_symbols(LASSO, lambda s: s == "h")
        assert w.is_finite
        assert w.take(5) == [("h", 0)]

    def test_operand_recovery_from_merge(self):
        """Reading an operand back out of a Definition 3.5 merge."""
        a = TimedWord.finite([(("A", i), 2 * i) for i in range(4)])
        b = TimedWord.finite([(("B", i), 2 * i + 1) for i in range(4)])
        merged = concat(a, b)
        back = filter_symbols(merged, lambda s: s[0] == "A")
        assert back == a

    def test_functional_filter_lazy(self):
        w = TimedWord.functional(lambda i: (("even" if i % 2 == 0 else "odd"), i))
        evens = filter_symbols(w, lambda s: s == "even")
        assert [t for _s, t in evens.take(3)] == [0, 2, 4]


class TestRelabel:
    def test_pointwise_mapping(self):
        w = relabel(FIN, str.upper)
        assert [s for s, _t in w.take(3)] == ["A", "B", "C"]

    def test_times_untouched(self):
        w = relabel(LASSO, lambda s: (s, s))
        assert [t for _s, t in w.take(5)] == [t for _s, t in LASSO.take(5)]

    def test_composes_with_filter(self):
        w = relabel(filter_symbols(FIN, lambda s: s != "b"), str.upper)
        assert w.take(2) == [("A", 0), ("C", 3)]
