"""Tests for timed ω-languages and Theorem 3.3 closure operations."""

import random

import pytest

from repro.words import (
    FiniteLanguage,
    KleeneClosure,
    MembershipUndecidable,
    PredicateLanguage,
    TimedWord,
    Trilean,
    concat,
)


def w(*pairs):
    return TimedWord.finite(list(pairs))


WB1 = TimedWord.lasso([("a", 0)], [("x", 1)], shift=1)
WB2 = TimedWord.lasso([("b", 0)], [("y", 1)], shift=1)
WB3 = TimedWord.lasso([("c", 0)], [("z", 2)], shift=2)


@pytest.fixture
def l12():
    return FiniteLanguage([WB1, WB2], name="L12")


@pytest.fixture
def l23():
    return FiniteLanguage([WB2, WB3], name="L23")


class TestFiniteLanguage:
    def test_membership_exact_on_lassos(self, l12):
        assert l12.contains(WB1)
        assert l12.contains(TimedWord.lasso([("a", 0), ("x", 1)], [("x", 2)], shift=1))
        assert not l12.contains(WB3)

    def test_sampling(self, l12):
        rng = random.Random(0)
        for _ in range(5):
            assert l12.contains(l12.sample(rng))

    def test_empty_language_cannot_sample(self):
        with pytest.raises(MembershipUndecidable):
            FiniteLanguage([]).sample(random.Random(0))


class TestBooleanOps:
    """Theorem 3.3: closure under ∪, ∩, complement."""

    def test_union(self, l12, l23):
        u = l12 | l23
        assert u.contains(WB1) and u.contains(WB3)

    def test_intersection(self, l12, l23):
        i = l12 & l23
        assert i.contains(WB2)
        assert not i.contains(WB1)
        assert not i.contains(WB3)

    def test_complement(self, l12):
        c = ~l12
        assert not c.contains(WB1)
        assert c.contains(WB3)

    def test_double_complement(self, l12):
        cc = ~~l12
        assert cc.contains(WB1) == l12.contains(WB1)
        assert cc.contains(WB3) == l12.contains(WB3)

    def test_de_morgan_on_samples(self, l12, l23):
        lhs = ~(l12 | l23)
        rhs = (~l12) & (~l23)
        for word in (WB1, WB2, WB3):
            assert lhs.contains(word) == rhs.contains(word)

    def test_union_preserves_well_behavedness(self, l12, l23):
        assert (l12 | l23).is_well_behaved_language() is Trilean.TRUE


class TestConcatLanguage:
    def test_membership_on_finite_bases(self):
        a = FiniteLanguage([w(("a", 0))], name="A")
        b = FiniteLanguage([w(("b", 1))], name="B")
        ab = a.concatenate(b)
        assert ab.contains(w(("a", 0), ("b", 1)))
        assert not ab.contains(w(("b", 0), ("a", 1)))

    def test_merge_semantics_not_append(self):
        """Concatenation merges by time: the 'second' word's symbols can
        precede the first's."""
        a = FiniteLanguage([w(("a", 9))], name="A")
        b = FiniteLanguage([w(("b", 1))], name="B")
        ab = a.concatenate(b)
        assert ab.contains(w(("b", 1), ("a", 9)))

    def test_predicate_base_membership_undecidable(self):
        p = PredicateLanguage(lambda word: True, name="P")
        f = FiniteLanguage([w(("a", 0))])
        with pytest.raises(MembershipUndecidable):
            p.concatenate(f).contains(w(("a", 0)))

    def test_sampling_concatenation(self):
        a = FiniteLanguage([WB1], name="A")
        b = FiniteLanguage([w(("k", 0))], name="B")
        lang = b.concatenate(a)
        rng = random.Random(1)
        sample = lang.sample(rng)
        assert sample == concat(w(("k", 0)), WB1)


class TestKleeneClosure:
    """Definition 3.6, including the paper's L⁰ = ∅ convention."""

    def test_l0_is_empty(self):
        base = FiniteLanguage([w(("a", 0))], name="A")
        star = KleeneClosure(base)
        assert isinstance(star.power(0), FiniteLanguage)
        assert len(star.power(0)) == 0

    def test_star_contains_base(self):
        base = FiniteLanguage([w(("a", 0))], name="A")
        star = base.kleene()
        assert star.contains(w(("a", 0)))

    def test_star_excludes_empty_word(self):
        """L⁰ = ∅ means ε ∉ L* (unless ε ∈ L)."""
        base = FiniteLanguage([w(("a", 0))], name="A")
        assert not base.kleene().contains(w())

    def test_star_contains_powers(self):
        base = FiniteLanguage([w(("a", 0))], name="A")
        star = base.kleene(max_power=4)
        assert star.contains(w(("a", 0), ("a", 0)))
        assert star.contains(w(("a", 0), ("a", 0), ("a", 0)))

    def test_star_respects_merge_order(self):
        base = FiniteLanguage([w(("a", 0), ("b", 3))], name="A")
        star = base.kleene(max_power=3)
        # L² merges two copies: a a b b (ties: first operand first)
        assert star.contains(w(("a", 0), ("a", 0), ("b", 3), ("b", 3)))
        assert not star.contains(w(("a", 0), ("b", 3), ("b", 3), ("a", 4)))

    def test_empty_base_star_empty(self):
        star = FiniteLanguage([]).kleene()
        assert not star.contains(w(("a", 0)))

    def test_sampling_star(self):
        base = FiniteLanguage([w(("a", 0))], name="A")
        star = base.kleene(max_power=3)
        rng = random.Random(0)
        for _ in range(5):
            sample = star.sample(rng)
            assert star.contains(sample)


class TestPredicateLanguage:
    def test_predicate_membership(self):
        lang = PredicateLanguage(
            lambda word: word.symbol_at(0) == "a", name="starts-a"
        )
        assert lang.contains(w(("a", 0), ("b", 1)))
        assert not lang.contains(w(("b", 0)))

    def test_sampler_used(self):
        lang = PredicateLanguage(
            lambda word: True,
            sampler=lambda rng: w(("s", rng.randint(0, 3))),
        )
        sample = lang.sample(random.Random(0))
        assert sample.symbol_at(0) == "s"

    def test_no_sampler_raises(self):
        lang = PredicateLanguage(lambda word: True)
        with pytest.raises(MembershipUndecidable):
            lang.sample(random.Random(0))

    def test_well_behavedness_check_unknown_without_sampler(self):
        lang = PredicateLanguage(lambda word: True)
        assert lang.is_well_behaved_language() is Trilean.UNKNOWN
