"""Tests for repro.engine.faults — schedules, message faults, and the
``in_children_only`` parent-protection contract."""

import os

import pytest

from repro.engine import (
    CrashingAcceptor,
    FailingAcceptor,
    FaultSchedule,
    FileFuse,
    InjectedFault,
    MessageFaults,
    decide,
)
from repro.spec import eventually, rt_bound, spec_acceptor
from repro.words import TimedWord


def small_case():
    spec = eventually(rt_bound("a", 0, 3))
    acc = spec_acceptor(spec, ("a", "tick"))
    word = TimedWord.lasso([("a", 1)], [("tick", 5)], shift=1)
    return acc, word


class TestFaultSchedule:
    def test_deterministic_in_seed_and_key(self):
        a, b = FaultSchedule(7), FaultSchedule(7)
        keys = [("loss", "C", "P1", "vote", 0), ("x",), (1, 2, 3)]
        for key in keys:
            assert a.chance(0.5, *key) == b.chance(0.5, *key)
            assert a.pick(0, 10, *key) == b.pick(0, 10, *key)

    def test_order_free(self):
        s = FaultSchedule(3)
        first = s.chance(0.5, "k1"), s.chance(0.5, "k2")
        again = s.chance(0.5, "k2"), s.chance(0.5, "k1")
        assert first == (again[1], again[0])

    def test_seeds_differ(self):
        draws = {
            tuple(FaultSchedule(seed).chance(0.5, i) for i in range(16))
            for seed in range(8)
        }
        assert len(draws) > 1

    def test_chance_edges(self):
        s = FaultSchedule(0)
        assert not any(s.chance(0.0, i) for i in range(50))
        assert all(s.chance(1.0, i) for i in range(50))

    def test_pick_bounds_and_coverage(self):
        s = FaultSchedule(1)
        values = {s.pick(2, 5, i) for i in range(200)}
        assert values == {2, 3, 4, 5}
        assert s.pick(4, 4, "only") == 4
        with pytest.raises(ValueError):
            s.pick(5, 4, "empty")

    def test_rate_is_roughly_honoured(self):
        s = FaultSchedule(11)
        hits = sum(1 for i in range(2000) if s.chance(0.25, i))
        assert 0.18 < hits / 2000 < 0.32


class TestMessageFaults:
    def test_validation(self):
        for bad in (
            dict(loss_rate=1.5),
            dict(delay_rate=-0.1),
            dict(extra_delay=(3, 1)),
            dict(extra_delay=(-1, 2)),
        ):
            with pytest.raises(ValueError):
                MessageFaults(0, **bad)

    def test_apply_is_deterministic(self):
        kw = dict(loss_rate=0.3, delay_rate=0.3, extra_delay=(1, 4))
        a, b = MessageFaults(5, **kw), MessageFaults(5, **kw)
        msgs = [("C", f"P{i}", "vote", 2) for i in range(50)]
        assert [a.apply(*m) for m in msgs] == [b.apply(*m) for m in msgs]

    def test_loss_and_delay_counters(self):
        mf = MessageFaults(2, loss_rate=0.4, delay_rate=0.4, extra_delay=(2, 2))
        outcomes = [mf.apply("C", f"P{i}", "decision", 3) for i in range(100)]
        lost = [o for o in outcomes if o is None]
        delayed = [o for o in outcomes if o is not None and o > 3]
        assert mf.lost == len(lost) > 0
        assert mf.delayed == len(delayed) > 0
        assert all(o == 5 for o in delayed)  # base 3 + fixed extra 2

    def test_match_restricts_faults(self):
        mf = MessageFaults(
            0, loss_rate=1.0, match=lambda src, dst, kind: kind == "vote"
        )
        assert mf.apply("C", "P1", "prepare", 2) == 2
        assert mf.apply("P1", "C", "vote", 2) is None

    def test_zero_rates_pass_everything_through(self):
        mf = MessageFaults(9)
        assert all(mf.apply("C", "P1", "k", d) == d for d in range(5))
        assert mf.lost == 0 and mf.delayed == 0


class TestParentProtectionContract:
    """``in_children_only=True`` must keep the constructing process
    unharmed — for the new message injector and (regression) for the
    crash/fail wrappers it inherits the contract from."""

    def test_message_faults_spare_the_parent(self):
        mf = MessageFaults(0, loss_rate=1.0, delay_rate=1.0, in_children_only=True)
        assert mf.apply("C", "P1", "vote", 2) == 2
        assert mf.lost == 0 and mf.delayed == 0

    def test_message_faults_fire_in_a_forked_child(self):
        mf = MessageFaults(0, loss_rate=1.0, in_children_only=True)
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: the same object now fires
            os.close(r)
            verdict = b"lost" if mf.apply("C", "P1", "vote", 2) is None else b"kept"
            os.write(w, verdict)
            os._exit(0)
        os.close(w)
        try:
            assert os.read(r, 4) == b"lost"
        finally:
            os.close(r)
            os.waitpid(pid, 0)
        # ... while the parent stays protected before and after.
        assert mf.apply("C", "P1", "vote", 2) == 2

    def test_crashing_acceptor_spares_the_parent(self):
        acc, word = small_case()
        fuse = FileFuse(shots=5)
        wrapper = CrashingAcceptor(acc, fuse, in_children_only=True)
        report = wrapper.decide(word)  # survives: we are the parent
        assert report.verdict is decide(acc, word).verdict
        assert fuse.spent == 0  # the fuse was not even consulted

    def test_failing_acceptor_spares_the_parent_when_asked(self):
        acc, word = small_case()
        protected = FailingAcceptor(acc, FileFuse(shots=5), in_children_only=True)
        assert protected.decide(word).verdict is decide(acc, word).verdict
        # Default (in_children_only=False) fires anywhere — including here.
        firing = FailingAcceptor(acc, FileFuse(shots=1))
        with pytest.raises(InjectedFault):
            firing.decide(word)

    def test_failing_acceptor_fires_in_a_forked_child(self):
        acc, word = small_case()
        wrapper = FailingAcceptor(acc, FileFuse(shots=1), in_children_only=True)
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(r)
            try:
                wrapper.decide(word)
                os.write(w, b"calm")
            except InjectedFault:
                os.write(w, b"boom")
            os._exit(0)
        os.close(w)
        try:
            assert os.read(r, 4) == b"boom"
        finally:
            os.close(r)
            os.waitpid(pid, 0)
