"""Tests for time sequences — Definition 3.1."""

import pytest
from hypothesis import given, strategies as st

from repro.words import OMEGA, TimeSequence, Trilean


# strategy: monotone non-negative integer lists
monotone_lists = st.lists(st.integers(0, 50), min_size=1, max_size=20).map(
    lambda xs: sorted(xs)
)


class TestOmega:
    def test_omega_exceeds_every_int(self):
        assert OMEGA > 10**18
        assert not (OMEGA < 10**18)
        assert OMEGA != 5

    def test_omega_equals_itself(self):
        assert OMEGA == OMEGA
        assert OMEGA >= OMEGA and OMEGA <= OMEGA


class TestFinite:
    def test_finite_basics(self):
        ts = TimeSequence.finite([0, 1, 1, 3])
        assert len(ts) == 4
        assert ts.length == 4
        assert list(ts) == [0, 1, 1, 3]

    def test_finite_is_monotone(self):
        assert TimeSequence.finite([0, 1, 2]).is_monotone() is Trilean.TRUE
        assert TimeSequence.finite([2, 1]).is_monotone() is Trilean.FALSE

    def test_finite_never_well_behaved(self):
        """The paper: a well-behaved time sequence is always infinite."""
        assert TimeSequence.finite([0, 1, 2]).is_well_behaved() is Trilean.FALSE

    def test_negative_values_not_monotone(self):
        assert TimeSequence.finite([-1, 0]).is_monotone() is Trilean.FALSE

    def test_index_out_of_range(self):
        ts = TimeSequence.finite([1, 2])
        with pytest.raises(IndexError):
            ts[5]
        with pytest.raises(IndexError):
            ts[-1]

    @given(monotone_lists)
    def test_monotone_lists_are_monotone(self, xs):
        assert TimeSequence.finite(xs).is_monotone() is Trilean.TRUE


class TestLasso:
    def test_lasso_indexing(self):
        ts = TimeSequence.lasso(prefix=[0, 0], loop=[1, 2], shift=3)
        # prefix 0,0 then 1,2, 4,5, 7,8, ...
        assert ts.take(8) == [0, 0, 1, 2, 4, 5, 7, 8]

    def test_lasso_length_is_omega(self):
        ts = TimeSequence.lasso([], [1], 1)
        assert ts.length == OMEGA
        with pytest.raises(TypeError):
            len(ts)

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            TimeSequence.lasso([0], [], 1)

    def test_positive_shift_is_well_behaved(self):
        ts = TimeSequence.lasso([0], [1], shift=1)
        assert ts.is_well_behaved() is Trilean.TRUE

    def test_zero_shift_not_well_behaved(self):
        """Bounded timestamps violate progress."""
        ts = TimeSequence.lasso([0], [5], shift=0)
        assert ts.is_well_behaved() is Trilean.FALSE
        assert ts.is_monotone() is Trilean.TRUE

    def test_nonmonotone_loop_detected(self):
        ts = TimeSequence.lasso([], [3, 1], shift=5)
        assert ts.is_monotone() is Trilean.FALSE

    def test_wraparound_monotonicity_detected(self):
        # loop [1, 9] with shift 2: 1,9, 3,11 -> 9 > 3 breaks monotone
        ts = TimeSequence.lasso([], [1, 9], shift=2)
        assert ts.is_monotone() is Trilean.FALSE

    def test_arithmetic_constructor(self):
        ts = TimeSequence.arithmetic(1, 1, offset_len=3, offset_value=0)
        assert ts.take(7) == [0, 0, 0, 1, 2, 3, 4]
        assert ts.is_well_behaved() is Trilean.TRUE

    @given(st.lists(st.integers(0, 10), min_size=0, max_size=5).map(sorted),
           st.integers(1, 5), st.integers(1, 4))
    def test_lasso_with_progress_always_well_behaved(self, prefix, start, shift):
        base = (prefix[-1] if prefix else 0) + start
        ts = TimeSequence.lasso(prefix, [base], shift)
        assert ts.is_well_behaved() is Trilean.TRUE


class TestFunctional:
    def test_functional_access(self):
        ts = TimeSequence.functional(lambda i: i * i)
        assert ts.take(4) == [0, 1, 4, 9]

    def test_functional_well_behavedness_unknown(self):
        ts = TimeSequence.functional(lambda i: i)
        assert ts.is_well_behaved() is Trilean.UNKNOWN

    def test_functional_nonmonotone_detected(self):
        ts = TimeSequence.functional(lambda i: 10 - i if i < 10 else 0)
        assert ts.is_monotone(horizon=20) is Trilean.FALSE
        assert ts.is_well_behaved(horizon=20) is Trilean.FALSE

    def test_functional_rejects_bad_values(self):
        ts = TimeSequence.functional(lambda i: -1)
        with pytest.raises(ValueError):
            ts[0]


class TestFirstIndexReaching:
    def test_finite(self):
        ts = TimeSequence.finite([0, 2, 5, 9])
        assert ts.first_index_reaching(5) == 2
        assert ts.first_index_reaching(100) is None

    def test_lasso_closed_form_matches_scan(self):
        ts = TimeSequence.lasso([0, 0], [1, 3], shift=4)
        for t in range(0, 40):
            closed = ts.first_index_reaching(t)
            scan = next(i for i in range(500) if ts[i] >= t)
            assert closed == scan, (t, closed, scan)

    def test_stuck_lasso_returns_none_beyond_bound(self):
        ts = TimeSequence.lasso([0], [5], shift=0)
        assert ts.first_index_reaching(6) is None
        assert ts.first_index_reaching(5) == 1

    @given(st.integers(0, 30), st.integers(1, 5), st.integers(1, 5))
    def test_arithmetic_first_index(self, t, start, shift):
        ts = TimeSequence.arithmetic(start, shift)
        idx = ts.first_index_reaching(t)
        assert idx is not None
        assert ts[idx] >= t
        if idx > 0:
            assert ts[idx - 1] < t
