"""Tests for §5.1.2: image/derived/invariant objects, consistency, and
the active-database rule engine."""

import pytest

from repro.kernel import Simulator
from repro.rtdb import (
    DBEvent,
    DerivedObject,
    FiringMode,
    ImageObject,
    InvariantObject,
    Rule,
    RuleEngine,
    absolutely_consistent,
    age,
    dispersion,
    relatively_consistent,
)


class TestImageObject:
    def test_sampling_and_value(self):
        o = ImageObject("temp", period=5)
        o.sample(20, 0)
        o.sample(25, 5)
        assert o.value() == 25
        assert o.timestamp() == 5

    def test_value_at_snapshot(self):
        o = ImageObject("temp", period=5)
        o.sample(20, 0)
        o.sample(25, 5)
        o.sample(30, 10)
        assert o.value_at(0) == 20
        assert o.value_at(7) == 25
        assert o.value_at(100) == 30

    def test_out_of_order_sampling_rejected(self):
        o = ImageObject("x", period=1)
        o.sample(1, 10)
        with pytest.raises(ValueError):
            o.sample(2, 5)

    def test_unsampled_reads_rejected(self):
        o = ImageObject("x", period=1)
        with pytest.raises(ValueError):
            o.value()
        with pytest.raises(ValueError):
            o.value_at(0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ImageObject("x", period=0)


class TestDerivedObject:
    def test_timestamp_is_oldest_source(self):
        a = ImageObject("a", 1)
        b = ImageObject("b", 1)
        a.sample(1, 3)
        b.sample(2, 9)
        d = DerivedObject("sum", [a, b], lambda x, y: x + y)
        assert d.timestamp() == 3  # oldest valid time, per the paper
        assert d.value() == 3

    def test_recompute_caches(self):
        a = ImageObject("a", 1)
        a.sample(1, 0)
        d = DerivedObject("twice", [a], lambda x: 2 * x)
        d.recompute(now=0)
        a.sample(10, 5)
        assert d.value() == 2  # cached
        d.recompute(now=5)
        assert d.value() == 20

    def test_needs_sources(self):
        with pytest.raises(ValueError):
            DerivedObject("d", [], lambda: 0)


class TestConsistency:
    def _objs(self):
        a = ImageObject("a", 1)
        b = ImageObject("b", 1)
        a.sample(0, 8)
        b.sample(0, 5)
        return a, b

    def test_age(self):
        a, _b = self._objs()
        assert age(a, now=10) == 2

    def test_invariant_age_is_zero(self):
        v = InvariantObject("unit", "m")
        assert age(v, now=99) == 0

    def test_dispersion(self):
        a, b = self._objs()
        assert dispersion(a, b, now=10) == 3

    def test_absolute_consistency_threshold(self):
        a, b = self._objs()
        assert absolutely_consistent([a, b], now=10, threshold=5)
        assert not absolutely_consistent([a, b], now=10, threshold=4)

    def test_relative_consistency_threshold(self):
        a, b = self._objs()
        assert relatively_consistent([a, b], now=10, threshold=3)
        assert not relatively_consistent([a, b], now=10, threshold=2)


class TestRuleEngine:
    def _engine(self):
        sim = Simulator()
        return sim, RuleEngine(sim, context={})

    def test_immediate_firing(self):
        sim, engine = self._engine()
        fired = []
        engine.add_rule(
            Rule(
                "r",
                "evt",
                condition=lambda e, c: True,
                action=lambda e, c: fired.append(e.attr("x")),
                mode=FiringMode.IMMEDIATE,
            )
        )
        engine.raise_event(DBEvent.make("evt", x=42))
        assert fired == [42]

    def test_condition_gates_firing(self):
        sim, engine = self._engine()
        fired = []
        engine.add_rule(
            Rule(
                "r",
                "evt",
                condition=lambda e, c: e.attr("x") > 10,
                action=lambda e, c: fired.append(e.attr("x")),
            )
        )
        engine.raise_event(DBEvent.make("evt", x=5))
        engine.raise_event(DBEvent.make("evt", x=15))
        assert fired == [15]

    def test_deferred_waits_for_commit(self):
        sim, engine = self._engine()
        fired = []
        engine.add_rule(
            Rule(
                "r",
                "evt",
                condition=lambda e, c: True,
                action=lambda e, c: fired.append("fired"),
                mode=FiringMode.DEFERRED,
            )
        )
        engine.begin()
        engine.raise_event(DBEvent.make("evt"))
        assert fired == []
        engine.commit()
        assert fired == ["fired"]

    def test_deferred_without_txn_degrades_to_immediate(self):
        sim, engine = self._engine()
        fired = []
        engine.add_rule(
            Rule(
                "r", "evt",
                condition=lambda e, c: True,
                action=lambda e, c: fired.append(1),
                mode=FiringMode.DEFERRED,
            )
        )
        engine.raise_event(DBEvent.make("evt"))
        assert fired == [1]

    def test_concurrent_spawns_process_with_duration(self):
        sim, engine = self._engine()
        fired = []
        engine.add_rule(
            Rule(
                "r", "evt",
                condition=lambda e, c: True,
                action=lambda e, c: fired.append(sim.now),
                mode=FiringMode.CONCURRENT,
                duration=7,
            )
        )
        engine.raise_event(DBEvent.make("evt"))
        assert fired == []  # not yet: runs concurrently
        sim.run()
        assert fired == [7]

    def test_cascading_events(self):
        """An action may generate events that trigger other rules."""
        sim, engine = self._engine()
        log = []
        engine.add_rule(
            Rule(
                "first", "a",
                condition=lambda e, c: True,
                action=lambda e, c: (log.append("a"), [DBEvent.make("b")])[1],
            )
        )
        engine.add_rule(
            Rule(
                "second", "b",
                condition=lambda e, c: True,
                action=lambda e, c: log.append("b"),
            )
        )
        engine.raise_event(DBEvent.make("a"))
        assert log == ["a", "b"]

    def test_cascade_limit_guards_nontermination(self):
        sim, engine = self._engine()
        engine.cascade_limit = 10
        engine.add_rule(
            Rule(
                "loop", "a",
                condition=lambda e, c: True,
                action=lambda e, c: [DBEvent.make("a")],
            )
        )
        with pytest.raises(RuntimeError):
            engine.raise_event(DBEvent.make("a"))

    def test_nested_transactions_rejected(self):
        sim, engine = self._engine()
        engine.begin()
        with pytest.raises(RuntimeError):
            engine.begin()

    def test_commit_without_begin_rejected(self):
        sim, engine = self._engine()
        with pytest.raises(RuntimeError):
            engine.commit()

    def test_paper_monthchange_rule(self):
        """The paper's example rule: on MonthChange if true then
        del(Date < CurrentDate)."""
        from repro.rtdb import ngc_example

        sim = Simulator()
        db = ngc_example()
        engine = RuleEngine(sim, context=db)

        months = ["January", "February", "March", "April", "May", "June",
                  "July", "August", "September", "October", "November",
                  "December"]

        def as_key(date):
            month, year = date.split()
            return (int(year), months.index(month))

        def del_stale(event, db):
            current = as_key(event.attr("current"))
            stale = [
                row.values
                for row in db["Schedules"]
                if as_key(row.values[2]) < current
            ]
            for values in stale:
                db.delete("Schedules", values)

        engine.add_rule(
            Rule("del-stale", "MonthChange", lambda e, c: True, del_stale)
        )
        engine.raise_event(DBEvent.make("MonthChange", current="November 1999"))
        # the October 1999 exhibition is stale and gets deleted
        assert len(db["Schedules"]) == 2
