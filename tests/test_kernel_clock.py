"""Unit tests for clocks and the Φ(X) constraint algebra (§2.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel import (
    And,
    Clock,
    ClockValuation,
    Ge,
    Le,
    Not,
    Or,
    Simulator,
    TrueConstraint,
    eq,
    gt,
    lt,
)


class TestClock:
    def test_reads_elapsed_time(self):
        sim = Simulator()
        clock = Clock(sim, "x")

        def proc(sim):
            yield sim.timeout(7)

        sim.process(proc(sim))
        sim.run()
        assert clock.read() == 7

    def test_reset_zeroes(self):
        sim = Simulator()
        clock = Clock(sim, "x")

        def proc(sim):
            yield sim.timeout(5)
            clock.reset()
            yield sim.timeout(3)

        sim.process(proc(sim))
        sim.run()
        assert clock.read() == 3


class TestConstraints:
    def test_le_ge_primitives(self):
        v = {"x": 5}
        assert Le("x", 5).evaluate(v)
        assert Le("x", 6).evaluate(v)
        assert not Le("x", 4).evaluate(v)
        assert Ge("x", 5).evaluate(v)
        assert not Ge("x", 6).evaluate(v)

    def test_not_and(self):
        v = {"x": 5, "y": 2}
        d = And(Le("x", 10), Not(Le("y", 1)))
        assert d.evaluate(v)
        assert not d.evaluate({"x": 11, "y": 2})
        assert not d.evaluate({"x": 5, "y": 1})

    def test_true_constraint(self):
        assert TrueConstraint().evaluate({})
        assert TrueConstraint().clocks() == frozenset()

    def test_derived_lt_gt_eq(self):
        assert lt("x", 5).evaluate({"x": 4})
        assert not lt("x", 5).evaluate({"x": 5})
        assert gt("x", 5).evaluate({"x": 6})
        assert not gt("x", 5).evaluate({"x": 5})
        assert eq("x", 5).evaluate({"x": 5})
        assert not eq("x", 5).evaluate({"x": 4})

    def test_or_de_morgan(self):
        d = Or(Le("x", 2), Ge("x", 8))
        assert d.evaluate({"x": 1})
        assert d.evaluate({"x": 9})
        assert not d.evaluate({"x": 5})

    def test_operator_sugar(self):
        d = Le("x", 5) & Ge("y", 1)
        assert d.evaluate({"x": 3, "y": 2})
        d2 = ~Le("x", 5)
        assert d2.evaluate({"x": 6})
        d3 = Le("x", 1) | Ge("x", 9)
        assert d3.evaluate({"x": 0}) and d3.evaluate({"x": 10})

    def test_clocks_collects_names(self):
        d = And(Le("x", 5), Not(Ge("y", 1)))
        assert d.clocks() == frozenset({"x", "y"})

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_lt_is_strictly_less(self, value, bound):
        assert lt("x", bound).evaluate({"x": value}) == (value < bound)

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_eq_matches_equality(self, value, bound):
        assert eq("x", bound).evaluate({"x": value}) == (value == bound)


class TestClockValuation:
    def test_zero_initialization(self):
        v = ClockValuation.zero(["x", "y"])
        assert v == {"x": 0, "y": 0}

    def test_advanced_is_uniform_and_pure(self):
        v = ClockValuation({"x": 1, "y": 2})
        w = v.advanced(5)
        assert w == {"x": 6, "y": 7}
        assert v == {"x": 1, "y": 2}

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ClockValuation({"x": 0}).advanced(-1)

    def test_reset_selective(self):
        v = ClockValuation({"x": 5, "y": 7})
        w = v.reset(["x"])
        assert w == {"x": 0, "y": 7}

    def test_reset_unknown_clock_rejected(self):
        with pytest.raises(KeyError):
            ClockValuation({"x": 0}).reset(["z"])

    @given(st.dictionaries(st.sampled_from("xyz"), st.integers(0, 50), min_size=1),
           st.integers(0, 20))
    def test_advance_preserves_guard_monotonicity(self, vals, delta):
        """Advancing time can only flip x ≥ c from false to true."""
        v = ClockValuation(vals)
        w = v.advanced(delta)
        for c in vals:
            for bound in (0, 10, 60):
                if Ge(c, bound).evaluate(v):
                    assert Ge(c, bound).evaluate(w)
