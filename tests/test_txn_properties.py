"""Tests for repro.txn.properties — the §4.1 deadline property suite.

Ground truth comes from two independent places: the plain-Python
oracles on :class:`TransactionRun` and the denotational spec semantics
(:func:`repro.spec.semantics.holds`); the compiled/monitored paths are
cross-checked in ``test_txn_verify.py``.
"""

import pytest

from repro.spec.semantics import holds
from repro.txn import (
    DECISION_ALPHABET,
    HANDSHAKE_ALPHABET,
    PROTOCOLS,
    TxnConfig,
    decided_within,
    properties_for,
    run_transaction,
    words_for,
)

CALM = TxnConfig(n_participants=3, d_lo=1, d_hi=2)
CRASHY = TxnConfig(
    n_participants=3,
    d_lo=1,
    d_hi=2,
    abort_vote_rate=0.15,
    participant_crash_rate=0.25,
    coordinator_crash_rate=0.3,
)


class TestSuiteShape:
    @pytest.mark.parametrize("proto", PROTOCOLS)
    def test_names_channels_determinism(self, proto):
        suite = properties_for(CALM, proto)
        assert set(suite) == {"commit", "abort", "decided", "fast", "handshake"}
        for name, prop in suite.items():
            assert prop.name == name
        assert suite["handshake"].channel == "handshake"
        assert suite["commit"].channel == "decision"
        # commit/abort/handshake compile to deterministic chains; the
        # alt-based decided/fast are the nondeterministic ones.
        assert suite["commit"].deterministic
        assert suite["abort"].deterministic
        assert suite["handshake"].deterministic
        assert not suite["decided"].deterministic
        assert not suite["fast"].deterministic

    def test_alphabets(self):
        suite = properties_for(CALM, "3pc")
        assert suite["commit"].alphabet == DECISION_ALPHABET
        assert suite["handshake"].alphabet == HANDSHAKE_ALPHABET
        assert "tick" in DECISION_ALPHABET and "tick" in HANDSHAKE_ALPHABET


class TestAgainstDenotation:
    @pytest.mark.parametrize("proto", PROTOCOLS)
    def test_fault_free_run_satisfies_everything(self, proto):
        run = run_transaction(proto, CALM, 1)
        suite = properties_for(CALM, proto)
        for p in run.processes:
            word = run.decision_word(p)
            assert holds(suite["commit"].spec, word, DECISION_ALPHABET)
            assert not holds(suite["abort"].spec, word, DECISION_ALPHABET)
            assert holds(suite["decided"].spec, word, DECISION_ALPHABET)
            assert holds(suite["fast"].spec, word, DECISION_ALPHABET)
        assert holds(
            suite["handshake"].spec, run.handshake_word(), HANDSHAKE_ALPHABET
        )

    def test_decision_specs_match_the_oracle(self):
        # holds() on the decision channel ⟺ the plain decided_within
        # oracle, across a crashy sweep — per process, per deadline.
        for proto in PROTOCOLS:
            suite = properties_for(CRASHY, proto)
            T = CRASHY.recovery_deadline(proto)
            D = CRASHY.happy_deadline(proto)
            for seed in range(15):
                run = run_transaction(proto, CRASHY, seed)
                by_T = decided_within(run, T)
                by_D = decided_within(run, D)
                for p in run.processes:
                    word = run.decision_word(p)
                    assert (
                        holds(suite["decided"].spec, word, DECISION_ALPHABET)
                        == by_T[p]
                    ), (proto, seed, p)
                    assert (
                        holds(suite["fast"].spec, word, DECISION_ALPHABET)
                        == by_D[p]
                    ), (proto, seed, p)

    def test_undecided_word_fails_every_decision_spec(self):
        cfg = TxnConfig(
            n_participants=3, d_lo=1, d_hi=2, coordinator_crash_rate=0.8
        )
        blocked = next(
            run_transaction("2pc", cfg, s)
            for s in range(60)
            if run_transaction("2pc", cfg, s).outcome == "blocked"
        )
        suite = properties_for(cfg, "2pc")
        p = next(
            p
            for p in blocked.processes
            if blocked.alive(p) and blocked.decisions[p] is None
        )
        word = blocked.decision_word(p)
        for name in ("commit", "abort", "decided", "fast"):
            assert not holds(suite[name].spec, word, DECISION_ALPHABET), name

    def test_3pc_abort_skips_the_commit_shaped_handshake(self):
        # Documented intentionally: the 3PC handshake spec is the
        # commit-shaped round trip, so an abort outcome rejects it.
        cfg = TxnConfig(n_participants=3, d_lo=1, d_hi=2, abort_vote_rate=1.0)
        run = run_transaction("3pc", cfg, 0)
        assert run.outcome == "abort"
        suite = properties_for(cfg, "3pc")
        assert not holds(
            suite["handshake"].spec, run.handshake_word(), HANDSHAKE_ALPHABET
        )


class TestWordsFor:
    def test_decision_channel_covers_every_process(self):
        run = run_transaction("2pc", CALM, 0)
        suite = properties_for(CALM, "2pc")
        words = words_for(run, suite["commit"])
        assert set(words) == set(run.processes)

    def test_handshake_channel_is_coordinator_only(self):
        run = run_transaction("3pc", CALM, 0)
        suite = properties_for(CALM, "3pc")
        words = words_for(run, suite["handshake"])
        assert set(words) == {"C"}

    def test_frozen_tail_passthrough(self):
        run = run_transaction("2pc", CALM, 0)
        suite = properties_for(CALM, "2pc")
        for word in words_for(run, suite["commit"], tail="frozen").values():
            assert word.shift == 0
