"""Tests for repro.query.plan — the fused multi-query product.

The load-bearing contract: a :class:`PlanMonitor`'s per-channel verdict
*streams* must be indistinguishable from running each query through its
own independent :class:`~repro.stream.monitor.TBAMonitor`, on both
stepping paths, per event — the conformance sweep fuzzes the same
property (``--gen query``), these tests pin the named edges.
"""

import random

import pytest

from repro.query import PlanMonitor, Q, QueryPlan
from repro.stream import StreamVerdict, TBAMonitor

QUERIES = {
    "fast": Q.event("req").then("rsp").within(3).repeat(),
    "slow": Q.event("req").then("rsp").within(8).repeat(),
    "hb": Q.event("req").within(8).once(),
}
ALPHA = ("req", "rsp")


def independent(compiled=None):
    return {
        name: TBAMonitor(q.tba(ALPHA), compiled=compiled)
        for name, q in QUERIES.items()
    }


# ---------------------------------------------------------- the plan


def test_plan_validates():
    with pytest.raises(ValueError, match="at least one"):
        QueryPlan({})
    with pytest.raises(ValueError, match="duplicate"):
        QueryPlan([("q", Q.event("a")), ("q", Q.event("b"))])
    with pytest.raises(ValueError, match="phase chains only"):
        QueryPlan({"bad": Q.event("a") | Q.event("b")})


def test_plan_accepts_text_queries():
    plan = QueryPlan({"hb": "repeat(hb within 5)"})
    assert plan.names == ("hb",)
    m = plan.monitor()
    m.ingest("hb", 0)
    assert m.query_verdicts()["hb"] is StreamVerdict.ACCEPTING


def test_plan_dedups_identical_specs():
    plan = QueryPlan(
        {"a1": Q.event("a").repeat(), "a2": "repeat(a)"}
    )
    assert plan.stats()["components"] == 1
    assert len(plan.names) == 2


def test_plan_stats_ledger():
    plan = QueryPlan(QUERIES, ALPHA)
    stats = plan.stats()
    assert stats["queries"] == 3
    assert stats["plan_configs"] == len(plan.analysis.universe)
    assert stats["sum_per_query_configs"] == sum(
        stats["per_query_configs"].values()
    )
    assert stats["config_ratio"] == pytest.approx(
        stats["plan_configs"] / stats["sum_per_query_configs"]
    )
    assert set(stats["sources"]) == set(QUERIES)


def test_plan_compiled_true_requires_tables():
    plan = QueryPlan(QUERIES, ALPHA)
    if plan.compiled is None:
        with pytest.raises(ValueError, match="compiled stepping unavailable"):
            QueryPlan(QUERIES, ALPHA, compiled=True)
    else:
        assert QueryPlan(QUERIES, ALPHA, compiled=True).compiled is not None
    assert QueryPlan(QUERIES, ALPHA, compiled=False).compiled is None


# ------------------------------------------- per-event verdict parity


def random_events(rng, n=60):
    events, t = [], 0
    for _ in range(n):
        events.append((rng.choice(ALPHA), t))
        t += rng.choice((0, 0, 1, 1, 2, 4, 9))
    return events


@pytest.mark.parametrize("compiled", [None, False])
@pytest.mark.parametrize("f_window", [None, 5])
def test_channel_streams_match_independent_monitors(compiled, f_window):
    rng = random.Random(20260808)
    plan = QueryPlan(QUERIES, ALPHA)
    for trial in range(10):
        pm = plan.monitor(compiled=compiled, f_window=f_window)
        singles = {
            name: TBAMonitor(q.tba(ALPHA), compiled=compiled, f_window=f_window)
            for name, q in QUERIES.items()
        }
        for s, t in random_events(rng):
            pm.ingest(s, t)
            want = {name: m.ingest(s, t) for name, m in singles.items()}
            assert pm.query_verdicts() == want, (trial, s, t)
        assert pm.channel_accept_visits() == {
            name: m.accept_visits for name, m in singles.items()
        }


def test_bulk_scan_matches_scalar_loop():
    rng = random.Random(7)
    plan = QueryPlan(QUERIES, ALPHA)
    events = random_events(rng, 300)
    scalar = plan.monitor()
    for s, t in events:
        scalar.ingest(s, t)
    bulk = plan.monitor()
    bulk.ingest_many(events)
    assert bulk.query_verdicts() == scalar.query_verdicts()
    assert bulk.channel_accept_visits() == scalar.channel_accept_visits()
    assert bulk.events_released == scalar.events_released


# ------------------------------------------------------------ verdicts


def test_headline_is_disjunction_and_channels_diverge():
    plan = QueryPlan(QUERIES, ALPHA)
    m = plan.monitor()
    m.ingest("req", 0)
    m.ingest("rsp", 5)  # misses "fast" (within 3), satisfies "slow"
    v = m.query_verdicts()
    assert v["fast"] is StreamVerdict.REJECTED
    assert v["slow"] is StreamVerdict.ACCEPTING
    assert v["hb"] is StreamVerdict.ACCEPTING
    assert m.verdict is not StreamVerdict.REJECTED  # some channel lives
    assert m.channel_verdict("fast") is StreamVerdict.REJECTED
    with pytest.raises(ValueError, match="no channel 'nope'"):
        m.channel_verdict("nope")


def test_all_channels_dead_rejects_headline():
    plan = QueryPlan(
        {
            "a": Q.event("req").then("rsp").within(2).repeat(),
            "b": Q.event("req").then("rsp").within(3).repeat(),
        },
        ALPHA,
    )
    m = plan.monitor()
    m.ingest("req", 0)
    m.ingest("rsp", 9)  # blows both windows
    assert m.verdict is StreamVerdict.REJECTED
    assert set(m.query_verdicts().values()) == {StreamVerdict.REJECTED}
    assert m.absorbed


def test_monitor_is_a_tba_monitor_with_custom_waves():
    plan = QueryPlan(QUERIES, ALPHA)
    m = plan.monitor()
    assert isinstance(m, TBAMonitor)
    assert isinstance(m, PlanMonitor)
    assert m._wave_custom
    assert not TBAMonitor._wave_custom


def test_checkpoint_refuses_plan_monitors():
    from repro.stream import checkpoint

    plan = QueryPlan(QUERIES, ALPHA)
    m = plan.monitor()
    m.ingest("req", 0)
    with pytest.raises(NotImplementedError, match="plan monitors"):
        checkpoint(m)
