"""Failure injection: radio loss in the ad hoc network."""

import pytest

from repro.adhoc import (
    AdhocNetwork,
    DiskRange,
    FloodingRouter,
    Message,
    Position,
    Scenario,
    StationaryMobility,
    run_scenario,
)
from repro.kernel import Simulator


def _line(n=4, spacing=10.0, radius=15.0, loss_rate=0.0, seed=0):
    positions = {i: Position(i * spacing, 0.0) for i in range(1, n + 1)}
    mob = StationaryMobility(positions)
    pred = DiskRange(mob.trajectories(), {i: radius for i in positions})
    sim = Simulator()
    net = AdhocNetwork(sim, pred, list(positions), loss_rate=loss_rate, loss_seed=seed)
    for i in positions:
        net.attach(i, FloodingRouter())
    net.start()
    return sim, net


class TestLossInjection:
    def test_invalid_rate_rejected(self):
        positions = {1: Position(0, 0)}
        pred = DiskRange(
            StationaryMobility(positions).trajectories(), {1: 10.0}
        )
        with pytest.raises(ValueError):
            AdhocNetwork(Simulator(), pred, [1], loss_rate=1.0)
        with pytest.raises(ValueError):
            AdhocNetwork(Simulator(), pred, [1], loss_rate=-0.1)

    def test_zero_loss_drops_nothing(self):
        sim, net = _line(loss_rate=0.0)
        msg = Message(src=1, dst=4, body="x", created_at=0)
        net.originate(msg)
        sim.run(until=50)
        assert net.frames_dropped == 0
        assert net.trace.delivery_time(msg.uid) is not None

    def test_total_loss_blocks_everything(self):
        sim, net = _line(loss_rate=0.99, seed=1)
        for i in range(6):
            net.originate(Message(src=1, dst=4, body=i, created_at=0))
        sim.run(until=50)
        assert net.frames_dropped > 0
        # with 99% loss on a 3-hop path, essentially nothing gets through
        assert len(net.trace.delivered) <= 1

    def test_loss_is_seeded_and_reproducible(self):
        def run(seed):
            sim, net = _line(loss_rate=0.4, seed=seed)
            msg = Message(src=1, dst=4, body="x", created_at=0)
            net.originate(msg)
            sim.run(until=50)
            return net.frames_dropped, net.trace.delivery_time(msg.uid)

        assert run(7) == run(7)

    def test_delivery_degrades_with_loss(self):
        """The R′ shape: delivery ratio falls as loss rises."""
        ratios = []
        for loss in (0.0, 0.3, 0.7):
            delivered = total = 0
            for seed in range(5):
                sc = Scenario(
                    n_nodes=10, n_messages=6, horizon=200, seed=seed,
                    stationary=True, loss_rate=loss,
                )
                run = run_scenario(FloodingRouter, sc)
                delivered += run.metrics.delivered
                total += run.metrics.messages
            ratios.append(delivered / total)
        assert ratios[0] >= ratios[1] >= ratios[2]
        assert ratios[0] > ratios[2]

    def test_dropped_frames_still_counted_as_overhead(self):
        """The sender paid for the transmission even if nobody heard."""
        sim, net = _line(loss_rate=0.8, seed=3)
        net.originate(Message(src=1, dst=4, body="x", created_at=0))
        sim.run(until=50)
        assert len(net.trace.hops) >= 1  # the transmission is recorded
