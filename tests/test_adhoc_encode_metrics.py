"""Tests for the §5.2 encodings, the R_{n,u} validator, and metrics."""

import pytest

from repro.adhoc import (
    AdhocNetwork,
    DiskRange,
    FloodingRouter,
    HopRecord,
    Message,
    Position,
    StationaryMobility,
    delivery_ratio,
    extract_route,
    message_word,
    network_word,
    node_word,
    path_optimality,
    receive_word,
    routing_overhead,
    routing_word,
    shortest_path_length,
    validate_route,
)
from repro.kernel import Simulator
from repro.words import Trilean


def grid_pred(n=4, spacing=10.0, radius=15.0):
    positions = {i: Position(i * spacing, 0.0) for i in range(1, n + 1)}
    mob = StationaryMobility(positions)
    return DiskRange(mob.trajectories(), {i: radius for i in positions})


def flooded_run(n=4):
    pred = grid_pred(n)
    sim = Simulator()
    net = AdhocNetwork(sim, pred, list(range(1, n + 1)))
    for i in range(1, n + 1):
        net.attach(i, FloodingRouter())
    net.start()
    msg = Message(src=1, dst=n, body="b", created_at=0)
    net.originate(msg)
    sim.run(until=60)
    return pred, net, msg


class TestWords:
    def test_node_word_structure(self):
        pred = grid_pred(2)
        w = node_word(1, "radio", pred.trajectories[1])
        pairs = w.take(40)
        # invariant block and first position at τ = 0
        zero_syms = [s for s, t in pairs if t == 0]
        assert "".join(zero_syms).startswith("$1@q:radio$")
        # position block at τ = 1 exists
        assert any(t == 1 for _s, t in pairs)

    def test_node_word_times_progress(self):
        pred = grid_pred(2)
        w = node_word(1, "radio", pred.trajectories[1])
        ts = [t for _s, t in w.take(200)]
        assert ts == sorted(ts)
        assert ts[-1] >= 3

    def test_message_word_at_generation_time(self):
        hop = HopRecord(sent_at=7, src=1, dst=2, body="payload", kind="data")
        w = message_word(hop)
        assert all(t == 7 for _s, t in w.take(len(w)))
        assert "".join(s for s, _t in w.take(len(w))).startswith("$7@1@2@")

    def test_receive_word_at_receive_time(self):
        hop = HopRecord(sent_at=7, src=1, dst=2, body="p", kind="data")
        w = receive_word(hop)
        assert all(t == 8 for _s, t in w.take(len(w)))

    def test_network_word_merges_all_nodes(self):
        pred = grid_pred(3)
        w = network_word(pred)
        zero_text = "".join(s for s, t in w.take(120) if t == 0)
        for node in ("$1@", "$2@", "$3@"):
            assert node in zero_text

    def test_routing_word_contains_messages(self):
        pred, net, msg = flooded_run(3)
        w = routing_word(pred, net.trace, max_hops=4)
        text = "".join(s for s, _t in w.take(400))
        assert "@payload" not in text  # body is 'b'
        assert "$0@1@0@" in text or "$0@1@" in text  # the m_u of the first hop


class TestRouteExtraction:
    def test_chain_reaches_destination(self):
        pred, net, msg = flooded_run(4)
        chain = extract_route(net.trace, msg)
        assert chain
        assert chain[0].src == msg.src
        assert chain[0].sent_at == msg.created_at

    def test_chain_length_matches_line_topology(self):
        pred, net, msg = flooded_run(4)
        chain = extract_route(net.trace, msg)
        assert len(chain) == 3  # 1→2→3→4

    def test_undelivered_gives_empty_chain(self):
        pred = grid_pred(2, spacing=100.0)
        sim = Simulator()
        net = AdhocNetwork(sim, pred, [1, 2])
        net.attach(1, FloodingRouter())
        net.attach(2, FloodingRouter())
        net.start()
        msg = Message(src=1, dst=2, body="b", created_at=0)
        net.originate(msg)
        sim.run(until=30)
        assert extract_route(net.trace, msg) == []


class TestRnuValidator:
    def test_successful_route_in_language(self):
        pred, net, msg = flooded_run(4)
        v = validate_route(pred, net.trace, msg)
        assert v.in_language, v.violations
        assert v.delivered and v.f == 3

    def test_lost_message_not_in_R(self):
        pred = grid_pred(2, spacing=100.0)
        sim = Simulator()
        net = AdhocNetwork(sim, pred, [1, 2])
        net.attach(1, FloodingRouter())
        net.attach(2, FloodingRouter())
        net.start()
        msg = Message(src=1, dst=2, body="b", created_at=0)
        net.originate(msg)
        sim.run(until=30)
        v = validate_route(pred, net.trace, msg)
        assert not v.in_language
        assert any("cond. 3" in viol for viol in v.violations)

    def test_lost_message_in_R_prime(self):
        """R′_{n,u}: lossy variant admits undelivered messages."""
        pred = grid_pred(2, spacing=100.0)
        sim = Simulator()
        net = AdhocNetwork(sim, pred, [1, 2])
        net.attach(1, FloodingRouter())
        net.attach(2, FloodingRouter())
        net.start()
        msg = Message(src=1, dst=2, body="b", created_at=0)
        net.originate(msg)
        sim.run(until=30)
        v = validate_route(pred, net.trace, msg, require_delivery=False)
        assert v.in_language

    def test_strict_relay_condition(self):
        """Condition 2's t′_i = t_{i+1} holds for immediate forwarders."""
        pred, net, msg = flooded_run(4)
        v = validate_route(pred, net.trace, msg, strict_relay=True)
        assert v.in_language, v.violations

    def test_range_condition_checked(self):
        """Tampering with the range predicate surfaces violations."""
        pred, net, msg = flooded_run(4)
        # a predicate that denies everything invalidates the trace
        tight = DiskRange(pred.trajectories, {i: 0.1 for i in pred.radii})
        v = validate_route(tight, net.trace, msg)
        assert not v.in_language
        assert any("range" in viol for viol in v.violations)


class TestMetrics:
    def test_overhead_counts_all_hops(self):
        pred, net, msg = flooded_run(4)
        assert routing_overhead(net.trace) == len(net.trace.hops)

    def test_shortest_path_on_line(self):
        pred = grid_pred(5)
        assert shortest_path_length(pred, 1, 5, 0) == 4
        assert shortest_path_length(pred, 1, 1, 0) == 0

    def test_shortest_path_disconnected(self):
        pred = grid_pred(2, spacing=100.0)
        assert shortest_path_length(pred, 1, 2, 0) is None

    def test_flooding_path_optimality_zero(self):
        """Flooding finds shortest paths: excess = 0 on a static line."""
        pred, net, msg = flooded_run(5)
        assert path_optimality(pred, net.trace, msg) == 0

    def test_delivery_ratio(self):
        pred, net, msg = flooded_run(3)
        lost = Message(src=1, dst=3, body="never-sent", created_at=0)
        assert delivery_ratio(net.trace, [msg, lost]) == 0.5
        assert delivery_ratio(net.trace, []) == 1.0
