"""Tests for the rt-complexity programme (§3.2, §7)."""

import pytest

from repro.complexity import (
    CONST,
    LINSPACE,
    LOGSPACE,
    ResourceBound,
    classify_growth,
    hierarchy_matrix,
    measure_space_curve,
    predicted_first_miss,
    rt_space_membership,
    run_stream_echo,
    stream_word,
)
from repro.machine import RealTimeAlgorithm
from repro.words import TimedWord, Trilean


class TestResourceBounds:
    def test_bounds_positive(self):
        for bound in (CONST, LOGSPACE, LINSPACE):
            assert bound(0) >= 1
            assert bound(100) >= 1

    def test_logspace_grows_slowly(self):
        assert LOGSPACE(10**6) < LINSPACE(100)


def make_parity_acceptor():
    """Accept iff the number of 'a's in the length-prefixed block is
    even — O(1) space."""

    def prog(ctx):
        count = 0
        n, _t = yield ctx.input.read()
        for _ in range(n):
            sym, _t = yield ctx.input.read()
            if sym == "a":
                count += 1
        ctx.storage["parity"] = count % 2
        if count % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


def parity_instance(n, member=True):
    a_count = (n // 2) * 2  # even number of a's
    if not member:
        a_count -= 1  # odd (callers use n ≥ 2)
    syms = ["a"] * a_count + ["b"] * (n - a_count)
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


class TestRtSpaceMembership:
    def test_constant_space_acceptor_certified(self):
        instances = [
            (n, parity_instance(n, member=True), True) for n in (4, 8, 16)
        ] + [(n, parity_instance(n, member=False), False) for n in (4, 8)]
        ev = rt_space_membership(make_parity_acceptor, instances, CONST)
        assert ev.holds, ev.failures

    def test_violation_reported(self):
        def hungry_prog(ctx):
            n, _t = yield ctx.input.read()
            for i in range(n):
                ctx.storage[i] = i
            ctx.accept()

        tight = ResourceBound("O(1)-tight", lambda n: 2)
        instances = [(16, parity_instance(16), True)]
        ev = rt_space_membership(
            lambda: RealTimeAlgorithm(hungry_prog), instances, tight
        )
        assert not ev.within_bound
        assert ev.failures

    def test_wrong_decision_reported(self):
        def always_accept(ctx):
            yield ctx.input.read()
            ctx.accept()

        instances = [(4, parity_instance(4, member=False), False)]
        ev = rt_space_membership(
            lambda: RealTimeAlgorithm(always_accept), instances, CONST
        )
        assert not ev.decisions_correct


class TestStreamEcho:
    def test_stream_word_shape(self):
        w = stream_word(3)
        pairs = w.take(6)
        assert [s for s, _t in pairs] == [
            ("s", 1), ("s", 2), ("s", 3), ("s", 1), ("s", 2), ("s", 3)
        ]
        assert w.is_well_behaved() is Trilean.TRUE

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            stream_word(0)
        with pytest.raises(ValueError):
            run_stream_echo(0, 1)

    def test_enough_processors_succeed(self):
        assert run_stream_echo(k=4, p=4).success
        assert run_stream_echo(k=4, p=6).success

    def test_too_few_processors_fail(self):
        r = run_stream_echo(k=4, p=3, deadline=8, horizon=1000)
        assert not r.success
        assert r.first_miss is not None

    def test_backlog_bounded_iff_enough_processors(self):
        ok = run_stream_echo(k=3, p=3, horizon=500)
        assert ok.max_backlog <= 3
        bad = run_stream_echo(k=3, p=2, deadline=50, horizon=500)
        assert bad.max_backlog > 10


class TestHierarchy:
    def test_diagonal_split(self):
        """The experimental answer to the paper's open question, on
        this family: success ⟺ p ≥ k."""
        m = hierarchy_matrix(5, deadline=6, horizon=800)
        for k in range(1, 6):
            for p in range(1, 6):
                assert m[(k, p)].success == (p >= k), (k, p)

    def test_predicted_first_miss_matches_simulation(self):
        for k in range(2, 6):
            p = k - 1
            result = run_stream_echo(k, p, deadline=6, horizon=800)
            predicted = predicted_first_miss(k, p, 6)
            assert result.first_miss == predicted, (k, p)

    def test_prediction_none_when_sufficient(self):
        assert predicted_first_miss(3, 3, 6) is None
        assert predicted_first_miss(3, 5, 6) is None


class TestSpaceCurves:
    def test_constant_space_classified(self):
        def acceptor_factory():
            return make_parity_acceptor()

        curve = measure_space_curve(
            acceptor_factory,
            lambda n: parity_instance(n),
            sizes=[4, 8, 16, 32, 64],
        )
        assert curve.label == "O(1)"

    def test_linear_space_classified(self):
        def hungry(ctx):
            n, _t = yield ctx.input.read()
            for i in range(n):
                ctx.storage[i] = i
            ctx.accept()

        curve = measure_space_curve(
            lambda: RealTimeAlgorithm(hungry),
            lambda n: parity_instance(n),
            sizes=[4, 8, 16, 32, 64],
        )
        assert curve.label == "O(n)"

    def test_classify_growth_labels(self):
        assert classify_growth([1, 2, 4, 8], [5, 5, 5, 5]) == "O(1)"
        assert classify_growth([4, 8, 16, 32], [4, 8, 16, 32]) == "O(n)"
        assert classify_growth(
            [4, 16, 64, 256], [16, 256, 4096, 65536]
        ) == "superlinear"
        assert classify_growth([1, 2], [1, 2]) == "insufficient data"
