"""Fault paths of the resilient decision fan-out (repro.engine.resilience).

The three pinned guarantees:

* a SIGKILLed pool worker is survived and the batch stays bit-identical
  to the serial path;
* a deadline-budget expiry returns partial results with an explicit
  UNDECIDED (inconclusive) remainder instead of hanging;
* degradation is always *marked* — unmarked reports are serial-identical.
"""

import os

import pytest

from repro.engine import (
    BatchOutcome,
    CrashingAcceptor,
    DegradePolicy,
    DelayingAcceptor,
    FailingAcceptor,
    FileFuse,
    InjectedFault,
    RetryPolicy,
    Verdict,
    decide_many,
    decide_many_resilient,
)
from repro.machine import RealTimeAlgorithm
from repro.obs import instrumented
from repro.words import TimedWord

HORIZON = 2_000
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.005, backoff_cap=0.02)


def make_word(n, member):
    """E14 parity word: accept iff the n-symbol header sums even."""
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


@pytest.fixture
def sweep():
    words = [make_word(n, m) for n in (4, 8, 16) for m in (True, False)]
    acceptor = make_acceptor()
    serial = decide_many(acceptor, words, horizon=HORIZON, seed=3)
    return acceptor, words, serial


def fuse(tmp_path, shots, name="fuse"):
    return FileFuse(shots=shots, path=str(tmp_path / name))


class TestCleanPath:
    def test_pool_matches_serial_bit_identical(self, sweep):
        acceptor, words, serial = sweep
        out = decide_many_resilient(
            acceptor, words, horizon=HORIZON, workers=4, seed=3
        )
        assert isinstance(out, BatchOutcome)
        assert out.reports == serial
        assert out.clean and out.mode == "pool"
        assert out.retries == 0 and out.worker_deaths == 0

    def test_serial_mode_matches_decide_many(self, sweep):
        acceptor, words, serial = sweep
        out = decide_many_resilient(acceptor, words, horizon=HORIZON, seed=3)
        assert out.reports == serial
        assert out.mode == "serial" and out.clean

    def test_validation(self, sweep):
        acceptor, words, _ = sweep
        with pytest.raises(ValueError, match="workers"):
            decide_many_resilient(acceptor, words, workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            decide_many_resilient(acceptor, words, workers=2, chunk_size=0)
        with pytest.raises(ValueError, match="deadline_s"):
            decide_many_resilient(acceptor, words, deadline_s=0)
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)


class TestWorkerDeath:
    def test_sigkilled_worker_recovers_bit_identical(self, sweep, tmp_path):
        acceptor, words, serial = sweep
        crashy = CrashingAcceptor(acceptor, fuse(tmp_path, shots=1))
        out = decide_many_resilient(
            crashy, words, horizon=HORIZON, workers=4, seed=3, retry=FAST_RETRY
        )
        assert out.worker_deaths == 1
        assert out.reports == serial  # bit-identical despite the kill
        assert out.clean

    def test_repeated_kills_still_converge(self, sweep, tmp_path):
        acceptor, words, serial = sweep
        crashy = CrashingAcceptor(acceptor, fuse(tmp_path, shots=3))
        out = decide_many_resilient(
            crashy, words, horizon=HORIZON, workers=4, seed=3,
            retry=RetryPolicy(max_retries=4, backoff_base=0.005,
                              backoff_cap=0.02),
        )
        assert out.worker_deaths == 3
        assert out.reports == serial

    def test_kill_exhaustion_rescued_by_serial_fallback(self, sweep, tmp_path):
        # more kills than retries: the parent-side serial fallback (which
        # the crash wrapper spares, in_children_only) still rescues the
        # chunk with unmarked, serial-identical reports
        acceptor, words, serial = sweep
        crashy = CrashingAcceptor(acceptor, fuse(tmp_path, shots=50))
        out = decide_many_resilient(
            crashy, words, horizon=HORIZON, workers=2, seed=3,
            retry=RetryPolicy(max_retries=1, backoff_base=0.005,
                              split_chunks=False),
        )
        assert out.reports == serial
        assert out.serial_fallbacks > 0
        assert out.clean  # serial fallback is not a degradation marker


class TestExceptionRetry:
    def test_transient_exception_retried_to_identity(self, sweep, tmp_path):
        acceptor, words, serial = sweep
        flaky = FailingAcceptor(acceptor, fuse(tmp_path, shots=2))
        out = decide_many_resilient(
            flaky, words, horizon=HORIZON, workers=4, seed=3, retry=FAST_RETRY
        )
        assert out.reports == serial
        assert out.retries >= 1

    def test_serial_path_retries_exceptions(self, sweep, tmp_path):
        acceptor, words, serial = sweep
        flaky = FailingAcceptor(acceptor, fuse(tmp_path, shots=1))
        out = decide_many_resilient(
            flaky, words, horizon=HORIZON, workers=1, seed=3, retry=FAST_RETRY
        )
        assert out.reports == serial
        assert out.retries == 1 and out.mode == "serial"

    def test_fuse_is_fork_safe_and_bounded(self, tmp_path):
        f = fuse(tmp_path, shots=2)
        assert f.pop() and f.pop() and not f.pop()
        assert f.spent == 2
        f.reset()
        assert f.pop()


class _DecideOnlyPoison(FailingAcceptor):
    """Fails the lasso-exact entry point for one word, in any process;
    count_f (the cheaper empirical strategy's entry point) still works."""

    def __init__(self, inner, poison):
        super().__init__(inner, FileFuse(shots=0))
        self._poison = poison

    def _before(self, word):  # pragma: no cover - trivial
        pass

    def decide(self, word, horizon=10_000):
        if word is self._poison:
            raise InjectedFault("poisoned decide")
        return self.inner.decide(word, horizon=horizon)


class TestDegradation:
    def test_poison_word_isolated_and_strategy_degraded(self, sweep):
        acceptor, words, serial = sweep
        poison_i = 3
        poisoned = _DecideOnlyPoison(acceptor, words[poison_i])
        out = decide_many_resilient(
            poisoned, words, horizon=HORIZON, workers=4, seed=3,
            retry=RetryPolicy(max_retries=1, backoff_base=0.005),
            degrade=DegradePolicy(
                serial_fallback=True,
                fallback_strategy="long-prefix-empirical",
            ),
        )
        # chunk splitting + fallback corner exactly the poison word
        assert out.degraded_indices == [poison_i]
        marked = out.reports[poison_i]
        assert marked.evidence["degraded"] == (
            "strategy-fallback:long-prefix-empirical"
        )
        # empirical and exact agree on the parity sweep, so even the
        # degraded verdict is right -- only the evidence shape differs
        assert marked.verdict == serial[poison_i].verdict
        for i, report in enumerate(out.reports):
            if i != poison_i:
                assert report == serial[i]

    def test_abandoned_word_is_marked_inconclusive(self, sweep, tmp_path):
        acceptor, words, serial = sweep
        flaky = FailingAcceptor(acceptor, fuse(tmp_path, shots=10_000))
        out = decide_many_resilient(
            flaky, [words[0]], horizon=HORIZON, workers=1, seed=3,
            retry=RetryPolicy(max_retries=1, backoff_base=0.005),
            degrade=DegradePolicy(serial_fallback=False),
        )
        report = out.reports[0]
        assert report.verdict is Verdict.UNDECIDED
        assert report.evidence["degraded"] == "abandoned"
        assert "error" in report.evidence
        assert out.degraded_indices == [0]
        assert not out.clean


class TestDeadlineBudget:
    def test_pool_deadline_returns_partial_not_hang(self, sweep):
        acceptor, words, serial = sweep
        slow = DelayingAcceptor(acceptor, 0.15)
        out = decide_many_resilient(
            slow, words, horizon=HORIZON, workers=2, seed=3, deadline_s=0.35
        )
        assert out.deadline_missed
        assert out.elapsed_s < 5.0  # returned promptly, no hang
        assert len(out.reports) == len(words)
        remainder = [
            r for r in out.reports if r.evidence.get("degraded") == "deadline"
        ]
        assert remainder, "expected an inconclusive remainder"
        assert all(r.verdict is Verdict.UNDECIDED for r in remainder)
        done = [
            r for i, r in enumerate(out.reports)
            if i not in out.degraded_indices
        ]
        assert done, "expected some words to finish inside the budget"
        for r in done:
            assert r == serial[r.evidence["index"]]

    def test_serial_deadline_marks_remainder(self, sweep):
        acceptor, words, serial = sweep
        slow = DelayingAcceptor(acceptor, 0.1)
        out = decide_many_resilient(
            slow, words, horizon=HORIZON, workers=1, seed=3, deadline_s=0.25
        )
        assert out.deadline_missed and out.mode == "serial"
        assert out.degraded_indices  # the cut tail
        for i in out.degraded_indices:
            assert out.reports[i].evidence["degraded"] == "deadline"
        for i, r in enumerate(out.reports):
            if i not in out.degraded_indices:
                assert r == serial[i]


class TestObservability:
    def test_retry_degrade_and_deadline_metrics(self, sweep, tmp_path):
        acceptor, words, serial = sweep
        with instrumented() as inst:
            flaky = FailingAcceptor(acceptor, fuse(tmp_path, shots=1))
            decide_many_resilient(
                flaky, words, horizon=HORIZON, workers=4, seed=3,
                retry=FAST_RETRY,
            )
            slow = DelayingAcceptor(acceptor, 0.1)
            decide_many_resilient(
                slow, words, horizon=HORIZON, workers=1, seed=3,
                deadline_s=0.15,
            )
        retries = inst.registry.counter("engine.retries")
        assert retries.labels(reason="exception").value >= 1
        assert inst.registry.counter("engine.deadline_misses").value == 1
        spans = [s.name for s in inst.spans.completed()]
        assert "engine.decide_many_resilient" in spans

    def test_serial_fallback_counted_as_degraded_mode(self, sweep, tmp_path):
        acceptor, words, _ = sweep
        with instrumented() as inst:
            crashy = CrashingAcceptor(acceptor, fuse(tmp_path, shots=50))
            decide_many_resilient(
                crashy, words, horizon=HORIZON, workers=2, seed=3,
                retry=RetryPolicy(max_retries=0, backoff_base=0.005,
                                  split_chunks=False),
            )
        degraded = inst.registry.counter("engine.degraded")
        assert degraded.labels(mode="serial-fallback").value == len(words)
