"""Tests for the §5.2.5 distributed decomposition H_i = 𝓛_i 𝓡_i."""

import pytest

from repro.adhoc import (
    AdhocNetwork,
    DiskRange,
    FloodingRouter,
    Message,
    Position,
    StationaryMobility,
    distributed_views,
    node_view,
)
from repro.kernel import Simulator
from repro.words import Trilean


@pytest.fixture
def flooded():
    positions = {i: Position(i * 10.0, 0.0) for i in range(1, 5)}
    pred = DiskRange(
        StationaryMobility(positions).trajectories(), {i: 15.0 for i in positions}
    )
    sim = Simulator()
    net = AdhocNetwork(sim, pred, list(positions))
    for i in positions:
        net.attach(i, FloodingRouter())
    net.start()
    msg = Message(src=1, dst=4, body="b", created_at=0)
    net.originate(msg)
    sim.run(until=30)
    return pred, net, msg


class TestNodeView:
    def test_local_contains_only_own_sends(self, flooded):
        pred, net, _msg = flooded
        for v in distributed_views(pred, net.trace):
            assert all(h.src == v.node for h in v.sent_hops)

    def test_remote_contains_only_own_receives(self, flooded):
        pred, net, _msg = flooded
        receives_by_node = {}
        for r in net.trace.receives:
            receives_by_node.setdefault(r.dst, set()).add(r.hop_id)
        for v in distributed_views(pred, net.trace):
            got = {h.hop_id for h in v.received_hops}
            assert got == receives_by_node.get(v.node, set())

    def test_every_hop_in_exactly_one_local_component(self, flooded):
        """Partition property: each transmission belongs to exactly one
        node's 𝓛_i."""
        pred, net, _msg = flooded
        views = distributed_views(pred, net.trace)
        counts = {}
        for v in views:
            for h in v.sent_hops:
                counts[h.hop_id] = counts.get(h.hop_id, 0) + 1
        assert set(counts) == {h.hop_id for h in net.trace.hops}
        assert all(c == 1 for c in counts.values())

    def test_h_word_monotone(self, flooded):
        pred, net, _msg = flooded
        v = node_view(pred, net.trace, 2, max_hops=6)
        times = [t for _s, t in v.word.take(200)]
        assert times == sorted(times)

    def test_h_word_well_behaved(self, flooded):
        """h_i contributes progressing position blocks, so H_i keeps
        the progress property."""
        pred, net, _msg = flooded
        v = node_view(pred, net.trace, 3, max_hops=4)
        # functional word: sample a window and check times grow
        times = [t for _s, t in v.word.take(300)]
        assert times[-1] > times[0]

    def test_no_knowledge_of_other_nodes_traffic(self, flooded):
        """A node that neither sent nor heard a hop has no trace of it
        in H_i: the paper's locality claim."""
        pred, net, msg = flooded
        v1 = node_view(pred, net.trace, 1)
        # node 1 never hears the 3→(4) hop (out of its radio range)
        hop_34 = next(h for h in net.trace.hops if h.src == 3)
        assert all(h.hop_id != hop_34.hop_id for h in v1.received_hops)
        assert all(h.hop_id != hop_34.hop_id for h in v1.sent_hops)

    def test_destination_view_records_arrival(self, flooded):
        pred, net, msg = flooded
        v4 = node_view(pred, net.trace, 4)
        assert v4.received_hops, "the destination heard the final hop"
        assert not v4.sent_hops  # node 4 only delivers; flooding stops there
