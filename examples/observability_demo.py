#!/usr/bin/env python3
"""One trace across three subsystems: kernel, RTDB, and ad hoc network.

The repro.obs layer makes the paper's measurement statements visible:
this demo installs the hooks once, then

1. serves the §5.1 periodic query of `sensor_plant_rtdb.py` (kernel +
   machine + rtdb counters and spans),
2. routes a §5.2 disaster-relief workload under flooding and AODV
   (adhoc counters: data/control transmissions = the paper's f+g
   overhead, delivery latency = t'_f − t_1),

and finally exports a single Chrome trace_event JSON plus a metrics
dump covering everything.

Run:

    python examples/observability_demo.py --trace out.json --metrics metrics.json

Then open out.json in chrome://tracing or https://ui.perfetto.dev.
Without flags, the metrics dump is printed to stdout instead.  See
docs/observability.md for how to read every series.
"""

import argparse

from repro import obs
from repro.adhoc import AodvRouter, FloodingRouter, Scenario, run_scenario
from repro.deadlines import DeadlineKind, DeadlineSpec
from repro.rtdb import QueryRegistry, RecognitionInstance, serve_periodic

parser = argparse.ArgumentParser(description="repro.obs cross-subsystem demo")
parser.add_argument("--trace", metavar="PATH", default=None,
                    help="write a Chrome trace_event JSON here")
parser.add_argument("--metrics", metavar="PATH", default=None,
                    help="write a JSON metrics dump here (.txt for text)")
cli = parser.parse_args()

inst = obs.install()

# -- 1. kernel + rtdb: the sensor-plant periodic query ------------------------

registry = QueryRegistry(
    queries={
        "hot": lambda st: {(n,) for n, v in st.images.items()
                           if n == "temp" and v >= 25},
    },
    derivations={"stress": lambda T, P: T * P // 100},
    eval_cost=lambda name, st: 2,
)
instance = RecognitionInstance(
    invariants={"units": ("celsius", "kPa")},
    derived={"stress": ("temp", "pressure")},
    images={
        "temp": (5, lambda t: 15 + t // 4),
        "pressure": (8, lambda t: 100 + (t % 10)),
    },
    query_name="hot",
    issue_time=45,
    spec=DeadlineSpec(DeadlineKind.NONE),
)
report = serve_periodic(
    registry, instance, candidates=lambda i: ("temp",), period=15, horizon=120
)
print(f"rtdb: periodic 'hot' query served {report.f_count} invocations (L_pq)")

# -- 2. adhoc: two routed scenarios over the same workload --------------------

for factory in (FloodingRouter, AodvRouter):
    run = run_scenario(factory, Scenario(n_nodes=12, n_messages=6, horizon=200, seed=3))
    m = run.metrics
    print(
        f"adhoc: {m.protocol:<8} delivered {m.delivered}/{m.messages}, "
        f"overhead f+g = {m.data_hops}+{m.control_hops}"
    )

# -- 3. export ---------------------------------------------------------------

obs.uninstall()

subsystems = ("kernel", "machine", "rtdb", "adhoc")
live = {
    prefix: sum(
        s.get("value", s.get("count", 0)) or 0
        for s in inst.registry.collect()
        if s["name"].startswith(prefix + ".") and s["type"] in ("counter", "histogram")
    )
    for prefix in subsystems
}
print("\nnonzero counter mass per subsystem:", live)
missing = [k for k, v in live.items() if not v]
assert not missing, f"subsystems with no observations: {missing}"

if cli.trace:
    doc = obs.write_chrome_trace(cli.trace, inst.spans, inst.registry)
    problems = obs.validate_chrome_trace(doc)
    assert not problems, problems
    print(f"wrote Chrome trace ({len(doc['traceEvents'])} events) to {cli.trace}")
if cli.metrics:
    fmt = "text" if cli.metrics.endswith(".txt") else "json"
    obs.write_metrics(cli.metrics, inst.registry, fmt=fmt)
    print(f"wrote metrics dump ({fmt}) to {cli.metrics}")
if not (cli.trace or cli.metrics):
    print("\n" + obs.render_metrics_text(inst.registry))
