#!/usr/bin/env python3
"""Section 5.2 in action: routing in a disaster-relief ad hoc network.

Rescue teams with radios roam a strip of terrain (random-waypoint
mobility, the Broch et al. setup the paper cites as the state of the
art in routing evaluation).  Four routing protocols carry the same
message workload; we report the paper's three measures — routing
overhead, path optimality, delivery ratio — and then check each
delivered message against the formal routing-problem language R_{n,u}
of Section 5.2.4.

Run:  python examples/disaster_relief_adhoc.py
"""

from repro.adhoc import (
    AodvRouter,
    Arena,
    DreamRouter,
    DsdvRouter,
    DsrRouter,
    FloodingRouter,
    Scenario,
    run_scenario,
    validate_route,
)

SCENARIO = Scenario(
    n_nodes=16,
    arena=Arena(900.0, 300.0),
    radio_range=250.0,
    pause_time=30,
    n_messages=10,
    message_window=(40, 160),
    horizon=400,
    seed=20,
)

PROTOCOLS = [
    ("flooding", lambda: FloodingRouter(ttl=16)),
    ("dsdv", lambda: DsdvRouter(beacon_period=15)),
    ("dsr", lambda: DsrRouter()),
    ("aodv", lambda: AodvRouter()),
    ("dream", lambda: DreamRouter(beacon_period=25, beacon_scope=2)),
]

print(f"{'protocol':>9} | {'deliv%':>6} {'overhead':>8} {'ctl':>6} {'data':>5} "
      f"{'path+':>5} {'lat':>5} | R_n,u (strict / relaxed)")
print("-" * 92)

for name, factory in PROTOCOLS:
    run = run_scenario(factory, SCENARIO)
    m = run.metrics
    # validate every delivered message against the formal language
    strict_ok = relaxed_ok = delivered = 0
    for msg in run.messages:
        if run.network.trace.delivery_time(msg.uid) is None:
            continue
        delivered += 1
        if validate_route(run.range_pred, run.network.trace, msg).in_language:
            strict_ok += 1
        if validate_route(
            run.range_pred, run.network.trace, msg, strict_relay=False
        ).in_language:
            relaxed_ok += 1
    row = m.row()
    print(
        f"{name:>9} | {row['delivery%']:>6} {row['overhead']:>8} {row['ctl']:>6} "
        f"{row['data']:>5} {str(row['path_excess']):>5} {str(row['latency']):>5} | "
        f"{strict_ok}/{delivered} / {relaxed_ok}/{delivered}"
    )

print()
print("What to look for (the [12]-shape the paper leans on):")
print(" * flooding: near-perfect delivery and optimal paths, all-data overhead;")
print(" * dsdv: steady proactive control traffic whether or not data flows;")
print(" * dsr: reactive — control bursts only around discoveries;")
print(" * dream: position beacons dominate; data hops stay near-greedy.")
print(" * strict R_{n,u} membership requires immediate relaying (t'_i = t_{i+1});")
print("   protocols that queue packets pass only the relaxed check.")
