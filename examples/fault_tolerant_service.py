#!/usr/bin/env python3
"""Fault tolerance: the decision service survives crashes, visibly.

A real-time acceptor that only works on a healthy host is not a
real-time system.  This walk-through drives the resilience layer
through three injected failures and shows what the guarantees mean:

1. a pooled ``decide_many_resilient`` batch loses a worker to SIGKILL
   mid-chunk and still returns reports **bit-identical** to the serial
   path (retry re-runs the same pure per-word function);
2. a per-batch deadline budget expires and the engine returns partial
   results promptly — the unfinished remainder is explicitly marked
   ``UNDECIDED`` with ``evidence["degraded"] = "deadline"`` instead of
   hanging or silently guessing;
3. a supervised ``SessionMux`` is crashed mid-stream and rebuilt from
   its latest checkpoint plus journal replay, agreeing verdict for
   verdict with an uninterrupted run — zero lost verdicts.

Run:  python examples/fault_tolerant_service.py
"""

import random
import tempfile

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import (
    CrashingAcceptor,
    DelayingAcceptor,
    FileFuse,
    RetryPolicy,
    Verdict,
    decide_many,
    decide_many_resilient,
)
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm
from repro.stream import MuxSupervisor, SessionMux
from repro.words import TimedWord

# -- the language under decision: E14 parity words ----------------------------


def make_word(n, member):
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


acceptor = make_acceptor()
words = [make_word(n, m) for n in (4, 8, 16) for m in (True, False)]
HORIZON = 2_000
serial = decide_many(acceptor, words, horizon=HORIZON, seed=7)

# -- 1. a SIGKILLed pool worker, survived -------------------------------------

with tempfile.NamedTemporaryFile() as fusefile:
    fuse = FileFuse(shots=1, path=fusefile.name)
    crashy = CrashingAcceptor(acceptor, fuse)  # kills one child, once
    out = decide_many_resilient(
        crashy, words, horizon=HORIZON, workers=4, seed=7,
        retry=RetryPolicy(max_retries=2, backoff_base=0.01),
    )
print("1. pooled batch with one worker SIGKILLed mid-chunk:")
print(f"   worker deaths: {out.worker_deaths}, retries: {out.retries}, "
      f"mode: {out.mode}")
print(f"   bit-identical to serial: {out.reports == serial}")
assert out.worker_deaths >= 1
assert out.reports == serial  # the resilience guarantee
assert out.clean  # recovered work is NOT degraded work

# -- 2. a deadline budget, missed gracefully ----------------------------------

slow = DelayingAcceptor(acceptor, 0.15)  # each word now costs >= 150ms
out = decide_many_resilient(
    slow, words, horizon=HORIZON, workers=2, seed=7, deadline_s=0.4,
)
finished = [i for i in range(len(words)) if i not in out.degraded_indices]
cut = out.degraded_indices
print("\n2. per-batch deadline budget of 0.4s against 150ms/word:")
print(f"   deadline missed: {out.deadline_missed}, "
      f"elapsed: {out.elapsed_s:.2f}s (no hang)")
print(f"   finished words: {len(finished)}, marked inconclusive: {len(cut)}")
assert out.deadline_missed and cut and finished
for i in cut:
    report = out.reports[i]
    assert report.verdict is Verdict.UNDECIDED
    assert report.evidence["degraded"] == "deadline"
for i in finished:
    assert out.reports[i] == serial[i]  # whatever finished is exact

# -- 3. mux failover: crash the host, lose nothing ----------------------------

tba = TimedBuchiAutomaton(
    "a", ["s"], "s",
    [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", 3))],
    ["x"], ["s"],
)
factory = lambda: SessionMux(  # noqa: E731
    tba, lateness=2, late_policy="drop", buffer_limit=8,
    drop_policy="drop-old",
)

rng = random.Random(42)
clock = {f"sensor-{i:02d}": 0 for i in range(12)}
events = []
for _ in range(300):
    name = rng.choice(list(clock))
    clock[name] += rng.choice([1, 2, 3, 3, 5])  # gap 5 breaks the bound
    events.append((name, "a", clock[name]))

reference = factory()
for name, sym, t in events:
    reference.ingest(name, sym, t)

supervisor = MuxSupervisor(factory, checkpoint_every=40, tba=tba)
for k, (name, sym, t) in enumerate(events):
    if k in (97, 213):  # two host losses, mid-stream
        supervisor.crash()
    supervisor.ingest(name, sym, t)  # auto-recovers transparently

print("\n3. supervised SessionMux with two injected host crashes:")
print(f"   failovers: {supervisor.failovers}, "
      f"last recovery: {supervisor.last_recovery_s * 1e3:.2f}ms")
print(f"   stats: {supervisor.stats()}")
agree = supervisor.verdicts() == reference.verdicts()
print(f"   agrees with the uninterrupted run: {agree}")
assert supervisor.failovers == 2
assert agree  # zero lost verdicts, none invented

print("\nall three failure drills recovered with the pinned guarantees intact")
