#!/usr/bin/env python3
"""Theorem 3.1 end to end: why L_ω needs more than finite memory.

The paper's first formal result: L = {aᵘ bˣ cᵛ dˣ} "models a search
into a database for a given key", and its ω-iteration L_ω is not
ω-regular — so finite-state timed automata cannot capture all
practically relevant real-time problems, which is exactly why the
paper replaces them with the general real-time algorithm.

This script walks the evidence chain:

1. fooling sets certify unbounded DFA lower bounds for L;
2. Moore minimization measures the minimal DFA for each bounded
   sublanguage L_X — exactly 3X+3 states, growing forever;
3. a general real-time algorithm (with unbounded storage) accepts the
   timed version of L_ω outright, deciding each $-delimited block.

Run:  python examples/nonregularity_story.py
"""

from repro.automata import (
    dfa_state_lower_bound,
    l_membership,
    l_omega_word,
    minimal_states_for_bounded_l,
)
from repro.machine import RealTimeAlgorithm

# -- 1. fooling-set certificates ------------------------------------------------

print("fooling-set certificates (any DFA for L needs > N states):")
for n in (4, 16, 64):
    print(f"  N = {n:>3}: certified (> {dfa_state_lower_bound(n)} states)")

# -- 2. minimal DFAs for the bounded sublanguages -------------------------------

print("\nminimal DFA sizes for L_X = {a^u b^x c^v d^x | x ≤ X}:")
for x in (1, 2, 4, 8):
    states = minimal_states_for_bounded_l(x)
    print(f"  X = {x:>2}: {states:>3} states (= 3X+3)")
print("  → unbounded growth: no single finite machine covers all of L.")

# -- 3. a real-time algorithm accepts timed L_ω ---------------------------------


def l_omega_acceptor(ctx):
    """Check each $-delimited block with a counter (unbounded storage —
    the resource finite automata lack); emit f per verified block.

    Acceptance (Definition 3.4): f appears infinitely often iff every
    block is in L — exactly the L_ω membership condition.
    """
    block = []
    blocks_ok = 0
    while True:
        symbol, _t = yield ctx.input.read()
        if symbol != "$":
            block.append(symbol)
            continue
        if not l_membership("".join(block)):
            ctx.reject()
            return
        blocks_ok += 1
        ctx.storage["blocks"] = blocks_ok
        if ctx.output.can_write():
            ctx.emit_f()  # one f per verified block
        block = []


acceptor = RealTimeAlgorithm(l_omega_acceptor, name="L_ω-acceptor")

good = l_omega_word([(1, 2, 1), (2, 1, 3)], (1, 3, 1), period=1)
bad = l_omega_word([(1, 2, 1)], (1, 1, 1), period=1)
# corrupt the bad word's cycle: b-count ≠ d-count
from repro.words import TimedWord

bad_pairs = [(("b" if s == "d" else s), t) for s, t in bad.take(60)]
bad = TimedWord.functional(lambda i: bad_pairs[i % len(bad_pairs)])

rep_good = acceptor.count_f(good, horizon=120)
rep_bad = acceptor.decide(bad, horizon=120)

print("\nreal-time algorithm on timed L_ω words:")
print(f"  valid word:     f written {rep_good.f_count} times in 120 chronons "
      f"(one per verified block — |o|_f = ω)")
print(f"  corrupted word: verdict {rep_bad.verdict.value} at t={rep_bad.decided_at}")

assert rep_good.f_count >= 5
assert not rep_bad.accepted
print("\nThe gap is exactly the paper's point: timed *languages* are the right")
print("objects, but their acceptors need general storage, not finite state.")
