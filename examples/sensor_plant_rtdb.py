#!/usr/bin/env python3
"""Section 5.1 in action: a real-time database monitoring a plant.

A process-control RTDB (the paper's motivating domain): two sensors are
sampled periodically (image objects), a derived object combines them,
an invariant object holds the configuration, ECA rules fire on every
sample (immediate for storage, deferred for derivation — the mixed
policy §5.1.2 suggests studying), and both consistency predicates are
evaluated as the run progresses.

The run is then re-expressed the paper's way: the database becomes the
timed ω-word db_B = db₀·db₁·db₂ (eq. 6), a periodic "is the reactor
hot?" query becomes pq_[q,s,t,t_p], and the Definition 5.1 acceptor
serves it — one f per successful invocation.

Run:  python examples/sensor_plant_rtdb.py

With observability (docs/observability.md walks through the output):

    python examples/sensor_plant_rtdb.py --trace out.json --metrics metrics.json

``out.json`` is a Chrome trace_event file (load it in chrome://tracing
or https://ui.perfetto.dev); the metrics dump shows the kernel, machine,
and rtdb counters this run produced.
"""

import argparse

from repro import obs
from repro.deadlines import DeadlineKind, DeadlineSpec
from repro.kernel import Simulator
from repro.rtdb import (
    QueryRegistry,
    RealTimeDatabase,
    RecognitionInstance,
    serve_periodic,
)

parser = argparse.ArgumentParser(description="§5.1 RTDB walk-through")
parser.add_argument("--trace", metavar="PATH", default=None,
                    help="write a Chrome trace_event JSON here")
parser.add_argument("--metrics", metavar="PATH", default=None,
                    help="write a JSON metrics dump here (.txt for text)")
cli = parser.parse_args()
inst = obs.install() if (cli.trace or cli.metrics) else None

HORIZON = 120


# -- the external world -------------------------------------------------------

def plant(name, t):
    """Sensor readings: temperature ramps up, pressure oscillates."""
    if name == "temp":
        return 15 + t // 4
    if name == "pressure":
        return 100 + (t % 10)
    raise KeyError(name)


# -- 1. the running database --------------------------------------------------

sim = Simulator()
db = RealTimeDatabase(sim, plant)
db.add_image("temp", period=5)
db.add_image("pressure", period=8)
db.add_invariant("units", ("celsius", "kPa"))
db.add_derived("stress", ["temp", "pressure"], lambda T, P: T * P // 100)
db.start_sampling(horizon=HORIZON)

print("chronon | temp pressure stress | abs-consistent(T_a=8) rel-consistent(T_r=4)")
print("-" * 78)


def probe():
    while True:
        yield sim.timeout(20)
        rep = db.check_consistency(absolute_threshold=8, relative_threshold=4)
        print(
            f"{sim.now:>7} | {db.images['temp'].value():>4} "
            f"{db.images['pressure'].value():>8} {db.derived['stress'].value():>6} | "
            f"{str(rep.absolute and rep.derived_fresh):>21} {str(rep.relative):>19}"
        )


sim.process(probe())
sim.run(until=HORIZON)

print(f"\nrule firings logged: {len(db.engine.log)}")
print(f"temp snapshots archived: {len(db.images['temp'].history)}")
print(f"archival snapshot at t=37: {db.archival_snapshot(37)}")

# -- 2. the same system as a timed ω-language (Definition 5.1) ----------------

registry = QueryRegistry(
    queries={
        "hot": lambda st: {(n,) for n, v in st.images.items()
                           if n == "temp" and v >= 25},
    },
    derivations={"stress": lambda T, P: T * P // 100},
    eval_cost=lambda name, st: 2,
)

instance = RecognitionInstance(
    invariants={"units": ("celsius", "kPa")},
    derived={"stress": ("temp", "pressure")},
    images={
        "temp": (5, lambda t: plant("temp", t)),
        "pressure": (8, lambda t: plant("pressure", t)),
    },
    query_name="hot",
    issue_time=45,  # temp crosses 25 at t = 40
    spec=DeadlineSpec(DeadlineKind.NONE),
)

report = serve_periodic(
    registry,
    instance,
    candidates=lambda i: ("temp",),
    period=15,
    horizon=HORIZON,
)

# an invocation issued at t completes at t + eval_cost; only those
# completing within the horizon have their f on the tape already
servable = 1 + (HORIZON - 2 - 45) // 15
print("\nperiodic query 'is the reactor hot?' every 15 chronons from t=45:")
print(f"  invocations completing within the horizon: {servable}")
print(f"  f symbols on the output tape: {report.f_count}")
assert report.f_count == servable, "every completed invocation should be served"
print("  -> every invocation served so far: the word is in L_pq (eq. 10)")

# -- 3. observability artifacts (only with --trace / --metrics) ---------------

if inst is not None:
    obs.uninstall()
    if cli.trace:
        doc = obs.write_chrome_trace(cli.trace, inst.spans, inst.registry)
        assert not obs.validate_chrome_trace(doc)
        print(f"\nwrote Chrome trace ({len(doc['traceEvents'])} events) to {cli.trace}")
    if cli.metrics:
        fmt = "text" if cli.metrics.endswith(".txt") else "json"
        obs.write_metrics(cli.metrics, inst.registry, fmt=fmt)
        print(f"wrote metrics dump ({fmt}) to {cli.metrics}")
