#!/usr/bin/env python3
"""Timed commit protocols: §6 word families under deadline specs.

The paper's §6 treats a distributed computation as a *family* of
per-process timed words; `repro.txn` instantiates that with 2PC/3PC
commit protocols over the kernel.  This walk-through:

1. runs a fault-free 2PC transaction and shows the recorded word
   family (coordinator round trip + per-participant decisions);
2. crashes the coordinator mid-protocol and watches 2PC *block* —
   a surviving participant stuck uncertain past every deadline;
3. reruns the same failure pattern under 3PC, whose PRE-COMMIT round
   and termination protocol keep every survivor deciding in time
   (blocking-freedom);
4. judges a faulted corpus three independent ways — region-exact
   offline, machine-replay `decide_many`, live `SessionMux` monitors —
   and checks the verdicts agree key for key.

Run:  python examples/timed_commit.py

With observability (docs/observability.md):

    python examples/timed_commit.py --trace out.json --metrics metrics.json
"""

import argparse

from repro import obs
from repro.txn import (
    TxnConfig,
    atomicity_ok,
    corpus,
    corpus_stats,
    cross_check,
    run_transaction,
)

parser = argparse.ArgumentParser(description="timed commit walk-through")
parser.add_argument("--trace", metavar="PATH", default=None,
                    help="write a Chrome trace_event JSON here")
parser.add_argument("--metrics", metavar="PATH", default=None,
                    help="write a JSON metrics dump here (.txt for text)")
cli = parser.parse_args()
inst = obs.install() if (cli.trace or cli.metrics) else None

# -- 1. a fault-free 2PC transaction, as recorded words -----------------------

CALM = TxnConfig(n_participants=3, d_lo=1, d_hi=2)
run = run_transaction("2pc", CALM, seed=1)
print("fault-free 2PC, the recorded §6 word family:")
for proc in run.processes:
    events = " ".join(f"{s}@{t}" for s, t in run.events[proc])
    print(f"  {proc:>2}: {events}")
print(f"  outcome: {run.outcome}, decisions: {run.decisions}")
assert run.outcome == "commit"
assert all(t <= CALM.happy_deadline("2pc") for _d, t in run.decisions.values())

# -- 2. coordinator crash: 2PC blocks -----------------------------------------

CRASHY = TxnConfig(n_participants=3, d_lo=1, d_hi=2, coordinator_crash_rate=1.0)
blocked = next(
    r for r in (run_transaction("2pc", CRASHY, s) for s in range(50))
    if r.outcome == "blocked"
)
stuck = [p for p in blocked.processes
         if blocked.alive(p) and blocked.decisions[p] is None]
print(f"\n2PC with a crashed coordinator (seed {blocked.seed}):")
print(f"  crashed: {[p for p, t in blocked.crashed.items() if t is not None]}")
print(f"  outcome: {blocked.outcome}; survivors stuck uncertain: {stuck}")
print(f"  (atomicity still holds: {atomicity_ok(blocked)})")
assert stuck and atomicity_ok(blocked)

# -- 3. the same failure regime under 3PC: nobody blocks ----------------------

sweep = [run_transaction("3pc", CRASHY, s) for s in range(50)]
survivors_decided = all(
    r.decisions[p] is not None
    for r in sweep for p in r.processes if r.alive(p)
)
print(f"\n3PC under the same crash regime, {len(sweep)} seeds:")
print(f"  outcomes: {corpus_stats(sweep)['outcomes']}")
print(f"  every survivor decided: {survivors_decided}")
print(f"  atomicity everywhere: {all(atomicity_ok(r) for r in sweep)}")
assert survivors_decided
assert all(atomicity_ok(r) for r in sweep)
assert not any(r.outcome == "blocked" for r in sweep)

# -- 4. three verification paths, one story -----------------------------------

FAULTY = TxnConfig(
    n_participants=2, d_lo=1, d_hi=2,
    abort_vote_rate=0.1, participant_crash_rate=0.2,
    coordinator_crash_rate=0.3, loss_rate=0.05,
)
runs = corpus("2pc", FAULTY, 12) + corpus("3pc", FAULTY, 12, base_seed=500)
result = cross_check(runs, backends=("serial",))
print(f"\ncross-checking {result.runs} faulted runs "
      f"(offline-exact vs online monitors vs machine replay):")
print(f"  checks: {result.checks}, mismatches: {len(result.mismatches)}")
assert result.ok

# -- observability artifacts (only with --trace / --metrics) ------------------

if inst is not None:
    obs.uninstall()
    if cli.trace:
        doc = obs.write_chrome_trace(cli.trace, inst.spans, inst.registry)
        assert not obs.validate_chrome_trace(doc)
        print(f"\nwrote Chrome trace ({len(doc['traceEvents'])} events) to {cli.trace}")
    if cli.metrics:
        fmt = "text" if cli.metrics.endswith(".txt") else "json"
        obs.write_metrics(cli.metrics, inst.registry, fmt=fmt)
        print(f"wrote metrics dump ({fmt}) to {cli.metrics}")
