#!/usr/bin/env python3
"""Section 4.1 in action: transactions with firm and soft deadlines.

Scenario (the paper's own motivating example, §4.1): a transaction
"must terminate within 20 seconds from its initiation" (firm), or its
usefulness decays as u(t) = max · 1/(t − 20) after the deadline (soft).

We model a batch of sorting transactions of growing size on a worker
that needs 2 chronons per item, encode each as a Section 4.1 timed
ω-word, run the paper's P_w/P_m acceptor, and tabulate which
transactions the real-time system accepts.

Run:  python examples/transaction_deadlines.py
"""

from repro.deadlines import (
    DeadlineInstance,
    DeadlineKind,
    DeadlineSpec,
    HyperbolicUsefulness,
    decide_instance,
    sorting_problem,
)

T_D = 20          # the paper's 20-second deadline
MAX_USEFUL = 10   # usefulness ceiling of the soft variant

problem = sorting_problem(time_per_item=2)

firm = DeadlineSpec(DeadlineKind.FIRM, t_d=T_D)
soft = DeadlineSpec(
    DeadlineKind.SOFT,
    t_d=T_D,
    usefulness=HyperbolicUsefulness(max_value=MAX_USEFUL, t_d=T_D),
    min_acceptable=2,  # a late answer still counts while u(t) ≥ 2
)

print(f"{'n':>4} {'duration':>8} | {'firm':^18} | {'soft (u ≥ 2)':^18}")
print("-" * 58)

for n in (4, 8, 9, 10, 11, 12, 14, 20):
    data = tuple((n - i) % 10 for i in range(n))
    answer = tuple(sorted(data))
    duration = problem.duration(data)
    row = [f"{n:>4} {duration:>8}"]
    for label, spec in (("firm", firm), ("soft", soft)):
        inst = DeadlineInstance(problem, data, answer, spec)
        report = decide_instance(inst)
        oracle = inst.oracle()
        assert report.accepted == oracle, "acceptor must match the oracle"
        tag = "ACCEPT" if report.accepted else "reject"
        at = f"@{report.decided_at}" if report.decided_at is not None else ""
        row.append(f"{tag:>7}{at:<9}")
    print(" | ".join(row))

print()
print("Reading the table:")
print(f" * firm: transactions finishing strictly before t={T_D} are accepted;")
print("   at n=10 the worker finishes exactly at the deadline — too late.")
print(" * soft: the hyperbolic tail buys a grace window — n=10..12 still")
print("   clear the min-usefulness bar; n=14 (t=28, u=1) does not.")
