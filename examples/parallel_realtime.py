#!/usr/bin/env python3
"""Section 6 + Section 7 in action: explicit parallelism and the
rt-PROC hierarchy question.

Part 1 — a distributed real-time pipeline as a tuple of per-process
words (c_k l_k r_k): a sensor process streams readings to an aggregator
over a unit-latency channel; the run denotes exactly the Section 6
model, and the PRAM variant of the same computation has null l_k/r_k.

Part 2 — the paper's open question: "is the hierarchy rt-PROC(f)
infinite?"  We run the k-stream echo experiment: k symbols arrive per
chronon, each must be processed within a deadline, and one processor
handles one symbol per chronon.  The success matrix splits exactly on
the diagonal p ≥ k — experimental evidence that each extra processor
buys genuinely new real-time power on this family.

Run:  python examples/parallel_realtime.py
"""

from repro.complexity import hierarchy_matrix, predicted_first_miss
from repro.parallel import ParallelSystem, Pram, PramVariant

# -- Part 1: message-coupled processes ----------------------------------------

system = ParallelSystem(2, latency=1)

READINGS = [7, 3, 9, 4]


def sensor(ctx):
    for value in READINGS:
        yield ctx.compute("sample", 2)
        yield ctx.send(2, value)
    yield ctx.send(2, None)  # end-of-stream


def aggregator(ctx):
    total = 0
    while True:
        _frm, value = yield ctx.recv()
        if value is None:
            return total
        total += value
        yield ctx.compute("fold", 1)


system.add_process(1, sensor)
system.add_process(2, aggregator)
run = system.run(until=200)

print("distributed sum:", run.results[2])
assert run.results[2] == sum(READINGS)

words = run.behaviour_tuple()
print("process 1 behaviour word (c₁l₁r₁):", words[0].take(6), "…")
print("process 2 receives recorded:", len(run.behaviours[2].received))

# The PRAM special case: same reduction, shared memory, no messages.
pram = Pram(2, PramVariant.EREW)
pram.load(READINGS)


def pram_sum(pid, step, mem):
    stride = 2**step
    base = (pid - 1) * 2 * stride
    if stride >= len(READINGS):
        return False
    if base + stride < len(READINGS):
        mem.write(base, (mem.read(base) or 0) + (mem.read(base + stride) or 0))
    return True


pram_run = pram.run(pram_sum)
print("\nPRAM sum:", pram_run.memory[0], f"in {pram_run.steps} synchronous steps")
assert pram_run.memory[0] == sum(READINGS)
print("PRAM l_k/r_k null (Section 6's claim):", pram_run.communication_free)

# -- Part 2: the rt-PROC hierarchy experiment ----------------------------------

K_MAX, DEADLINE = 6, 8
matrix = hierarchy_matrix(K_MAX, deadline=DEADLINE, horizon=1500)

print(f"\nrt-PROC hierarchy on the k-stream echo family (deadline={DEADLINE}):")
print("        p=" + " ".join(f"{p:>4}" for p in range(1, K_MAX + 1)))
for k in range(1, K_MAX + 1):
    cells = []
    for p in range(1, K_MAX + 1):
        r = matrix[(k, p)]
        cells.append("  ok" if r.success else f"@{r.first_miss:>3}")
    print(f"k={k:>2} | " + " ".join(cells))

print("\nclosed-form first-miss check (p = k−1):")
for k in range(2, K_MAX + 1):
    actual = matrix[(k, k - 1)].first_miss
    predicted = predicted_first_miss(k, k - 1, DEADLINE)
    status = "✓" if actual == predicted else "✗"
    print(f"  k={k}: measured {actual}, predicted {predicted}  {status}")
    assert actual == predicted

print("\nEvery k-stream workload is feasible with k processors and infeasible")
print("with k−1 — on this family, the rt-PROC hierarchy is strict at every level.")
