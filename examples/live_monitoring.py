#!/usr/bin/env python3
"""Online monitoring: Definition 3.4 acceptance rendered as it happens.

The paper's acceptor is an online device — it reads the input tape as
events arrive.  `repro.stream` takes that seriously: instead of handing
a complete word to `engine.decide`, a *monitor* ingests one
``(symbol, timestamp)`` event at a time and maintains a three-valued
verdict-so-far (ACCEPTING / REJECTED / INCONCLUSIVE).  This walk-through:

1. watches the §5.1 periodic sensor query (L_pq, eq. 10) as a live
   feed, the verdict updating invocation by invocation;
2. checks the stream judgement against the batch judge — the
   ``"online-incremental"`` engine strategy must agree with
   ``"lasso-exact"`` verbatim;
3. multiplexes a fleet of sensor streams through one `SessionMux`
   (shared automaton analysis, bounded buffers) and spots the one
   stream whose gap guard breaks;
4. survives a "process restart" mid-stream via checkpoint/restore;
5. tolerates out-of-order arrival up to a watermark.

Run:  python examples/live_monitoring.py

With observability (docs/observability.md):

    python examples/live_monitoring.py --trace out.json --metrics metrics.json
"""

import argparse

from repro import obs
from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.deadlines import DeadlineKind, DeadlineSpec
from repro.engine import compiled_tba, decide
from repro.kernel import Le
from repro.rtdb import QueryRegistry, RecognitionInstance
from repro.stream import (
    Monitor,
    SessionMux,
    StreamVerdict,
    TBAMonitor,
    checkpoint,
    replay_into_mux,
    restore,
    rtdb_periodic_monitor,
    rtdb_periodic_stream,
)
from repro.words import TimedWord

parser = argparse.ArgumentParser(description="online monitoring walk-through")
parser.add_argument("--trace", metavar="PATH", default=None,
                    help="write a Chrome trace_event JSON here")
parser.add_argument("--metrics", metavar="PATH", default=None,
                    help="write a JSON metrics dump here (.txt for text)")
cli = parser.parse_args()
inst = obs.install() if (cli.trace or cli.metrics) else None

# -- 1. the §5.1 periodic query as a live feed --------------------------------

registry = QueryRegistry(
    queries={
        "hot": lambda st: {(n,) for n, v in st.images.items() if v >= 20},
    },
    derivations={},
    eval_cost=lambda name, st: 2,
)
instance = RecognitionInstance(
    invariants={"site": "plant"},
    derived={},
    images={"temp0": (3, lambda t: 20 + t % 10)},
    query_name="hot",
    issue_time=12,
    spec=DeadlineSpec(DeadlineKind.NONE),
)

PERIOD, UNTIL = 10, 80
monitor = rtdb_periodic_monitor(registry)
print("the L_pq serving discipline (eq. 10), watched live:")
last = None
for symbol, t in rtdb_periodic_stream(instance, lambda i: ("temp0",), PERIOD,
                                      until=UNTIL):
    verdict = monitor.ingest(symbol, t)
    if verdict is not last:
        print(f"  t={t:>3}  verdict-so-far: {verdict.value}"
              f"  (f so far: {monitor.f_count})")
        last = verdict
print(f"  final: {monitor.verdict.value}, served invocations: {monitor.f_count}")
assert monitor.verdict is StreamVerdict.ACCEPTING
assert monitor.f_count >= 1

# -- 2. stream vs batch: the agreement invariant ------------------------------

tba = TimedBuchiAutomaton(
    "a", ["s"], "s",
    [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", 2))],
    ["x"], ["s"],
)
acceptor = compiled_tba(tba)
words = {
    "steady": TimedWord.lasso([], [("a", 1)], shift=1),
    "stalls": TimedWord.lasso([("a", 1), ("a", 10)], [("a", 11)], shift=1),
}
print("\nstream vs batch on the bounded-gap language (gap <= 2):")
for name, word in words.items():
    online = decide(acceptor, word, horizon=300, strategy="online-incremental")
    batch = decide(acceptor, word, horizon=300, strategy="lasso-exact")
    agree = (online.verdict, online.f_count, online.decided_at) == (
        batch.verdict, batch.f_count, batch.decided_at)
    print(f"  {name:>6}: online={online.verdict.value:<9} "
          f"batch={batch.verdict.value:<9} agree={agree}")
    assert agree, "the online strategy must match the batch judge"

# -- 3. a fleet of sensor streams through one mux -----------------------------

N_STREAMS = 24
fleet = {}
for i in range(N_STREAMS):
    if i == 13:  # one stream goes quiet for 9 chronons
        fleet[f"sensor-{i:02d}"] = TimedWord.lasso(
            [("a", 1), ("a", 10)], [("a", 11)], shift=1)
    else:
        fleet[f"sensor-{i:02d}"] = TimedWord.lasso([], [("a", 1)], shift=1)

mux = SessionMux(tba, buffer_limit=16, drop_policy="drop-new")
verdicts = replay_into_mux(mux, fleet, until=40)
flagged = sorted(n for n, v in verdicts.items() if v is StreamVerdict.REJECTED)
print(f"\n{N_STREAMS} concurrent sensor streams through one SessionMux:")
print(f"  stats: {mux.stats()}")
print(f"  flagged: {flagged}")
assert flagged == ["sensor-13"]
assert mux.stats()["active"] == N_STREAMS
assert mux.stats()["pending_total"] <= N_STREAMS * 16  # bounded by construction

# -- 4. checkpoint, 'restart', resume -----------------------------------------

live = TBAMonitor(tba)
for t in (1, 2, 3):
    live.ingest("a", t)
snapshot = checkpoint(live)  # JSON-able, O(state)
resumed = restore(snapshot, tba=tba)  # 'after the restart'
for t in (4, 5, 20):
    live.ingest("a", t)
    resumed.ingest("a", t)
print("\ncheckpoint/resume mid-stream:")
print(f"  snapshot kind={snapshot['kind']}, "
      f"configs={len(snapshot['state']['configs'])}")
print(f"  live={live.verdict.value}, resumed={resumed.verdict.value}")
assert live.verdict is resumed.verdict is StreamVerdict.REJECTED

# -- 5. out-of-order tolerance up to a watermark ------------------------------

tolerant = TBAMonitor(tba, lateness=3)
arrivals = [("a", 2), ("a", 1), ("a", 3), ("a", 5), ("a", 4), ("a", 6)]
for symbol, t in arrivals:
    tolerant.ingest(symbol, t)
tolerant.flush()
print("\nout-of-order arrivals under lateness=3:")
print(f"  arrival order: {[t for _s, t in arrivals]}")
print(f"  applied (released): {tolerant.events_released}, "
      f"late dropped: {tolerant.late_events}, "
      f"verdict: {tolerant.verdict.value}")
assert tolerant.verdict is StreamVerdict.ACCEPTING  # reordered, gaps all 1

# -- observability artifacts (only with --trace / --metrics) ------------------

if inst is not None:
    obs.uninstall()
    if cli.trace:
        doc = obs.write_chrome_trace(cli.trace, inst.spans, inst.registry)
        assert not obs.validate_chrome_trace(doc)
        print(f"\nwrote Chrome trace ({len(doc['traceEvents'])} events) to {cli.trace}")
    if cli.metrics:
        fmt = "text" if cli.metrics.endswith(".txt") else "json"
        obs.write_metrics(cli.metrics, inst.registry, fmt=fmt)
        print(f"wrote metrics dump ({fmt}) to {cli.metrics}")
