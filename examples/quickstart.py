#!/usr/bin/env python3
"""Quickstart: timed ω-words, concatenation, and a real-time acceptor.

Walks the paper's core objects in ~60 lines:

1. build timed ω-words (finite, lasso, and the classical embedding);
2. concatenate them with the Definition 3.5 merge;
3. run a real-time algorithm (Definition 3.3) that accepts words whose
   first symbol is 'go' — and observe the Definition 3.4 acceptance
   (infinitely many f's on the output tape).

Run:  python examples/quickstart.py
"""

from repro.machine import RealTimeAlgorithm
from repro.words import TimedWord, concat

# -- 1. timed ω-words ---------------------------------------------------------

# A finite timed word: symbols with arrival times.
burst = TimedWord.finite([("go", 0), ("x", 2), ("y", 2)])

# An infinite (lasso) word: a heartbeat every 3 chronons, forever.
heartbeat = TimedWord.lasso(prefix=[], loop=[("beat", 3)], shift=3)

print("heartbeat prefix:", heartbeat.take(5))
print("well-behaved?", heartbeat.is_well_behaved())  # progress holds

# The Section 3.2 embedding of a classical word: all timestamps zero —
# a valid timed word, but *never* well-behaved.  That asymmetry is the
# paper's formal boundary between classical and real-time computation.
classic = TimedWord.from_classic("abc")
print("classical embedding well-behaved?", classic.is_well_behaved())

# -- 2. Definition 3.5 concatenation -----------------------------------------

# Concatenation MERGES by arrival time (it does not append): the result
# is ordered by timestamps, ties go to the left operand.
word = concat(burst, heartbeat)
print("burst · heartbeat =", word.take(7), "…")

# -- 3. a real-time algorithm (Definitions 3.3–3.4) ---------------------------


def program(ctx):
    """Accept iff the first input symbol is 'go'.

    ``ctx.input`` enforces availability: a symbol stamped τ cannot be
    read before time τ.  ``ctx.accept()`` enters the absorbing state
    s_f, which writes the designated symbol f every chronon — realizing
    |o(A, w)|_f = ω, the Definition 3.4 acceptance condition.
    """
    symbol, arrived_at = yield ctx.input.read()
    if symbol == "go":
        ctx.accept()
    else:
        ctx.reject()


acceptor = RealTimeAlgorithm(program, name="starts-with-go")

report_yes = acceptor.decide(word, horizon=100)
report_no = acceptor.decide(heartbeat, horizon=100)

print()
print(f"word starting with 'go': {report_yes.verdict.value:8s}  f-count={report_yes.f_count}")
print(f"bare heartbeat:          {report_no.verdict.value:8s}  f-count={report_no.f_count}")

assert report_yes.accepted and report_yes.f_count > 1
assert not report_no.accepted and report_no.f_count == 0
print("\nquickstart OK")
