#!/usr/bin/env python3
"""Docs consistency checker (run by CI and tests/test_docs.py).

Four checks, all cheap and dependency-free:

1. **Coverage** — every package under ``src/repro/`` is mentioned in
   ``docs/architecture.md`` (as ``repro.<name>``), so the module map
   cannot silently go stale when a subsystem is added.
2. **Links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` resolves to an existing file.
3. **References** — every ``src/…``, ``tests/…``, ``benchmarks/…``, or
   ``examples/…`` path quoted in the docs exists, so the paper map and
   metric inventory always point at real code.
4. **Required docs** — the core guides (``REQUIRED_DOCS``) exist, so a
   rename or deletion cannot silently drop one from the glob.

Exit status 0 iff everything holds; problems are printed one per line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))

#: Guides that must exist — the glob above would silently shrink if one
#: were renamed or deleted.
REQUIRED_DOCS = [
    "docs/architecture.md",
    "docs/observability.md",
    "docs/paper_map.md",
    "docs/performance.md",
    "docs/queries.md",
    "docs/spec.md",
    "docs/txn.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(r"`((?:src|tests|benchmarks|examples)/[A-Za-z0-9_./-]+\.py)`")


def check_package_coverage() -> list:
    """Every src/repro/* package appears in docs/architecture.md."""
    problems = []
    arch = ROOT / "docs" / "architecture.md"
    if not arch.exists():
        return ["docs/architecture.md is missing"]
    text = arch.read_text()
    pkg_root = ROOT / "src" / "repro"
    for child in sorted(pkg_root.iterdir()):
        if not (child / "__init__.py").exists():
            continue
        if f"repro.{child.name}" not in text:
            problems.append(
                f"docs/architecture.md: package repro.{child.name} not documented"
            )
    return problems


def check_links() -> list:
    """Relative markdown links resolve to existing files."""
    problems = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"{doc.relative_to(ROOT)} is missing")
            continue
        for target in LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = (doc.parent / target.split("#")[0]).resolve()
            if not target_path.exists():
                problems.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def check_code_references() -> list:
    """Backticked repo paths in the docs point at real files."""
    problems = []
    for doc in DOC_FILES:
        if not doc.exists():
            continue
        for ref in PATH_RE.findall(doc.read_text()):
            if not (ROOT / ref).exists():
                problems.append(
                    f"{doc.relative_to(ROOT)}: dangling code reference -> {ref}"
                )
    return problems


def check_required_docs() -> list:
    """The core guides exist under their canonical names."""
    return [
        f"required doc missing: {rel}"
        for rel in REQUIRED_DOCS
        if not (ROOT / rel).exists()
    ]


def main() -> int:
    problems = (
        check_package_coverage()
        + check_links()
        + check_code_references()
        + check_required_docs()
    )
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} docs problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(DOC_FILES)} files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
