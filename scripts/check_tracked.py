#!/usr/bin/env python3
"""Repo hygiene checker (run by CI and tests/test_repo_hygiene.py).

Two checks, both cheap:

1. **No tracked build artifacts** — ``git ls-files`` must contain no
   ``*.pyc``/``*.pyo`` files and no paths under ``__pycache__/`` (PR 7
   accidentally committed 99 of them; this guard keeps them out).
2. **.gitignore coverage** — the patterns that prevent re-tracking
   (``__pycache__/``, ``*.pyc``, ``.pytest_cache/``, ``.hypothesis/``,
   ``.benchmarks/``) are present in ``.gitignore``.

Exit status 0 iff everything holds; problems are printed one per line.
When the working tree is not a git checkout (e.g. an sdist), the
tracked-file check is skipped rather than failed.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Patterns .gitignore must carry so artifacts can never be re-tracked.
REQUIRED_IGNORES = [
    "__pycache__/",
    "*.pyc",
    ".pytest_cache/",
    ".hypothesis/",
    ".benchmarks/",
]

#: Tracked-path predicates that flag a build artifact.
ARTIFACT_SUFFIXES = (".pyc", ".pyo")


def tracked_files() -> list:
    """``git ls-files`` of the repo, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "ls-files"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    return out.splitlines()


def check_no_tracked_artifacts() -> list:
    """No *.pyc / __pycache__ path is under version control."""
    files = tracked_files()
    if files is None:
        return []  # not a git checkout: nothing tracked to check
    problems = []
    for path in files:
        if path.endswith(ARTIFACT_SUFFIXES) or "__pycache__/" in path:
            problems.append(f"tracked build artifact: {path}")
    return problems


def check_gitignore() -> list:
    """.gitignore exists and carries every required pattern."""
    gitignore = ROOT / ".gitignore"
    if not gitignore.exists():
        return [".gitignore is missing"]
    lines = {line.strip() for line in gitignore.read_text().splitlines()}
    return [
        f".gitignore missing pattern: {pattern}"
        for pattern in REQUIRED_IGNORES
        if pattern not in lines
    ]


def main() -> int:
    problems = check_no_tracked_artifacts() + check_gitignore()
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} hygiene problem(s)", file=sys.stderr)
        return 1
    print("repo hygiene OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
