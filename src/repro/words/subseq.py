"""The subsequence relation ⊑ of Section 2.

σ′ ⊑ σ iff every element of σ′ occurs in σ and the matching is
order-preserving.  Definition 3.5 (concatenation) requires both
operands — as sequences of (symbol, time) *pairs* — to be subsequences
of the result; the checkers here are what the property-based tests and
the concatenation validator use.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from .timedword import TimedWord

__all__ = [
    "is_subsequence",
    "is_timed_subsequence",
    "complementary_split",
]


def is_subsequence(small: Sequence[Any], big: Sequence[Any]) -> bool:
    """Greedy order-preserving containment test for finite sequences.

    Greedy matching is complete for the subsequence relation: if any
    order-preserving embedding exists, matching each element of
    ``small`` to the earliest available position of ``big`` also
    succeeds.
    """
    it = iter(big)
    return all(any(x == y for y in it) for x in small)


def is_timed_subsequence(small: TimedWord, big: TimedWord, n: Optional[int] = None) -> bool:
    """Subsequence test on (symbol, time) pairs of timed words.

    For finite words the test is exact.  For infinite words ``n``
    bounds the expansion of both (default: enough of ``big`` to cover
    ``small``'s first ``n`` pairs); an infinite ``small`` inside an
    infinite ``big`` is checked on the sampled window only.
    """
    if small.is_finite and big.is_finite:
        return is_subsequence(small.take(len(small)), big.take(len(big)))
    if n is None:
        n = 512
    small_pairs = small.take(n if not small.is_finite else len(small))
    # A pair (s, t) of `small` can only be matched inside `big` at
    # positions with timestamp ≤ ... actually = t; expand `big` until
    # its timestamps pass the largest small timestamp (works only for
    # words whose times progress — callers pass lassos).
    if not small_pairs:
        return True
    t_max = max(t for _s, t in small_pairs)
    big_pairs = []
    i = 0
    budget = 10 * n + 1000
    while i < budget:
        try:
            pair = big[i]
        except IndexError:
            break
        big_pairs.append(pair)
        if pair[1] > t_max:
            break
        i += 1
    return is_subsequence(small_pairs, big_pairs)


def complementary_split(
    merged: Sequence[Tuple[Any, int]],
    first: Sequence[Tuple[Any, int]],
    second: Sequence[Tuple[Any, int]],
) -> bool:
    """Check that ``merged`` is an interleaving of exactly ``first`` and
    ``second`` (Definition 3.5 item 1's "furthermore" clause: every
    element of the result comes from one of the operands, and both
    operands embed).

    Decided by dynamic programming over (i, j) positions — greedy is
    *not* complete for two simultaneous embeddings.
    """
    n, m = len(first), len(second)
    if len(merged) != n + m:
        return False
    # reachable[j] at step k: merged[:k] splits into first[:k-j], second[:j]
    reachable = {0}
    for k, pair in enumerate(merged):
        nxt = set()
        for j in reachable:
            i = k - j
            if i < n and first[i] == pair:
                nxt.add(j)
            if j < m and second[j] == pair:
                nxt.add(j + 1)
        if not nxt:
            return False
        reachable = nxt
    return m in reachable
