"""Timed ω-words — Definition 3.2 of the paper.

A timed ω-word over Σ is a pair (σ, τ) of a symbol sequence and a time
sequence of equal length; τᵢ is the instant at which σᵢ *becomes
available* as input.  Words may be finite or infinite, and a
*well-behaved* timed ω-word is one whose time sequence satisfies
progress (and is therefore infinite).

Representations mirror :class:`repro.words.timeseq.TimeSequence`:

* **finite** — an explicit tuple of (symbol, time) pairs;
* **lasso** — prefix pairs + loop pairs, where loop iteration k adds
  ``k·shift`` to each loop timestamp.  All constructions of Sections
  4–5 are lassos, which keeps acceptance decidable;
* **functional** — ``i ↦ (symbol, time)`` for adversarial or sampled
  instances.

The classical-word embedding of Section 3.2 ("add the time sequence
00…0 to a classical word") is :meth:`TimedWord.from_classic`; the
resulting words are *never* well-behaved, which is the paper's "crisp
delimitation between real-time and classical algorithms".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from .timeseq import OMEGA, TimeSequence, Trilean

__all__ = ["TimedWord", "Pair"]

Pair = Tuple[Any, int]


@dataclass(frozen=True)
class TimedWord:
    """A timed ω-word (σ, τ) in finite / lasso / functional form.

    Use the named constructors (:meth:`finite`, :meth:`lasso`,
    :meth:`functional`, :meth:`from_classic`) rather than the raw
    dataclass fields.
    """

    prefix: Tuple[Pair, ...] = ()
    loop: Tuple[Pair, ...] = ()
    shift: int = 0
    fn: Optional[Callable[[int], Pair]] = field(default=None, compare=False)

    # -- constructors --------------------------------------------------
    @staticmethod
    def finite(pairs: Sequence[Pair]) -> "TimedWord":
        """A finite timed word from (symbol, time) pairs."""
        return TimedWord(prefix=tuple((s, int(t)) for s, t in pairs))

    @staticmethod
    def lasso(prefix: Sequence[Pair], loop: Sequence[Pair], shift: int) -> "TimedWord":
        """Eventually periodic word; loop iteration k adds k·shift to times."""
        if not loop:
            raise ValueError("lasso loop must be non-empty")
        return TimedWord(
            prefix=tuple((s, int(t)) for s, t in prefix),
            loop=tuple((s, int(t)) for s, t in loop),
            shift=int(shift),
        )

    @staticmethod
    def functional(fn: Callable[[int], Pair]) -> "TimedWord":
        """An arbitrary infinite timed word given by ``i ↦ (σᵢ, τᵢ)``."""
        return TimedWord(fn=fn)

    @staticmethod
    def from_classic(symbols: Sequence[Any]) -> "TimedWord":
        """Section 3.2 embedding: the classical word with τ = 00…0.

        The result is a timed word but never well-behaved — the formal
        boundary between classical and real-time computation.
        """
        return TimedWord.finite([(s, 0) for s in symbols])

    @staticmethod
    def from_parts(symbols: Sequence[Any], times: Sequence[int]) -> "TimedWord":
        """Zip separate σ and τ sequences of equal length."""
        if len(symbols) != len(times):
            raise ValueError(
                f"σ and τ must have equal length ({len(symbols)} vs {len(times)})"
            )
        return TimedWord.finite(list(zip(symbols, times)))

    # -- shape ------------------------------------------------------------
    @property
    def is_finite(self) -> bool:
        return not self.loop and self.fn is None

    @property
    def length(self):
        """len for finite words, :data:`OMEGA` otherwise."""
        return len(self.prefix) if self.is_finite else OMEGA

    def __len__(self) -> int:
        if not self.is_finite:
            raise TypeError("infinite timed word has length ω; use .length")
        return len(self.prefix)

    # -- access ---------------------------------------------------------------
    def __getitem__(self, i: int) -> Pair:
        """(σ_{i+1}, τ_{i+1}) in paper terms (0-based here)."""
        if i < 0:
            raise IndexError("negative index into a timed word")
        if self.fn is not None:
            s, t = self.fn(i)
            return (s, int(t))
        if i < len(self.prefix):
            return self.prefix[i]
        if not self.loop:
            raise IndexError(f"index {i} out of range for finite timed word")
        j = i - len(self.prefix)
        k, r = divmod(j, len(self.loop))
        s, t = self.loop[r]
        return (s, t + k * self.shift)

    def symbol_at(self, i: int) -> Any:
        return self[i][0]

    def time_at(self, i: int) -> int:
        return self[i][1]

    def take(self, n: int) -> List[Pair]:
        """The first ``n`` (symbol, time) pairs (clipped if finite)."""
        if self.is_finite:
            n = min(n, len(self.prefix))
        return [self[i] for i in range(n)]

    def prefix_word(self, n: int) -> "TimedWord":
        """The finite timed word formed by the first ``n`` pairs."""
        return TimedWord.finite(self.take(n))

    def __iter__(self) -> Iterator[Pair]:
        i = 0
        while True:
            try:
                yield self[i]
            except IndexError:
                return
            i += 1

    # -- time view --------------------------------------------------------------
    @property
    def time_sequence(self) -> TimeSequence:
        """The τ component as a :class:`TimeSequence`."""
        if self.fn is not None:
            getter = self.fn

            def tfn(i: int) -> int:
                return int(getter(i)[1])

            return TimeSequence.functional(tfn)
        if self.loop:
            return TimeSequence.lasso(
                prefix=[t for _s, t in self.prefix],
                loop=[t for _s, t in self.loop],
                shift=self.shift,
            )
        return TimeSequence.finite([t for _s, t in self.prefix])

    def is_valid(self, horizon: int = 4096) -> Trilean:
        """Is (σ, τ) a timed word at all — i.e. is τ monotone?"""
        return self.time_sequence.is_monotone(horizon)

    def is_well_behaved(self, horizon: int = 4096) -> Trilean:
        """Definition 3.2: τ must satisfy progress (hence be infinite)."""
        return self.time_sequence.is_well_behaved(horizon)

    # -- tape semantics ---------------------------------------------------------
    def available_by(self, t: int, horizon: int = 100_000) -> List[Pair]:
        """All pairs with τᵢ ≤ t, in word order.

        This is the input-tape availability rule of Definition 3.3: a
        symbol with timestamp τᵢ "is not available to the algorithm at
        any time t < τᵢ".  For monotone words the scan stops at the
        first timestamp exceeding ``t``; ``horizon`` guards functional
        words with stuck timestamps.
        """
        out: List[Pair] = []
        for i in range(horizon):
            try:
                s, ti = self[i]
            except IndexError:
                break
            if ti > t:
                break
            out.append((s, ti))
        return out

    def count_symbol(self, symbol: Any, n: int) -> int:
        """Occurrences of ``symbol`` among the first n pairs."""
        return sum(1 for s, _t in self.take(n) if s == symbol)

    def occurs_infinitely(self, symbol: Any) -> Trilean:
        """Does ``symbol`` occur infinitely often (|σ|_f = ω)?

        Decidable on lassos (⟺ the symbol occurs in the loop);
        UNKNOWN-or-FALSE-ish sampling for functional words is *not*
        attempted — callers should use machine-level horizons instead.
        """
        if self.is_finite:
            return Trilean.FALSE
        if self.fn is None:
            hit = any(s == symbol for s, _t in self.loop)
            return Trilean.TRUE if hit else Trilean.FALSE
        return Trilean.UNKNOWN

    # -- equality -----------------------------------------------------------------
    def equal_up_to(self, other: "TimedWord", n: int) -> bool:
        """Pairwise equality of the first ``n`` positions (and lengths)."""
        a, b = self.take(n), other.take(n)
        return a == b and (len(a) == len(b))

    def __eq__(self, other: object) -> bool:
        """Exact equality, decidable for finite/lasso representations.

        Two lasso words agreeing on ``max(|prefix|) + 2·lcm(|loop|)``
        positions are equal everywhere: past the prefixes both are
        index-periodic with period lcm(|loop₁|, |loop₂|), and agreement
        over two such super-periods pins the per-super-period time
        shift.  Functional words compare by identity of the function.
        """
        if not isinstance(other, TimedWord):
            return NotImplemented
        if self.fn is not None or other.fn is not None:
            return self.fn is other.fn and self.fn is not None
        if self.is_finite != other.is_finite:
            return False
        if self.is_finite:
            return self.prefix == other.prefix
        horizon = max(len(self.prefix), len(other.prefix)) + 2 * math.lcm(
            len(self.loop), len(other.loop)
        )
        return self.equal_up_to(other, horizon)

    def __hash__(self) -> int:
        if self.fn is not None:
            return hash(("functional", id(self.fn)))
        if self.is_finite:
            return hash(("finite", self.prefix))
        # Hash on a fixed-length expansion window: equal lassos expand
        # identically everywhere, so any representation-independent
        # window yields a consistent hash (collisions beyond it are
        # resolved by __eq__).
        return hash(("lasso", tuple(self.take(24))))

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_finite:
            body = "".join(str(s) for s, _t in self.prefix[:12])
            more = "…" if len(self.prefix) > 12 else ""
            return f"TimedWord<{body}{more}|n={len(self.prefix)}>"
        if self.fn is not None:
            return "TimedWord<functional>"
        pre = "".join(str(s) for s, _t in self.prefix[:8])
        lp = "".join(str(s) for s, _t in self.loop[:8])
        return f"TimedWord<{pre}({lp})^ω shift={self.shift}>"
