"""Timed ω-languages and the Theorem 3.3 operations.

A (well-behaved) timed ω-language is a set of (well-behaved) timed
ω-words.  The paper defines union, intersection and complement in the
obvious way, concatenation element-wise through Definition 3.5, and
Kleene closure through Definition 3.6 (note the paper's convention
``L⁰ = ∅``, *not* {ε}).

Membership in an arbitrary language of infinite words is of course not
decidable in general; the class hierarchy here is honest about that:

* :class:`PredicateLanguage` — membership is a user predicate;
* :class:`FiniteLanguage` — an explicit finite set of words
  (finite/lasso words have decidable equality, so membership is exact);
* the operation classes combine the operands' ``contains`` answers and
  raise :class:`MembershipUndecidable` where no procedure exists
  (e.g. membership in the concatenation of two predicate languages).

Every language can optionally *generate* members (``sample``), which is
what the hypothesis-based closure tests and the E4 benchmark use.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterable, List, Optional

from .concat import ConcatUndefined, concat
from .timedword import TimedWord
from .timeseq import Trilean

__all__ = [
    "MembershipUndecidable",
    "TimedLanguage",
    "PredicateLanguage",
    "FiniteLanguage",
    "UnionLanguage",
    "IntersectionLanguage",
    "ComplementLanguage",
    "ConcatLanguage",
    "KleeneClosure",
]


class MembershipUndecidable(NotImplementedError):
    """No membership procedure exists for this language/word combination."""


class TimedLanguage:
    """Abstract timed ω-language."""

    name: str = "L"

    def contains(self, word: TimedWord) -> bool:
        """Exact membership; may raise :class:`MembershipUndecidable`."""
        raise MembershipUndecidable(self.name)

    def sample(self, rng: random.Random) -> TimedWord:
        """Produce some member (for generators/ablation harnesses)."""
        raise MembershipUndecidable(f"{self.name} cannot generate members")

    def is_well_behaved_language(self, samples: int = 16, seed: int = 0) -> Trilean:
        """Sampled check that members are well-behaved timed ω-words."""
        rng = random.Random(seed)
        verdict = Trilean.TRUE
        for _ in range(samples):
            try:
                w = self.sample(rng)
            except MembershipUndecidable:
                return Trilean.UNKNOWN
            wb = w.is_well_behaved()
            if wb is Trilean.FALSE:
                return Trilean.FALSE
            if wb is Trilean.UNKNOWN:
                verdict = Trilean.UNKNOWN
        return verdict

    # -- Theorem 3.3 operations ------------------------------------------
    def union(self, other: "TimedLanguage") -> "UnionLanguage":
        return UnionLanguage(self, other)

    def intersection(self, other: "TimedLanguage") -> "IntersectionLanguage":
        return IntersectionLanguage(self, other)

    def complement(self) -> "ComplementLanguage":
        return ComplementLanguage(self)

    def concatenate(self, other: "TimedLanguage") -> "ConcatLanguage":
        return ConcatLanguage(self, other)

    def kleene(self, max_power: int = 8) -> "KleeneClosure":
        return KleeneClosure(self, max_power=max_power)

    __or__ = union
    __and__ = intersection
    __invert__ = complement

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.__class__.__name__} {self.name}>"


class PredicateLanguage(TimedLanguage):
    """Language given by a membership predicate (and optional sampler)."""

    def __init__(
        self,
        predicate: Callable[[TimedWord], bool],
        name: str = "L",
        sampler: Optional[Callable[[random.Random], TimedWord]] = None,
    ):
        self.predicate = predicate
        self.name = name
        self.sampler = sampler

    def contains(self, word: TimedWord) -> bool:
        return bool(self.predicate(word))

    def sample(self, rng: random.Random) -> TimedWord:
        if self.sampler is None:
            raise MembershipUndecidable(f"{self.name} has no sampler")
        return self.sampler(rng)


class FiniteLanguage(TimedLanguage):
    """An explicit finite set of timed words.

    Equality of finite and lasso words is decidable
    (:meth:`TimedWord.__eq__`), so membership is exact.
    """

    def __init__(self, words: Iterable[TimedWord], name: str = "L"):
        self.words: List[TimedWord] = list(words)
        self.name = name

    def contains(self, word: TimedWord) -> bool:
        return any(word == w for w in self.words)

    def sample(self, rng: random.Random) -> TimedWord:
        if not self.words:
            raise MembershipUndecidable("empty language has no members")
        return rng.choice(self.words)

    def __len__(self) -> int:
        return len(self.words)


class UnionLanguage(TimedLanguage):
    """L₁ ∪ L₂ (Theorem 3.3: straightforwardly defined)."""

    def __init__(self, left: TimedLanguage, right: TimedLanguage):
        self.left, self.right = left, right
        self.name = f"({left.name} ∪ {right.name})"

    def contains(self, word: TimedWord) -> bool:
        return self.left.contains(word) or self.right.contains(word)

    def sample(self, rng: random.Random) -> TimedWord:
        first, second = (self.left, self.right) if rng.random() < 0.5 else (self.right, self.left)
        try:
            return first.sample(rng)
        except MembershipUndecidable:
            return second.sample(rng)


class IntersectionLanguage(TimedLanguage):
    """L₁ ∩ L₂."""

    def __init__(self, left: TimedLanguage, right: TimedLanguage):
        self.left, self.right = left, right
        self.name = f"({left.name} ∩ {right.name})"

    def contains(self, word: TimedWord) -> bool:
        return self.left.contains(word) and self.right.contains(word)

    def sample(self, rng: random.Random) -> TimedWord:
        # Rejection-sample from the left operand.
        for _ in range(10_000):
            w = self.left.sample(rng)
            if self.right.contains(w):
                return w
        raise MembershipUndecidable(f"could not sample from {self.name}")


class ComplementLanguage(TimedLanguage):
    """The complement (within all timed ω-words over the alphabet)."""

    def __init__(self, inner: TimedLanguage):
        self.inner = inner
        self.name = f"¬{inner.name}"

    def contains(self, word: TimedWord) -> bool:
        return not self.inner.contains(word)


class ConcatLanguage(TimedLanguage):
    """L = {w₁w₂ | w₁ ∈ L₁, w₂ ∈ L₂} with Definition 3.5 concatenation.

    Membership is exact when both operands are :class:`FiniteLanguage`
    (enumerate pairs, concatenate, compare); otherwise only sampling is
    supported.
    """

    def __init__(self, left: TimedLanguage, right: TimedLanguage):
        self.left, self.right = left, right
        self.name = f"{left.name}·{right.name}"

    def contains(self, word: TimedWord) -> bool:
        if isinstance(self.left, FiniteLanguage) and isinstance(self.right, FiniteLanguage):
            for w1, w2 in itertools.product(self.left.words, self.right.words):
                try:
                    if concat(w1, w2) == word:
                        return True
                except ConcatUndefined:
                    continue
            return False
        raise MembershipUndecidable(
            f"membership in {self.name} needs finite operand languages"
        )

    def sample(self, rng: random.Random) -> TimedWord:
        for _ in range(100):
            w1 = self.left.sample(rng)
            w2 = self.right.sample(rng)
            try:
                return concat(w1, w2)
            except ConcatUndefined:
                continue
        raise MembershipUndecidable(f"sampled pairs from {self.name} never concatenate")


class KleeneClosure(TimedLanguage):
    """L* = ∪_{0 ≤ k < ω} L^k with L⁰ = ∅ (Definition 3.6, verbatim).

    The paper's convention makes L* = L¹ ∪ L² ∪ … (no empty word).
    Membership enumerates concatenations up to ``max_power`` for finite
    base languages; the power is a completeness bound, reported via
    :class:`MembershipUndecidable` when exceeded... in practice each
    concatenation strictly grows symbol multiset size, so for a finite
    word the search is exhaustive once products outgrow it.
    """

    def __init__(self, base: TimedLanguage, max_power: int = 8):
        self.base = base
        self.max_power = max_power
        self.name = f"({base.name})*"

    def power(self, k: int) -> TimedLanguage:
        """L^k per Definition 3.6 (L⁰ = ∅, L¹ = L, L^k = L·L^{k-1})."""
        if k == 0:
            return FiniteLanguage([], name=f"{self.base.name}^0")
        lang: TimedLanguage = self.base
        for _ in range(k - 1):
            lang = ConcatLanguage(self.base, lang)
        return lang

    def contains(self, word: TimedWord) -> bool:
        if not isinstance(self.base, FiniteLanguage):
            raise MembershipUndecidable(
                f"membership in {self.name} needs a finite base language"
            )
        if not self.base.words:
            return False  # ∪ of L^k over an empty L is empty
        current: List[TimedWord] = list(self.base.words)
        for _k in range(1, self.max_power + 1):
            if any(word == w for w in current):
                return True
            nxt: List[TimedWord] = []
            for w1, w2 in itertools.product(self.base.words, current):
                try:
                    nxt.append(concat(w1, w2))
                except ConcatUndefined:
                    continue
            current = nxt
        return False

    def sample(self, rng: random.Random) -> TimedWord:
        k = rng.randint(1, self.max_power)
        out: Optional[TimedWord] = None
        for _ in range(k):
            w = self.base.sample(rng)
            out = w if out is None else concat(out, w)
        assert out is not None
        return out
