"""Time sequences — Definition 3.1 of the paper.

A *time sequence* τ = τ₁τ₂… is a (finite or infinite) sequence of
natural-number timestamps satisfying **monotonicity**: τᵢ ≤ τᵢ₊₁.  A
*well-behaved* time sequence additionally satisfies **progress**: for
every t ∈ ℕ there is a finite i with τᵢ > t — hence it is necessarily
infinite.  The paper departs from Alur–Dill [10] by making time
discrete; we follow it and use non-negative integers throughout.

Infinite sequences appear in two executable representations:

* **lasso** (eventually periodic with a constant per-period shift):
  a finite prefix, a finite loop of offsets, and a per-iteration shift
  Δ.  Every construction in the paper (Sections 4–5) produces lasso
  time sequences, and well-behavedness is *decidable* on lassos
  (Δ > 0 ⟺ progress).
* **functional** (arbitrary ``i ↦ τᵢ``): progress is only
  semi-decidable; :meth:`TimeSequence.is_well_behaved` then samples a
  finite horizon and reports honestly via a three-valued answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["TimeSequence", "Trilean", "OMEGA"]


class Trilean(Enum):
    """Three-valued verdicts for properties of infinite objects."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        # Conservative coercion: only a definite TRUE is truthy.
        return self is Trilean.TRUE


class _Omega:
    """The ordinal ω, used as the length of infinite words.

    The paper stresses ω ∉ ℕ; we honour that by making OMEGA compare
    strictly greater than every int and unequal to all of them.
    """

    _instance: Optional["_Omega"] = None

    def __new__(cls) -> "_Omega":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __gt__(self, other: object) -> bool:
        if isinstance(other, int):
            return True
        if isinstance(other, _Omega):
            return False
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        return isinstance(other, (int, _Omega))

    def __lt__(self, other: object) -> bool:
        if isinstance(other, (int, _Omega)):
            return False
        return NotImplemented

    def __le__(self, other: object) -> bool:
        return isinstance(other, _Omega)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Omega)

    def __hash__(self) -> int:
        return hash("omega")

    def __repr__(self) -> str:
        return "ω"


OMEGA = _Omega()


@dataclass(frozen=True)
class TimeSequence:
    """A finite, lasso, or functional time sequence.

    Exactly one of the following shapes holds:

    * finite: ``loop`` is empty and ``fn`` is None; the sequence is
      just ``prefix``.
    * lasso: ``loop`` non-empty; element ``prefix + k·|loop| + j`` has
      timestamp ``loop[j] + k·shift`` (k ≥ 0, 0 ≤ j < |loop|).
    * functional: ``fn`` maps index (0-based) to timestamp; length ω.
    """

    prefix: Tuple[int, ...] = ()
    loop: Tuple[int, ...] = ()
    shift: int = 0
    fn: Optional[Callable[[int], int]] = field(default=None, compare=False)

    # -- constructors ----------------------------------------------------
    @staticmethod
    def finite(values: Sequence[int]) -> "TimeSequence":
        """A finite time sequence (allowed by Definition 3.1)."""
        return TimeSequence(prefix=tuple(int(v) for v in values))

    @staticmethod
    def lasso(prefix: Sequence[int], loop: Sequence[int], shift: int) -> "TimeSequence":
        """Eventually periodic: prefix, then loop shifted by ``shift``/cycle."""
        if not loop:
            raise ValueError("lasso loop must be non-empty")
        return TimeSequence(
            prefix=tuple(int(v) for v in prefix),
            loop=tuple(int(v) for v in loop),
            shift=int(shift),
        )

    @staticmethod
    def functional(fn: Callable[[int], int]) -> "TimeSequence":
        """An arbitrary infinite sequence given by ``i ↦ τᵢ`` (0-based)."""
        return TimeSequence(fn=fn)

    @staticmethod
    def arithmetic(start: int, step: int, offset_len: int = 0, offset_value: int = 0) -> "TimeSequence":
        """τ = offset_value^offset_len, start, start+step, start+2·step, …

        The workhorse shape of the paper's Section 4 constructions
        ("τᵢ = i − m − n for i > m+n" is ``arithmetic(1, 1, m+n, 0)``).
        """
        return TimeSequence.lasso(
            prefix=(offset_value,) * offset_len, loop=(start,), shift=step
        )

    # -- shape ----------------------------------------------------------------
    @property
    def is_finite(self) -> bool:
        return not self.loop and self.fn is None

    def __len__(self) -> int:
        if not self.is_finite:
            raise TypeError("infinite time sequence has length ω; use .length")
        return len(self.prefix)

    @property
    def length(self):
        """len for finite sequences, :data:`OMEGA` otherwise."""
        return len(self.prefix) if self.is_finite else OMEGA

    # -- access -----------------------------------------------------------------
    def __getitem__(self, i: int) -> int:
        """τ_{i+1} in paper terms (0-based here)."""
        if i < 0:
            raise IndexError("negative index into a time sequence")
        if self.fn is not None:
            value = self.fn(i)
            if value != int(value) or value < 0:
                raise ValueError(f"functional time sequence produced {value!r} at {i}")
            return int(value)
        if i < len(self.prefix):
            return self.prefix[i]
        if not self.loop:
            raise IndexError(f"index {i} out of range for finite time sequence")
        j = i - len(self.prefix)
        k, r = divmod(j, len(self.loop))
        return self.loop[r] + k * self.shift

    def take(self, n: int) -> List[int]:
        """The first ``n`` timestamps (clipped to the length if finite)."""
        if self.is_finite:
            n = min(n, len(self.prefix))
        return [self[i] for i in range(n)]

    def __iter__(self) -> Iterator[int]:
        i = 0
        while True:
            try:
                yield self[i]
            except IndexError:
                return
            i += 1

    # -- Definition 3.1 predicates ---------------------------------------------
    def is_monotone(self, horizon: int = 4096) -> Trilean:
        """Monotonicity τᵢ ≤ τᵢ₊₁ and non-negativity.

        Decidable for finite sequences and lassos (checking one loop
        unrolling plus the wraparound suffices); sampled up to
        ``horizon`` for functional sequences.
        """
        if self.is_finite:
            vals = self.prefix
            ok = all(v >= 0 for v in vals) and all(
                vals[i] <= vals[i + 1] for i in range(len(vals) - 1)
            )
            return Trilean.TRUE if ok else Trilean.FALSE
        if self.fn is None:
            # Lasso: prefix monotone, junction, loop monotone, wraparound
            # into the shifted next iteration, and shift keeps values
            # non-decreasing across iterations.
            n = len(self.prefix) + 2 * len(self.loop) + 1
            vals = [self[i] for i in range(n)]
            ok = all(v >= 0 for v in vals) and all(
                vals[i] <= vals[i + 1] for i in range(len(vals) - 1)
            )
            ok = ok and self.shift >= 0
            return Trilean.TRUE if ok else Trilean.FALSE
        vals = [self[i] for i in range(horizon)]
        if any(v < 0 for v in vals) or any(
            vals[i] > vals[i + 1] for i in range(len(vals) - 1)
        ):
            return Trilean.FALSE
        return Trilean.UNKNOWN

    def is_well_behaved(self, horizon: int = 4096) -> Trilean:
        """Progress: ∀t ∃i finite with τᵢ > t (Definition 3.1).

        * finite sequences: never well-behaved (the paper notes a
          well-behaved time sequence is always infinite);
        * lassos: decidable — progress ⟺ shift > 0 (each loop
          iteration raises every timestamp by Δ);
        * functional: TRUE is never provable from samples, so the
          verdict is FALSE (if monotonicity fails) or UNKNOWN.
        """
        mono = self.is_monotone(horizon)
        if mono is Trilean.FALSE:
            return Trilean.FALSE
        if self.is_finite:
            return Trilean.FALSE
        if self.fn is None:
            if self.shift > 0:
                return mono  # TRUE (lasso monotonicity is decidable)
            return Trilean.FALSE  # timestamps are bounded by max(loop)
        return Trilean.UNKNOWN

    # -- queries used by Lemma 5.1 ------------------------------------------------
    def first_index_reaching(self, t: int, horizon: int = 1_000_000) -> Optional[int]:
        """Smallest 0-based i with τᵢ ≥ t, or None within ``horizon``.

        This is the k′ of Lemma 5.1 (up to indexing convention).  For
        lassos it is computed in O(prefix + loop) arithmetic; for
        functional sequences it scans up to ``horizon``.
        """
        if self.is_finite or self.fn is not None:
            n = len(self.prefix) if self.is_finite else horizon
            for i in range(n):
                if self[i] >= t:
                    return i
            return None
        for i, v in enumerate(self.prefix):
            if v >= t:
                return i
        if self.shift <= 0:
            for j, v in enumerate(self.loop):
                if v >= t:
                    return len(self.prefix) + j
            return None
        # Need loop[j] + k·shift ≥ t for the smallest (k, j) in index order.
        best: Optional[int] = None
        for j, v in enumerate(self.loop):
            k = max(0, -(-(t - v) // self.shift)) if v < t else 0
            idx = len(self.prefix) + k * len(self.loop) + j
            if best is None or idx < best:
                best = idx
        return best

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_finite:
            return f"TimeSequence{self.prefix}"
        if self.fn is not None:
            return "TimeSequence(<functional>)"
        return f"TimeSequence(prefix={self.prefix}, loop={self.loop}, shift={self.shift})"
