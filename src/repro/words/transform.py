"""Word transformations: retiming, filtering, projection.

Utility operators the paper uses implicitly when relocating
constructions in time (e.g. the Section 5.1.3 aq words are the Section
4.1 shapes "issued at time t"), realized as explicit, well-tested
operations on all three word representations.

* :func:`delay` — shift every timestamp by a constant (delaying a
  well-behaved word preserves well-behavedness; *advancing* may not
  produce a timed word at all and is validated);
* :func:`stretch` — multiply every timestamp (granularity change; the
  paper: "one can define a granularity of time as fine as desired");
* :func:`filter_symbols` — keep only symbols satisfying a predicate
  (the projection used when reading one operand back out of a merge);
* :func:`relabel` — map symbols pointwise (alphabet renaming).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .timedword import Pair, TimedWord

__all__ = ["delay", "stretch", "filter_symbols", "relabel", "iterate_omega"]


def iterate_omega(word: TimedWord, period: Optional[int] = None) -> TimedWord:
    """wω: infinite iteration of a finite timed word.

    Copy k of ``word`` has every timestamp shifted by k·period — the
    construction behind L_ω-style languages (Theorem 3.1's l₁$l₂$…)
    and the paper's periodic examples.  ``period`` defaults to the
    smallest shift keeping the result monotone: max(τ) − min(τ) + 1
    (so consecutive copies never interleave); passing a larger period
    inserts idle time between copies.  The result is a lasso word,
    hence everything downstream stays decidable.  It is well-behaved
    iff period > 0, which the default guarantees.
    """
    if not word.is_finite:
        raise ValueError("iterate_omega needs a finite word")
    if len(word) == 0:
        raise ValueError("cannot iterate the empty word")
    times = [t for _s, t in word.prefix]
    min_period = max(times) - min(times) + 1
    if period is None:
        period = min_period
    if period < min_period:
        raise ValueError(
            f"period {period} would interleave copies (need ≥ {min_period})"
        )
    return TimedWord.lasso(prefix=(), loop=list(word.prefix), shift=period)


def delay(word: TimedWord, dt: int) -> TimedWord:
    """(σ, τ) ↦ (σ, τ + dt).  Negative dt must not push times below 0."""
    if word.fn is not None:
        base = word.fn

        def fn(i: int) -> Pair:
            s, t = base(i)
            if t + dt < 0:
                raise ValueError("delay would produce a negative timestamp")
            return (s, t + dt)

        return TimedWord.functional(fn)
    prefix = [(s, t + dt) for s, t in word.prefix]
    if any(t < 0 for _s, t in prefix):
        raise ValueError("delay would produce a negative timestamp")
    if word.is_finite:
        return TimedWord.finite(prefix)
    loop = [(s, t + dt) for s, t in word.loop]
    if any(t < 0 for _s, t in loop):
        raise ValueError("delay would produce a negative timestamp")
    return TimedWord.lasso(prefix, loop, word.shift)


def stretch(word: TimedWord, factor: int) -> TimedWord:
    """(σ, τ) ↦ (σ, factor·τ): a coarser time granularity.

    Monotonicity and progress are preserved for factor ≥ 1.
    """
    if factor < 1:
        raise ValueError("stretch factor must be ≥ 1")
    if word.fn is not None:
        base = word.fn

        def fn(i: int) -> Pair:
            s, t = base(i)
            return (s, factor * t)

        return TimedWord.functional(fn)
    prefix = [(s, factor * t) for s, t in word.prefix]
    if word.is_finite:
        return TimedWord.finite(prefix)
    loop = [(s, factor * t) for s, t in word.loop]
    return TimedWord.lasso(prefix, loop, factor * word.shift)


def filter_symbols(word: TimedWord, keep: Callable[[Any], bool]) -> TimedWord:
    """Keep only pairs whose symbol satisfies ``keep``.

    Finite words filter exactly.  Lassos filter prefix and loop
    separately: the result is a lasso iff the loop retains at least one
    symbol; a fully-filtered loop collapses the word to its finite
    filtered prefix.  Functional words filter lazily.
    """
    if word.fn is not None:
        base = word.fn
        cache: List[Pair] = []
        cursor = [0]

        def fn(i: int) -> Pair:
            while len(cache) <= i:
                pair = base(cursor[0])  # IndexError propagates = end
                cursor[0] += 1
                if keep(pair[0]):
                    cache.append(pair)
            return cache[i]

        return TimedWord.functional(fn)
    prefix = [(s, t) for s, t in word.prefix if keep(s)]
    if word.is_finite:
        return TimedWord.finite(prefix)
    loop = [(s, t) for s, t in word.loop if keep(s)]
    if not loop:
        return TimedWord.finite(prefix)
    return TimedWord.lasso(prefix, loop, word.shift)


def relabel(word: TimedWord, mapping: Callable[[Any], Any]) -> TimedWord:
    """Apply ``mapping`` to every symbol (times untouched)."""
    if word.fn is not None:
        base = word.fn

        def fn(i: int) -> Pair:
            s, t = base(i)
            return (mapping(s), t)

        return TimedWord.functional(fn)
    prefix = [(mapping(s), t) for s, t in word.prefix]
    if word.is_finite:
        return TimedWord.finite(prefix)
    loop = [(mapping(s), t) for s, t in word.loop]
    return TimedWord.lasso(prefix, loop, word.shift)
