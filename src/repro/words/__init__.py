"""Timed ω-words and timed ω-languages (Sections 2–3 of the paper)."""

from .concat import ConcatUndefined, concat, concat_many, naive_concat
from .language import (
    ComplementLanguage,
    ConcatLanguage,
    FiniteLanguage,
    IntersectionLanguage,
    KleeneClosure,
    MembershipUndecidable,
    PredicateLanguage,
    TimedLanguage,
    UnionLanguage,
)
from .subseq import complementary_split, is_subsequence, is_timed_subsequence
from .timedword import Pair, TimedWord
from .timeseq import OMEGA, TimeSequence, Trilean
from .transform import delay, filter_symbols, iterate_omega, relabel, stretch

__all__ = [
    "TimeSequence",
    "TimedWord",
    "Pair",
    "OMEGA",
    "Trilean",
    "concat",
    "concat_many",
    "naive_concat",
    "ConcatUndefined",
    "is_subsequence",
    "is_timed_subsequence",
    "complementary_split",
    "TimedLanguage",
    "PredicateLanguage",
    "FiniteLanguage",
    "UnionLanguage",
    "IntersectionLanguage",
    "ComplementLanguage",
    "ConcatLanguage",
    "KleeneClosure",
    "MembershipUndecidable",
    "delay",
    "stretch",
    "filter_symbols",
    "relabel",
    "iterate_omega",
]
