"""Concatenation of timed ω-words — Definition 3.5 — and Kleene closure.

The paper observes that naively appending (σ′, τ′)(σ″, τ″) "fails to
produce a timed word, since the result of the time sequence
concatenation is likely not a time sequence".  Definition 3.5 instead
*merges* the two words in non-decreasing order of arrival time, with
two determinism constraints:

* item 2 — equal-time runs inside one operand stay contiguous and in
  order;
* item 3 — on a tie between the operands, the first operand's symbol
  precedes the second's.

A stable two-way merge by timestamp in which the **first operand wins
ties** satisfies all three items: merging never reorders within an
operand (item 1's subsequence requirement and item 2), and the
tie-break realizes item 3 by putting *all* first-operand symbols at
time t before any second-operand symbol at t.

Representation strategy
-----------------------
finite ⋅ finite            → finite (exact merge)
finite ⋅ lasso, lasso ⋅ finite → lasso (prefix absorption; exact)
lasso ⋅ lasso (both shifts > 0) → lasso via detect-and-verify super-period
anything ⋅ functional      → functional lazy merge
undefined cases            → :class:`ConcatUndefined` (e.g. a finite
                             symbol that would have to follow
                             infinitely many bounded-time symbols)
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from .timedword import Pair, TimedWord

__all__ = ["ConcatUndefined", "concat", "concat_many", "naive_concat"]


class ConcatUndefined(ValueError):
    """Raised when Definition 3.5 admits no result ω-word.

    This happens when one operand contains a symbol whose time exceeds
    infinitely many symbols of the other operand — the merged object
    would need position ω, which an ω-word does not have.
    """


# ----------------------------------------------------------------------
# merge cores
# ----------------------------------------------------------------------

def _merge_finite(a: List[Pair], b: List[Pair]) -> List[Pair]:
    """Stable merge by time, ``a`` wins ties (items 1–3 of Def. 3.5)."""
    out: List[Pair] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][1] <= b[j][1]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def _merged_stream(a: TimedWord, b: TimedWord) -> Iterator[Pair]:
    """Lazy Definition 3.5 merge of two possibly-infinite words."""
    i = j = 0

    def get(w: TimedWord, k: int):
        try:
            return w[k]
        except IndexError:
            return None

    pa, pb = get(a, 0), get(b, 0)
    while True:
        if pa is None and pb is None:
            return
        if pb is None or (pa is not None and pa[1] <= pb[1]):
            yield pa  # type: ignore[misc]
            i += 1
            pa = get(a, i)
        else:
            yield pb
            j += 1
            pb = get(b, j)


def _functional_merge(a: TimedWord, b: TimedWord) -> TimedWord:
    """Wrap the lazy merge as a functional TimedWord with memoization."""
    cache: List[Pair] = []
    stream = _merged_stream(a, b)

    def fn(i: int) -> Pair:
        while len(cache) <= i:
            try:
                cache.append(next(stream))
            except StopIteration:
                raise IndexError(i) from None
        return cache[i]

    return TimedWord.functional(fn)


# ----------------------------------------------------------------------
# exact representations
# ----------------------------------------------------------------------

def _unroll(w: TimedWord, iterations: int) -> Tuple[List[Pair], TimedWord]:
    """Split a lasso word into (expanded prefix, remaining lasso).

    The remaining lasso's loop times are advanced by ``iterations``
    shifts so indexing stays absolute.
    """
    expanded = list(w.prefix)
    for k in range(iterations):
        expanded.extend((s, t + k * w.shift) for s, t in w.loop)
    rest = TimedWord.lasso(
        prefix=(),
        loop=[(s, t + iterations * w.shift) for s, t in w.loop],
        shift=w.shift,
    )
    return expanded, rest


def _absorb_finite(finite: TimedWord, lasso: TimedWord, finite_first: bool) -> TimedWord:
    """Merge a finite word with a lasso word exactly.

    Unroll the lasso until the untouched tail starts strictly after
    (or at, depending on tie ownership) every finite timestamp, merge
    the finite word into the unrolled region, and keep the tail as the
    loop.  ``finite_first`` states whether the finite word is the left
    operand of the concatenation (and therefore wins ties).
    """
    fin = list(finite.prefix)
    if not fin:
        return lasso
    t_max = max(t for _s, t in fin)
    loop_start = min(t for _s, t in lasso.loop)
    if lasso.shift <= 0:
        # Loop times never progress (a monotone zero-shift loop has all
        # times equal to some M).  A finite symbol strictly later than M
        # would have to follow infinitely many loop symbols — no ω-word
        # realizes that.  Symbols at exactly M are fine: ties merge
        # deterministically around one unrolled iteration.
        loop_max = max(t for _s, t in lasso.loop)
        if t_max > loop_max:
            raise ConcatUndefined(
                "finite operand outlasts a non-progressing infinite operand"
            )
        iterations = 1
    else:
        # Need the remaining tail's first time to exceed t_max (strictly
        # if the lasso wins ties is irrelevant: strict suffices always).
        iterations = 0
        while loop_start + iterations * lasso.shift <= t_max:
            iterations += 1
    expanded, rest = _unroll(lasso, iterations)
    merged_prefix = _merge_finite(fin, expanded) if finite_first else _merge_finite(expanded, fin)
    return TimedWord.lasso(prefix=merged_prefix, loop=rest.loop, shift=rest.shift)


def _lasso_lasso(a: TimedWord, b: TimedWord) -> TimedWord:
    """Exact merge of two progressing lassos via detect-and-verify.

    Past both prefixes, operand A repeats every |loop_A| items with
    time period s_A, and B likewise.  Over the common time period
    P = lcm(s_A, s_B) the relative phase of the two streams repeats, so
    the merged stream is eventually periodic with ≤ (P/s_A)|loop_A| +
    (P/s_B)|loop_B| items per period and time shift P.  We expand the
    merge far enough, then *verify* two full candidate periods; the
    phase-repetition argument makes one verified period sufficient,
    the second is a safety margin.
    """
    P = math.lcm(a.shift, b.shift)
    per = (P // a.shift) * len(a.loop) + (P // b.shift) * len(b.loop)
    lazy = _functional_merge(a, b)
    # Start searching after both prefixes have certainly been consumed.
    start_guess = len(a.prefix) + len(b.prefix) + 2 * per
    need = start_guess + 3 * per
    pairs = [lazy[i] for i in range(need)]
    for start in range(start_guess, start_guess + per + 1):
        ok = all(
            pairs[i + per] == (pairs[i][0], pairs[i][1] + P)
            for i in range(start, min(start + 2 * per, need - per))
        )
        if ok:
            return TimedWord.lasso(
                prefix=pairs[:start],
                loop=pairs[start : start + per],
                shift=P,
            )
    # Fall back to the lazy representation (should not happen for
    # well-formed progressing lassos, but stays correct if it does).
    return lazy


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def concat(a: TimedWord, b: TimedWord) -> TimedWord:
    """(σ, τ) = (σ′, τ′)(σ″, τ″) per Definition 3.5.

    Raises :class:`ConcatUndefined` when no result ω-word exists.
    """
    if a.is_finite and b.is_finite:
        return TimedWord.finite(_merge_finite(list(a.prefix), list(b.prefix)))
    if a.fn is not None or b.fn is not None:
        return _functional_merge(a, b)
    if a.is_finite:
        return _absorb_finite(a, b, finite_first=True)
    if b.is_finite:
        return _absorb_finite(b, a, finite_first=False)
    # two lassos
    if a.shift > 0 and b.shift > 0:
        return _lasso_lasso(a, b)
    if a.shift <= 0 and b.shift <= 0:
        # Both time-bounded: interleaving is still an ω-word only if the
        # time ranges nest; the lazy merge realizes it when one range
        # dominates, otherwise symbols starve.
        amax = max(t for _s, t in a.loop)
        bmax = max(t for _s, t in b.loop)
        if amax != bmax:
            raise ConcatUndefined(
                "two non-progressing lassos with different terminal times "
                "cannot merge into an ω-word"
            )
        return _functional_merge(a, b)
    # One progresses, one is stuck: the stuck one's symbols beyond the
    # other's coverage are fine (they all carry bounded times and merge
    # into a finite region) only if... a stuck lasso has infinitely many
    # bounded-time symbols, so every progressing symbol with a larger
    # time would sit after infinitely many of them.
    raise ConcatUndefined(
        "cannot merge a progressing word with a non-progressing infinite word"
    )


def concat_many(words: List[TimedWord]) -> TimedWord:
    """Left fold of :func:`concat` (used for db_B = db_0 db_1 … db_r)."""
    if not words:
        raise ValueError("concat_many of zero words")
    out = words[0]
    for w in words[1:]:
        out = concat(out, w)
    return out


def naive_concat(a: TimedWord, b: TimedWord) -> TimedWord:
    """The *wrong* concatenation the paper warns about: append σ and τ.

    Kept for the Definition 3.5 ablation benchmark (E15): the result is
    usually not a timed word because the appended time sequence breaks
    monotonicity.  Only defined when the first operand is finite.
    """
    if not a.is_finite:
        raise ConcatUndefined("naive concatenation needs a finite first operand")
    pairs = list(a.prefix)
    if b.is_finite:
        return TimedWord.finite(pairs + list(b.prefix))
    if b.fn is None:
        return TimedWord.lasso(prefix=pairs + list(b.prefix), loop=b.loop, shift=b.shift)
    base = len(pairs)

    def fn(i: int) -> Pair:
        return pairs[i] if i < base else b[i - base]

    return TimedWord.functional(fn)
