"""Consistent-hash session placement over a set of shard ids.

A shard pool must answer "which shard owns session X?" with three
properties the naive ``hash(name) % n`` lacks:

* **Determinism across processes and runs** — Python's ``hash`` is
  salted per process; routing decisions made by a parent must be
  reproducible by a restarted parent.  We hash with BLAKE2b, keyed
  only by the bytes of the name.
* **Stability under membership change** — adding or removing one shard
  of *n* must move only ~1/n of the sessions (the classic consistent
  hashing guarantee), so a ``rebalance`` migrates a sliver of the
  session table instead of reshuffling everything.
* **Balance** — each shard appears at ``replicas`` points on the ring
  (virtual nodes), smoothing the load across shards.

The ring is a sorted list of ``(point, shard_id)`` pairs; placement is
one hash plus a binary search.  ``tests/test_shard_placement.py`` pins
all three properties.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashRing"]

#: Virtual nodes per shard; 64 keeps the max/min load ratio small at
#: single-digit shard counts without making ring updates noticeable.
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """A 64-bit ring coordinate from a stable keyless hash."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping session names to shard ids."""

    def __init__(self, shard_ids: Iterable[str], *, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._shards: List[str] = []
        self._ring: List[Tuple[int, str]] = []
        self._points: List[int] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- membership --------------------------------------------------------
    @property
    def shards(self) -> List[str]:
        """Current member shard ids, in insertion order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.append(shard_id)
        for r in range(self.replicas):
            self._ring.append((_point(f"{shard_id}#{r}"), shard_id))
        self._ring.sort()
        self._points = [p for p, _s in self._ring]

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} not on the ring")
        self._shards.remove(shard_id)
        self._ring = [(p, s) for p, s in self._ring if s != shard_id]
        self._points = [p for p, _s in self._ring]

    # -- placement ---------------------------------------------------------
    def place(self, name: str) -> str:
        """The shard owning ``name`` (first ring point clockwise)."""
        if not self._ring:
            raise ValueError("empty ring: no shards to place on")
        i = bisect_right(self._points, _point(name))
        if i == len(self._ring):
            i = 0
        return self._ring[i][1]

    def place_many(self, names: Sequence[str]) -> Dict[str, str]:
        """Batch placement: ``{name: shard_id}``."""
        return {name: self.place(name) for name in names}
