"""The shard router: consistent-hash placement over persistent workers.

A :class:`ShardRouter` looks like a :class:`~repro.stream.session.SessionMux`
from the outside — ``ingest`` / ``ingest_batch`` / ``verdicts`` /
``close_session`` / ``evict_idle`` / ``stats`` — but fans the work out
over ``n_shards`` long-lived forked workers, each hosting its own warm
mux (see :mod:`repro.shard.worker`).  The pieces:

* **Placement** — session names map to shards through a
  :class:`~repro.shard.placement.HashRing`; the router keeps a
  ``{name: shard}`` table so a session never migrates implicitly.
* **Batched routing** — events buffer per shard and ship as framed
  chunks (:mod:`repro.shard.wire`) when ``batch_events`` accumulate or
  on :meth:`flush`; the worker ACKs each frame and the router caps
  un-ACKed frames at ``max_inflight`` (backpressure: a slow shard
  stalls its *own* senders instead of growing an unbounded pipe).
* **Durability** — the supervisor pattern of
  :class:`~repro.stream.supervisor.MuxSupervisor`, lifted to per-shard
  granularity: every event is journaled *at send*, a per-shard
  :meth:`checkpoint` snapshots the worker's mux and truncates that
  journal, and a SIGKILLed shard (:meth:`crash`, or any detected death)
  comes back via :meth:`recover` — respawn, restore the snapshot,
  replay the journal — or via :meth:`fail_over`, which re-places the
  dead shard's sessions on the survivors instead.
* **Elasticity** — :meth:`rebalance` grows or shrinks the pool,
  migrating exactly the sessions whose ring placement changed
  (consistent hashing moves ~K/N of them) through the live-session
  extract/adopt path of :mod:`repro.stream.checkpoint`.
* **Metrics** — :meth:`sync_metrics` pulls each worker's registry
  delta and merges it into the parent registry, so child-side
  ``stream.*`` / ``kernel.*`` counts survive the process boundary;
  the router's own ``shard.*`` series (placement churn, queue depth,
  batch sizes, recovery latency) is documented in
  ``docs/observability.md``.

Error surfacing: ingest errors raised *inside* a worker (e.g. the
``reject`` drop policy) come back on the ACK and are raised as
:class:`ShardError` at the next synchronization point (:meth:`sync`,
:meth:`verdicts`, :meth:`checkpoint`, ...), not at the ``ingest`` call
that buffered the event.  Deterministic recovery is guaranteed for
non-raising policies (the default ``drop-new``/``drop-old``), exactly
like the single-process supervisor.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import multiprocessing as mp

from ..obs import hooks as _obs
from .placement import DEFAULT_REPLICAS, HashRing
from .wire import (
    DEFAULT_CHUNK_EVENTS,
    OP_ACK,
    OP_ADOPT,
    OP_CHECKPOINT,
    OP_CLOSE,
    OP_ERR,
    OP_EVENTS,
    OP_EVICT,
    OP_EXTRACT,
    OP_INSTALL_LANG,
    OP_METRICS,
    OP_REPLY,
    OP_RESTORE,
    OP_SHUTDOWN,
    OP_STATS,
    OP_VERDICTS,
    iter_chunks,
    recv_frame,
    send_frame,
)
from .worker import worker_main

__all__ = ["ShardError", "ShardRouter"]


class ShardError(RuntimeError):
    """A shard died, rejected work, or answered out of protocol."""


class _Shard:
    """Parent-side handle for one worker process."""

    __slots__ = (
        "id", "proc", "conn", "seq", "inflight", "buffer", "journal",
        "snapshot", "events_since_checkpoint", "langs", "alive", "errors",
    )

    def __init__(self, shard_id: str, proc: Any, conn: Any):
        self.id = shard_id
        self.proc = proc
        self.conn = conn
        self.seq = 0
        self.inflight = 0            # un-ACKed OP_EVENTS frames
        self.buffer: List[Tuple[str, Any, int]] = []
        self.journal: List[Tuple[str, Any, int]] = []
        self.snapshot: Optional[Dict[str, Any]] = None
        self.events_since_checkpoint = 0
        self.langs: set = set()      # language keys installed in the worker
        self.alive = True
        self.errors: List[str] = []


class ShardRouter:
    """Mux-shaped front over a pool of persistent shard workers.

    Pass ``acceptor`` (plus optional ``mux_kwargs`` forwarded to each
    worker's :class:`~repro.stream.session.SessionMux`) for the stream
    path, or neither for a decide-only pool (the engine backends).
    """

    def __init__(
        self,
        acceptor: Any = None,
        *,
        mux_factory: Optional[Callable[[], Any]] = None,
        n_shards: int = 2,
        mux_kwargs: Optional[Dict[str, Any]] = None,
        replicas: int = DEFAULT_REPLICAS,
        batch_events: int = 256,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        max_inflight: int = 8,
        checkpoint_every: Optional[int] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if acceptor is not None and mux_factory is not None:
            raise ValueError("pass at most one of acceptor / mux_factory")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if mux_factory is None and acceptor is not None:
            from ..stream.session import SessionMux

            kwargs = dict(mux_kwargs or {})
            mux_factory = lambda: SessionMux(acceptor, **kwargs)  # noqa: E731
        elif mux_kwargs:
            raise ValueError("mux_kwargs needs acceptor=...")
        self._mux_factory = mux_factory
        self.batch_events = batch_events
        self.chunk_events = chunk_events
        self.max_inflight = max_inflight
        self.checkpoint_every = checkpoint_every
        # fork: workers inherit the acceptor/factory closures directly —
        # no pickling of language artifacts, ever.
        self._ctx = mp.get_context("fork")
        self._next_id = 0
        self._shards: Dict[str, _Shard] = {}
        self._ring = HashRing([], replicas=replicas)
        self._placement: Dict[str, str] = {}
        self._max_time: Optional[int] = None
        self._closed = False
        for _ in range(n_shards):
            self._add_shard()

    # -- lifecycle plumbing ------------------------------------------------
    def _add_shard(self) -> _Shard:
        shard_id = f"s{self._next_id}"
        self._next_id += 1
        shard = self._spawn(shard_id)
        self._ring.add(shard_id)
        return shard

    def _spawn(self, shard_id: str) -> _Shard:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, shard_id, self._mux_factory),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        child_conn.close()
        shard = _Shard(shard_id, proc, parent_conn)
        self._shards[shard_id] = shard
        return shard

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shards)

    @property
    def session_count(self) -> int:
        """Sessions the router has placed (parent-side view)."""
        return len(self._placement)

    def place_of(self, name: str) -> str:
        """The shard that owns (or would own) ``name``."""
        return self._placement.get(name) or self._ring.place(name)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    # -- low-level frame traffic ------------------------------------------
    def _count(self, name: str, n: float = 1, **labels: Any) -> None:
        h = _obs.HOOKS
        if h is not None:
            h.count(name, n, **labels)

    def _dead(self, shard: _Shard, why: str) -> ShardError:
        shard.alive = False
        return ShardError(
            f"shard {shard.id!r} died ({why}); recover() or fail_over() it"
        )

    def _recv(self, shard: _Shard) -> Any:
        try:
            return recv_frame(shard.conn)
        except (EOFError, OSError) as exc:
            raise self._dead(shard, repr(exc)) from exc

    def _recv_ack(self, shard: _Shard) -> None:
        frame = self._recv(shard)
        if frame.op != OP_ACK:
            raise ShardError(
                f"shard {shard.id!r}: expected ACK, got opcode {frame.op}"
            )
        shard.inflight -= 1
        status, detail = frame.payload
        if status == "err":
            shard.errors.append(detail)

    def _drain_acks(self, shard: _Shard, down_to: int = 0) -> None:
        while shard.inflight > down_to:
            self._recv_ack(shard)

    def _request(self, shard: _Shard, op: int, payload: Any) -> Any:
        """Send one synchronous request and wait for its reply.

        ACKs for earlier event frames are absorbed along the way (the
        worker answers strictly in order, so the matching reply is the
        first non-ACK frame).
        """
        if not shard.alive:
            raise self._dead(shard, "marked dead")
        shard.seq += 1
        seq = shard.seq
        try:
            send_frame(shard.conn, op, seq, payload)
        except (BrokenPipeError, OSError) as exc:
            raise self._dead(shard, repr(exc)) from exc
        while True:
            frame = self._recv(shard)
            if frame.op == OP_ACK:
                shard.inflight -= 1
                status, detail = frame.payload
                if status == "err":
                    shard.errors.append(detail)
                continue
            if frame.seq != seq:
                raise ShardError(
                    f"shard {shard.id!r}: reply seq {frame.seq} != {seq}"
                )
            if frame.op == OP_REPLY:
                return frame.payload
            if frame.op == OP_ERR:
                raise ShardError(f"shard {shard.id!r}: {frame.payload}")
            raise ShardError(f"shard {shard.id!r}: unexpected opcode {frame.op}")

    def _flush_shard(self, shard: _Shard) -> None:
        if not shard.buffer:
            return
        if not shard.alive:
            # Keep the events buffered: they are already journaled, and
            # recover()/fail_over() will replay them on a live worker.
            return
        events, shard.buffer = shard.buffer, []
        h = _obs.HOOKS
        for chunk in iter_chunks(events, self.chunk_events):
            self._drain_acks(shard, down_to=self.max_inflight - 1)
            shard.seq += 1
            try:
                send_frame(shard.conn, OP_EVENTS, shard.seq, chunk)
            except (BrokenPipeError, OSError) as exc:
                # Undelivered chunks stay recoverable via the journal.
                raise self._dead(shard, repr(exc)) from exc
            shard.inflight += 1
            if h is not None:
                h.observe("shard.batch_size", len(chunk))
        if h is not None:
            h.gauge("shard.queue_depth", shard.inflight, shard=shard.id)
        shard.events_since_checkpoint += len(events)
        if (
            self.checkpoint_every is not None
            and shard.events_since_checkpoint >= self.checkpoint_every
        ):
            self._checkpoint_shard(shard)

    def _raise_errors(self) -> None:
        errors: List[str] = []
        for shard in self._shards.values():
            if shard.errors:
                errors.extend(f"{shard.id}: {e}" for e in shard.errors)
                shard.errors = []
        if errors:
            raise ShardError("; ".join(errors))

    # -- ingestion ---------------------------------------------------------
    def ingest(self, name: str, symbol: Any, t: int) -> None:
        """Route one event to its session's shard (buffered)."""
        shard_id = self._placement.get(name)
        if shard_id is None:
            shard_id = self._ring.place(name)
            self._placement[name] = shard_id
        shard = self._shards[shard_id]
        if self._max_time is None or t > self._max_time:
            self._max_time = t
        event = (name, symbol, t)
        shard.journal.append(event)
        shard.buffer.append(event)
        if len(shard.buffer) >= self.batch_events:
            self._flush_shard(shard)

    def ingest_batch(self, events) -> None:
        """Route many ``(name, symbol, t)`` events (order kept per name)."""
        for name, symbol, t in events:
            self.ingest(name, symbol, t)

    def flush(self) -> None:
        """Ship every buffered event (without waiting for ACKs)."""
        for shard in self._shards.values():
            self._flush_shard(shard)

    def sync(self) -> None:
        """Flush, wait until every live shard has ACKed everything, and
        raise any worker-side ingest errors collected since last sync."""
        for shard in self._shards.values():
            self._flush_shard(shard)
            if shard.alive:
                self._drain_acks(shard)
        self._raise_errors()

    # -- mux-shaped queries ------------------------------------------------
    def verdicts(self) -> Dict[str, Any]:
        """Current verdict-so-far of every session, across all shards."""
        self.sync()
        out: Dict[str, Any] = {}
        for shard in self._shards.values():
            out.update(self._request(shard, OP_VERDICTS, None))
        return out

    def stats(self) -> Dict[str, int]:
        """Aggregated mux counters across shards."""
        self.sync()
        total: Dict[str, int] = {}
        for shard in self._shards.values():
            for key, value in self._request(shard, OP_STATS, None).items():
                total[key] = total.get(key, 0) + value
        return total

    def close_session(self, name: str, horizon: Optional[int] = None) -> Any:
        """Close one session on its shard; returns its SessionReport."""
        shard_id = self._placement.get(name) or self._ring.place(name)
        shard = self._shards[shard_id]
        self._flush_shard(shard)
        self._drain_acks(shard)
        report = self._request(shard, OP_CLOSE, (name, horizon))
        self._placement.pop(name, None)
        return report

    def evict_idle(
        self, now: Optional[int] = None, idle_ttl: Optional[int] = None
    ) -> List[str]:
        """Run idle eviction on every shard; returns all evicted names.

        With ``now=None`` the *global* max routed timestamp is used, so
        a shard holding only stale sessions still evicts them (each
        worker alone would think its own newest event is "now").
        """
        self.sync()
        if now is None:
            now = self._max_time
        victims: List[str] = []
        for shard in self._shards.values():
            evicted = self._request(shard, OP_EVICT, (now, idle_ttl))
            victims.extend(evicted)
        for name in victims:
            self._placement.pop(name, None)
        return victims

    # -- durability --------------------------------------------------------
    def _checkpoint_shard(self, shard: _Shard) -> None:
        self._drain_acks(shard)
        shard.snapshot = self._request(shard, OP_CHECKPOINT, None)
        shard.journal = []
        shard.events_since_checkpoint = 0
        self._count("shard.checkpoints", shard=shard.id)

    def checkpoint(self, shard_id: Optional[str] = None) -> None:
        """Snapshot shard muxes and truncate their journals."""
        targets = (
            [self._shards[shard_id]]
            if shard_id is not None
            else list(self._shards.values())
        )
        for shard in targets:
            self._flush_shard(shard)
            self._checkpoint_shard(shard)

    def crash(self, shard_id: str) -> None:
        """SIGKILL one worker (fault injection; no goodbye, no flush)."""
        shard = self._shards[shard_id]
        if shard.proc.is_alive():
            os.kill(shard.proc.pid, signal.SIGKILL)
        shard.proc.join()
        shard.alive = False

    def _reap(self, shard: _Shard) -> None:
        if shard.proc.is_alive():
            shard.proc.terminate()
        shard.proc.join()
        try:
            shard.conn.close()
        except OSError:  # pragma: no cover
            pass

    def recover(self, shard_id: str) -> float:
        """Respawn a dead shard and rebuild its state.

        Restore the last checkpoint into a fresh worker, then replay the
        journal (every event routed since that checkpoint) in original
        order — deterministic for non-raising drop policies, so the
        recovered shard's verdicts match an uninterrupted run
        verdict-for-verdict.  Returns the recovery latency in seconds
        (also observed as ``shard.recovery_latency``).
        """
        old = self._shards[shard_id]
        t0 = time.perf_counter()
        self._reap(old)
        shard = self._spawn(shard_id)
        shard.snapshot = old.snapshot
        shard.journal = old.journal
        shard.events_since_checkpoint = len(old.journal)
        if shard.snapshot is not None:
            self._request(shard, OP_RESTORE, shard.snapshot)
        for chunk in iter_chunks(shard.journal, self.chunk_events):
            self._drain_acks(shard, down_to=self.max_inflight - 1)
            shard.seq += 1
            send_frame(shard.conn, OP_EVENTS, shard.seq, chunk)
            shard.inflight += 1
        self._drain_acks(shard)
        latency = time.perf_counter() - t0
        h = _obs.HOOKS
        if h is not None:
            h.count("shard.recoveries", mode="respawn")
            h.observe("shard.recovery_latency", latency)
        return latency

    def fail_over(self, shard_id: str) -> List[str]:
        """Retire a dead shard by re-placing its sessions on survivors.

        The dead shard's checkpointed sessions are adopted by the shards
        the shrunken ring now maps them to, and its journal is replayed
        through normal routing (re-creating any session born after the
        checkpoint).  Returns the names that moved.
        """
        if len(self._shards) < 2:
            raise ShardError("cannot fail over the only shard")
        dead = self._shards.pop(shard_id)
        t0 = time.perf_counter()
        self._reap(dead)
        self._ring.remove(shard_id)
        # Re-place everything the parent believed lived on the dead shard.
        for name, sid in list(self._placement.items()):
            if sid == shard_id:
                self._placement[name] = self._ring.place(name)
        groups: Dict[str, Dict[str, Any]] = {}
        if dead.snapshot is not None:
            for name, entry in dead.snapshot["sessions"].items():
                groups.setdefault(self._ring.place(name), {})[name] = entry
        moved: List[str] = []
        for target_id, entries in sorted(groups.items()):
            target = self._shards[target_id]
            self._flush_shard(target)
            self._drain_acks(target)
            self._request(target, OP_ADOPT, entries)
            moved.extend(entries)
        # The journal re-routes through the new ring (and re-journals
        # on the adopting shards, keeping *their* recovery story whole).
        self.ingest_batch(dead.journal)
        self.sync()
        latency = time.perf_counter() - t0
        h = _obs.HOOKS
        if h is not None:
            h.count("shard.recoveries", mode="failover")
            h.observe("shard.recovery_latency", latency)
            h.count("shard.placement_moves", len(moved), cause="failover")
        return moved

    # -- elasticity --------------------------------------------------------
    def rebalance(self, n_shards: int) -> Dict[str, Any]:
        """Grow or shrink the pool to ``n_shards``, migrating only the
        sessions whose ring placement changed (~K/N of them).

        Live sessions move through the checkpoint extract/adopt path —
        monitor state intact, verdict history intact — and the affected
        shards are checkpointed afterwards so every journal matches its
        shard's new session set.  Returns a summary with the moved
        session names.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.sync()
        retiring: List[_Shard] = []
        while len(self._shards) < n_shards:
            self._add_shard()
        if len(self._shards) > n_shards:
            for shard_id in self.shard_ids[n_shards:]:
                shard = self._shards[shard_id]
                retiring.append(shard)
                self._ring.remove(shard_id)
        # Where does everything live now?
        moves: Dict[str, Dict[str, List[str]]] = {}
        for name, old_id in self._placement.items():
            new_id = self._ring.place(name)
            if new_id != old_id:
                moves.setdefault(old_id, {}).setdefault(new_id, []).append(name)
        moved: List[str] = []
        touched: set = set()
        for old_id, by_target in sorted(moves.items()):
            source = self._shards[old_id]
            for new_id, names in sorted(by_target.items()):
                entries = self._request(source, OP_EXTRACT, names)
                if entries:
                    target = self._shards[new_id]
                    self._request(target, OP_ADOPT, entries)
                    touched.add(new_id)
                for name in names:
                    self._placement[name] = new_id
                moved.extend(entries)
            touched.add(old_id)
        for shard in retiring:
            del self._shards[shard.id]
            touched.discard(shard.id)
            try:
                delta = self._request(shard, OP_SHUTDOWN, None)
            except ShardError:
                pass
            else:
                self._merge_delta_result(delta)
            self._reap(shard)
        # Re-checkpoint every shard that gained or lost sessions so its
        # journal/snapshot pair describes the new layout.
        for shard_id in sorted(touched):
            if shard_id in self._shards:
                self.checkpoint(shard_id)
        self._count("shard.placement_moves", len(moved), cause="rebalance")
        return {"n_shards": len(self._shards), "moved": moved}

    # -- decide-path support (used by repro.shard.pool) --------------------
    def install_language(self, shard: _Shard, key: int, kind: str, payload: Any) -> None:
        if key not in shard.langs:
            self._request(shard, OP_INSTALL_LANG, (key, kind, payload))
            shard.langs.add(key)

    def respawn(self, shard_id: str) -> _Shard:
        """Kill-and-replace a worker with no state carryover (decide pool)."""
        old = self._shards[shard_id]
        if old.proc.is_alive():
            os.kill(old.proc.pid, signal.SIGKILL)
        self._reap(old)
        self._count("shard.recoveries", mode="respawn")
        return self._spawn(shard_id)

    # -- metrics -----------------------------------------------------------
    def _merge_delta_result(self, delta: Any) -> None:
        h = _obs.HOOKS
        if h is not None and delta:
            h.registry.merge(delta)

    def sync_metrics(self) -> int:
        """Pull every worker's metric delta into the parent registry.

        Returns the number of metric entries merged.  Safe to call
        repeatedly: workers dump deltas, so nothing double-counts.
        """
        self.sync()
        merged = 0
        for shard in self._shards.values():
            delta = self._request(shard, OP_METRICS, None)
            self._merge_delta_result(delta)
            merged += len(delta)
        return merged

    def shutdown(self) -> None:
        """Flush, collect final metrics, and stop every worker."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            if shard.alive:
                try:
                    self._flush_shard(shard)
                    self._drain_acks(shard)
                    delta = self._request(shard, OP_SHUTDOWN, None)
                    self._merge_delta_result(delta)
                except ShardError:
                    pass
            self._reap(shard)
        self._shards.clear()
        self._placement.clear()
