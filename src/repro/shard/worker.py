"""The long-lived shard worker: one process, one warm mux, warm caches.

A worker is forked once by the :class:`~repro.shard.router.ShardRouter`
and then serves frames until told to shut down (or killed — that case
is the router's per-shard recovery path).  Everything expensive lives
*here*, warm, for the worker's whole life:

* the :class:`~repro.stream.session.SessionMux` with its shared
  :class:`~repro.stream.monitor.TBAAnalysis` and
  :class:`~repro.stream.compiled.CompiledTBA` (built once at worker
  start, reused by every session and every recovery restore);
* the engine's :class:`~repro.engine.batch.AcceptorCache` — a language
  installed via ``OP_INSTALL_LANG`` is compiled once and then serves
  every subsequent ``OP_DECIDE`` chunk without recompilation or
  re-pickling (the fork-per-batch pool paid that on *every call*);
* the worker's own :class:`~repro.obs.Instrumentation` — metrics
  recorded here (``stream.*``, ``kernel.*``, ``engine.*``) are shipped
  to the parent as :class:`~repro.obs.DeltaDumper` deltas riding on
  ``OP_METRICS`` / ``OP_DECIDE`` / ``OP_SHUTDOWN`` replies, so
  child-side counts surface in the parent registry instead of dying
  with the process.

The loop is single-threaded and processes frames strictly in order —
which is what makes the router's journal replay deterministic: same
frame order in, same mux state out.  Any handler exception is caught
and reported (``OP_ERR`` for requests, an error ACK for event frames);
the worker itself keeps serving.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

from ..automata.timed import TimedBuchiAutomaton
from ..engine.batch import _decide_one, compiled_tba
from ..engine.strategies import get_strategy
from ..obs import DeltaDumper, Instrumentation
from ..obs import hooks as _obs_hooks
from .wire import (
    OP_ACK,
    OP_ADOPT,
    OP_CHECKPOINT,
    OP_CLOSE,
    OP_DECIDE,
    OP_ERR,
    OP_EVENTS,
    OP_EVICT,
    OP_EXTRACT,
    OP_INSTALL_LANG,
    OP_METRICS,
    OP_REPLY,
    OP_RESTORE,
    OP_SHUTDOWN,
    OP_STATS,
    OP_VERDICTS,
    recv_frame,
    send_frame,
)

__all__ = ["worker_main"]


class _Worker:
    def __init__(self, conn: Any, shard_id: str, mux_factory: Optional[Callable]):
        self.conn = conn
        self.shard_id = shard_id
        self._factory = mux_factory
        # The mux (and its per-language analysis/compiled artifacts) is
        # built once, here, at worker start — the warm state the whole
        # design exists to keep resident.
        self.mux = mux_factory() if mux_factory is not None else None
        self.langs: Dict[int, Any] = {}
        # The worker always runs instrumented: its metrics only reach a
        # user if the parent pulls and merges them, and the cost of an
        # idle registry is nil.
        self.inst = _obs_hooks.install(Instrumentation())
        self.delta = DeltaDumper(self.inst.registry)
        # Labeled by shard so merged parent registries keep the shards
        # apart (unlabeled gauges from two workers would clobber).
        self._frames = self.inst.registry.counter(
            "shard.worker_frames", "frames served by a shard worker"
        ).labels(shard=shard_id)

    # -- language rebinding for checkpoint restore ------------------------
    def _lang_kwargs(self) -> Dict[str, Any]:
        """How :mod:`repro.stream.checkpoint` re-binds this mux's language."""
        if self.mux is None or self.mux.acceptor is None:
            raise RuntimeError(
                "this shard hosts no checkpointable mux (decide-only pool "
                "or monitor_factory-backed sessions)"
            )
        lang = self.mux.acceptor
        if isinstance(lang, TimedBuchiAutomaton):
            return {"tba": lang}
        return {"acceptor": lang}

    def _live_mux(self):
        if self.mux is None:
            raise RuntimeError(
                f"shard {self.shard_id!r} is decide-only (no mux configured)"
            )
        return self.mux

    # -- handlers ----------------------------------------------------------
    def on_events(self, events) -> Any:
        mux = self._live_mux()
        mux.ingest_batch(events)
        return len(events)

    def on_verdicts(self, _payload) -> Dict[str, Any]:
        return self._live_mux().verdicts()

    def on_stats(self, _payload) -> Dict[str, int]:
        return self._live_mux().stats()

    def on_checkpoint(self, _payload) -> Dict[str, Any]:
        from ..stream.checkpoint import checkpoint_mux

        return checkpoint_mux(self._live_mux())

    def on_restore(self, snapshot) -> int:
        from ..stream.checkpoint import restore_mux

        if self._factory is None:
            raise RuntimeError("decide-only shard cannot restore a mux")
        fresh = self._factory()
        restore_mux(snapshot, fresh, **self._lang_kwargs())
        self.mux = fresh
        return len(fresh)

    def on_extract(self, names) -> Dict[str, Any]:
        from ..stream.checkpoint import extract_sessions

        return extract_sessions(self._live_mux(), names)

    def on_adopt(self, entries) -> int:
        from ..stream.checkpoint import restore_sessions

        restored = restore_sessions(
            self._live_mux(), entries, **self._lang_kwargs()
        )
        return len(restored)

    def on_close(self, payload) -> Any:
        name, horizon = payload
        return self._live_mux().close(name, horizon)

    def on_evict(self, payload) -> Any:
        now, idle_ttl = payload
        return self._live_mux().evict_idle(now, idle_ttl)

    def on_install_lang(self, payload) -> bool:
        key, kind, obj = payload
        if key not in self.langs:
            if kind == "tba":
                # compiled once into the worker's warm engine LRU;
                # every future OP_DECIDE for this key reuses it
                self.langs[key] = compiled_tba(obj)
            elif kind == "obj":
                self.langs[key] = obj
            else:
                raise ValueError(f"unknown language kind {kind!r}")
        return True

    def on_decide(self, payload) -> Any:
        lang_key, lo, words, horizon, strategy_spec, seed = payload
        acceptor = self.langs[lang_key]
        strat = get_strategy(strategy_spec)
        reports = [
            _decide_one(acceptor, word, horizon, strat, seed, lo + i)
            for i, word in enumerate(words)
        ]
        return reports, self.delta.delta()

    def on_metrics(self, _payload) -> Any:
        if self.mux is not None:
            # sample the worker-side session level on the way out
            self.inst.registry.gauge(
                "shard.worker_sessions", "sessions resident on this shard"
            ).labels(shard=self.shard_id).set(len(self.mux))
        return self.delta.delta()

    # -- the loop ----------------------------------------------------------
    HANDLERS = {
        OP_EVENTS: on_events,
        OP_VERDICTS: on_verdicts,
        OP_STATS: on_stats,
        OP_CHECKPOINT: on_checkpoint,
        OP_RESTORE: on_restore,
        OP_EXTRACT: on_extract,
        OP_ADOPT: on_adopt,
        OP_CLOSE: on_close,
        OP_EVICT: on_evict,
        OP_INSTALL_LANG: on_install_lang,
        OP_DECIDE: on_decide,
        OP_METRICS: on_metrics,
    }

    def serve(self) -> None:
        while True:
            try:
                frame = recv_frame(self.conn)
            except (EOFError, OSError):
                return  # parent is gone; nothing left to serve
            self._frames.inc()
            op, seq, payload = frame
            if op == OP_SHUTDOWN:
                send_frame(self.conn, OP_REPLY, seq, self.on_metrics(None))
                return
            handler = self.HANDLERS.get(op)
            try:
                if handler is None:
                    raise ValueError(f"unknown opcode {op}")
                result = handler(self, payload)
            except Exception as exc:  # noqa: BLE001 — report, keep serving
                if op == OP_EVENTS:
                    send_frame(self.conn, OP_ACK, seq, ("err", repr(exc)))
                else:
                    send_frame(self.conn, OP_ERR, seq, repr(exc))
                continue
            if op == OP_EVENTS:
                send_frame(self.conn, OP_ACK, seq, ("ok", result))
            else:
                send_frame(self.conn, OP_REPLY, seq, result)


def worker_main(
    conn: Any, shard_id: str, mux_factory: Optional[Callable] = None
) -> None:
    """Entry point of a forked shard worker (runs until shutdown/EOF)."""
    worker = _Worker(conn, shard_id, mux_factory)
    try:
        worker.serve()
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
        # daemonized children must not run the parent's atexit hooks
        os._exit(0)
