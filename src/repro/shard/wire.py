"""Binary frame protocol between the shard router and its workers.

Everything a shard says or hears travels as one *frame* over a duplex
:class:`multiprocessing.connection.Connection` (socketpair under
``fork``).  A frame is::

    header  = !4s B Q I   (magic "RSH1", opcode, sequence, payload length)
    payload = pickle(obj)

The explicit header buys three things over bare ``Connection.send``:

* **Self-describing streams** — the receiver dispatches on the opcode
  before unpickling, and a corrupted or foreign frame fails loudly on
  the magic check instead of unpickling garbage;
* **Sequencing** — event frames carry a monotone per-shard sequence the
  worker echoes in its ACK, which is what the router's backpressure
  window counts;
* **Chunking** — one logical event batch is split into frames of at
  most ``chunk_events`` events (:func:`iter_chunks`), bounding both the
  pickle size and the latency before the worker starts applying.

The payloads themselves are plain data by construction: events are
``(name, symbol, t)`` tuples, checkpoints are the JSON-able dicts of
:mod:`repro.stream.checkpoint`, decisions are
:class:`~repro.engine.verdict.DecisionReport` lists, metrics are
:meth:`~repro.obs.registry.MetricRegistry.dump` entries.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator, List, Sequence, Tuple

__all__ = [
    "Frame",
    "send_frame",
    "recv_frame",
    "iter_chunks",
    "WireError",
]

MAGIC = b"RSH1"
_HEADER = struct.Struct("!4sBQI")

# Opcodes: requests (router → worker) ...
OP_EVENTS = 1        # [(name, symbol, t), ...] → ingest into the mux
OP_VERDICTS = 2      # () → {name: verdict value}
OP_STATS = 3         # () → mux.stats() + session count
OP_CHECKPOINT = 4    # () → checkpoint_mux dict
OP_RESTORE = 5       # mux snapshot → rebuild the mux from it
OP_EXTRACT = 6       # [names] → {name: session entry} (removed from mux)
OP_ADOPT = 7         # {name: session entry} → restored into the mux
OP_CLOSE = 8         # (name, horizon|None) → SessionReport
OP_INSTALL_LANG = 9  # (key, kind, payload) → warm a language artifact
OP_DECIDE = 10       # (lang_key, lo, words, horizon, strategy, seed) → reports
OP_METRICS = 11      # () → registry delta dump
OP_SHUTDOWN = 12     # () → final metrics delta, then the worker exits
OP_EVICT = 13        # (now|None, idle_ttl|None) → evicted names

# ... and replies (worker → router).
OP_ACK = 64          # echoes an OP_EVENTS sequence (payload: applied count)
OP_REPLY = 65        # the answer to any synchronous request
OP_ERR = 66          # repr of the exception the request raised

#: Default number of events per OP_EVENTS frame.
DEFAULT_CHUNK_EVENTS = 512


class WireError(RuntimeError):
    """A malformed frame (bad magic or truncated header)."""


class Frame(Tuple[int, int, Any]):
    """``(op, seq, payload)`` with named access."""

    __slots__ = ()

    def __new__(cls, op: int, seq: int, payload: Any) -> "Frame":
        return super().__new__(cls, (op, seq, payload))

    @property
    def op(self) -> int:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def payload(self) -> Any:
        return self[2]


def pack_frame(op: int, seq: int, payload: Any) -> bytes:
    """Serialize one frame (raises pickle errors for foreign payloads)."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, op, seq, len(body)) + body


def unpack_frame(data: bytes) -> Frame:
    if len(data) < _HEADER.size:
        raise WireError(f"truncated frame: {len(data)} bytes")
    magic, op, seq, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise WireError(f"frame length mismatch: header {length}, got {len(body)}")
    return Frame(op, seq, pickle.loads(body))


def send_frame(conn: Any, op: int, seq: int, payload: Any) -> None:
    conn.send_bytes(pack_frame(op, seq, payload))


def recv_frame(conn: Any) -> Frame:
    """Blocking receive of one frame (EOFError when the peer died)."""
    return unpack_frame(conn.recv_bytes())


def iter_chunks(
    events: Sequence[Any], chunk_events: int = DEFAULT_CHUNK_EVENTS
) -> Iterator[List[Any]]:
    """Split one logical batch into frame-sized chunks, order kept."""
    if chunk_events < 1:
        raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
    for lo in range(0, len(events), chunk_events):
        yield list(events[lo:lo + chunk_events])
