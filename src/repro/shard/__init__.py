"""repro.shard — persistent worker shards for engine and stream scale-out.

The paper's Section 6 parallel model distributes a real-time
computation across processors whose communication itself costs time;
this package is that model made operational for the reproduction's two
production surfaces:

* **Stream scale-out** — a :class:`ShardRouter` fans the
  :class:`~repro.stream.session.SessionMux` session table out over
  long-lived forked workers, each hosting its own warm mux (shared
  :class:`~repro.stream.monitor.TBAAnalysis` /
  :class:`~repro.stream.compiled.CompiledTBA`).  Sessions are placed by
  consistent hashing (:class:`HashRing` — deterministic, ~K/N movement
  on membership change), events travel as batched binary frames with
  ACK-window backpressure (:mod:`repro.shard.wire`), and the
  journal+checkpoint recovery discipline of
  :class:`~repro.stream.supervisor.MuxSupervisor` is enforced *per
  shard*: a SIGKILLed worker is respawned and replayed
  (:meth:`ShardRouter.recover`) or its sessions re-placed on the
  survivors (:meth:`ShardRouter.fail_over`), verdict-for-verdict.
* **Batch decide scale-out** — ``decide_many(backend="shards")`` and
  ``decide_many_resilient(backend="shards")`` submit decision chunks to
  the same kind of pool (:mod:`repro.shard.pool`), kept warm across
  calls so the per-batch fork/compile cost the plain pool pays
  disappears; reports stay bit-identical to the serial path.

Metrics recorded inside workers are merged back into the parent
registry (``MetricRegistry.merge`` over pipe-shipped deltas), and the
router's own ``shard.*`` series is documented in
``docs/observability.md``.  Benchmarks: ``benchmarks/bench_shards.py``.
"""

from .placement import HashRing  # noqa: F401
from .pool import (  # noqa: F401
    LanguageUnshippable,
    shared_pool,
    shutdown_pool,
)
from .router import ShardError, ShardRouter  # noqa: F401
from .wire import Frame, WireError  # noqa: F401

__all__ = [
    "HashRing",
    "ShardRouter",
    "ShardError",
    "Frame",
    "WireError",
    "LanguageUnshippable",
    "shared_pool",
    "shutdown_pool",
]
