"""The shared decide-only shard pool behind ``backend="shards"``.

The plain engine pool (:func:`repro.engine.batch.decide_many` with
``workers > 1``) forks a fresh process pool on *every call* — the fork,
the per-chunk warmup, and the compiled-acceptor rebuild are all paid
per batch, which is why the ablation in ``benchmarks/bench_engine_batch``
showed the pool *losing* to serial.  This module keeps one process-wide
:class:`~repro.shard.router.ShardRouter` (decide-only: no muxes) alive
across calls, so repeat batches hit workers whose language artifacts
are already compiled and warm.

The hand-off differs from the fork pool's token registry: a persistent
worker is forked *before* the batch exists, so nothing can be inherited
— the acceptor and the words must actually cross the pipe.  That is a
real restriction: machine-protocol acceptors close over generator
programs and do not pickle.  :func:`language_spec` preflights this and
raises :class:`LanguageUnshippable` so the engine backends can fall
back (and count why) instead of dying mid-batch.  TBAs, timed words,
strategies, and :class:`~repro.engine.verdict.DecisionReport` lists are
all plain data and travel fine.

:func:`run_chunks` is the scheduling loop shared by
``decide_many(backend="shards")`` and
``decide_many_resilient(backend="shards")``: one outstanding chunk per
shard, worker death detected as pipe EOF and healed by respawn (the
router keeps the pool at strength), deadlines enforced with a kill —
failures come back as explicit ``(lo, hi, reason, detail)`` records for
the caller's own recovery ladder, and every reply carries the worker's
metric delta so child-side counts land in the parent registry.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..automata.timed import TimedBuchiAutomaton
from ..obs import hooks as _obs
from .router import ShardError, ShardRouter
from .wire import OP_DECIDE, OP_ERR, OP_REPLY, recv_frame, send_frame

__all__ = [
    "LanguageUnshippable",
    "language_spec",
    "strategy_spec",
    "shared_pool",
    "shutdown_pool",
    "run_chunks",
]


class LanguageUnshippable(RuntimeError):
    """The acceptor/strategy cannot cross a pipe to a persistent worker.

    ``reason`` is the short token the engine records in
    ``engine.backend_fallbacks{reason=...}``.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason


_POOL: Optional[ShardRouter] = None
_POOL_LOCK = threading.Lock()
#: Keeps every shipped acceptor alive so its ``id``-derived language key
#: can never be recycled for a different object (same discipline as the
#: engine's AcceptorCache anchors).
_ANCHORS: Dict[int, Any] = {}


def default_pool_size() -> int:
    return max(2, min(4, os.cpu_count() or 2))


def pool_is_warm() -> bool:
    """True when a shared pool is already running (auto-backend signal)."""
    return _POOL is not None and not _POOL._closed


def shared_pool(n_shards: Optional[int] = None) -> ShardRouter:
    """The process-wide decide pool, grown (never shrunk) on demand."""
    global _POOL
    want = max(1, n_shards if n_shards is not None else default_pool_size())
    want = min(want, max(2, os.cpu_count() or 2))
    with _POOL_LOCK:
        if _POOL is None or _POOL._closed:
            _POOL = ShardRouter(n_shards=want)
        elif _POOL.n_shards < want:
            _POOL.rebalance(want)
        return _POOL


def shutdown_pool() -> None:
    """Stop the shared pool (tests, or an explicit service drain)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None
        _ANCHORS.clear()


def language_spec(acceptor: Any) -> Tuple[int, str, Any]:
    """``(key, kind, payload)`` for shipping ``acceptor`` to workers.

    TBAs ship as themselves and are compiled *in the worker* (into its
    warm cache); any other picklable acceptor ships directly.  Raises
    :class:`LanguageUnshippable` for closure-laden acceptors.
    """
    kind = "tba" if isinstance(acceptor, TimedBuchiAutomaton) else "obj"
    try:
        pickle.dumps(acceptor, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise LanguageUnshippable("unshippable-acceptor", repr(exc)) from exc
    key = id(acceptor)
    _ANCHORS[key] = acceptor
    return key, kind, acceptor


def strategy_spec(strategy: Union[str, Any]) -> Any:
    """A pipe-safe strategy spec.

    Name strings pass through; a registry instance collapses back to
    its name (the worker resolves the same object); anything customized
    must pickle or the call falls back.
    """
    if isinstance(strategy, str):
        return strategy
    from ..engine.strategies import STRATEGIES

    name = getattr(strategy, "name", None)
    if name is not None and STRATEGIES.get(name) is strategy:
        return name
    try:
        pickle.dumps(strategy, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise LanguageUnshippable("unshippable-strategy", repr(exc)) from exc
    return strategy


def run_chunks(
    router: ShardRouter,
    spec: Tuple[int, str, Any],
    strat_spec: Any,
    words: Sequence[Any],
    chunks: List[Tuple[int, int]],
    *,
    horizon: int,
    seed: int,
    workers: int,
    deadline_at: Optional[float] = None,
    max_retries: int = 1,
) -> Tuple[Dict[int, Any], List[Tuple[int, int, str, Optional[str]]]]:
    """Schedule decide chunks over shard workers.

    Returns ``(slots, failures)``: ``slots`` maps word index to its
    report for every chunk that completed; ``failures`` lists
    ``(lo, hi, reason, detail)`` for chunks that did not (reasons:
    ``worker-death``, ``exception``, ``deadline``, ``unshippable``,
    ``no-workers``).  A dead worker is respawned and its chunk retried
    up to ``max_retries`` times before failing; no index appears in
    both returns.
    """
    key, kind, payload = spec
    use = router.shard_ids[: max(1, min(workers, router.n_shards))]
    idle = [router._shards[sid] for sid in use]
    busy: Dict[Any, Tuple[Any, Tuple[int, int]]] = {}
    queue = deque(chunks)
    attempts: Dict[Tuple[int, int], int] = {}
    slots: Dict[int, Any] = {}
    failures: List[Tuple[int, int, str, Optional[str]]] = []

    def give_up(chunk: Tuple[int, int], reason: str, detail: Optional[str]) -> None:
        failures.append((chunk[0], chunk[1], reason, detail))

    def revive(shard: Any, chunk: Tuple[int, int], detail: str) -> None:
        attempts[chunk] = attempt = attempts.get(chunk, 0) + 1
        try:
            fresh = router.respawn(shard.id)
        except Exception as exc:
            give_up(chunk, "worker-death", f"{detail}; respawn failed: {exc!r}")
            return
        idle.append(fresh)
        if attempt > max_retries:
            give_up(chunk, "worker-death", detail)
        else:
            queue.append(chunk)

    def submit(shard: Any, chunk: Tuple[int, int]) -> None:
        lo, hi = chunk
        try:
            router.install_language(shard, key, kind, payload)
            shard.seq += 1
            send_frame(
                shard.conn,
                OP_DECIDE,
                shard.seq,
                (key, lo, list(words[lo:hi]), horizon, strat_spec, seed),
            )
        except (ShardError, BrokenPipeError, OSError) as exc:
            shard.alive = False
            revive(shard, chunk, repr(exc))
            return
        except Exception as exc:  # e.g. an unpicklable word mid-batch
            idle.append(shard)
            give_up(chunk, "unshippable", repr(exc))
            return
        busy[shard.conn] = (shard, chunk)

    while queue or busy:
        while queue and idle:
            submit(idle.pop(), queue.popleft())
        if not busy:
            while queue:  # every worker gone and none revivable
                give_up(queue.popleft(), "no-workers", None)
            break
        timeout = None
        if deadline_at is not None:
            timeout = max(0.0, deadline_at - time.perf_counter())
        ready = mp_connection.wait(list(busy), timeout=timeout)
        if not ready:
            # Deadline: kill the stragglers (respawn keeps the pool at
            # strength for the next batch) and fail everything left.
            for conn, (shard, chunk) in list(busy.items()):
                try:
                    router.respawn(shard.id)
                except Exception:  # pragma: no cover
                    pass
                give_up(chunk, "deadline", None)
            busy.clear()
            while queue:
                give_up(queue.popleft(), "deadline", None)
            break
        for conn in ready:
            shard, chunk = busy.pop(conn)
            try:
                frame = recv_frame(conn)
            except (EOFError, OSError) as exc:
                shard.alive = False
                revive(shard, chunk, repr(exc))
                continue
            if frame.op == OP_REPLY:
                reports, delta = frame.payload
                h = _obs.HOOKS
                if h is not None and delta:
                    h.registry.merge(delta)
                for i, report in enumerate(reports):
                    slots[chunk[0] + i] = report
                idle.append(shard)
            elif frame.op == OP_ERR:
                idle.append(shard)
                give_up(chunk, "exception", frame.payload)
            else:
                idle.append(shard)
                give_up(chunk, "protocol", f"opcode {frame.op}")
    return slots, failures
