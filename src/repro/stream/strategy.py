"""The ``"online-incremental"`` decision strategy.

Routes :func:`repro.engine.decide` through a fresh
:class:`~repro.stream.monitor.Monitor`: the word is replayed into the
monitor one event at a time (exactly the events the batch tape would
deliver — timestamps ≤ horizon, at most the tape's feeder cap) and the
final report comes from :meth:`Monitor.finish`.  Because the monitor
pumps the same simulator loop the batch judge runs, this strategy is
*verdict-identical* to ``"lasso-exact"`` on every machine acceptor —
the stream-vs-batch agreement invariant the property tests enforce.

Registered lazily: :func:`repro.engine.get_strategy` imports
:mod:`repro.stream` on first request for the name, avoiding a static
engine → stream import cycle.
"""

from __future__ import annotations

from typing import Any

from ..automata.timed import TimedBuchiAutomaton
from ..engine.batch import compiled_tba
from ..engine.strategies import STRATEGIES, DecisionStrategy, resolve_zeno
from ..engine.verdict import DecisionReport
from ..machine.tape import zeno_event_cap
from .monitor import Monitor

__all__ = ["OnlineIncremental", "MAX_EVENTS"]

#: Event cap per judgement, matching the batch input tape's feeder
#: horizon.  Frozen-time lassos are cut off much earlier — at the same
#: :func:`~repro.machine.tape.zeno_event_cap` the batch tape uses — and
#: resolved exactly by :func:`~repro.engine.strategies.resolve_zeno`.
MAX_EVENTS = 1_000_000


class OnlineIncremental(DecisionStrategy):
    """Judge by streaming the word through an online monitor."""

    name = "online-incremental"

    def run(self, acceptor: Any, word: Any, horizon: int) -> DecisionReport:
        if isinstance(acceptor, TimedBuchiAutomaton):
            # Raw TBAs go through the cached §3.1.1 machine compilation
            # so the stream and batch engines judge one shared program.
            acceptor = compiled_tba(acceptor, allow_nondeterministic=True)
        monitor = Monitor(acceptor)
        cap = zeno_event_cap(word)
        limit = MAX_EVENTS if cap is None else min(cap, MAX_EVENTS)
        i = 0
        while i < limit:
            try:
                symbol, t = word[i]
            except IndexError:
                break
            if t > horizon:
                break
            monitor.ingest(symbol, t)
            if monitor.absorbed:
                break
            i += 1
        report = monitor.finish(horizon)
        if cap is not None:
            report = resolve_zeno(report, acceptor, word)
        report.strategy = self.name
        report.evidence.setdefault("discipline", "online-incremental")
        report.evidence["events_ingested"] = monitor.events_ingested
        return report


STRATEGIES.setdefault(OnlineIncremental.name, OnlineIncremental())
