"""repro.stream — the online monitoring runtime.

Every other decision path in the repo is *offline*: hand
:func:`repro.engine.decide` a complete timed word, get one verdict.
The paper's acceptor is an *online* device, though — it reads the
input tape as events arrive and emits f as it goes — and a service
shape needs verdicts over live traffic.  This package is that runtime:

``stream.monitor``
    Incremental monitors with a three-valued verdict-so-far
    (ACCEPTING / REJECTED / INCONCLUSIVE), watermark-based
    out-of-order tolerance, and O(state) work per event:
    :class:`Monitor` hosts any machine-protocol acceptor on a
    push-driven tape (batch-agreement by construction), and
    :class:`TBAMonitor` steps a timed Büchi automaton's configuration
    set against a precomputed liveness analysis.
``stream.compiled``
    :class:`CompiledTBA` — the analysis lowered to dense integer
    transition tables and bitset masks, so TBA stepping and lasso
    acceptance are array lookups instead of dict interpretation
    (automatic fallback when numpy is absent or the automaton exceeds
    the table bounds; see ``docs/performance.md``).
``stream.session``
    :class:`SessionMux` — many named streams over shared compiled
    acceptors, with bounded per-session buffers, explicit
    backpressure/drop policies, close/evict lifecycle, and
    cross-session vectorized batch stepping (``ingest_batch``).
``stream.sources``
    Adapters from the existing domains: replay any
    :class:`~repro.words.timedword.TimedWord`, serve the §5.1 periodic
    recognition language L_pq live, stream §5.2 ad hoc receive events,
    and merge many words into a mux.
``stream.checkpoint``
    Serialize/restore monitor and mux state so sessions survive a
    process restart.
``stream.supervisor``
    :class:`MuxSupervisor` — periodic checkpoints plus an event
    journal in front of a live mux, with crash injection and timed
    failover that loses zero verdicts for accepted events.

Importing this package also registers the ``"online-incremental"``
strategy with :mod:`repro.engine` (``engine.decide(...,
strategy="online-incremental")`` resolves it lazily), which is what
makes stream-vs-batch agreement a directly testable invariant.
"""

from .checkpoint import (
    checkpoint,
    checkpoint_mux,
    load_json,
    restore,
    restore_mux,
    save_json,
)
from .compiled import CompiledTBA, compiled_for, compilation_enabled
from .monitor import (
    LateEventError,
    Monitor,
    StreamVerdict,
    TBAAnalysis,
    TBAMonitor,
    analysis_for,
)
from .session import BackpressureError, SessionMux, SessionReport
from .sources import (
    events_of,
    receive_stream,
    replay,
    replay_into_mux,
    rtdb_periodic_monitor,
    rtdb_periodic_stream,
)
from .strategy import OnlineIncremental
from .supervisor import CrashedError, MuxSupervisor

__all__ = [
    "MuxSupervisor",
    "CrashedError",
    "StreamVerdict",
    "LateEventError",
    "Monitor",
    "TBAMonitor",
    "TBAAnalysis",
    "analysis_for",
    "CompiledTBA",
    "compiled_for",
    "compilation_enabled",
    "BackpressureError",
    "SessionMux",
    "SessionReport",
    "OnlineIncremental",
    "events_of",
    "replay",
    "replay_into_mux",
    "rtdb_periodic_monitor",
    "rtdb_periodic_stream",
    "receive_stream",
    "checkpoint",
    "restore",
    "checkpoint_mux",
    "restore_mux",
    "save_json",
    "load_json",
]
