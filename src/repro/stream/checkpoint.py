"""Checkpoint/restore: sessions that survive a process restart.

A long-lived monitoring service must be able to drain, snapshot, and
resume without re-reading its streams from the beginning.  Monitor
state is tiny by construction, and this module turns it into plain
JSON-able dictionaries:

* :class:`~repro.stream.monitor.TBAMonitor` — a *direct* snapshot: the
  capped configuration set, previous timestamp, reorder buffer, and
  counters.  O(state), independent of how many events were ingested.
* :class:`~repro.stream.monitor.Monitor` — generator state is not
  serializable, so machine-backed monitors checkpoint by *replay*: the
  monitor must be built with ``keep_history=True``, the snapshot
  carries the released-event log, and restore re-applies it to a fresh
  machine.  O(events) but exact (the machine re-dispatches the same
  event sequence).
* :class:`~repro.stream.session.SessionMux` — per-session snapshots
  plus the mux counters.

Symbols, TBA states, and clock values cross the serialization boundary
as ``repr`` strings inverted by :func:`ast.literal_eval`, so streams
must use literal-evaluable symbols (strings, numbers, tuples — every
encoding in this repo qualifies).

Observability: ``stream.checkpoints`` counted with ``op=save|restore``.
"""

from __future__ import annotations

import ast
import json
from typing import Any, Callable, Dict, List, Optional

from ..automata.timed import TimedBuchiAutomaton
from ..obs import hooks as _obs
from .monitor import Monitor, StreamVerdict, TBAAnalysis, TBAMonitor, analysis_for
from .session import SessionMux, _Session

__all__ = [
    "checkpoint",
    "restore",
    "checkpoint_mux",
    "restore_mux",
    "extract_sessions",
    "restore_sessions",
    "save_json",
    "load_json",
]

FORMAT_VERSION = 1


def _enc(value: Any) -> str:
    text = repr(value)
    try:
        roundtrip = ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise ValueError(
            f"symbol {value!r} is not literal-evaluable; checkpointing "
            "requires plain-data stream symbols"
        ) from None
    if roundtrip != value:
        raise ValueError(f"symbol {value!r} does not survive repr round-trip")
    return text


def _dec(text: str) -> Any:
    return ast.literal_eval(text)


def _base_state(monitor: Any) -> Dict[str, Any]:
    return {
        "verdict": monitor.verdict.value,
        "max_seen": monitor.max_seen,
        "lateness": monitor.lateness,
        "late_policy": monitor.late_policy,
        "events_ingested": monitor.events_ingested,
        "events_released": monitor.events_released,
        "late_events": monitor.late_events,
        "verdict_flips": monitor.verdict_flips,
        "seq": monitor._seq,
        "buffer": [[t, seq, _enc(sym)] for t, seq, sym in sorted(monitor._heap)],
    }


def _restore_base(monitor: Any, state: Dict[str, Any]) -> None:
    monitor.verdict = StreamVerdict(state["verdict"])
    monitor.max_seen = state["max_seen"]
    monitor.events_ingested = state["events_ingested"]
    monitor.events_released = state["events_released"]
    monitor.late_events = state["late_events"]
    monitor.verdict_flips = state["verdict_flips"]
    monitor._seq = state["seq"]
    monitor._heap = [(t, seq, _dec(sym)) for t, seq, sym in state["buffer"]]


def checkpoint(monitor: Any) -> Dict[str, Any]:
    """Snapshot one monitor into a JSON-able dictionary."""
    h = _obs.HOOKS
    if h is not None:
        h.count("stream.checkpoints", op="save")
    if getattr(monitor, "_wave_custom", False):
        # PlanMonitors carry per-channel occupancy books the TBA
        # snapshot format cannot express; snapshotting them as plain
        # TBAMonitors would silently lose the per-query verdicts.
        raise NotImplementedError(
            "checkpointing fused plan monitors is not supported; "
            "checkpoint the individual query monitors instead"
        )
    if isinstance(monitor, TBAMonitor):
        return {
            "version": FORMAT_VERSION,
            "kind": "tba",
            "state": dict(
                _base_state(monitor),
                configs=[
                    [_enc(state), list(vals)]
                    for state, vals in sorted(monitor.configs, key=repr)
                ],
                prev_t=monitor.prev_t,
                f_window=monitor.f_window,
                accept_visits=monitor.accept_visits,
                last_accept_time=monitor._last_accept_time,
                green_locked=monitor._green_locked,
            ),
        }
    if isinstance(monitor, Monitor):
        if not monitor.keep_history:
            raise ValueError(
                "machine-backed monitors checkpoint by replay; build the "
                "Monitor with keep_history=True"
            )
        return {
            "version": FORMAT_VERSION,
            "kind": "machine",
            "state": dict(
                _base_state(monitor),
                history=[[_enc(sym), t] for sym, t in monitor.history],
                f_window=monitor.f_window,
            ),
        }
    raise TypeError(f"cannot checkpoint {type(monitor).__name__}")


def restore(
    snapshot: Dict[str, Any],
    *,
    tba: Optional[TimedBuchiAutomaton] = None,
    acceptor: Any = None,
    analysis: Optional[TBAAnalysis] = None,
    compiled: Optional[bool] = None,
) -> Any:
    """Rebuild a monitor from a :func:`checkpoint` snapshot.

    The language artifact is *not* serialized (it is code): pass the
    same ``tba`` for a ``"tba"`` snapshot or the same ``acceptor`` for a
    ``"machine"`` one.  ``compiled`` picks the stepping path of the
    rebuilt :class:`TBAMonitor` exactly like the constructor argument —
    snapshots are path-neutral, so a monitor checkpointed on the
    interpreted path may be restored onto the compiled one and vice
    versa (the spec conformance harness cross-checks this).
    """
    if snapshot.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {snapshot.get('version')!r}")
    h = _obs.HOOKS
    if h is not None:
        h.count("stream.checkpoints", op="restore")
    state = snapshot["state"]
    kind = snapshot["kind"]
    if kind == "tba":
        if tba is None:
            raise ValueError("restoring a 'tba' snapshot needs tba=...")
        monitor = TBAMonitor(
            tba,
            analysis=analysis,
            lateness=state["lateness"],
            late_policy=state["late_policy"],
            f_window=state["f_window"],
            compiled=compiled,
        )
        monitor.configs = frozenset(
            (_dec(s), tuple(vals)) for s, vals in state["configs"]
        )
        monitor.prev_t = state["prev_t"]
        monitor.accept_visits = state["accept_visits"]
        monitor._last_accept_time = state["last_accept_time"]
        monitor._green_locked = state["green_locked"]
        _restore_base(monitor, state)
        return monitor
    if kind == "machine":
        if acceptor is None:
            raise ValueError("restoring a 'machine' snapshot needs acceptor=...")
        monitor = Monitor(
            acceptor,
            lateness=state["lateness"],
            late_policy=state["late_policy"],
            f_window=state["f_window"],
            keep_history=True,
        )
        # Replay the released-event log through the machine, then pin
        # the ingestion counters back to the snapshot's values (replay
        # re-counts releases and flips).
        for sym, t in state["history"]:
            monitor._advance(_dec(sym), t)
        _restore_base(monitor, state)
        return monitor
    raise ValueError(f"unknown checkpoint kind {kind!r}")


def checkpoint_mux(mux: SessionMux) -> Dict[str, Any]:
    """Snapshot a whole mux (every session plus the mux counters)."""
    return {
        "version": FORMAT_VERSION,
        "kind": "mux",
        "counters": {
            "drops": mux.drops,
            "sessions_opened": mux.sessions_opened,
            "sessions_closed": mux.sessions_closed,
            "sessions_evicted": mux.sessions_evicted,
        },
        "sessions": {
            name: {
                "snapshot": checkpoint(s.monitor),
                "last_event_time": s.last_event_time,
                "drops": s.drops,
            }
            for name, s in mux._sessions.items()
        },
    }


def restore_mux(
    snapshot: Dict[str, Any],
    mux: SessionMux,
    *,
    tba: Optional[TimedBuchiAutomaton] = None,
    acceptor: Any = None,
    compiled: Optional[bool] = None,
) -> SessionMux:
    """Repopulate a freshly-constructed mux from :func:`checkpoint_mux`.

    ``mux`` must be empty and configured like the one snapshotted (the
    configuration, like the acceptor, is code and is not serialized).
    """
    if len(mux):
        raise ValueError("restore_mux needs an empty mux")
    if snapshot.get("kind") != "mux":
        raise ValueError(f"not a mux snapshot: kind={snapshot.get('kind')!r}")
    counters = snapshot["counters"]
    mux.drops = counters["drops"]
    mux.sessions_opened = counters["sessions_opened"]
    mux.sessions_closed = counters["sessions_closed"]
    mux.sessions_evicted = counters["sessions_evicted"]
    # One analysis per language, shared by every restored session —
    # without this, each restore() re-derives it from scratch (the
    # one-build-per-language invariant is pinned by
    # tests/test_stream_compiled.py).
    analysis = analysis_for(tba) if tba is not None else None
    for name, entry in snapshot["sessions"].items():
        monitor = restore(
            entry["snapshot"],
            tba=tba,
            acceptor=acceptor,
            analysis=analysis,
            compiled=compiled,
        )
        session = _Session(name, monitor)
        session.last_event_time = entry["last_event_time"]
        session.drops = entry["drops"]
        mux._sessions[name] = session
    h = _obs.HOOKS
    if h is not None:
        h.gauge("stream.sessions_active", len(mux._sessions))
    return mux


def extract_sessions(mux: SessionMux, names) -> Dict[str, Dict[str, Any]]:
    """Snapshot-and-remove named sessions from a live mux (migration).

    Returns per-session entries shaped exactly like the values of
    ``checkpoint_mux(mux)["sessions"]``, so they can be re-homed into
    another mux with :func:`restore_sessions`.  Unknown names are
    skipped (a stale placement map must not wedge a rebalance).  The
    mux's lifetime counters are untouched: migration is *placement*
    churn, not session churn — the shard runtime counts it separately
    (``shard.placement_moves``).
    """
    entries: Dict[str, Dict[str, Any]] = {}
    for name in names:
        session = mux._sessions.pop(name, None)
        if session is None:
            continue
        entries[name] = {
            "snapshot": checkpoint(session.monitor),
            "last_event_time": session.last_event_time,
            "drops": session.drops,
        }
    h = _obs.HOOKS
    if entries and h is not None:
        h.gauge("stream.sessions_active", len(mux._sessions))
    return entries


def restore_sessions(
    mux: SessionMux,
    entries: Dict[str, Dict[str, Any]],
    *,
    tba: Optional[TimedBuchiAutomaton] = None,
    acceptor: Any = None,
    compiled: Optional[bool] = None,
) -> List[str]:
    """Re-home :func:`extract_sessions` entries into a live mux.

    The receiving mux may already hold sessions (unlike
    :func:`restore_mux`); a name collision raises rather than silently
    clobbering a live monitor.  Returns the restored names.
    """
    analysis = analysis_for(tba) if tba is not None else None
    restored: List[str] = []
    for name, entry in entries.items():
        if name in mux._sessions:
            raise ValueError(f"session {name!r} already live on this mux")
        monitor = restore(
            entry["snapshot"],
            tba=tba,
            acceptor=acceptor,
            analysis=analysis,
            compiled=compiled,
        )
        session = _Session(name, monitor)
        session.last_event_time = entry["last_event_time"]
        session.drops = entry["drops"]
        mux._sessions[name] = session
        restored.append(name)
    h = _obs.HOOKS
    if restored and h is not None:
        h.gauge("stream.sessions_active", len(mux._sessions))
    return restored


def save_json(path: str, snapshot: Dict[str, Any]) -> None:
    """Write a snapshot to disk as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)


def load_json(path: str) -> Dict[str, Any]:
    """Read a snapshot back from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
