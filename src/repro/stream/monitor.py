"""Incremental online monitors over Definition 3.4 acceptors.

The engine judges words *offline*: :func:`repro.engine.decide` takes a
complete (lasso or long-prefix) timed word and renders one verdict.
The paper's acceptor, however, is an *online* device — it reads the
input tape as events arrive and emits f symbols as it goes.  This
module is the online side of that coin: a monitor ingests one
``(symbol, timestamp)`` event at a time and maintains a three-valued
verdict-so-far in the LTL₃ tradition (Bauer–Leucker–Schallhart):

* :data:`StreamVerdict.REJECTED` — no accepting continuation exists
  (safety violated / every run died).  Absorbing.
* :data:`StreamVerdict.ACCEPTING` — an accepting lasso is still
  reachable and the f-obligations are currently being met (an f /
  accepting configuration was seen within the monitor's ``f_window``),
  or — for deterministic TBAs — *every* continuation is accepting.
* :data:`StreamVerdict.INCONCLUSIVE` — neither of the above.

Two monitors share the ingestion machinery:

:class:`Monitor`
    Wraps any machine-protocol acceptor (a
    :class:`~repro.machine.rtalgorithm.RealTimeAlgorithm`, including
    the Section 4/5 worker/monitor harnesses and compiled TBAs).  It
    hosts the acceptor's program on a private push-driven
    :class:`~repro.machine.tape.InputTape` and pumps the simulator up
    to each event's timestamp, so the online run dispatches the *exact*
    event sequence the batch judge would — :meth:`Monitor.finish`
    replicates ``RealTimeAlgorithm._decide``'s tail and therefore
    agrees with ``engine.decide(strategy="lasso-exact")`` verbatim (the
    stream-vs-batch invariant of ``tests/test_stream_monitor.py``).

:class:`TBAMonitor`
    Steps a :class:`~repro.automata.timed.TimedBuchiAutomaton`'s capped
    configuration set directly, in O(state) per event, against a
    precomputed :class:`TBAAnalysis` of the finite configuration graph:
    ``live`` (can still reach an accepting cycle — its complement makes
    REJECTED exact, for nondeterministic TBAs too) and ``green``
    (deterministic TBAs: every continuation stays alive and accepts, so
    ACCEPTING becomes a guarantee rather than an observation).

    The TBA monitor has **two verdict-identical stepping paths**.  The
    *interpreted* path calls ``TimedBuchiAutomaton._step_configs`` per
    event (dict-built valuations, guard ASTs re-evaluated).  The
    *compiled* path (:mod:`repro.stream.compiled`, the default when
    numpy is available) steps a dense transition table / successor
    bitset compiled once per analysis, so an event costs a couple of
    array lookups; ``ingest_many`` additionally batches whole event
    slices through one tight scan when no reorder buffering is in
    play.  ``compiled=False`` (or ``REPRO_STREAM_COMPILED=0``, or a
    missing numpy, or an automaton past the table bounds) falls back
    to the interpreter; ``tests/test_stream_compiled.py`` pins the two
    paths verdict-stream-identical.  Cost model and measured speedups:
    ``docs/performance.md``.

Out-of-order tolerance: events are buffered in a small reorder heap
and applied only once the *watermark* (``max_seen − lateness``) passes
them, so events may arrive up to ``lateness`` chronons late.  An event
older than the watermark is *late*: policy ``"raise"`` (default)
raises :class:`LateEventError`, ``"drop"`` counts and discards it.

Observability (``docs/observability.md``): ``stream.events_ingested``
(``outcome=ok|late``), ``stream.events_released``,
``stream.watermark_lag``, and ``stream.verdict_flips`` (``to=…``).
"""

from __future__ import annotations

import heapq
from collections import deque
from enum import Enum
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..automata.timed import TimedBuchiAutomaton
from ..engine.batch import cached_acceptor
from ..engine.strategies import DEFAULT_HORIZON
from ..engine.verdict import DecisionReport, Verdict
from ..kernel.simulator import Simulator
from ..machine.rtalgorithm import ACCEPT_SYMBOL, Context, WorkingStorage
from ..machine.tape import InputTape, OutputTape
from ..obs import hooks as _obs
from .compiled import compiled_for

__all__ = [
    "StreamVerdict",
    "LateEventError",
    "Monitor",
    "TBAMonitor",
    "TBAAnalysis",
    "analysis_for",
]

Config = Tuple[Any, Tuple[int, ...]]


class StreamVerdict(Enum):
    """Three-valued verdict-so-far of an online monitor."""

    ACCEPTING = "accepting"
    REJECTED = "rejected"
    INCONCLUSIVE = "inconclusive"

    def as_verdict(self) -> Verdict:
        """Project onto the engine's batch vocabulary."""
        if self is StreamVerdict.ACCEPTING:
            return Verdict.ACCEPT
        if self is StreamVerdict.REJECTED:
            return Verdict.REJECT
        return Verdict.UNDECIDED


class LateEventError(ValueError):
    """An event arrived with a timestamp older than the watermark."""


class _BaseMonitor:
    """Watermark/reorder machinery shared by both monitor flavours.

    Subclasses implement :meth:`_advance` (apply one released event) and
    may override :attr:`absorbed` (the verdict can no longer change).
    """

    def __init__(self, *, lateness: int = 0, late_policy: str = "raise"):
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        if late_policy not in ("raise", "drop"):
            raise ValueError(f"late_policy must be 'raise' or 'drop', got {late_policy!r}")
        self.lateness = lateness
        self.late_policy = late_policy
        self.verdict = StreamVerdict.INCONCLUSIVE
        self.max_seen: Optional[int] = None
        self.events_ingested = 0
        self.events_released = 0
        self.late_events = 0
        self.verdict_flips = 0
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0

    # -- watermark ---------------------------------------------------------
    @property
    def watermark(self) -> Optional[int]:
        """Events at or below this timestamp have been applied (None
        before the first event)."""
        return None if self.max_seen is None else self.max_seen - self.lateness

    @property
    def pending(self) -> int:
        """Buffered events awaiting the watermark (the reorder heap)."""
        return len(self._heap)

    @property
    def absorbed(self) -> bool:
        """The verdict can no longer change; further events are no-ops."""
        return self.verdict is StreamVerdict.REJECTED

    # -- ingestion ---------------------------------------------------------
    def ingest(self, symbol: Any, t: int) -> StreamVerdict:
        """Feed one event; returns the verdict-so-far.

        Events with ``t`` within ``lateness`` of the newest timestamp
        may arrive out of order; older ones are late (policy applies).
        """
        if t < 0:
            raise ValueError(f"negative timestamp {t}")
        h = _obs.HOOKS
        wm = self.watermark
        if wm is not None and t < wm:
            self.late_events += 1
            if h is not None:
                h.count("stream.events_ingested", outcome="late")
            if self.late_policy == "raise":
                raise LateEventError(
                    f"event at t={t} is older than the watermark {wm} "
                    f"(lateness={self.lateness})"
                )
            return self.verdict
        self.events_ingested += 1
        heapq.heappush(self._heap, (t, self._seq, symbol))
        self._seq += 1
        if self.max_seen is None or t > self.max_seen:
            self.max_seen = t
        if h is not None:
            h.count("stream.events_ingested", outcome="ok")
            h.observe("stream.watermark_lag", self.max_seen - t)
        self._release(self.watermark)
        return self.verdict

    def _release(self, up_to: Optional[int]) -> None:
        if up_to is None:
            return
        h = _obs.HOOKS
        while self._heap and self._heap[0][0] <= up_to:
            t, _seq, symbol = heapq.heappop(self._heap)
            self.events_released += 1
            if h is not None:
                h.count("stream.events_released")
            self._advance(symbol, t)

    def release_oldest(self) -> None:
        """Force-apply the earliest buffered event (backpressure relief).

        Order-safe: the heap minimum precedes everything still buffered,
        so releasing it early never reorders the applied sequence.
        """
        if not self._heap:
            return
        t, _seq, symbol = heapq.heappop(self._heap)
        self.events_released += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.events_released")
        self._advance(symbol, t)

    def ingest_many(self, events) -> StreamVerdict:
        """Feed a sequence of ``(symbol, t)`` events; returns the
        verdict-so-far.

        Semantically a loop of :meth:`ingest`; subclasses override it
        with batched fast paths (:class:`TBAMonitor` scans compiled
        transition tables without touching the reorder heap when no
        buffering is in play).
        """
        v = self.verdict
        for symbol, t in events:
            v = self.ingest(symbol, t)
        return v

    def flush(self) -> StreamVerdict:
        """Apply every buffered event regardless of the watermark."""
        while self._heap:
            self.release_oldest()
        return self.verdict

    # -- verdict bookkeeping ----------------------------------------------
    def _set_verdict(self, v: StreamVerdict) -> None:
        if v is self.verdict:
            return
        self.verdict = v
        self.verdict_flips += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.verdict_flips", to=v.value)

    def _advance(self, symbol: Any, t: int) -> None:
        raise NotImplementedError


class Monitor(_BaseMonitor):
    """Online driver of any machine-protocol acceptor.

    Builds a private :class:`~repro.kernel.simulator.Simulator` with a
    push-driven input tape, registers ``acceptor.program`` on it, and on
    each released event pushes the pair and pumps the simulator up to
    the event's timestamp — the batch judge's loop, sliced per event.
    Because the delivered event sequence is identical, the final
    verdict (after :meth:`finish`) matches
    ``engine.decide(acceptor, word, strategy="lasso-exact")`` exactly.

    Verdict-so-far between absorbing states: ACCEPTING while the
    acceptor's f-obligations are met — an f was written, within
    ``f_window`` chronons of the current event if a window is given —
    else INCONCLUSIVE.

    ``keep_history=True`` records released events so the monitor can be
    checkpointed by replay (:mod:`repro.stream.checkpoint`); generator
    state itself is not serializable.
    """

    def __init__(
        self,
        acceptor: Any,
        *,
        lateness: int = 0,
        late_policy: str = "raise",
        f_window: Optional[int] = None,
        keep_history: bool = False,
    ):
        super().__init__(lateness=lateness, late_policy=late_policy)
        self.acceptor = acceptor
        self.f_window = f_window
        self.keep_history = keep_history
        self.history: List[Tuple[Any, int]] = []
        self.f_count = 0
        self._f_cursor = 0
        self._last_f_time: Optional[int] = None
        self._decided_at: Optional[int] = None
        sim = Simulator()
        tape = InputTape(sim, None)
        out = OutputTape(sim)
        storage = WorkingStorage(limit=getattr(acceptor, "space_limit", None))
        self._ctx = Context(sim, tape, out, storage)
        sim.process(
            acceptor.program(self._ctx), name=getattr(acceptor, "name", "A")
        )

    @property
    def absorbed(self) -> bool:
        return self._ctx.verdict is not Verdict.UNDECIDED

    def _advance(self, symbol: Any, t: int) -> None:
        if self.keep_history:
            self.history.append((symbol, t))
        ctx = self._ctx
        if ctx.verdict is Verdict.UNDECIDED:
            ctx.input.push(symbol, t)
            # The batch judge's loop, bounded by this event's timestamp.
            while ctx.verdict is Verdict.UNDECIDED:
                nxt = ctx.sim.peek()
                if nxt is None or nxt > t:
                    break
                ctx.sim.step()
            if ctx.verdict is not Verdict.UNDECIDED and self._decided_at is None:
                self._decided_at = ctx.sim.now
        self._refresh(t)

    def _refresh(self, t: int) -> None:
        new = self._ctx.output.written_since(self._f_cursor)
        if new:
            self._f_cursor += len(new)
            for s, wt in new:
                if s == ACCEPT_SYMBOL:
                    self.f_count += 1
                    self._last_f_time = wt
        v = self._ctx.verdict
        if v is Verdict.ACCEPT:
            self._set_verdict(StreamVerdict.ACCEPTING)
        elif v is Verdict.REJECT:
            self._set_verdict(StreamVerdict.REJECTED)
        elif self._last_f_time is not None and (
            self.f_window is None or t - self._last_f_time <= self.f_window
        ):
            self._set_verdict(StreamVerdict.ACCEPTING)
        else:
            self._set_verdict(StreamVerdict.INCONCLUSIVE)

    def finish(self, horizon: int = DEFAULT_HORIZON) -> DecisionReport:
        """Close the stream and render the batch-equivalent report.

        Flushes the reorder buffer, runs any still-scheduled machine
        work up to ``horizon``, and — when an absorbing verdict was
        declared — lets it demonstrate itself for the same 16 chronons
        ``RealTimeAlgorithm._decide`` grants, so verdict, f-count and
        decision chronon all match the lasso-exact batch judgement.
        """
        self.flush()
        ctx = self._ctx
        while ctx.verdict is Verdict.UNDECIDED:
            nxt = ctx.sim.peek()
            if nxt is None or nxt > horizon:
                break
            ctx.sim.step()
        if ctx.verdict is not Verdict.UNDECIDED:
            if self._decided_at is None:
                self._decided_at = ctx.sim.now
            target = min(horizon, self._decided_at + 16)
            if target > ctx.sim.now:
                ctx.sim.run(until=target)
        self._refresh(self.max_seen if self.max_seen is not None else 0)
        return DecisionReport(
            verdict=ctx.verdict,
            f_count=ctx.output.count(ACCEPT_SYMBOL),
            horizon=horizon,
            space_peak=ctx.storage.peak,
            decided_at=self._decided_at,
            evidence={
                "events_released": self.events_released,
                "late_events": self.late_events,
                "verdict_flips": self.verdict_flips,
            },
        )


class TBAAnalysis:
    """Liveness/guarantee sets over a TBA's capped configuration graph.

    Discrete time caps clock values at cmax+1 (see
    :mod:`repro.automata.timed`), so gap classes ``0..cmax+1`` exhaust
    all inter-arrival behaviours and the graph of configurations under
    every (symbol, gap-class) edge is finite.  On it we precompute:

    * ``live`` — configurations from which an accepting cycle is
      reachable.  A configuration set disjoint from ``live`` has *no*
      accepting continuation (exact for nondeterministic TBAs too:
      liveness is closed under predecessors, so REJECTED is absorbing).
    * ``green`` (deterministic stepping only) — configurations from
      which *every* infinite continuation stays alive and visits an
      accepting state infinitely often: totality under every (symbol,
      gap-class) as a greatest fixpoint, minus everything that can
      reach a cycle avoiding F.  A green configuration makes ACCEPTING
      a guarantee, not just an observation; ``green`` is closed under
      successors.

    ``deterministic`` is *semantic*: at most one successor per
    (configuration, symbol, gap-class), measured on the reachable graph
    during the BFS — the same notion :class:`CompiledTBA` uses.
    Guard-disjoint multi-edges (the multi-query plan's completed
    product automata are full of them) therefore still qualify for
    dense-table stepping and green guarantees.

    Both liveness sets are *parameterized* over the accepting set:
    :meth:`live_for` / :meth:`green_for` recompute them for any
    alternative accepting projection over the same universe — how a
    :class:`~repro.query.plan.QueryPlan` derives per-channel verdict
    flags from one shared graph.
    """

    def __init__(self, tba: TimedBuchiAutomaton):
        h = _obs.HOOKS
        if h is not None:
            # One build per language is the invariant the mux relies on
            # (tests/test_stream_compiled.py asserts on this counter).
            h.count("stream.analysis_builds")
        self.tba = tba
        self._gap_classes = range(tba._cmax + 2)
        init = tba._initial_config()
        adjacency: Dict[Config, Set[Config]] = {}
        universe: Set[Config] = {init}
        frontier = deque([init])
        deterministic = True
        while frontier:
            c = frontier.popleft()
            succs: Set[Config] = set()
            for a in tba.alphabet:
                for g in self._gap_classes:
                    out = tba._step_configs({c}, a, g)
                    if len(out) > 1:
                        deterministic = False
                    succs |= out
            adjacency[c] = succs
            for s in succs:
                if s not in universe:
                    universe.add(s)
                    frontier.append(s)
        self.universe: FrozenSet[Config] = frozenset(universe)
        self.adjacency = adjacency
        reverse: Dict[Config, Set[Config]] = {c: set() for c in universe}
        for c, succs in adjacency.items():
            for s in succs:
                reverse[s].add(c)
        self._reverse = reverse
        self.deterministic = deterministic
        self.accepting: FrozenSet[Config] = frozenset(
            c for c in universe if c[0] in tba.accepting
        )
        self._cycle_cache: Dict[Config, bool] = {}
        self._total: Optional[
            Tuple[FrozenSet[Config], Dict[Config, Set[Config]], Dict[Config, Set[Config]]]
        ] = None
        self.live: FrozenSet[Config] = self.live_for(self.accepting)
        self.green: FrozenSet[Config] = self.green_for(self.accepting)

    def live_for(self, accepting: FrozenSet[Config]) -> FrozenSet[Config]:
        """Configurations with an accepting continuation w.r.t. an
        alternative accepting set over the same universe (backward
        closure of its recurrent members)."""
        recurrent = {c for c in accepting if self._on_cycle(c)}
        live: Set[Config] = set(recurrent)
        queue = deque(recurrent)
        while queue:
            c = queue.popleft()
            for p in self._reverse[c]:
                if p not in live:
                    live.add(p)
                    queue.append(p)
        return frozenset(live)

    def _on_cycle(self, c: Config) -> bool:
        hit = self._cycle_cache.get(c)
        if hit is not None:
            return hit
        seen: Set[Config] = set()
        queue = deque(self.adjacency[c])
        found = False
        while queue:
            d = queue.popleft()
            if d == c:
                found = True
                break
            if d in seen:
                continue
            seen.add(d)
            queue.extend(self.adjacency[d])
        self._cycle_cache[c] = found
        return found

    def _totality(self):
        """The accepting-independent half of the green computation:
        the greatest fixpoint of totality (every (symbol, gap-class)
        has a successor that itself stays total), its induced
        subgraph, and that subgraph's reverse — computed once and
        shared by every :meth:`green_for` projection."""
        if self._total is not None:
            return self._total
        tba = self.tba
        cells: Dict[Config, List[Set[Config]]] = {}
        for c in self.universe:
            cells[c] = [
                tba._step_configs({c}, a, g)
                for a in tba.alphabet
                for g in self._gap_classes
            ]
        total = set(self.universe)
        changed = True
        while changed:
            changed = False
            for c in list(total):
                ok = all(any(s in total for s in cell) for cell in cells[c])
                if not ok:
                    total.discard(c)
                    changed = True
        sub = {c: {s for s in self.adjacency[c] if s in total} for c in total}
        reverse_sub: Dict[Config, Set[Config]] = {c: set() for c in total}
        for c, succs in sub.items():
            for s in succs:
                reverse_sub[s].add(c)
        self._total = (frozenset(total), sub, reverse_sub)
        return self._total

    def green_for(self, accepting: FrozenSet[Config]) -> FrozenSet[Config]:
        """Configurations whose *every* continuation accepts w.r.t. an
        alternative accepting set (empty unless stepping is
        deterministic — the guarantee reading needs a unique run)."""
        if not self.deterministic:
            return frozenset()
        total, sub, reverse_sub = self._totality()
        if not total:
            return frozenset()
        # Configurations with an infinite F-avoiding path: trim the
        # non-accepting induced subgraph down to nodes that still have a
        # non-accepting successor (leaves only paths into cycles).
        bad = {c for c in total if c not in accepting}
        changed = True
        while changed:
            changed = False
            for c in list(bad):
                if not any(s in bad for s in sub[c]):
                    bad.discard(c)
                    changed = True
        # Anything that can reach such a path — through F or not — has a
        # rejecting continuation.
        unsafe = set(bad)
        queue = deque(bad)
        while queue:
            c = queue.popleft()
            for p in reverse_sub[c]:
                if p not in unsafe:
                    unsafe.add(p)
                    queue.append(p)
        return frozenset(total - unsafe)


def analysis_for(tba: TimedBuchiAutomaton) -> TBAAnalysis:
    """The cached :class:`TBAAnalysis` for one automaton (engine LRU)."""
    return cached_acceptor(
        ("stream-analysis", id(tba)), lambda: TBAAnalysis(tba), tba
    )


class TBAMonitor(_BaseMonitor):
    """Direct configuration-set monitor for a timed Büchi automaton.

    O(state) per event, on one of two verdict-identical paths chosen at
    construction:

    * **compiled** (default when available) — the
      :class:`~repro.stream.compiled.CompiledTBA` artifact shared
      through the analysis: an event is a dense-table lookup
      (deterministic stepping) or a bitset OR (nondeterministic), plus
      two flag reads for the judgement.  :meth:`ingest_many`
      additionally scans whole event slices in one tight loop when no
      reorder buffering is in play.
    * **interpreted** — ``_step_configs`` over the frozen configuration
      set, the fallback when numpy is absent, the automaton exceeds the
      table bounds, ``REPRO_STREAM_COMPILED=0``, or ``compiled=False``.

    Either way the whole mutable state is (configuration set, previous
    timestamp, reorder buffer, counters) — which is what makes
    :mod:`repro.stream.checkpoint` a constant-size snapshot;
    ``configs`` stays the canonical view (a property on the compiled
    path, decoded on demand).

    Verdict semantics: REJECTED exactly when no reachable configuration
    is ``live`` (no accepting continuation — exact even for
    nondeterministic TBAs); ACCEPTING when the configuration set is
    ``green`` (deterministic guarantee, absorbing) or an accepting
    configuration was visited within ``f_window`` of the current event
    (obligations met); INCONCLUSIVE otherwise.
    """

    #: Subclasses with extra per-step bookkeeping (the query plan's
    #: :class:`~repro.query.plan.PlanMonitor`) set this True so the
    #: mux's cross-session wave stepping routes each advanced index
    #: through :meth:`_apply_wave` instead of the inline fast path.
    _wave_custom = False

    def __init__(
        self,
        tba: TimedBuchiAutomaton,
        *,
        analysis: Optional[TBAAnalysis] = None,
        lateness: int = 0,
        late_policy: str = "raise",
        f_window: Optional[int] = None,
        compiled: Optional[bool] = None,
    ):
        super().__init__(lateness=lateness, late_policy=late_policy)
        self.tba = tba
        self.analysis = analysis if analysis is not None else analysis_for(tba)
        self.f_window = f_window
        if compiled is False:
            self._compiled = None
        else:
            self._compiled = compiled_for(self.analysis)
            if compiled is True and self._compiled is None:
                raise ValueError(
                    "compiled stepping unavailable (numpy absent, "
                    "REPRO_STREAM_COMPILED=0, or automaton exceeds the "
                    "table bounds)"
                )
        comp = self._compiled
        self._configs: Optional[FrozenSet[Config]] = None
        self._ci: Optional[int] = None  # compiled deterministic state index
        self._cmask: Optional[int] = None  # compiled nondeterministic bitset
        if comp is None:
            self._configs = frozenset({tba._initial_config()})
        elif comp.deterministic:
            self._ci = comp.initial_index
        else:
            self._cmask = 1 << comp.initial_index
        self.prev_t = 0
        self.accept_visits = 0
        self._last_accept_time: Optional[int] = None
        self._green_locked = False
        self._judge(0)

    @property
    def compiled(self) -> bool:
        """Whether this monitor steps the compiled artifact."""
        return self._compiled is not None

    @property
    def configs(self) -> FrozenSet[Config]:
        """The reachable configuration set (decoded from the compiled
        state representation when on the compiled path)."""
        comp = self._compiled
        if comp is None:
            return self._configs  # type: ignore[return-value]
        if comp.deterministic:
            if self._ci == comp.trap:
                return frozenset()
            return frozenset({comp.configs[self._ci]})
        return comp.decode_set(self._cmask)

    @configs.setter
    def configs(self, value) -> None:
        value = frozenset(value)
        comp = self._compiled
        if comp is not None:
            try:
                mask = comp.encode_set(value)
            except KeyError:
                # Configurations outside this automaton's reachable
                # universe (foreign snapshot): drop to the interpreter.
                comp = self._compiled = None
            else:
                if not comp.deterministic:
                    self._cmask = mask
                    return
                if mask == 0:
                    self._ci = comp.trap
                    return
                if mask & (mask - 1) == 0:
                    self._ci = mask.bit_length() - 1
                    return
                # >1 configurations under deterministic stepping can
                # only come from a foreign snapshot; fall back too.
                comp = self._compiled = None
        self._configs = value

    @property
    def absorbed(self) -> bool:
        return self.verdict is StreamVerdict.REJECTED or self._green_locked

    def _advance(self, symbol: Any, t: int) -> None:
        if self.verdict is StreamVerdict.REJECTED:
            return
        gap = t - self.prev_t
        self.prev_t = t
        comp = self._compiled
        if comp is None:
            self._configs = frozenset(
                self.tba._step_configs(set(self._configs), symbol, gap)
            )
            accepting = any(c[0] in self.tba.accepting for c in self._configs)
        elif comp.deterministic:
            ci = comp.step_index(self._ci, symbol, gap)
            self._ci = ci
            accepting = comp.accepting_list[ci]
        else:
            mask = comp.step_mask(self._cmask, symbol, gap)
            self._cmask = mask
            accepting = bool(mask & comp.accepting_mask)
        if accepting:
            self.accept_visits += 1
            self._last_accept_time = t
        self._judge(t)

    def ingest_many(self, events) -> StreamVerdict:
        """Batched ingest: one tight scan over the compiled table.

        Verdict- and counter-identical to looping :meth:`ingest` (the
        differential suite pins it), with two scope limits — the fast
        scan only engages on the compiled deterministic path with
        ``lateness == 0`` and an empty reorder buffer (otherwise it
        delegates to the generic loop), and per-event
        ``stream.watermark_lag`` observations are skipped (the lag is
        identically zero here); ingested/released counts are recorded
        in bulk.  Late or negative-timestamp events hand the remainder
        of the slice back to :meth:`ingest` for identical policy
        handling.
        """
        comp = self._compiled
        if (
            comp is None
            or not comp.deterministic
            or self.lateness != 0
            or self._heap
        ):
            return super().ingest_many(events)
        if not isinstance(events, (list, tuple)):
            events = list(events)
        table = comp.table_list
        sym_index = comp.sym_index
        unknown = comp.n_symbols
        cap = comp.gap_cap
        acc = comp.accepting_list
        live = comp.live_list
        green = comp.green_list
        get = sym_index.get
        ci = self._ci
        pt = self.prev_t
        ms = self.max_seen
        visits = self.accept_visits
        lat = self._last_accept_time
        glock = self._green_locked
        fw = self.f_window
        verdict = self.verdict
        REJ = StreamVerdict.REJECTED
        ACC = StreamVerdict.ACCEPTING
        INC = StreamVerdict.INCONCLUSIVE
        rejected = verdict is REJ
        applied = 0
        resume = False
        wm = -1 if ms is None else ms  # sentinel: every t >= 0 passes
        for symbol, t in events:
            if t < wm or t < 0:
                resume = True  # late/invalid: scalar path owns policy
                break
            applied += 1
            wm = t
            if rejected:
                continue
            gap = t - pt
            pt = t
            row = table[ci][get(symbol, unknown)]
            ci = row[gap] if gap <= cap else row[cap]
            if acc[ci]:
                visits += 1
                lat = t
            if not live[ci]:
                rejected = True
                self._set_verdict(REJ)
                verdict = REJ
                continue
            if glock or green[ci]:
                glock = True
                if verdict is not ACC:
                    self._set_verdict(ACC)
                    verdict = ACC
            elif lat is not None and (fw is None or t - lat <= fw):
                if verdict is not ACC:
                    self._set_verdict(ACC)
                    verdict = ACC
            elif verdict is not INC:
                self._set_verdict(INC)
                verdict = INC
        self._ci = ci
        self.prev_t = pt
        if wm >= 0:
            self.max_seen = wm
        self.accept_visits = visits
        self._last_accept_time = lat
        self._green_locked = glock
        self.events_ingested += applied
        self.events_released += applied
        self._seq += applied
        h = _obs.HOOKS
        if h is not None and applied:
            h.count("stream.events_ingested", applied, outcome="ok")
            h.count("stream.events_released", applied)
            h.count("stream.compiled_steps", applied, path="bulk")
        if resume:
            # `applied` events were consumed before the break, so the
            # offending event and everything after it re-enter scalar.
            for symbol, t in events[applied:]:
                self.ingest(symbol, t)
        return self.verdict

    def _judge(self, t: int) -> None:
        comp = self._compiled
        if comp is None:
            an = self.analysis
            alive = bool(self._configs & an.live)
            green = bool(an.green) and self._configs <= an.green
        elif comp.deterministic:
            ci = self._ci
            alive = comp.live_list[ci]
            green = comp.green_list[ci]
        else:
            mask = self._cmask
            alive = bool(mask & comp.live_mask)
            green = (
                bool(comp.green_mask)
                and mask != 0
                and mask & ~comp.green_mask == 0
            )
        if not alive:
            self._set_verdict(StreamVerdict.REJECTED)
            return
        if green:
            self._green_locked = True
        if self._green_locked or (
            self._last_accept_time is not None
            and (self.f_window is None or t - self._last_accept_time <= self.f_window)
        ):
            self._set_verdict(StreamVerdict.ACCEPTING)
        else:
            self._set_verdict(StreamVerdict.INCONCLUSIVE)
