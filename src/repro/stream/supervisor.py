"""Crash-recovering supervision of a :class:`~repro.stream.session.SessionMux`.

PR 3's checkpoints made mux state *serializable*; this module makes it
*survivable*.  A :class:`MuxSupervisor` stands in front of a live mux
and maintains, at all times, enough durable state to rebuild it:

* a **checkpoint** — :func:`~repro.stream.checkpoint.checkpoint_mux`
  taken every ``checkpoint_every`` ingested events (and on demand).
  The snapshot carries each session's reorder buffer, so every event
  the mux has *accepted* — watermarked-and-applied or still buffered —
  is inside it;
* a **journal** — the ordered tail of events ingested since the last
  checkpoint.  Replaying it through a restored mux is deterministic
  (same order ⇒ same drops, same late-event outcomes, same verdicts),
  which closes the gap between the checkpoint and the crash.

``crash()`` injects the failure (the live mux is gone — a dead host);
``recover()`` rebuilds from ``mux_factory`` + latest checkpoint +
journal replay.  The guarantee the fault suite pins: recovery loses
**zero verdicts for events the supervisor accepted** — the recovered
mux agrees with an uninterrupted run, verdict for verdict.  With the
journal disabled (``journal=False``) the guarantee weakens to the
checkpoint boundary: nothing already checkpointed (in particular every
watermarked event) is lost, and nothing wrong is ever re-emitted,
because replay starts from a consistent snapshot rather than from
guesswork.

Recovery itself is timed (the commit-protocol literature's point:
recovery must meet its own bounds): ``recover()`` runs under a
``stream.failover`` span and the wall-clock latency is returned, which
is what ``benchmarks/bench_resilience.py`` measures.

Observability: ``stream.failovers``, ``stream.supervisor_checkpoints``,
``stream.journal_depth`` (gauge), and the ``stream.failover`` span.
``snapshot_path`` additionally persists each checkpoint as JSON via
:func:`~repro.stream.checkpoint.save_json` for process-restart
durability.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..automata.timed import TimedBuchiAutomaton
from ..obs import hooks as _obs
from .checkpoint import checkpoint_mux, restore_mux, save_json
from .monitor import LateEventError, StreamVerdict
from .session import BackpressureError, SessionMux

__all__ = ["MuxSupervisor", "CrashedError"]


class CrashedError(RuntimeError):
    """The supervised mux is down and auto-recovery is disabled."""


class MuxSupervisor:
    """Checkpoint, crash, and restore a session mux with zero verdict loss.

    ``mux_factory`` builds an *empty* mux configured like the one being
    supervised (the acceptor and all policies are code, not data, so
    the factory — not the snapshot — carries them).  ``tba`` /
    ``acceptor`` are forwarded to
    :func:`~repro.stream.checkpoint.restore_mux` to rebind the
    language artifact on restore; pass whichever the mux's monitors
    need (machine-backed monitors must be built with
    ``keep_history=True`` to be checkpointable at all).
    """

    def __init__(
        self,
        mux_factory: Callable[[], SessionMux],
        *,
        checkpoint_every: int = 64,
        journal: bool = True,
        auto_recover: bool = True,
        tba: Optional[TimedBuchiAutomaton] = None,
        acceptor: Any = None,
        snapshot_path: Optional[str] = None,
    ):
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._factory = mux_factory
        self.checkpoint_every = checkpoint_every
        self.journal_enabled = journal
        self.auto_recover = auto_recover
        self.tba = tba
        self.acceptor = acceptor
        self.snapshot_path = snapshot_path
        self.mux: Optional[SessionMux] = mux_factory()
        self.journal: List[Tuple[str, Any, int]] = []
        self.events_since_checkpoint = 0
        self.checkpoints_taken = 0
        self.failovers = 0
        self.last_recovery_s: Optional[float] = None
        self._snapshot = checkpoint_mux(self.mux)

    # -- state ------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the live mux is down (between crash and recover)."""
        return self.mux is None

    def _live(self) -> SessionMux:
        if self.mux is None:
            if not self.auto_recover:
                raise CrashedError(
                    "supervised mux is down; call recover() (or enable "
                    "auto_recover)"
                )
            self.recover()
        assert self.mux is not None
        return self.mux

    # -- ingestion --------------------------------------------------------
    def ingest(self, name: str, symbol: Any, t: int) -> StreamVerdict:
        """Feed one event through the supervisor (journaled, then muxed).

        The event is journaled *before* it touches the mux, so a crash
        at any point loses nothing the caller handed over; replay
        re-applies the same outcome (including deterministic drops and
        late-event handling) on the recovered mux.
        """
        mux = self._live()
        if self.journal_enabled:
            self.journal.append((name, symbol, t))
        try:
            verdict = mux.ingest(name, symbol, t)
        finally:
            self.events_since_checkpoint += 1
            if self.events_since_checkpoint >= self.checkpoint_every:
                self.checkpoint()
        return verdict

    # -- checkpointing ----------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the live mux now; truncates the journal."""
        mux = self._live()
        self._snapshot = checkpoint_mux(mux)
        self.journal.clear()
        self.events_since_checkpoint = 0
        self.checkpoints_taken += 1
        if self.snapshot_path is not None:
            save_json(self.snapshot_path, self._snapshot)
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.supervisor_checkpoints")
            h.gauge("stream.journal_depth", 0)
        return self._snapshot

    # -- failure and recovery ---------------------------------------------
    def crash(self) -> None:
        """Inject the fault: the live mux (its host) is gone."""
        self.mux = None

    def recover(self) -> float:
        """Rebuild the mux from the latest checkpoint (+ journal replay).

        Returns the wall-clock recovery latency in seconds.  Safe to
        call on a healthy supervisor (it re-materializes the durable
        state — useful for drills).
        """
        start = time.perf_counter()
        h = _obs.HOOKS

        def rebuild() -> None:
            fresh = self._factory()
            restore_mux(
                self._snapshot, fresh, tba=self.tba, acceptor=self.acceptor
            )
            for name, symbol, t in self.journal:
                try:
                    fresh.ingest(name, symbol, t)
                except (LateEventError, BackpressureError):
                    # the original ingest raised identically; the
                    # mutation (late/drop accounting) already happened
                    pass
            self.mux = fresh

        if h is None:
            rebuild()
        else:
            with h.span(
                "stream.failover",
                sessions=len(self._snapshot["sessions"]),
                journal=len(self.journal),
            ):
                rebuild()
            h.count("stream.failovers")
            h.gauge("stream.journal_depth", len(self.journal))
        self.failovers += 1
        self.last_recovery_s = time.perf_counter() - start
        return self.last_recovery_s

    # -- passthrough ------------------------------------------------------
    def verdicts(self) -> Dict[str, StreamVerdict]:
        """Current verdict-so-far of every session on the live mux."""
        return self._live().verdicts()

    def stats(self) -> Dict[str, int]:
        """Mux counters plus the supervision ledger."""
        stats = dict(self._live().stats())
        stats.update(
            checkpoints=self.checkpoints_taken,
            failovers=self.failovers,
            journal_depth=len(self.journal),
            events_since_checkpoint=self.events_since_checkpoint,
        )
        return stats
