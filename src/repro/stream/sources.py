"""Event sources: feeding monitors and muxes from the existing domains.

The monitors consume bare ``(symbol, timestamp)`` events; this module
adapts the repo's word builders and simulation traces into such
streams:

* :func:`events_of` / :func:`replay` — drive any
  :class:`~repro.words.timedword.TimedWord` (finite, lasso, or
  functional) through a monitor, yielding the verdict after each event.
  The online counterpart of handing the whole word to
  :func:`repro.engine.decide`.
* :func:`rtdb_periodic_monitor` / :func:`rtdb_periodic_stream` — the
  §5.1 periodic recognition language L_pq (eq. (10)) as a live feed:
  the database description then the periodic query invocations of a
  :class:`~repro.rtdb.queries.RecognitionInstance`, monitored by the
  (cached) Definition 5.1 acceptor.  Each served invocation is one f,
  so ``f_window`` naturally tracks the serving obligation.
* :func:`receive_stream` — the §5.2 receive events r_u of an ad hoc
  network :class:`~repro.adhoc.messages.TraceLog` as a stream (one
  symbol per hop actually heard), e.g. for a bounded-gap TBA watching
  that traffic keeps flowing — the online complement of the offline
  :func:`~repro.adhoc.encode.validate_route`.
* :func:`replay_into_mux` — timestamp-ordered merge of many named
  words into a :class:`~repro.stream.session.SessionMux` (the
  ≥200-concurrent-session demo in ``benchmarks/bench_stream_monitor.py``
  runs on this).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..adhoc.messages import TraceLog
from ..obs import hooks as _obs
from ..rtdb.queries import QueryRegistry, RecognitionInstance, _acceptor_for
from ..words.timedword import Pair, TimedWord
from .monitor import Monitor, StreamVerdict
from .session import SessionMux

__all__ = [
    "events_of",
    "replay",
    "rtdb_periodic_monitor",
    "rtdb_periodic_stream",
    "receive_stream",
    "replay_into_mux",
]


def events_of(
    word: TimedWord,
    *,
    until: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[Pair]:
    """The word's pairs as a plain event iterator.

    Stops at the word's end (finite words), past ``until`` (timestamp
    bound — how infinite lassos are clipped), or after ``limit`` events.
    """
    i = 0
    while limit is None or i < limit:
        try:
            symbol, t = word[i]
        except IndexError:
            return
        if until is not None and t > until:
            return
        yield symbol, t
        i += 1


def replay(
    word: TimedWord,
    monitor: Any,
    *,
    until: Optional[int] = None,
    limit: Optional[int] = None,
    stop_when_absorbed: bool = True,
) -> Iterator[Tuple[Pair, StreamVerdict]]:
    """Stream a word through a monitor, yielding each step's verdict."""
    for symbol, t in events_of(word, until=until, limit=limit):
        verdict = monitor.ingest(symbol, t)
        yield (symbol, t), verdict
        if stop_when_absorbed and monitor.absorbed:
            return


def rtdb_periodic_monitor(
    registry: QueryRegistry,
    *,
    period: Optional[int] = None,
    lateness: int = 0,
    late_policy: str = "raise",
) -> Monitor:
    """An online monitor for the L_pq serving discipline (eq. (10)).

    Wraps the cached Definition 5.1 periodic acceptor: each served
    invocation emits one f and the first failure imposes s_r, so the
    verdict-so-far reads ACCEPTING while serving keeps up and flips to
    REJECTED the moment an invocation fails.  Passing ``period`` sets
    the f-window to one period, so a *stalled* feed also degrades to
    INCONCLUSIVE instead of coasting on old f's.
    """
    return Monitor(
        _acceptor_for(registry, periodic=True),
        lateness=lateness,
        late_policy=late_policy,
        f_window=period,
    )


def rtdb_periodic_stream(
    instance: RecognitionInstance,
    candidates: Any,
    period: int,
    *,
    until: int,
) -> Iterator[Pair]:
    """The db_B · pq word of one recognition instance as live events."""
    return events_of(instance.periodic_word(candidates, period), until=until)


def receive_stream(
    trace: TraceLog,
    *,
    node: Optional[int] = None,
    symbol: Any = "r",
) -> Iterator[Pair]:
    """The r_u receive events of an ad hoc trace as a timed stream.

    One ``symbol`` per hop actually heard (optionally only those heard
    by ``node``), at its reception time t′ — the raw material for
    monitoring liveness of traffic with e.g. a bounded-gap TBA.
    """
    receives = [r for r in trace.receives if node is None or r.dst == node]
    for r in sorted(receives, key=lambda r: r.received_at):
        yield symbol, r.received_at


def replay_into_mux(
    mux: SessionMux,
    words: Mapping[str, TimedWord],
    *,
    until: int,
    limit_per_stream: Optional[int] = None,
    batch: Optional[int] = None,
) -> Dict[str, StreamVerdict]:
    """Merge named words by timestamp and drive them through a mux.

    Events across streams are interleaved in global timestamp order
    (ties broken by stream name), which is how a shared front-end would
    see concurrent sessions; returns the final verdict per stream.

    With ``batch`` set, merged events are handed to
    :meth:`~repro.stream.session.SessionMux.ingest_batch` in chunks of
    that size instead of one at a time — same verdicts (the mux falls
    back to scalar ingestion per session where vectorized stepping
    does not apply), one table gather per cross-session wave.
    """
    h = _obs.HOOKS
    if batch is not None and batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")

    def run() -> Dict[str, StreamVerdict]:
        iters: Dict[str, Iterator[Pair]] = {
            name: events_of(word, until=until, limit=limit_per_stream)
            for name, word in words.items()
        }
        heap: list = []
        for name, it in iters.items():
            first = next(it, None)
            if first is not None:
                heap.append((first[1], name, first[0]))
        heapq.heapify(heap)
        chunk: list = []
        while heap:
            t, name, symbol = heapq.heappop(heap)
            if batch is None:
                mux.ingest(name, symbol, t)
            else:
                chunk.append((name, symbol, t))
                if len(chunk) >= batch:
                    mux.ingest_batch(chunk)
                    chunk = []
            nxt = next(iters[name], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[1], name, nxt[0]))
        if chunk:
            mux.ingest_batch(chunk)
        return mux.verdicts()

    if h is None:
        return run()
    with h.span("stream.replay", streams=len(words), until=until):
        return run()
