"""Compiled TBA stepping: dense transition tables over configurations.

The interpreted hot path (:meth:`TimedBuchiAutomaton._step_configs`)
rebuilds a clock-valuation dict and re-evaluates every guard AST per
event — Python-sized constants on an O(state) algorithm.  This module
compiles a :class:`~repro.stream.monitor.TBAAnalysis` once into dense
numpy artifacts so that stepping becomes array lookups:

* **Configuration index** — the analysis' finite capped-configuration
  universe, sorted for determinism, plus a *trap* index ``n`` standing
  for the empty configuration set (every run died).  The trap is
  absorbing by construction: its table row maps every (symbol, gap)
  back to the trap.
* **Transition table** — ``table[config, symbol, gap_class]`` →
  successor config index, shape ``(n+1, |Σ|+1, cmax+2)`` int32, built
  only when the stepping relation is deterministic (≤ 1 successor per
  cell).  Column ``|Σ|`` is the *unknown-symbol* column (a symbol
  outside the alphabet kills every run, exactly as the interpreter's
  empty transition list does) and gap classes are capped at ``cmax+1``
  (capped valuations make larger gaps indistinguishable — the discrete
  region argument of :mod:`repro.automata.timed`).
* **Successor bitsets** — for nondeterministic stepping,
  ``succ_bits[config, symbol, gap_class]`` is the successor *set* as a
  packed uint64 bitset (mirrored as Python ints in ``succ_int`` for
  the scalar loop, where arbitrary-precision ``int`` or-ing beats
  per-word numpy calls).  The analysis' liveness backward-closure and
  green forward-closure land in matching flag arrays / masks, so the
  three-valued judgement is two boolean lookups.

:func:`compiled_for` is the gated entry point: it returns ``None`` —
and the monitors fall back to the interpreter, verdict-identically —
when numpy is absent, when ``REPRO_STREAM_COMPILED=0`` disables the
path, or when the automaton exceeds the table bounds.  Outcomes are
counted under ``stream.compile`` / ``stream.compile_fallbacks``
(see ``docs/observability.md``); the cost model and measured speedups
are documented in ``docs/performance.md``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..obs import hooks as _obs

try:  # pragma: no cover - exercised via the fallback tests' monkeypatch
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: The numpy module, or None.  Tests monkeypatch this to simulate a
#: numpy-absent interpreter and pin the fallback behaviour.
NUMPY = _numpy

__all__ = [
    "CompiledTBA",
    "compiled_for",
    "compilation_enabled",
    "MAX_CONFIGS",
    "MAX_TABLE_CELLS",
    "ENV_TOGGLE",
]

#: Compilation bounds: automata whose configuration universe (or dense
#: table) would exceed these fall back to the interpreter.
MAX_CONFIGS = 4096
MAX_TABLE_CELLS = 1 << 22

#: Environment toggle: set to ``0`` to force the interpreted path
#: (the CI stream-smoke job runs the suite both ways).
ENV_TOGGLE = "REPRO_STREAM_COMPILED"

_CACHE_ATTR = "_compiled_tba_cache"


def compilation_enabled() -> bool:
    """Numpy present and the env toggle not set to off."""
    return NUMPY is not None and os.environ.get(ENV_TOGGLE, "1").lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


class CompiledTBA:
    """Dense-table compilation of one :class:`TBAAnalysis`.

    Attributes (``n`` configurations, ``S`` symbols, ``G = cmax+2`` gap
    classes, ``trap = n``):

    ``table`` / ``table_list``
        int32 ``(n+1, S+1, G)`` deterministic successor table (numpy
        array and its nested-list mirror for the scalar hot loop);
        ``None`` when the stepping relation is nondeterministic.
    ``succ_bits`` / ``succ_int``
        uint64 ``(n, S, G, words)`` packed successor bitsets and their
        Python-int mirrors ``[config][symbol][gap]``; always built for
        nondeterministic automata, skipped for deterministic ones.
    ``accepting_flags`` / ``live_flags`` / ``green_flags``
        bool ``(n+1,)`` flag arrays (trap row False) with nested-list
        mirrors ``*_list`` and packed-int masks ``*_mask``.
    """

    def __init__(self, analysis: Any):
        if NUMPY is None:
            raise RuntimeError("CompiledTBA requires numpy")
        np = NUMPY
        tba = analysis.tba
        self.analysis = analysis
        self.tba = tba
        self.configs: List[Tuple[Any, Tuple[int, ...]]] = sorted(
            analysis.universe, key=repr
        )
        self.index: Dict[Any, int] = {c: i for i, c in enumerate(self.configs)}
        self.symbols: List[Any] = sorted(tba.alphabet, key=repr)
        self.sym_index: Dict[Any, int] = {s: i for i, s in enumerate(self.symbols)}
        self.gap_cap = tba._cmax + 1
        n = len(self.configs)
        S = len(self.symbols)
        G = self.gap_cap + 1
        self.n_configs = n
        self.n_symbols = S
        self.n_gaps = G
        self.trap = n
        words = (n + 63) // 64 if n else 1
        self.n_words = words

        # Successor sets per (config, symbol, gap-class), via the
        # interpreter once — the last time it runs for this automaton.
        succs: List[List[List[Tuple[int, ...]]]] = []
        deterministic = True
        for c in self.configs:
            per_sym: List[List[Tuple[int, ...]]] = []
            for a in self.symbols:
                per_gap: List[Tuple[int, ...]] = []
                for g in range(G):
                    out = tba._step_configs({c}, a, g)
                    idxs = tuple(sorted(self.index[s] for s in out))
                    if len(idxs) > 1:
                        deterministic = False
                    per_gap.append(idxs)
                per_sym.append(per_gap)
            succs.append(per_sym)
        self.deterministic = deterministic

        flags = np.zeros(n + 1, dtype=bool)
        for i, c in enumerate(self.configs):
            flags[i] = c[0] in tba.accepting
        self.accepting_flags = flags
        self.live_flags = np.zeros(n + 1, dtype=bool)
        for c in analysis.live:
            self.live_flags[self.index[c]] = True
        self.green_flags = np.zeros(n + 1, dtype=bool)
        for c in analysis.green:
            self.green_flags[self.index[c]] = True
        self.accepting_list = self.accepting_flags.tolist()
        self.live_list = self.live_flags.tolist()
        self.green_list = self.green_flags.tolist()
        self.accepting_mask = self._pack(self.accepting_flags[:n])
        self.live_mask = self._pack(self.live_flags[:n])
        self.green_mask = self._pack(self.green_flags[:n])

        if deterministic:
            table = np.full((n + 1, S + 1, G), self.trap, dtype=np.int32)
            for i in range(n):
                for si in range(S):
                    for g in range(G):
                        cell = succs[i][si][g]
                        if cell:
                            table[i, si, g] = cell[0]
            self.table = table
            self.table_list = table.tolist()
            self.succ_bits = None
            self.succ_int = None
        else:
            bits = np.zeros((n, S, G, words), dtype=np.uint64)
            succ_int: List[List[List[int]]] = []
            for i in range(n):
                per_sym_int: List[List[int]] = []
                for si in range(S):
                    per_gap_int: List[int] = []
                    for g in range(G):
                        mask = 0
                        for j in succs[i][si][g]:
                            mask |= 1 << j
                            bits[i, si, g, j >> 6] |= np.uint64(1 << (j & 63))
                        per_gap_int.append(mask)
                    per_sym_int.append(per_gap_int)
                succ_int.append(per_sym_int)
            self.succ_bits = bits
            self.succ_int = succ_int
            self.table = None
            self.table_list = None

        self.initial_index = self.index[tba._initial_config()]

    def flag_view(
        self, accepting: Any, live: Any, green: Any
    ) -> Tuple[List[bool], List[bool], List[bool]]:
        """Flag lists for an alternative accepting projection over the
        *same* configuration universe (trap row False), memoized per
        projection.

        This is how one compiled table serves many queries at once: a
        :class:`~repro.query.plan.QueryPlan` registers one view per
        query channel (accepting/live/green sets from
        :meth:`TBAAnalysis.live_for` / ``green_for``), every view
        indexes the shared ``table``, and stepping stays one gather per
        event regardless of how many queries are being judged.
        """
        key = (frozenset(accepting), frozenset(live), frozenset(green))
        cache: Dict[Any, Any] = self.__dict__.setdefault("_flag_views", {})
        got = cache.get(key)
        if got is None:
            n = self.n_configs
            acc = [False] * (n + 1)
            lv = [False] * (n + 1)
            gr = [False] * (n + 1)
            for c in key[0]:
                acc[self.index[c]] = True
            for c in key[1]:
                lv[self.index[c]] = True
            for c in key[2]:
                gr[self.index[c]] = True
            got = cache[key] = (acc, lv, gr)
        return got

    def _pack(self, flags: Any) -> int:
        """A boolean flag vector as one Python-int bitset."""
        mask = 0
        for i, f in enumerate(flags.tolist()):
            if f:
                mask |= 1 << i
        return mask

    # -- encoding ----------------------------------------------------------
    def encode_set(self, configs: Any) -> int:
        """A configuration frozenset as a bitset (KeyError if unknown)."""
        mask = 0
        for c in configs:
            mask |= 1 << self.index[c]
        return mask

    def decode_set(self, mask: int) -> frozenset:
        """A bitset back into the configuration frozenset."""
        out = set()
        while mask:
            low = mask & -mask
            out.add(self.configs[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    # -- stepping ----------------------------------------------------------
    def step_index(self, ci: int, symbol: Any, gap: int) -> int:
        """One deterministic step: config index → successor index."""
        si = self.sym_index.get(symbol, self.n_symbols)
        if gap > self.gap_cap:
            gap = self.gap_cap
        return self.table_list[ci][si][gap]

    def step_mask(self, mask: int, symbol: Any, gap: int) -> int:
        """One nondeterministic step on a configuration bitset."""
        si = self.sym_index.get(symbol)
        if si is None:
            return 0
        if gap > self.gap_cap:
            gap = self.gap_cap
        succ = self.succ_int
        out = 0
        while mask:
            low = mask & -mask
            out |= succ[low.bit_length() - 1][si][gap]
            mask ^= low
        return out

    def step_many(self, states: Any, sym_indices: Any, gaps: Any) -> Any:
        """Vectorized deterministic step: one table gather advances a
        whole array of sessions (`states` may include the trap)."""
        np = NUMPY
        return self.table[states, sym_indices, np.minimum(gaps, self.gap_cap)]

    # -- lasso acceptance --------------------------------------------------
    def accepts_lasso(self, word: Any) -> bool:
        """Büchi acceptance of a lasso timed word via the tables.

        Mirrors :meth:`TimedBuchiAutomaton.accepts_lasso` exactly (the
        differential suite pins the agreement): step the prefix plus
        one loop iteration, then search the (config × loop-position)
        product graph for an accepting cycle — a closed walk on the
        deterministic path, a bitset BFS on the nondeterministic one.
        """
        if word.fn is not None or word.is_finite:
            raise ValueError("accepts_lasso needs a lasso TimedWord")
        k = len(word.loop)
        p0 = len(word.prefix)
        gaps = []
        for j in range(k):
            idx = p0 + k + j
            gaps.append(word.time_at(idx) - word.time_at(idx - 1))
        loop_syms = [pair[0] for pair in word.loop]

        if self.deterministic:
            ci = self.initial_index
            prev_t = 0
            for i in range(p0 + k):
                s, t = word[i]
                ci = self.step_index(ci, s, t - prev_t)
                prev_t = t
                if ci == self.trap:
                    return False
            # Deterministic walk: the (config, position) trajectory
            # eventually cycles; accept iff the cycle visits F.
            seen: Dict[Tuple[int, int], int] = {}
            trail: List[Tuple[int, int]] = []
            pos = 0
            node = (ci, pos)
            while node not in seen:
                if node[0] == self.trap:
                    return False
                seen[node] = len(trail)
                trail.append(node)
                nxt = self.step_index(node[0], loop_syms[node[1]], gaps[node[1]])
                node = (nxt, (node[1] + 1) % k)
            start = seen[node]
            return any(self.accepting_list[c] for c, _p in trail[start:])

        start_mask = 1 << self.initial_index
        prev_t = 0
        for i in range(p0 + k):
            s, t = word[i]
            start_mask = self.step_mask(start_mask, s, t - prev_t)
            prev_t = t
            if not start_mask:
                return False
        # reach[pos] = bitset of configs reachable at that loop position
        reach: List[int] = [0] * k
        reach[0] = start_mask
        frontier = [(0, start_mask)]
        while frontier:
            pos, mask = frontier.pop()
            nxt = self.step_mask(mask, loop_syms[pos], gaps[pos])
            np_ = (pos + 1) % k
            new = nxt & ~reach[np_]
            if new:
                reach[np_] |= new
                frontier.append((np_, new))
        for pos in range(k):
            acc = reach[pos] & self.accepting_mask
            while acc:
                low = acc & -acc
                acc ^= low
                if self._on_product_cycle(low.bit_length() - 1, pos, loop_syms, gaps):
                    return True
        return False

    def _on_product_cycle(
        self, ci: int, pos: int, loop_syms: List[Any], gaps: List[int]
    ) -> bool:
        k = len(loop_syms)
        seen: List[int] = [0] * k
        frontier = [(pos, 1 << ci)]
        while frontier:
            p, mask = frontier.pop()
            nxt = self.step_mask(mask, loop_syms[p], gaps[p])
            np_ = (p + 1) % k
            if np_ == pos and nxt & (1 << ci):
                return True
            new = nxt & ~seen[np_]
            if new:
                seen[np_] |= new
                frontier.append((np_, new))
        return False


def compiled_for(analysis: Any) -> Optional[CompiledTBA]:
    """The cached :class:`CompiledTBA` for one analysis, or ``None``.

    Fallback (returns ``None``, counted under
    ``stream.compile_fallbacks``) when numpy is absent, when
    ``REPRO_STREAM_COMPILED=0``, or when the automaton exceeds
    :data:`MAX_CONFIGS` / :data:`MAX_TABLE_CELLS`.  The compiled artifact
    is memoized *on the analysis object*, so every session sharing the
    analysis shares one compilation (the one-build-per-language
    invariant of ``tests/test_stream_compiled.py``).
    """
    h = _obs.HOOKS
    if NUMPY is None:
        if h is not None:
            h.count("stream.compile", outcome="fallback")
            h.count("stream.compile_fallbacks", reason="numpy-absent")
        return None
    if not compilation_enabled():
        if h is not None:
            h.count("stream.compile", outcome="fallback")
            h.count("stream.compile_fallbacks", reason="disabled")
        return None
    cached = analysis.__dict__.get(_CACHE_ATTR, _MISSING)
    if cached is not _MISSING:
        if h is not None:
            h.count(
                "stream.compile",
                outcome="cached" if cached is not None else "fallback",
            )
            if cached is None:
                h.count("stream.compile_fallbacks", reason="bounds")
        return cached
    n = len(analysis.universe)
    tba = analysis.tba
    cells = (n + 1) * (len(tba.alphabet) + 1) * (tba._cmax + 2)
    if n > MAX_CONFIGS or cells > MAX_TABLE_CELLS:
        setattr(analysis, _CACHE_ATTR, None)
        if h is not None:
            h.count("stream.compile", outcome="fallback")
            h.count("stream.compile_fallbacks", reason="bounds")
        return None
    comp = CompiledTBA(analysis)
    setattr(analysis, _CACHE_ATTR, comp)
    if h is not None:
        h.count("stream.compile", outcome="built")
    return comp


class _Missing:
    pass


_MISSING = _Missing()
