"""Multiplexing many live streams over shared compiled acceptors.

A service front-end does not monitor one stream; it monitors thousands
of named sessions against a handful of *languages*.  The
:class:`SessionMux` owns that fan-in: sessions are created on first
event, every session gets its own O(state) monitor, and the expensive
per-language artifacts are shared — one
:class:`~repro.stream.monitor.TBAAnalysis` **and one**
:class:`~repro.stream.compiled.CompiledTBA` per automaton (via the
engine's acceptor LRU and the analysis-attached compile cache — built
once per language, never per session), and one acceptor object per
machine-protocol language (each session's
:class:`~repro.stream.monitor.Monitor` builds only a private simulator
around the shared program).

Ingestion has two paths, verdict-identical by construction and pinned
so by ``tests/test_stream_compiled.py``:

* :meth:`SessionMux.ingest` — one event into one session, the scalar
  path every policy decision (late events, backpressure, drops) runs
  through.
* :meth:`SessionMux.ingest_batch` — many ``(name, symbol, t)`` events
  at once.  Sessions on the compiled deterministic path with no
  reorder buffering are advanced *together*: their state indices are
  gathered into struct-of-arrays and one
  :meth:`~repro.stream.compiled.CompiledTBA.step_many` table gather
  advances every session in the wave (or, when a batch is dominated by
  a few sessions, each session's slice runs through the monitor's
  batched ``ingest_many`` scan).  Everything else — machine-backed
  monitors, buffering sessions, late or out-of-order events — falls
  back to the scalar path, event order preserved per session.

Boundedness is explicit, not accidental:

* ``buffer_limit`` caps each session's reorder buffer; an event that
  would overflow it triggers the ``drop_policy`` — ``"drop-new"``
  (discard the incoming event), ``"drop-old"`` (force-apply the oldest
  buffered event to make room; order-safe), or ``"reject"`` (raise
  :class:`BackpressureError` so the caller can shed load).
* ``max_sessions`` bounds the session table; opening past it raises
  :class:`BackpressureError`.
* ``evict_idle`` retires sessions whose newest event is older than
  ``idle_ttl`` (event time, so replay and live traffic age alike).
* ``max_eviction_reports`` caps the eviction-summary backlog when the
  caller never drains it (drop-oldest; the
  ``stream.eviction_reports_dropped`` counter says how many summaries
  were lost).

The front-end accepts :mod:`repro.query` directly: ``query=`` monitors
every session against one declarative query (text or a ``Q`` builder
query), ``plan=`` shares one fused :class:`~repro.query.plan.QueryPlan`
product across all sessions (each session gets a
:class:`~repro.query.plan.PlanMonitor` with per-query verdicts in its
:class:`SessionReport`), and ``open(name, query=...)`` pins a
session-private query.

Observability: ``stream.sessions`` (``op=opened|closed|evicted``), the
``stream.sessions_active`` gauge, and ``stream.drops`` (``policy=…``);
per-event metrics come from the monitors themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..automata.timed import TimedBuchiAutomaton
from ..engine.verdict import DecisionReport, Verdict
from ..obs import hooks as _obs
from .compiled import NUMPY, compiled_for
from .monitor import Monitor, StreamVerdict, TBAMonitor, analysis_for

__all__ = ["BackpressureError", "SessionReport", "SessionMux"]

DROP_POLICIES = ("drop-new", "drop-old", "reject")


class BackpressureError(RuntimeError):
    """The mux refused work under its explicit bounding policy."""


@dataclass
class SessionReport:
    """Lifecycle summary handed back when a session closes."""

    name: str
    verdict: StreamVerdict
    events_ingested: int
    events_released: int
    late_events: int
    drops: int
    verdict_flips: int
    decision: Optional[DecisionReport] = None
    #: Per-query verdicts when the session ran a fused
    #: :class:`~repro.query.plan.PlanMonitor` (None otherwise).
    query_verdicts: Optional[Dict[str, StreamVerdict]] = None


class _Session:
    __slots__ = ("name", "monitor", "last_event_time", "drops")

    def __init__(self, name: str, monitor: Any):
        self.name = name
        self.monitor = monitor
        self.last_event_time: Optional[int] = None
        self.drops = 0


class SessionMux:
    """Route named event streams into per-session online monitors.

    ``acceptor`` is the shared language artifact: a
    :class:`~repro.automata.timed.TimedBuchiAutomaton` (sessions get
    :class:`TBAMonitor`\\ s over one cached analysis) or any
    machine-protocol acceptor (sessions get :class:`Monitor`\\ s around
    the shared program).  ``monitor_factory`` overrides the choice —
    any zero-argument callable returning a monitor.  ``query`` (text or
    a ``Q`` builder query; ``alphabet`` optionally widens its symbol
    set) compiles to a TBA and proceeds like an automaton acceptor;
    ``plan`` shares one :class:`~repro.query.plan.QueryPlan` product —
    every session gets a :class:`~repro.query.plan.PlanMonitor` over
    the plan's single analysis/compiled artifacts, and session reports
    carry per-query verdicts.
    """

    def __init__(
        self,
        acceptor: Any = None,
        *,
        monitor_factory: Optional[Callable[[], Any]] = None,
        query: Any = None,
        plan: Any = None,
        alphabet: Optional[Any] = None,
        lateness: int = 0,
        late_policy: str = "drop",
        f_window: Optional[int] = None,
        buffer_limit: int = 64,
        drop_policy: str = "drop-new",
        max_sessions: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        max_eviction_reports: Optional[int] = None,
        compiled: Optional[bool] = None,
    ):
        given = sum(
            x is not None for x in (acceptor, monitor_factory, query, plan)
        )
        if given != 1:
            raise ValueError(
                "pass exactly one of acceptor / monitor_factory / query / plan"
            )
        if query is not None:
            # Queries are pure front-end: lower to a TBA here and share
            # its artifacts exactly like an automaton acceptor.
            from ..query import as_query

            acceptor = as_query(query).tba(alphabet)
        elif alphabet is not None:
            raise ValueError("alphabet= only applies to query= muxes")
        if max_eviction_reports is not None and max_eviction_reports < 1:
            raise ValueError(
                f"max_eviction_reports must be >= 1, got {max_eviction_reports}"
            )
        if buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        if drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}, got {drop_policy!r}"
            )
        self.acceptor = acceptor
        self.plan = plan
        self.buffer_limit = buffer_limit
        self.drop_policy = drop_policy
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.max_eviction_reports = max_eviction_reports
        self.drops = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self.eviction_reports_dropped = 0
        #: Per-victim summaries from :meth:`evict_idle` (an evicted
        #: in-flight session must surface as UNDECIDED with evidence,
        #: never vanish silently); drain with :meth:`drain_evictions`.
        #: Bounded by ``max_eviction_reports`` (drop-oldest).
        self.eviction_reports: List[SessionReport] = []
        self._sessions: Dict[str, _Session] = {}
        #: Monitor knobs shared with per-session query overrides
        #: (``open(name, query=...)``).
        self._monitor_kw = dict(
            lateness=lateness,
            late_policy=late_policy,
            f_window=f_window,
            compiled=compiled,
        )
        #: The shared compiled artifact for batch stepping (None when
        #: the language is not a TBA, compilation is off, or the
        #: automaton fell back to the interpreter).
        self._tba_compiled = None
        if monitor_factory is not None:
            self._factory = monitor_factory
        elif plan is not None:
            # One fused product per plan: the plan already owns the
            # shared analysis and compiled table; every session's
            # PlanMonitor wraps those same objects.
            if compiled is not False:
                self._tba_compiled = plan.compiled
            self._factory = lambda: plan.monitor(
                lateness=lateness,
                late_policy=late_policy,
                f_window=f_window,
                compiled=compiled,
            )
        elif isinstance(acceptor, TimedBuchiAutomaton):
            # Both per-language artifacts are built exactly once here
            # and shared by every session (and by checkpoint restores).
            analysis = analysis_for(acceptor)
            if compiled is not False:
                self._tba_compiled = compiled_for(analysis)
            self._factory = lambda: TBAMonitor(
                acceptor,
                analysis=analysis,
                lateness=lateness,
                late_policy=late_policy,
                f_window=f_window,
                compiled=compiled,
            )
        else:
            self._factory = lambda: Monitor(
                acceptor,
                lateness=lateness,
                late_policy=late_policy,
                f_window=f_window,
            )

    # -- session table -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    @property
    def active(self) -> List[str]:
        return list(self._sessions)

    def monitor(self, name: str) -> Any:
        """The named session's monitor (KeyError if unknown)."""
        return self._sessions[name].monitor

    def open(self, name: str, query: Any = None) -> Any:
        """Create a session explicitly; returns its monitor.

        ``query`` (text or a ``Q`` builder query) pins a session-private
        query monitor — the session inherits the mux's lateness /
        ``f_window`` / compiled knobs but watches its own language.  Its
        compiled artifact differs from the shared one, so batch
        ingestion automatically routes its events down the scalar path.
        """
        if name in self._sessions:
            raise ValueError(f"session {name!r} already open")
        if self.max_sessions is not None and len(self._sessions) >= self.max_sessions:
            raise BackpressureError(
                f"session table full ({self.max_sessions}); close or evict first"
            )
        if query is None:
            monitor = self._factory()
        else:
            from ..query import query_monitor

            monitor = query_monitor(query, **self._monitor_kw)
        session = _Session(name, monitor)
        self._sessions[name] = session
        self.sessions_opened += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.sessions", op="opened")
            h.gauge("stream.sessions_active", len(self._sessions))
        return session.monitor

    # -- ingestion ---------------------------------------------------------
    def ingest(self, name: str, symbol: Any, t: int) -> StreamVerdict:
        """Feed one event into the named session (opened on demand)."""
        session = self._sessions.get(name)
        if session is None:
            self.open(name)
            session = self._sessions[name]
        monitor = session.monitor
        if monitor.pending >= self.buffer_limit:
            if self.drop_policy == "reject":
                raise BackpressureError(
                    f"session {name!r} buffer full ({self.buffer_limit})"
                )
            h = _obs.HOOKS
            if h is not None:
                h.count("stream.drops", policy=self.drop_policy)
            self.drops += 1
            session.drops += 1
            if self.drop_policy == "drop-new":
                return monitor.verdict
            monitor.release_oldest()
        if session.last_event_time is None or t > session.last_event_time:
            session.last_event_time = t
        return monitor.ingest(symbol, t)

    def ingest_batch(self, events) -> int:
        """Feed many ``(name, symbol, t)`` events, vectorizing across
        sessions that share the compiled deterministic path.

        Events are grouped per session (each session's relative order
        preserved — sessions are independent, so cross-session order
        carries no meaning).  Sessions whose monitor sits on the shared
        :class:`~repro.stream.compiled.CompiledTBA` with no reorder
        buffering, and whose slice of the batch is on-time and
        nondecreasing, are advanced through the table: long
        per-session runs go through the monitor's own bulk scan, short
        ones are stepped *together* wave-by-wave with one
        :meth:`~repro.stream.compiled.CompiledTBA.step_many` gather per
        wave.  Everything else — machine-backed monitors, buffering or
        late traffic, interpreter fallbacks — replays through
        :meth:`ingest` so every policy decision stays on the scalar
        path.  Verdicts and counters are identical either way (pinned
        by ``tests/test_stream_compiled.py``).

        Returns the number of events advanced through a vectorized
        path (the rest went through :meth:`ingest`).
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        groups: Dict[str, List[Any]] = {}
        order: List[str] = []
        for name, symbol, t in events:
            g = groups.get(name)
            if g is None:
                g = groups[name] = []
                order.append(name)
            g.append((symbol, t))
        comp = self._tba_compiled
        scalar: List[str] = []
        waves: List[Any] = []
        if comp is None or NUMPY is None or not comp.deterministic:
            scalar = order
        else:
            for name in order:
                session = self._sessions.get(name)
                if session is None:
                    self.open(name)
                    session = self._sessions[name]
                m = session.monitor
                if (
                    not isinstance(m, TBAMonitor)
                    or m._compiled is not comp
                    or m.lateness != 0
                    or m._heap
                ):
                    scalar.append(name)
                    continue
                # The bulk scans assume on-time, in-order slices; a
                # single late or negative timestamp sends the whole
                # slice back to the scalar path (which owns policy).
                floor = m.max_seen if m.max_seen is not None else 0
                for _symbol, t in groups[name]:
                    if t < floor or t < 0:
                        scalar.append(name)
                        break
                    floor = t
                else:
                    waves.append((session, m, groups[name]))
        vectorized = 0
        if waves:
            total = sum(len(slice_) for _s, _m, slice_ in waves)
            if total >= 8 * len(waves):
                # Few deep sessions: each monitor's own bulk scan
                # beats assembling cross-session waves.
                for session, m, slice_ in waves:
                    m.ingest_many(slice_)
                    t_last = slice_[-1][1]
                    if (
                        session.last_event_time is None
                        or t_last > session.last_event_time
                    ):
                        session.last_event_time = t_last
                    vectorized += len(slice_)
            else:
                vectorized = self._step_waves(comp, waves)
        for name in scalar:
            for symbol, t in groups[name]:
                self.ingest(name, symbol, t)
        return vectorized

    def _step_waves(self, comp, waves) -> int:
        """Advance many sessions together, one table gather per wave.

        Wave ``k`` holds the ``k``-th event of every session that has
        one: state indices, symbol columns, and clock gaps are gathered
        into arrays, :meth:`CompiledTBA.step_many` advances the whole
        wave in one fancy-indexed lookup, and the verdict bookkeeping
        (mirroring ``TBAMonitor.ingest_many`` exactly) is applied per
        member.  Rejection is absorbing: a rejected member keeps
        counting events but its state and ``prev_t`` stay frozen, same
        as the scalar path.  Per-event ``stream.watermark_lag``
        observations are skipped (the lag is identically zero here).
        """
        np = NUMPY
        REJ = StreamVerdict.REJECTED
        ACC = StreamVerdict.ACCEPTING
        INC = StreamVerdict.INCONCLUSIVE
        acc_f = comp.accepting_list
        live_f = comp.live_list
        green_f = comp.green_list
        sym_get = comp.sym_index.get
        unknown = comp.n_symbols
        total = 0
        stepped = 0
        depth = max(len(slice_) for _s, _m, slice_ in waves)
        for k in range(depth):
            wave_s: List[Any] = []
            wave_m: List[Any] = []
            wave_sym: List[int] = []
            wave_t: List[int] = []
            for session, m, slice_ in waves:
                if k >= len(slice_):
                    continue
                symbol, t = slice_[k]
                total += 1
                if m.verdict is REJ:
                    # Absorbed: counters and watermark advance, the
                    # run state and prev_t stay frozen (scalar
                    # `_advance` early-returns the same way).
                    m.events_ingested += 1
                    m.events_released += 1
                    m._seq += 1
                    m.max_seen = t
                    if (
                        session.last_event_time is None
                        or t > session.last_event_time
                    ):
                        session.last_event_time = t
                    continue
                wave_s.append(session)
                wave_m.append(m)
                wave_sym.append(sym_get(symbol, unknown))
                wave_t.append(t)
            if not wave_m:
                continue
            n = len(wave_m)
            states = np.fromiter(
                (m._ci for m in wave_m), dtype=np.int32, count=n
            )
            ts = np.array(wave_t, dtype=np.int64)
            gaps = ts - np.fromiter(
                (m.prev_t for m in wave_m), dtype=np.int64, count=n
            )
            new = comp.step_many(
                states, np.array(wave_sym, dtype=np.int32), gaps
            ).tolist()
            stepped += n
            for i in range(n):
                m = wave_m[i]
                t = wave_t[i]
                ci = new[i]
                session = wave_s[i]
                if (
                    session.last_event_time is None
                    or t > session.last_event_time
                ):
                    session.last_event_time = t
                if m._wave_custom:
                    # PlanMonitors keep per-channel books (occupancy
                    # ledger) the generic bookkeeping below doesn't
                    # know about; the monitor applies the stepped
                    # config itself.
                    m._apply_wave(ci, t)
                    continue
                m._ci = ci
                m.prev_t = t
                m.max_seen = t
                m.events_ingested += 1
                m.events_released += 1
                m._seq += 1
                if acc_f[ci]:
                    m.accept_visits += 1
                    m._last_accept_time = t
                if not live_f[ci]:
                    m._set_verdict(REJ)
                    continue
                if green_f[ci]:
                    m._green_locked = True
                if m._green_locked or (
                    m._last_accept_time is not None
                    and (
                        m.f_window is None
                        or t - m._last_accept_time <= m.f_window
                    )
                ):
                    m._set_verdict(ACC)
                else:
                    m._set_verdict(INC)
        h = _obs.HOOKS
        if h is not None and total:
            h.count("stream.events_ingested", total, outcome="ok")
            h.count("stream.events_released", total)
            if stepped:
                h.count("stream.compiled_steps", stepped, path="wave")
        return total

    def verdicts(self) -> Dict[str, StreamVerdict]:
        """Current verdict-so-far of every open session."""
        return {name: s.monitor.verdict for name, s in self._sessions.items()}

    # -- lifecycle ---------------------------------------------------------
    def close(self, name: str, horizon: Optional[int] = None) -> SessionReport:
        """Flush and retire a session, returning its summary.

        With ``horizon`` given and a machine-backed monitor, the
        session is finished through :meth:`Monitor.finish` and the
        batch-equivalent :class:`~repro.engine.verdict.DecisionReport`
        rides along in ``decision``.
        """
        session = self._sessions.pop(name)
        monitor = session.monitor
        decision: Optional[DecisionReport] = None
        if horizon is not None and hasattr(monitor, "finish"):
            decision = monitor.finish(horizon)
        else:
            monitor.flush()
        self.sessions_closed += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.sessions", op="closed")
            h.gauge("stream.sessions_active", len(self._sessions))
        return SessionReport(
            name=name,
            verdict=monitor.verdict,
            events_ingested=monitor.events_ingested,
            events_released=monitor.events_released,
            late_events=monitor.late_events,
            drops=session.drops,
            verdict_flips=monitor.verdict_flips,
            decision=decision,
            query_verdicts=(
                monitor.query_verdicts()
                if hasattr(monitor, "query_verdicts")
                else None
            ),
        )

    def evict_idle(
        self, now: Optional[int] = None, idle_ttl: Optional[int] = None
    ) -> List[str]:
        """Retire sessions idle for more than ``idle_ttl`` event-time
        chronons; returns the evicted names.

        Eviction is not a verdict: a session cut off mid-stream has
        seen only a prefix of its word, so unless its monitor had
        already absorbed (REJECTED, or green-locked ACCEPTING — states
        no further event can change), the summary filed in
        :attr:`eviction_reports` carries ``Verdict.UNDECIDED`` with the
        eviction circumstances in ``decision.evidence`` (reason, the
        monitor's verdict-so-far, buffered-event count, last event
        time).  Buffered out-of-order events are *not* flushed first —
        flushing would fabricate observations the watermark never
        released.
        """
        ttl = idle_ttl if idle_ttl is not None else self.idle_ttl
        if ttl is None:
            raise ValueError("no idle_ttl configured or passed")
        if now is None:
            stamps = [
                s.last_event_time
                for s in self._sessions.values()
                if s.last_event_time is not None
            ]
            if not stamps:
                return []
            now = max(stamps)
        victims = [
            name
            for name, s in self._sessions.items()
            if s.last_event_time is None or now - s.last_event_time > ttl
        ]
        h = _obs.HOOKS
        for name in victims:
            session = self._sessions.pop(name)
            monitor = session.monitor
            so_far = monitor.verdict
            final = (
                so_far.as_verdict()
                if getattr(monitor, "absorbed", False)
                else Verdict.UNDECIDED
            )
            decision = DecisionReport(
                verdict=final,
                f_count=getattr(monitor, "accept_visits", 0),
                decided_at=session.last_event_time,
                evidence={
                    "evicted": "idle",
                    "stream_verdict": so_far.value,
                    "pending": monitor.pending,
                    "last_event_time": session.last_event_time,
                    "now": now,
                },
                strategy="evicted",
            )
            self.eviction_reports.append(
                SessionReport(
                    name=name,
                    verdict=so_far,
                    events_ingested=monitor.events_ingested,
                    events_released=monitor.events_released,
                    late_events=monitor.late_events,
                    drops=session.drops,
                    verdict_flips=monitor.verdict_flips,
                    decision=decision,
                    query_verdicts=(
                        monitor.query_verdicts()
                        if hasattr(monitor, "query_verdicts")
                        else None
                    ),
                )
            )
            cap = self.max_eviction_reports
            if cap is not None and len(self.eviction_reports) > cap:
                # Drop-oldest: the backlog is a courtesy to callers who
                # drain it; an undrained mux must not grow without
                # bound (the same discipline as every other buffer
                # here).
                excess = len(self.eviction_reports) - cap
                del self.eviction_reports[:excess]
                self.eviction_reports_dropped += excess
                if h is not None:
                    h.count("stream.eviction_reports_dropped", excess)
            self.sessions_evicted += 1
            if h is not None:
                h.count("stream.sessions", op="evicted")
        if victims and h is not None:
            h.gauge("stream.sessions_active", len(self._sessions))
        return victims

    def drain_evictions(self) -> List[SessionReport]:
        """Hand over (and clear) the accumulated eviction summaries."""
        out = self.eviction_reports
        self.eviction_reports = []
        return out

    def stats(self) -> Dict[str, int]:
        """Aggregate counters (the bounded-memory demo's assertions)."""
        return {
            "active": len(self._sessions),
            "opened": self.sessions_opened,
            "closed": self.sessions_closed,
            "evicted": self.sessions_evicted,
            "eviction_reports_dropped": self.eviction_reports_dropped,
            "drops": self.drops,
            "pending_total": sum(
                s.monitor.pending for s in self._sessions.values()
            ),
        }
