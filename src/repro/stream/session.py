"""Multiplexing many live streams over shared compiled acceptors.

A service front-end does not monitor one stream; it monitors thousands
of named sessions against a handful of *languages*.  The
:class:`SessionMux` owns that fan-in: sessions are created on first
event, every session gets its own O(state) monitor, and the expensive
per-language artifacts are shared — one
:class:`~repro.stream.monitor.TBAAnalysis` per automaton (via the
engine's acceptor LRU) and one acceptor object per machine-protocol
language (each session's :class:`~repro.stream.monitor.Monitor` builds
only a private simulator around the shared program).

Boundedness is explicit, not accidental:

* ``buffer_limit`` caps each session's reorder buffer; an event that
  would overflow it triggers the ``drop_policy`` — ``"drop-new"``
  (discard the incoming event), ``"drop-old"`` (force-apply the oldest
  buffered event to make room; order-safe), or ``"reject"`` (raise
  :class:`BackpressureError` so the caller can shed load).
* ``max_sessions`` bounds the session table; opening past it raises
  :class:`BackpressureError`.
* ``evict_idle`` retires sessions whose newest event is older than
  ``idle_ttl`` (event time, so replay and live traffic age alike).

Observability: ``stream.sessions`` (``op=opened|closed|evicted``), the
``stream.sessions_active`` gauge, and ``stream.drops`` (``policy=…``);
per-event metrics come from the monitors themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..automata.timed import TimedBuchiAutomaton
from ..engine.verdict import DecisionReport
from ..obs import hooks as _obs
from .monitor import Monitor, StreamVerdict, TBAMonitor, analysis_for

__all__ = ["BackpressureError", "SessionReport", "SessionMux"]

DROP_POLICIES = ("drop-new", "drop-old", "reject")


class BackpressureError(RuntimeError):
    """The mux refused work under its explicit bounding policy."""


@dataclass
class SessionReport:
    """Lifecycle summary handed back when a session closes."""

    name: str
    verdict: StreamVerdict
    events_ingested: int
    events_released: int
    late_events: int
    drops: int
    verdict_flips: int
    decision: Optional[DecisionReport] = None


class _Session:
    __slots__ = ("name", "monitor", "last_event_time", "drops")

    def __init__(self, name: str, monitor: Any):
        self.name = name
        self.monitor = monitor
        self.last_event_time: Optional[int] = None
        self.drops = 0


class SessionMux:
    """Route named event streams into per-session online monitors.

    ``acceptor`` is the shared language artifact: a
    :class:`~repro.automata.timed.TimedBuchiAutomaton` (sessions get
    :class:`TBAMonitor`\\ s over one cached analysis) or any
    machine-protocol acceptor (sessions get :class:`Monitor`\\ s around
    the shared program).  ``monitor_factory`` overrides the choice —
    any zero-argument callable returning a monitor.
    """

    def __init__(
        self,
        acceptor: Any = None,
        *,
        monitor_factory: Optional[Callable[[], Any]] = None,
        lateness: int = 0,
        late_policy: str = "drop",
        f_window: Optional[int] = None,
        buffer_limit: int = 64,
        drop_policy: str = "drop-new",
        max_sessions: Optional[int] = None,
        idle_ttl: Optional[int] = None,
    ):
        if (acceptor is None) == (monitor_factory is None):
            raise ValueError("pass exactly one of acceptor / monitor_factory")
        if buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        if drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}, got {drop_policy!r}"
            )
        self.acceptor = acceptor
        self.buffer_limit = buffer_limit
        self.drop_policy = drop_policy
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.drops = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self._sessions: Dict[str, _Session] = {}
        if monitor_factory is not None:
            self._factory = monitor_factory
        elif isinstance(acceptor, TimedBuchiAutomaton):
            analysis = analysis_for(acceptor)
            self._factory = lambda: TBAMonitor(
                acceptor,
                analysis=analysis,
                lateness=lateness,
                late_policy=late_policy,
                f_window=f_window,
            )
        else:
            self._factory = lambda: Monitor(
                acceptor,
                lateness=lateness,
                late_policy=late_policy,
                f_window=f_window,
            )

    # -- session table -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    @property
    def active(self) -> List[str]:
        return list(self._sessions)

    def monitor(self, name: str) -> Any:
        """The named session's monitor (KeyError if unknown)."""
        return self._sessions[name].monitor

    def open(self, name: str) -> Any:
        """Create a session explicitly; returns its monitor."""
        if name in self._sessions:
            raise ValueError(f"session {name!r} already open")
        if self.max_sessions is not None and len(self._sessions) >= self.max_sessions:
            raise BackpressureError(
                f"session table full ({self.max_sessions}); close or evict first"
            )
        session = _Session(name, self._factory())
        self._sessions[name] = session
        self.sessions_opened += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.sessions", op="opened")
            h.gauge("stream.sessions_active", len(self._sessions))
        return session.monitor

    # -- ingestion ---------------------------------------------------------
    def ingest(self, name: str, symbol: Any, t: int) -> StreamVerdict:
        """Feed one event into the named session (opened on demand)."""
        session = self._sessions.get(name)
        if session is None:
            self.open(name)
            session = self._sessions[name]
        monitor = session.monitor
        if monitor.pending >= self.buffer_limit:
            if self.drop_policy == "reject":
                raise BackpressureError(
                    f"session {name!r} buffer full ({self.buffer_limit})"
                )
            h = _obs.HOOKS
            if h is not None:
                h.count("stream.drops", policy=self.drop_policy)
            self.drops += 1
            session.drops += 1
            if self.drop_policy == "drop-new":
                return monitor.verdict
            monitor.release_oldest()
        if session.last_event_time is None or t > session.last_event_time:
            session.last_event_time = t
        return monitor.ingest(symbol, t)

    def verdicts(self) -> Dict[str, StreamVerdict]:
        """Current verdict-so-far of every open session."""
        return {name: s.monitor.verdict for name, s in self._sessions.items()}

    # -- lifecycle ---------------------------------------------------------
    def close(self, name: str, horizon: Optional[int] = None) -> SessionReport:
        """Flush and retire a session, returning its summary.

        With ``horizon`` given and a machine-backed monitor, the
        session is finished through :meth:`Monitor.finish` and the
        batch-equivalent :class:`~repro.engine.verdict.DecisionReport`
        rides along in ``decision``.
        """
        session = self._sessions.pop(name)
        monitor = session.monitor
        decision: Optional[DecisionReport] = None
        if horizon is not None and hasattr(monitor, "finish"):
            decision = monitor.finish(horizon)
        else:
            monitor.flush()
        self.sessions_closed += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("stream.sessions", op="closed")
            h.gauge("stream.sessions_active", len(self._sessions))
        return SessionReport(
            name=name,
            verdict=monitor.verdict,
            events_ingested=monitor.events_ingested,
            events_released=monitor.events_released,
            late_events=monitor.late_events,
            drops=session.drops,
            verdict_flips=monitor.verdict_flips,
            decision=decision,
        )

    def evict_idle(
        self, now: Optional[int] = None, idle_ttl: Optional[int] = None
    ) -> List[str]:
        """Retire sessions idle for more than ``idle_ttl`` event-time
        chronons; returns the evicted names."""
        ttl = idle_ttl if idle_ttl is not None else self.idle_ttl
        if ttl is None:
            raise ValueError("no idle_ttl configured or passed")
        if now is None:
            stamps = [
                s.last_event_time
                for s in self._sessions.values()
                if s.last_event_time is not None
            ]
            if not stamps:
                return []
            now = max(stamps)
        victims = [
            name
            for name, s in self._sessions.items()
            if s.last_event_time is None or now - s.last_event_time > ttl
        ]
        h = _obs.HOOKS
        for name in victims:
            self._sessions.pop(name)
            self.sessions_evicted += 1
            if h is not None:
                h.count("stream.sessions", op="evicted")
        if victims and h is not None:
            h.gauge("stream.sessions_active", len(self._sessions))
        return victims

    def stats(self) -> Dict[str, int]:
        """Aggregate counters (the bounded-memory demo's assertions)."""
        return {
            "active": len(self._sessions),
            "opened": self.sessions_opened,
            "closed": self.sessions_closed,
            "evicted": self.sessions_evicted,
            "drops": self.drops,
            "pending_total": sum(
                s.monitor.pending for s in self._sessions.values()
            ),
        }
