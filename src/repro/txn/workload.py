"""Corpus drivers shared by the txn benchmark, example, and CI smoke.

Thin composition over :mod:`repro.txn.protocol` and
:mod:`repro.txn.verify`: generate a seeded corpus for one
(protocol, config) cell, optionally attach the online monitors and/or
an offline backend, and summarize — the shape
``benchmarks/bench_txn.py`` times and ``examples/timed_commit.py``
narrates.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional

from .protocol import TransactionRun, TxnConfig, run_many
from .verify import corpus_verdicts, offline_batched, online_verdicts

__all__ = ["corpus", "corpus_stats", "run_workload"]


def corpus(
    protocol: str, cfg: TxnConfig, n: int, base_seed: int = 0
) -> List[TransactionRun]:
    """``n`` seeded transactions (seeds ``base_seed .. base_seed+n-1``)."""
    return run_many(protocol, cfg, list(range(base_seed, base_seed + n)))


def corpus_stats(runs: List[TransactionRun]) -> Dict[str, Any]:
    """Protocol-level tallies of a corpus (no spec judging)."""
    outcomes = Counter(r.outcome for r in runs)
    crashes = sum(
        1 for r in runs for tc in r.crashed.values() if tc is not None
    )
    return {
        "runs": len(runs),
        "outcomes": dict(outcomes),
        "crashes": crashes,
        "messages_sent": sum(r.messages["sent"] for r in runs),
        "messages_lost": sum(r.messages["lost"] for r in runs),
        "recovery_rounds": sum(r.recovery_rounds for r in runs),
    }


def run_workload(
    protocol: str,
    cfg: TxnConfig,
    n: int,
    *,
    base_seed: int = 0,
    monitors: bool = False,
    offline_backend: Optional[str] = None,
    workers: int = 2,
) -> Dict[str, Any]:
    """Generate a corpus and (optionally) verify it.

    ``monitors=True`` attaches the online :class:`SessionMux` path and
    folds the combined per-transaction judgements into the result;
    ``offline_backend`` additionally judges the deterministic
    properties through ``decide_many`` on that backend.
    """
    runs = corpus(protocol, cfg, n, base_seed)
    result: Dict[str, Any] = {"protocol": protocol, **corpus_stats(runs)}
    if monitors:
        verdicts, stream_stats = online_verdicts(runs)
        result["stream"] = stream_stats
        result["verdicts"] = corpus_verdicts(runs, verdicts)
    if offline_backend is not None:
        batched = offline_batched(runs, backend=offline_backend, workers=workers)
        result["offline"] = {
            "backend": offline_backend,
            "checks": len(batched),
            "accepts": sum(1 for v in batched.values() if v.value == "accept"),
        }
    return result
