"""repro.txn — timed commit protocols as a verified workload.

The distributed-commit instantiation of the paper's model: 2PC/3PC
executed as §6 per-process timed words over the kernel
(:mod:`repro.txn.protocol`), correctness and timeliness expressed as
timer-bound specs compiled to TBAs (:mod:`repro.txn.properties`), and
every run judged along three independent paths that must agree —
region-exact offline, machine-replay ``decide_many`` (serial and
sharded), and live :class:`~repro.stream.session.SessionMux` monitors
(:mod:`repro.txn.verify`).  :mod:`repro.txn.workload` packages the
corpus drivers the benchmark, example, and CI smoke share.

See ``docs/txn.md`` for the protocol model, property table, and
failure matrix.
"""

from .properties import (
    DECISION_ALPHABET,
    HANDSHAKE_ALPHABET,
    Property,
    abort_spec,
    commit_spec,
    decision_spec,
    handshake_spec,
    properties_for,
    words_for,
)
from .protocol import (
    PROTOCOLS,
    TransactionRun,
    TxnConfig,
    atomicity_ok,
    decided_within,
    run_many,
    run_transaction,
)
from .verify import (
    CrossCheck,
    corpus_verdicts,
    cross_check,
    offline_batched,
    offline_exact,
    online_verdicts,
    txn_verdicts,
)
from .workload import corpus, corpus_stats, run_workload

__all__ = [
    "PROTOCOLS",
    "TxnConfig",
    "TransactionRun",
    "run_transaction",
    "run_many",
    "atomicity_ok",
    "decided_within",
    "DECISION_ALPHABET",
    "HANDSHAKE_ALPHABET",
    "Property",
    "commit_spec",
    "abort_spec",
    "decision_spec",
    "handshake_spec",
    "properties_for",
    "words_for",
    "CrossCheck",
    "offline_exact",
    "offline_batched",
    "online_verdicts",
    "cross_check",
    "txn_verdicts",
    "corpus_verdicts",
    "corpus",
    "corpus_stats",
    "run_workload",
]
