"""Two-way verification of commit-protocol runs (offline ∧ online).

The point of :mod:`repro.txn` is not to trust the protocol code but to
*judge its words*: every recorded run is checked against the property
suite of :mod:`repro.txn.properties` along three independent paths
that must agree verdict-for-verdict:

* **offline-exact** — :func:`repro.engine.decide` over a
  :func:`~repro.spec.compile.spec_acceptor` (region-exact
  ``accepts_lasso``; handles the nondeterministic ``alt`` specs) on
  advancing-tick lasso words;
* **offline-batched** — :func:`repro.engine.decide_many` over the raw
  compiled TBA (machine replay), ``backend="serial"`` or
  ``backend="shards"``, on *frozen*-tail words: the zeno shape is cut
  off at :func:`~repro.machine.tape.zeno_event_cap` and settled
  exactly by :func:`~repro.engine.strategies.resolve_zeno`, so the
  machine path is decisive too (deterministic specs only —
  ``commit``/``abort``/``handshake``);
* **online** — :class:`repro.stream.SessionMux` monitors on the
  compiled-TBA path, one session per (transaction, process) per
  property, fed the live events plus a few post-horizon ticks so every
  monitor absorbs (REJECTED when a budget lapses, green-locked
  ACCEPTING when a chain completes).

Per-transaction judgements then *combine* per-process verdicts:
atomicity is "no process ACCEPTs ``commit`` while another ACCEPTs
``abort``", blocking-freedom is "every surviving process ACCEPTs
``decided``" — the §6 family-of-words reading of global properties.

:func:`cross_check` runs all paths over a corpus and reports any
disagreement; the acceptance corpus in ``tests/test_txn_verify.py``
pins zero across ≥200 seeded runs with injected crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..engine.batch import decide_many
from ..engine.strategies import decide
from ..engine.verdict import Verdict
from ..obs import hooks as _obs
from ..spec.compile import spec_acceptor, to_tba
from .properties import Property, properties_for, words_for
from .protocol import TransactionRun

__all__ = [
    "CheckKey",
    "CrossCheck",
    "offline_exact",
    "offline_batched",
    "online_verdicts",
    "cross_check",
    "txn_verdicts",
    "corpus_verdicts",
]

#: (run index, property name, process) — one judged channel word.
CheckKey = Tuple[int, str, str]

#: Post-horizon ticks fed to online monitors: the first tick already
#: passes every deadline (tick times start at ``report_at + 1``), the
#: rest are margin proving absorption is genuinely absorbing.
ONLINE_TICKS = 3


def _suite(run: TransactionRun) -> Dict[str, Property]:
    return properties_for(run.cfg, run.protocol)


def offline_exact(runs: List[TransactionRun]) -> Dict[CheckKey, Verdict]:
    """Region-exact verdicts for every (run, property, process)."""
    out: Dict[CheckKey, Verdict] = {}
    acceptors: Dict[Any, Any] = {}
    for i, run in enumerate(runs):
        for name, prop in _suite(run).items():
            tba = to_tba(prop.spec, prop.alphabet)
            acc = acceptors.get(id(tba))
            if acc is None:
                acc = acceptors[id(tba)] = spec_acceptor(prop.spec, prop.alphabet)
            for proc, word in words_for(run, prop, tail="advancing").items():
                report = decide(acc, word, horizon=run.report_at + 2)
                out[(i, name, proc)] = report.verdict
    return out


def offline_batched(
    runs: List[TransactionRun],
    *,
    backend: str = "serial",
    workers: int = 2,
    chunk_size: Optional[int] = None,
) -> Dict[CheckKey, Verdict]:
    """Machine-replay verdicts via ``decide_many`` (deterministic
    properties only), batched per compiled automaton so the serial and
    shard backends both judge through one warm compiled acceptor."""
    buckets: Dict[int, Tuple[Any, int, List[Tuple[CheckKey, Any]]]] = {}
    for i, run in enumerate(runs):
        for name, prop in _suite(run).items():
            if not prop.deterministic:
                continue
            tba = to_tba(prop.spec, prop.alphabet)
            bucket = buckets.get(id(tba))
            if bucket is None:
                bucket = buckets[id(tba)] = (tba, run.report_at + 2, [])
            for proc, word in words_for(run, prop, tail="frozen").items():
                bucket[2].append(((i, name, proc), word))
    out: Dict[CheckKey, Verdict] = {}
    for tba, horizon, entries in buckets.values():
        keys = [k for k, _w in entries]
        words = [w for _k, w in entries]
        kwargs: Dict[str, Any] = dict(horizon=horizon, backend=backend)
        if backend != "serial":
            kwargs.update(workers=workers)
            if chunk_size is not None:
                kwargs.update(chunk_size=chunk_size)
        reports = decide_many(tba, words, **kwargs)
        for key, report in zip(keys, reports):
            out[key] = report.verdict
    return out


def online_verdicts(
    runs: List[TransactionRun],
    *,
    batch: bool = True,
    mux_kwargs: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[CheckKey, Verdict], Dict[str, int]]:
    """Stream every run through per-property :class:`SessionMux`\\ es.

    One mux per compiled property automaton (sessions share its
    analysis and compiled tables); one session per (run, process).
    Events are the channel word's prefix plus :data:`ONLINE_TICKS`
    post-horizon ticks.  Returns ``(verdicts, stats)`` where stats
    counts sessions, events fed, and events advanced vectorized.
    """
    from ..stream.session import SessionMux

    muxes: Dict[int, Any] = {}
    feeds: Dict[int, List[Tuple[str, Any, int]]] = {}
    owners: Dict[int, List[Tuple[str, CheckKey]]] = {}
    for i, run in enumerate(runs):
        T = run.report_at
        for name, prop in _suite(run).items():
            tba = to_tba(prop.spec, prop.alphabet)
            mid = id(tba)
            if mid not in muxes:
                muxes[mid] = SessionMux(tba, **(mux_kwargs or {}))
                feeds[mid] = []
                owners[mid] = []
            for proc, word in words_for(run, prop, tail="advancing").items():
                session = f"t{i}:{proc}"
                owners[mid].append((session, (i, name, proc)))
                feed = feeds[mid]
                for sym, t in word.prefix:
                    feed.append((session, sym, t))
                for k in range(1, ONLINE_TICKS + 1):
                    feed.append((session, "tick", T + k))
    out: Dict[CheckKey, Verdict] = {}
    stats = {"sessions": 0, "events": 0, "vectorized": 0}
    for mid, mux in muxes.items():
        events = feeds[mid]
        stats["events"] += len(events)
        if batch:
            stats["vectorized"] += mux.ingest_batch(events)
        else:
            for session, sym, t in events:
                mux.ingest(session, sym, t)
        for session, key in owners[mid]:
            report = mux.close(session)
            out[key] = report.verdict.as_verdict()
            stats["sessions"] += 1
    h = _obs.HOOKS
    if h is not None:
        for key, v in out.items():
            h.count("txn.property_verdicts", property=key[1], verdict=v.value)
    return out, stats


@dataclass
class CrossCheck:
    """Outcome of judging one corpus along every path."""

    runs: int
    checks: int
    mismatches: List[Tuple[CheckKey, str, Verdict, str, Verdict]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.mismatches


def cross_check(
    runs: List[TransactionRun],
    *,
    backends: Tuple[str, ...] = ("serial",),
    workers: int = 2,
) -> CrossCheck:
    """Judge a corpus offline-exact, offline-batched (per backend), and
    online; every path must agree wherever it is applicable."""
    h = _obs.HOOKS
    span = h.span("txn.verify", runs=len(runs)) if h is not None else None
    with span if span is not None else _null():
        exact = offline_exact(runs)
        online, _stats = online_verdicts(runs)
        result = CrossCheck(runs=len(runs), checks=0)
        for key, v in exact.items():
            result.checks += 1
            if online[key] is not v:
                result.mismatches.append((key, "offline-exact", v, "online", online[key]))
        for backend in backends:
            batched = offline_batched(runs, backend=backend, workers=workers)
            for key, v in batched.items():
                result.checks += 1
                if exact[key] is not v:
                    result.mismatches.append(
                        (key, f"batched-{backend}", v, "offline-exact", exact[key])
                    )
    return result


class _null:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


def txn_verdicts(
    run: TransactionRun, verdicts: Dict[CheckKey, Verdict], index: int
) -> Dict[str, Any]:
    """Combine one run's per-process verdicts into the §6 judgements."""
    A = Verdict.ACCEPT
    committed = [p for p in run.processes if verdicts[(index, "commit", p)] is A]
    aborted = [p for p in run.processes if verdicts[(index, "abort", p)] is A]
    survivors = [p for p in run.processes if run.alive(p)]
    return {
        "atomic": not (committed and aborted),
        "all_decided": all(verdicts[(index, "decided", p)] is A for p in survivors),
        "all_fast": all(verdicts[(index, "fast", p)] is A for p in survivors),
        "handshake": verdicts[(index, "handshake", "C")] is A,
        "committed": committed,
        "aborted": aborted,
    }


def corpus_verdicts(
    runs: List[TransactionRun], verdicts: Dict[CheckKey, Verdict]
) -> Dict[str, int]:
    """Aggregate the combined judgements over a corpus."""
    agg = {"runs": len(runs), "atomic": 0, "all_decided": 0, "all_fast": 0, "handshake": 0}
    for i, run in enumerate(runs):
        tv = txn_verdicts(run, verdicts, i)
        for k in ("atomic", "all_decided", "all_fast", "handshake"):
            agg[k] += bool(tv[k])
    return agg
