"""Timed two- and three-phase commit over the kernel (§6 per-process words).

The paper's Section 6 describes a distributed computation as a family
of per-process timed words; this module makes that concrete for the
canonical distributed-database workload: atomic commitment.  A
coordinator ``C`` and participants ``P1..Pn`` exchange
PREPARE/VOTE/PRE-COMMIT/COMMIT/ABORT/ACK messages as processes over
one kernel :class:`~repro.kernel.simulator.Simulator`; every send,
receipt, vote, decision, and crash is recorded as a timed event in
that process's word.  Message delays are drawn per message from
``[d_lo, d_hi]``, loss and extra delay are injected through
:class:`repro.engine.faults.MessageFaults`, and crash injection
(participant or coordinator, with the coordinator's crash placed in a
protocol window: during vote collection, mid-PRE-COMMIT broadcast, or
mid-decision broadcast after ``k`` of ``n`` sends) comes from the same
seeded :class:`~repro.engine.faults.FaultSchedule` — a run is a pure
function of ``(protocol, config, seed)``.

Protocol rules implemented (the textbook presumed-abort variants):

* **2PC** — C broadcasts PREPARE at t=0; each participant votes
  yes/no on receipt (a no-voter aborts unilaterally), or presumed-
  aborts at ``prepare_timeout`` if PREPARE never arrives; C decides
  once the vote round completes (COMMIT on *n* yes votes, else ABORT)
  or ABORT at ``vote_timeout``, applies locally, and broadcasts;
  participants apply on receipt and ACK.
* **3PC** — inserts the PRE-COMMIT round: on *n* yes votes C
  broadcasts PRE-COMMIT, participants become *precommitted* and reply
  READY, and C commits once all READYs arrive or unconditionally at
  ``ack_timeout`` (once PRE-COMMIT is out, commit is the only
  outcome).
* **Termination protocol** — a yes-voter still undecided
  ``decision_timeout`` after voting runs cooperative recovery:
  deterministic global rounds at ``recovery_start + r·round_len``,
  round-``r`` leader ``P(r mod n)``; a leader with a decision relays
  it, otherwise it queries peers and applies the classic rule — any
  *committed* ⇒ commit, else any *aborted* ⇒ abort, else (3PC) any
  *precommitted* ⇒ commit else abort, else (2PC, all uncertain)
  **blocked**, retry next round.

Under crash-only faults this preserves atomicity for both protocols
and blocking-freedom for 3PC (2PC blocks exactly when C dies after
deciding but before any delivery, or mid-vote-collection with every
survivor uncertain); message loss can break 3PC's guarantees — that is
a property of quorum-less 3PC, and the point of verifying the runs
with :mod:`repro.txn.verify` instead of trusting the protocol (see
``docs/txn.md``'s failure matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine.faults import FaultSchedule, MessageFaults
from ..kernel.events import Priority
from ..kernel.simulator import Simulator
from ..obs import hooks as _obs
from ..words.timedword import TimedWord

__all__ = [
    "PROTOCOLS",
    "TxnConfig",
    "TransactionRun",
    "run_transaction",
    "run_many",
    "atomicity_ok",
    "decided_within",
]

PROTOCOLS = ("2pc", "3pc")

#: How the coordinator's recorded events project onto its handshake
#: channel (the per-phase round-trip word judged by ``handshake_spec``).
_HANDSHAKE_PROJECTION = {
    "send_prepare": "prepare",
    "recv_vote": "vote",
    "send_precommit": "precommit",
    "recv_ready": "ready",
    "commit": "decide",
    "abort": "decide",
    "recv_ack": "ack",
}


@dataclass(frozen=True)
class TxnConfig:
    """Knobs of one commit-protocol instance.

    Raw knobs only; every timeout and deadline is derived from
    ``d_hi`` so that a fault-free run always meets the happy-path
    deadline (the derivations are spelled out per property).  Rates
    are probabilities fed to the seeded :class:`FaultSchedule`.
    """

    n_participants: int = 3
    d_lo: int = 1
    d_hi: int = 4
    abort_vote_rate: float = 0.0
    participant_crash_rate: float = 0.0
    coordinator_crash_rate: float = 0.0
    loss_rate: float = 0.0
    delay_rate: float = 0.0
    extra_delay: Tuple[int, int] = (1, 3)

    def __post_init__(self) -> None:
        if self.n_participants < 1:
            raise ValueError(f"need >= 1 participant, got {self.n_participants}")
        if not (0 <= self.d_lo <= self.d_hi):
            raise ValueError(f"need 0 <= d_lo <= d_hi, got [{self.d_lo}, {self.d_hi}]")
        for name in (
            "abort_vote_rate",
            "participant_crash_rate",
            "coordinator_crash_rate",
            "loss_rate",
            "delay_rate",
        ):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        lo, hi = self.extra_delay
        if lo < 0 or hi < lo:
            raise ValueError(
                f"extra_delay must satisfy 0 <= lo <= hi, got {self.extra_delay}"
            )

    # -- derived timeouts (all in chronons from the quantity they bound) --
    @property
    def round_trip(self) -> int:
        """Worst-case request+reply latency without injected delay."""
        return 2 * self.d_hi

    @property
    def vote_timeout(self) -> int:
        """C gives up collecting votes this long after PREPARE."""
        return self.round_trip + 2

    @property
    def prepare_timeout(self) -> int:
        """A participant presumed-aborts if unprepared by here."""
        return self.d_hi + 2

    @property
    def ack_timeout(self) -> int:
        """3PC: C commits this long after PRE-COMMIT regardless."""
        return self.round_trip + 2

    @property
    def round_len(self) -> int:
        """One termination-protocol round: query + gather + relay."""
        return 3 * self.d_hi + 4

    @property
    def max_rounds(self) -> int:
        """Every participant gets one turn as recovery leader."""
        return self.n_participants

    def decision_timeout(self, protocol: str) -> int:
        """Yes-voter's wait (from its vote) before entering recovery."""
        base = self.vote_timeout + self.d_hi + 2
        if protocol == "3pc":
            base += self.ack_timeout + self.d_hi + 2
        return base

    def recovery_start(self, protocol: str) -> int:
        """First recovery round — after any yes-voter could time out."""
        return self.d_hi + self.decision_timeout(protocol) + 1

    def report_at(self, protocol: str) -> int:
        """The observation horizon: every run is reported as of here."""
        return (
            self.recovery_start(protocol) + self.max_rounds * self.round_len + 2
        )

    def happy_deadline(self, protocol: str) -> int:
        """Fault-free decision latency bound (3 one-way hops for 2PC,
        5 for 3PC, plus slack for the timeout-driven commit)."""
        hops = 3 if protocol == "2pc" else 5
        return hops * self.d_hi + 5

    def recovery_deadline(self, protocol: str) -> int:
        """Decision bound covering the full termination protocol."""
        return self.report_at(protocol) - 1


@dataclass
class TransactionRun:
    """One completed (simulated) transaction: the §6 word family.

    ``events`` holds each process's recorded timed word;
    ``decisions`` maps process → ``(decision, time)`` or None;
    ``crashed`` maps process → crash time or None.  ``outcome``
    classifies the global result: ``"commit"``/``"abort"`` (uniform),
    ``"mixed"`` (atomicity violated), ``"blocked"`` (some alive
    process never decided), or ``"stalled"`` (nobody decided and
    nobody survived undecided — everyone relevant crashed).
    """

    protocol: str
    cfg: TxnConfig
    seed: int
    events: Dict[str, List[Tuple[str, int]]]
    decisions: Dict[str, Optional[Tuple[str, int]]]
    crashed: Dict[str, Optional[int]]
    outcome: str
    messages: Dict[str, int] = field(default_factory=dict)
    recovery_rounds: int = 0

    @property
    def report_at(self) -> int:
        return self.cfg.report_at(self.protocol)

    @property
    def processes(self) -> List[str]:
        return list(self.events)

    @property
    def participants(self) -> List[str]:
        return [p for p in self.events if p != "C"]

    def alive(self, proc: str) -> bool:
        return self.crashed[proc] is None

    def process_word(self, proc: str) -> TimedWord:
        """The full recorded per-process word, closed by a tick tail."""
        return self._with_tail(self.events[proc], "advancing")

    def decision_word(self, proc: str, tail: str = "advancing") -> TimedWord:
        """The decision channel: what (if anything) ``proc`` decided.

        One event — ``("commit"|"abort", t)`` at the decision instant,
        or ``("none", report_at)`` for a process still undecided at the
        horizon — then ticks.  ``tail="advancing"`` appends ticks at
        ``report_at+1, report_at+2, …`` (time passes the deadline, so
        online monitors and region acceptance both absorb);
        ``tail="frozen"`` repeats one tick at ``report_at`` with
        ``shift=0``, the zeno shape the machine-replay judges cut off
        and :func:`repro.engine.strategies.resolve_zeno` settles
        exactly — the same language verdict either way for the
        deadline specs of :mod:`repro.txn.properties`.
        """
        dec = self.decisions[proc]
        prefix = [dec] if dec else [("none", self.report_at)]
        return self._with_tail(prefix, tail)

    def handshake_word(self, tail: str = "advancing") -> TimedWord:
        """The coordinator's message round-trip channel (see
        ``_HANDSHAKE_PROJECTION``), closed by a tick tail."""
        prefix = [
            (_HANDSHAKE_PROJECTION[s], t)
            for s, t in self.events["C"]
            if s in _HANDSHAKE_PROJECTION
        ]
        return self._with_tail(prefix, tail)

    def _with_tail(self, prefix: List[Tuple[str, int]], tail: str) -> TimedWord:
        T = self.report_at
        if tail == "frozen":
            return TimedWord.lasso(tuple(prefix), (("tick", T),), 0)
        if tail == "advancing":
            return TimedWord.lasso(tuple(prefix), (("tick", T + 1),), 1)
        raise ValueError(f"tail must be 'advancing' or 'frozen', got {tail!r}")


# -- ground truth (plain-Python oracles for the spec layer) ------------

def atomicity_ok(run: TransactionRun) -> bool:
    """No two processes decided differently (crashed ones included —
    a decision applied before crashing still counts)."""
    seen = {dec for dec in run.decisions.values() if dec is not None}
    return not ({"commit", "abort"} <= {d for d, _t in seen})


def decided_within(run: TransactionRun, deadline: int) -> Dict[str, bool]:
    """Per process: did it decide by ``deadline``?"""
    return {
        p: dec is not None and dec[1] <= deadline
        for p, dec in run.decisions.items()
    }


class _ProtocolSim:
    """One transaction's event-driven execution over the kernel."""

    def __init__(self, protocol: str, cfg: TxnConfig, seed: int):
        if protocol not in PROTOCOLS:
            raise ValueError(f"protocol must be one of {PROTOCOLS}, got {protocol!r}")
        self.protocol = protocol
        self.cfg = cfg
        self.seed = seed
        self.sched = FaultSchedule(seed)
        self.net = MessageFaults(
            seed,
            loss_rate=cfg.loss_rate,
            delay_rate=cfg.delay_rate,
            extra_delay=cfg.extra_delay,
        )
        self.sim = Simulator()
        self.participants = [f"P{i}" for i in range(1, cfg.n_participants + 1)]
        self.procs = ["C"] + self.participants
        self.events: Dict[str, List[Tuple[str, int]]] = {p: [] for p in self.procs}
        self.decisions: Dict[str, Optional[Tuple[str, int]]] = {
            p: None for p in self.procs
        }
        self.crashed: Dict[str, Optional[int]] = {p: None for p in self.procs}
        self.votes_at_c: Dict[str, str] = {}
        self.received_prepare: set = set()
        self.precommitted: set = set()
        self.readys: set = set()
        self.precommit_sent = False
        self.replies: Dict[int, Dict[str, str]] = {}
        self.messages = {"sent": 0, "delivered": 0, "lost": 0}
        self.recovery_rounds = 0
        self._plan_crashes()

    # -- crash plan (drawn up-front from the schedule) -----------------
    def _plan_crashes(self) -> None:
        cfg, sched = self.cfg, self.sched
        self.c_crash_window: Optional[Any] = None
        if sched.chance(cfg.coordinator_crash_rate, "ccrash"):
            windows: List[Any] = ["collect"]
            windows += [("send", k) for k in range(cfg.n_participants)]
            if self.protocol == "3pc":
                windows += [("precommit", k) for k in range(cfg.n_participants)]
            self.c_crash_window = windows[
                sched.pick(0, len(windows) - 1, "ccrash-window")
            ]
        self.p_crash_at: Dict[str, int] = {}
        for p in self.participants:
            if sched.chance(cfg.participant_crash_rate, "pcrash", p):
                self.p_crash_at[p] = sched.pick(0, 2 * cfg.d_hi, "pcrash-t", p)

    # -- tiny kernel helpers -------------------------------------------
    def at(self, t: int, fn: Callable[[], None], high: bool = False) -> None:
        ev = self.sim.timeout(
            t - self.sim.now, priority=Priority.HIGH if high else Priority.NORMAL
        )
        ev.add_callback(lambda _ev: fn())

    def dead(self, p: str) -> bool:
        return self.crashed[p] is not None

    def crash(self, p: str) -> None:
        if self.dead(p):
            return
        self.crashed[p] = self.sim.now
        self.record(p, "crash")

    def record(self, p: str, symbol: str) -> None:
        self.events[p].append((symbol, self.sim.now))

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        fn: Callable[[int], None],
        attempt: int = 0,
    ) -> None:
        """Queue one message; loss/extra delay via the fault schedule."""
        self.messages["sent"] += 1
        base = self.sched.pick(
            self.cfg.d_lo, self.cfg.d_hi, "net-delay", kind, src, dst, attempt
        )
        final = self.net.apply(src, dst, kind, base, attempt)
        h = _obs.HOOKS
        if final is None:
            self.messages["lost"] += 1
            if h is not None:
                h.count("txn.messages", kind=kind, outcome="lost")
            return
        if h is not None:
            h.count("txn.messages", kind=kind, outcome="sent")

        def deliver() -> None:
            if self.dead(dst):
                return
            self.messages["delivered"] += 1
            fn(self.sim.now)

        self.at(self.sim.now + final, deliver)

    # -- execution ------------------------------------------------------
    def run(self) -> TransactionRun:
        cfg = self.cfg
        # Planned crashes fire at HIGH priority so a crash at t blocks
        # same-instant deliveries/actions deterministically.
        for p, tc in self.p_crash_at.items():
            self.at(tc, lambda p=p: self.crash(p), high=True)
        if self.c_crash_window == "collect":
            tc = self.sched.pick(1, cfg.vote_timeout - 1, "ccrash-t")
            self.at(tc, lambda: self.crash("C"), high=True)
        self.record("C", "send_prepare")
        for p in self.participants:
            self.send("C", p, "prepare", lambda t, p=p: self.on_prepare(p, t))
        self.at(cfg.prepare_timeout, self.on_prepare_timeout)
        self.at(cfg.vote_timeout, self.on_vote_timeout)
        start = cfg.recovery_start(self.protocol)
        for r in range(cfg.max_rounds):
            self.at(start + r * cfg.round_len, lambda r=r: self.run_round(r))
        self.sim.run(until=cfg.report_at(self.protocol))
        return TransactionRun(
            protocol=self.protocol,
            cfg=cfg,
            seed=self.seed,
            events=self.events,
            decisions=self.decisions,
            crashed=self.crashed,
            outcome=self._classify(),
            messages=dict(self.messages),
            recovery_rounds=self.recovery_rounds,
        )

    def _classify(self) -> str:
        made = {d for d in self.decisions.values() if d is not None}
        values = {d for d, _t in made}
        if {"commit", "abort"} <= values:
            return "mixed"
        if any(
            not self.dead(p) and self.decisions[p] is None for p in self.procs
        ):
            return "blocked"
        if not values:
            return "stalled"
        return next(iter(values))

    # -- participant side ----------------------------------------------
    def on_prepare(self, p: str, t: int) -> None:
        if self.dead(p):
            return
        self.record(p, "recv_prepare")
        self.received_prepare.add(p)
        if self.decisions[p] is not None:
            return  # already presumed-aborted (late PREPARE)
        votes_no = self.sched.chance(self.cfg.abort_vote_rate, "vote", p)
        self.record(p, "vote_no" if votes_no else "vote_yes")
        if votes_no:
            self.apply_decision(p, "abort")  # unilateral: no ⇒ abort
        vote = "no" if votes_no else "yes"
        self.send(p, "C", "vote", lambda t2, p=p, v=vote: self.on_vote(p, v, t2))
        if not votes_no:
            self.at(
                t + self.cfg.decision_timeout(self.protocol),
                lambda p=p: self.on_decision_timeout(p),
            )

    def on_prepare_timeout(self) -> None:
        for p in self.participants:
            if (
                self.dead(p)
                or p in self.received_prepare
                or self.decisions[p] is not None
            ):
                continue
            self.record(p, "timeout")
            self.apply_decision(p, "abort")  # presumed abort: never prepared

    def on_decision_timeout(self, p: str) -> None:
        if self.dead(p) or self.decisions[p] is not None:
            return
        self.record(p, "timeout")  # enters the termination protocol

    def on_precommit(self, p: str, t: int) -> None:
        if self.dead(p) or self.decisions[p] is not None:
            return
        self.record(p, "recv_precommit")
        self.precommitted.add(p)
        self.record(p, "send_ready")
        self.send(p, "C", "ready", lambda t2, p=p: self.on_ready(p, t2))

    def on_decision(self, p: str, dec: str, t: int, ack: bool) -> None:
        if self.dead(p):
            return
        self.record(p, "recv_decision")
        if self.decisions[p] is None:
            self.apply_decision(p, dec)
        if ack:
            self.record(p, "send_ack")
            self.send(p, "C", "ack", lambda t2: self.on_ack(t2))

    # -- coordinator side ----------------------------------------------
    def on_vote(self, p: str, vote: str, t: int) -> None:
        if self.dead("C"):
            return
        self.record("C", "recv_vote")
        self.votes_at_c[p] = vote
        if self.decisions["C"] is not None or self.precommit_sent:
            return
        # C waits for the full vote round (not just the first "no"), so
        # the handshake channel always reads vote×n before the decision.
        if len(self.votes_at_c) == self.cfg.n_participants:
            if all(v == "yes" for v in self.votes_at_c.values()):
                if self.protocol == "3pc":
                    self.do_precommit()
                else:
                    self.coordinator_decide("commit")
            else:
                self.coordinator_decide("abort")

    def on_vote_timeout(self) -> None:
        if self.dead("C") or self.decisions["C"] is not None or self.precommit_sent:
            return
        self.record("C", "timeout")
        self.coordinator_decide("abort")  # missing/no votes ⇒ presumed abort

    def do_precommit(self) -> None:
        self.precommit_sent = True
        self.record("C", "send_precommit")
        crash_k = (
            self.c_crash_window[1]
            if isinstance(self.c_crash_window, tuple)
            and self.c_crash_window[0] == "precommit"
            else None
        )
        for i, p in enumerate(self.participants):
            if crash_k is not None and i >= crash_k:
                break
            self.send("C", p, "precommit", lambda t, p=p: self.on_precommit(p, t))
        if crash_k is not None:
            self.crash("C")
            return
        self.at(self.sim.now + self.cfg.ack_timeout, self.on_ack_timeout)

    def on_ready(self, p: str, t: int) -> None:
        if self.dead("C"):
            return
        self.record("C", "recv_ready")
        self.readys.add(p)
        if (
            len(self.readys) == self.cfg.n_participants
            and self.decisions["C"] is None
        ):
            self.coordinator_decide("commit")

    def on_ack_timeout(self) -> None:
        if self.dead("C") or self.decisions["C"] is not None:
            return
        self.coordinator_decide("commit")  # PRE-COMMIT out ⇒ commit (Skeen)

    def on_ack(self, t: int) -> None:
        if self.dead("C"):
            return
        self.record("C", "recv_ack")

    def coordinator_decide(self, dec: str) -> None:
        if self.dead("C") or self.decisions["C"] is not None:
            return
        self.apply_decision("C", dec)
        self.record("C", "send_decision")
        crash_k = (
            self.c_crash_window[1]
            if isinstance(self.c_crash_window, tuple)
            and self.c_crash_window[0] == "send"
            else None
        )
        for i, p in enumerate(self.participants):
            if crash_k is not None and i >= crash_k:
                break
            self.send(
                "C", p, "decision",
                lambda t, p=p, d=dec: self.on_decision(p, d, t, ack=True),
            )
        if crash_k is not None:
            self.crash("C")

    def apply_decision(self, p: str, dec: str) -> None:
        assert self.decisions[p] is None
        self.decisions[p] = (dec, self.sim.now)
        self.record(p, dec)
        h = _obs.HOOKS
        if h is not None:
            h.count("txn.decisions", decision=dec)

    # -- termination protocol ------------------------------------------
    def state_of(self, p: str) -> str:
        dec = self.decisions[p]
        if dec is not None:
            return "committed" if dec[0] == "commit" else "aborted"
        if p in self.precommitted:
            return "precommitted"
        return "uncertain"

    def run_round(self, r: int) -> None:
        undecided = [
            p
            for p in self.participants
            if not self.dead(p) and self.decisions[p] is None
        ]
        if not undecided:
            return
        self.recovery_rounds += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("txn.recovery_rounds")
        leader = self.participants[r % self.cfg.n_participants]
        if self.dead(leader):
            return
        if self.decisions[leader] is not None:
            self._relay(leader, self.decisions[leader][0], r)
            return
        self.record(leader, "query")
        for p in self.participants:
            if p == leader:
                continue
            self.send(
                leader, p, "query",
                lambda t, p=p, r=r, L=leader: self.on_query(p, L, r, t),
                attempt=r,
            )
        self.at(
            self.sim.now + self.cfg.round_trip + 1,
            lambda r=r, L=leader: self.on_gather(L, r),
        )

    def on_query(self, p: str, leader: str, r: int, t: int) -> None:
        if self.dead(p):
            return
        self.record(p, "state")
        self.send(
            p, leader, "state",
            lambda t2, p=p, st=self.state_of(p), r=r, L=leader: self.on_state(
                L, p, st, r, t2
            ),
            attempt=r,
        )

    def on_state(self, leader: str, p: str, st: str, r: int, t: int) -> None:
        if self.dead(leader):
            return
        self.replies.setdefault(r, {})[p] = st

    def on_gather(self, leader: str, r: int) -> None:
        if self.dead(leader) or self.decisions[leader] is not None:
            return
        states = dict(self.replies.get(r, {}))
        states[leader] = self.state_of(leader)
        values = set(states.values())
        if "committed" in values:
            dec = "commit"
        elif "aborted" in values:
            dec = "abort"
        elif self.protocol == "3pc":
            dec = "commit" if "precommitted" in values else "abort"
        else:
            return  # 2PC, every reachable peer uncertain: blocked
        self.apply_decision(leader, dec)
        self._relay(leader, dec, r)

    def _relay(self, leader: str, dec: str, r: int) -> None:
        self.record(leader, "send_decision")
        for p in self.participants:
            if p == leader:
                continue
            self.send(
                leader, p, "rdecision",
                lambda t, p=p, d=dec: self.on_decision(p, d, t, ack=False),
                attempt=r,
            )


def run_transaction(protocol: str, cfg: TxnConfig, seed: int) -> TransactionRun:
    """Execute one seeded transaction; pure in ``(protocol, cfg, seed)``."""
    h = _obs.HOOKS
    if h is None:
        run = _ProtocolSim(protocol, cfg, seed).run()
    else:
        with h.span("txn.run", protocol=protocol, seed=seed):
            run = _ProtocolSim(protocol, cfg, seed).run()
    if h is not None:
        h.count("txn.transactions", protocol=protocol, outcome=run.outcome)
        for p, tc in run.crashed.items():
            if tc is not None:
                h.count("txn.crashes", role="coordinator" if p == "C" else "participant")
    return run


def run_many(
    protocol: str, cfg: TxnConfig, seeds: List[int]
) -> List[TransactionRun]:
    """One :func:`run_transaction` per seed (the corpus generator)."""
    return [run_transaction(protocol, cfg, seed) for seed in seeds]
