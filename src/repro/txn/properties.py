"""Commit-protocol properties as timer-bound specs (§4.1 deadlines).

Each property is a :mod:`repro.spec` combinator spec judged against a
*channel* — a projection of one process's recorded word
(:meth:`~repro.txn.protocol.TransactionRun.decision_word` or
:meth:`~repro.txn.protocol.TransactionRun.handshake_word`).  The
per-process shape is deliberate: atomicity is a relation *between*
words (no single ω-word sees both P1's COMMIT and P2's ABORT), so it
is judged by combining per-process verdicts in
:mod:`repro.txn.verify`, exactly how the paper's §6 treats a
distributed computation as a family of per-process words.

Property table (``T`` = ``recovery_deadline``, ``D`` =
``happy_deadline``, both from :class:`~repro.txn.protocol.TxnConfig`):

==============  ==========  =============================================
property        channel     meaning (ACCEPT ⟺ …)
==============  ==========  =============================================
``commit``      decision    the process applied COMMIT by ``T``
``abort``       decision    the process applied ABORT by ``T``
``decided``     decision    it decided (either way) by ``T`` — the
                            blocking-freedom instance, via ``alt``
``fast``        decision    it decided by the fault-free bound ``D``
``handshake``   handshake   C's full message round trip completed with
                            every per-phase budget met (3PC: the
                            commit-shaped round trip — an abort outcome
                            skips PRE-COMMIT/READY and rejects)
==============  ==========  =============================================

``commit``/``abort``/``handshake`` compile to deterministic chain TBAs
(machine-replayable, shardable); ``decided``/``fast`` use
:func:`~repro.spec.combinators.alt` and are judged on the exact and
online paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..spec.combinators import (
    Spec,
    alt,
    eventually,
    is_deterministic_spec,
    rt_bound,
    seq,
)
from .protocol import TransactionRun, TxnConfig

__all__ = [
    "DECISION_ALPHABET",
    "HANDSHAKE_ALPHABET",
    "Property",
    "commit_spec",
    "abort_spec",
    "decision_spec",
    "handshake_spec",
    "properties_for",
    "words_for",
]

#: Symbols of the per-process decision channel.
DECISION_ALPHABET: Tuple[str, ...] = ("abort", "commit", "none", "tick")

#: Symbols of the coordinator's handshake channel (both protocols share
#: one alphabet; 2PC words simply never contain precommit/ready).
HANDSHAKE_ALPHABET: Tuple[str, ...] = (
    "ack",
    "decide",
    "precommit",
    "prepare",
    "ready",
    "tick",
    "vote",
)


@dataclass(frozen=True)
class Property:
    """One named spec plus where to read its words from a run."""

    name: str
    spec: Spec
    alphabet: Tuple[str, ...]
    channel: str  # "decision" (every process) | "handshake" (C only)

    @property
    def deterministic(self) -> bool:
        return is_deterministic_spec(self.spec)


def commit_spec(deadline: int) -> Spec:
    """COMMIT applied within ``deadline`` of transaction start."""
    return eventually(rt_bound("commit", 0, deadline))


def abort_spec(deadline: int) -> Spec:
    """ABORT applied within ``deadline`` of transaction start."""
    return eventually(rt_bound("abort", 0, deadline))


def decision_spec(deadline: int) -> Spec:
    """Some decision within ``deadline`` (commit ∨ abort; ``alt``)."""
    return alt(commit_spec(deadline), abort_spec(deadline))


def handshake_spec(cfg: TxnConfig, protocol: str) -> Spec:
    """C's round trip with per-phase budgets from the config.

    Phase budgets: PREPARE is sent at the start; each of the *n* votes
    arrives within a round trip of the previous edge; 3PC's PRE-COMMIT
    goes out as the last vote lands and READYs mirror the vote round;
    the decision lands immediately (2PC) or by ``ack_timeout`` after
    the last READY (3PC's timeout-driven commit); ACKs mirror the vote
    round again.
    """
    n = cfg.n_participants
    vote_round = cfg.round_trip + 1
    phases = [rt_bound("prepare", 0, 1)]
    phases += [rt_bound("vote", 0, vote_round)] * n
    if protocol == "3pc":
        phases += [rt_bound("precommit", 0, 2)]
        phases += [rt_bound("ready", 0, vote_round)] * n
        phases += [rt_bound("decide", 0, cfg.ack_timeout + 2)]
    else:
        phases += [rt_bound("decide", 0, 2)]
    phases += [rt_bound("ack", 0, vote_round)] * n
    return eventually(seq(*phases))


def properties_for(cfg: TxnConfig, protocol: str) -> Dict[str, Property]:
    """The property suite for one (config, protocol) pair."""
    T = cfg.recovery_deadline(protocol)
    D = cfg.happy_deadline(protocol)
    return {
        "commit": Property("commit", commit_spec(T), DECISION_ALPHABET, "decision"),
        "abort": Property("abort", abort_spec(T), DECISION_ALPHABET, "decision"),
        "decided": Property(
            "decided", decision_spec(T), DECISION_ALPHABET, "decision"
        ),
        "fast": Property("fast", decision_spec(D), DECISION_ALPHABET, "decision"),
        "handshake": Property(
            "handshake", handshake_spec(cfg, protocol), HANDSHAKE_ALPHABET, "handshake"
        ),
    }


def words_for(
    run: TransactionRun, prop: Property, tail: str = "advancing"
) -> Dict[str, Any]:
    """The channel words this property judges, keyed by process."""
    if prop.channel == "handshake":
        return {"C": run.handshake_word(tail)}
    return {p: run.decision_word(p, tail) for p in run.processes}
