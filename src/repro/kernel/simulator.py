"""The discrete-event simulator: generator-based cooperative processes.

This is the execution substrate for every acceptor, database sampler,
and network node in the reproduction.  A *process* is a Python
generator that yields :class:`~repro.kernel.events.Event` objects; the
simulator resumes it with the event's value when the event fires.

Design notes
------------
* **Discrete time.**  ``Simulator(integer_time=True)`` (the default)
  enforces integer timestamps, matching the paper's discrete chronon
  model (Definition 3.1).  Dense-time experiments may disable it.
* **Determinism.**  Equal-time events run in FIFO order within each
  priority band, so a simulation is a pure function of its inputs —
  essential for the benchmark harness.
* **No wall-clock coupling.**  Simulated time advances only through the
  event list; a million chronons of idle time cost O(1).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from ..obs import hooks as _obs
from .events import (
    AllOf,
    AnyOf,
    Event,
    EventQueue,
    Interrupt,
    Priority,
    SimulationError,
    Timeout,
)

__all__ = ["Simulator", "Process", "ProcessDied", "StopSimulation"]

ProcessGenerator = Generator[Event, Any, Any]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class ProcessDied(SimulationError):
    """Raised when interacting with a process that already terminated."""


class Process(Event):
    """A running generator; also an event that fires on termination.

    Waiting on a process (``yield other_process``) blocks until it
    returns; its return value becomes the waiter's resumed value.  This
    mirrors the two-process acceptor structure of Section 4.1, where
    the monitor :math:`P_m` observes the worker :math:`P_w`.
    """

    __slots__ = ("generator", "_target", "_interrupts")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Bootstrap: resume the generator at the current instant.
        boot = Event(sim, name=f"init:{self.name}")
        boot.add_callback(self._resume)
        boot.succeed(priority=Priority.URGENT)

    # -- public API -----------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process raises :class:`ProcessDied`; a
        process cannot interrupt itself.
        """
        if not self.is_alive:
            raise ProcessDied(f"cannot interrupt terminated process {self.name!r}")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        self._interrupts.append(Interrupt(cause))
        wake = Event(self.sim, name=f"interrupt:{self.name}")
        wake.add_callback(self._resume)
        wake.succeed(priority=Priority.URGENT)

    # -- kernel ----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if not self.is_alive:
            return
        # Detach from the event we were waiting on (if any).
        self._target = None
        self.sim.active_process = self
        try:
            if self._interrupts:
                exc = self._interrupts.pop(0)
                target = self.generator.throw(exc)
            elif trigger.ok:
                target = self.generator.send(trigger.value)
            else:
                target = self.generator.throw(trigger.value)
        except StopIteration as stop:
            self._mark(failed=False)
            self._value = stop.value
            self._fire_callbacks()
            return
        except StopSimulation:
            raise
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._mark(failed=True)
            self._value = exc
            if not self._fire_callbacks():
                # Nobody is watching this process: crash the simulation
                # rather than swallow the error.
                raise
            return
        finally:
            self.sim.active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        self._target = target
        target.add_callback(self._resume)

    def _fire_callbacks(self) -> bool:
        callbacks, self.callbacks = self.callbacks, None
        had = bool(callbacks)
        for fn in callbacks or ():
            fn(self)
        return had


class Simulator:
    """Discrete-event simulation environment.

    Typical usage::

        sim = Simulator()

        def producer(sim, channel):
            for i in range(3):
                yield sim.timeout(5)
                yield channel.put(i)

        chan = Channel(sim)
        sim.process(producer(sim, chan))
        sim.run(until=100)
    """

    def __init__(self, start: Any = 0, integer_time: bool = True):
        self.now: Any = start
        self._queue = EventQueue()
        self.active_process: Optional[Process] = None
        self.integer_time = integer_time
        self._tracer = None  # set by kernel.trace.Tracer
        if integer_time and int(start) != start:
            raise SimulationError(f"non-integer start time {start!r} with integer_time=True")

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: Any = 0, priority: Priority = Priority.NORMAL, failed: bool = False) -> None:
        """Insert ``event`` into the event list ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        when = self.now + delay
        if self.integer_time and int(when) != when:
            raise SimulationError(f"non-integer event time {when!r} with integer_time=True")
        self._queue.push(when, priority, event, failed)
        h = _obs.HOOKS
        if h is not None:
            h.kernel_scheduled()

    # -- event factories ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: Any, value: Any = None, priority: Priority = Priority.NORMAL) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a running process."""
        h = _obs.HOOKS
        if h is not None:
            h.kernel_process_started()
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all children have fired."""
        return AllOf(self, events)

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Pop and dispatch exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event list")
        when, event, failed = self._queue.pop()
        if when < self.now:
            raise SimulationError("event list corrupted: time went backwards")
        self.now = when
        event._mark(failed)
        if self._tracer is not None:
            self._tracer.record(when, event.name or type(event).__name__, not failed)
        h = _obs.HOOKS
        if h is not None:
            h.kernel_event(not failed)
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks or ():
            fn(event)

    def run(self, until: Any = None) -> Any:
        """Run until the event list drains, ``until`` time passes, or an
        ``until`` event fires (when an :class:`Event` is supplied).

        Returns the value of the ``until`` event if one was given and it
        fired, else ``None``.
        """
        h = _obs.HOOKS
        if h is None:
            return self._run(until)
        with h.span("kernel.run", until=str(until), start_at=str(self.now)):
            try:
                return self._run(until)
            finally:
                h.kernel_run_done(len(self._queue))

    def _run(self, until: Any = None) -> Any:
        stop_value: Any = None
        if isinstance(until, Event):
            sentinel = until

            def _halt(ev: Event) -> None:
                if ev.ok:
                    raise StopSimulation(ev.value)
                raise ev.value  # the until-event failed: surface its exception

            if sentinel.triggered:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            sentinel.add_callback(_halt)
            horizon = None
        else:
            horizon = until

        try:
            while self._queue:
                if horizon is not None and self._queue.peek_time() > horizon:
                    self.now = horizon
                    return None
                self.step()
        except StopSimulation as stop:
            stop_value = stop.value
            return stop_value
        if horizon is not None:
            self.now = horizon
        return stop_value

    def peek(self) -> Any:
        """Time of the next scheduled event, or ``None`` if drained."""
        return self._queue.peek_time() if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)
