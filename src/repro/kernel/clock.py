"""Clocks and clock constraints Φ(X) — Section 2.1 of the paper.

A *clock* is a variable over time whose value is the time elapsed since
it was last reset; the only operations are *read* and *reset* (paper,
Section 2.1).  A *clock constraint* ``d ∈ Φ(X)`` has one of the forms

    x ≤ c   |   c ≤ x   |   ¬d₁   |   d₁ ∧ d₂

with ``c`` a constant and ``x ∈ X``.  Derived forms (<, ≥ strictness,
equality, disjunction) are provided as sugar and compile to the four
primitive forms, exactly as in Alur & Dill [10].

These constraints guard transitions of the timed Büchi automata in
:mod:`repro.automata.timed`.  Clock *valuations* ν : C → time are plain
dicts here; :class:`ClockValuation` adds the two evolution operations a
TBA run needs: uniform time elapse and selective reset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Union

from .simulator import Simulator

__all__ = [
    "Clock",
    "ClockConstraint",
    "Le",
    "Ge",
    "Not",
    "And",
    "TrueConstraint",
    "lt",
    "gt",
    "eq",
    "Or",
    "ClockValuation",
]

Number = Union[int, float]


class Clock:
    """A resettable stopwatch bound to a :class:`Simulator`.

    ``read()`` returns the time elapsed since the most recent
    ``reset()`` (or since creation).
    """

    __slots__ = ("sim", "name", "_origin")

    def __init__(self, sim: Simulator, name: str = "x"):
        self.sim = sim
        self.name = name
        self._origin = sim.now

    def reset(self) -> None:
        """Reset the clock to zero at the current instant."""
        self._origin = self.sim.now

    def read(self) -> Number:
        """Time elapsed since the last reset."""
        return self.sim.now - self._origin

    def __repr__(self) -> str:  # pragma: no cover
        return f"Clock({self.name}={self.read()})"


class ClockConstraint:
    """Base class of the Φ(X) constraint AST."""

    def evaluate(self, valuation: Mapping[str, Number]) -> bool:
        """Truth value of the constraint under ``valuation``."""
        raise NotImplementedError

    def clocks(self) -> FrozenSet[str]:
        """The set of clock names mentioned in the constraint."""
        raise NotImplementedError

    # Operator sugar: d1 & d2, ~d, d1 | d2.
    def __and__(self, other: "ClockConstraint") -> "ClockConstraint":
        return And(self, other)

    def __invert__(self) -> "ClockConstraint":
        return Not(self)

    def __or__(self, other: "ClockConstraint") -> "ClockConstraint":
        return Or(self, other)


@dataclass(frozen=True)
class TrueConstraint(ClockConstraint):
    """The vacuous guard (empty conjunction)."""

    def evaluate(self, valuation: Mapping[str, Number]) -> bool:
        return True

    def clocks(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Le(ClockConstraint):
    """``x ≤ c``."""

    clock: str
    bound: Number

    def evaluate(self, valuation: Mapping[str, Number]) -> bool:
        return valuation[self.clock] <= self.bound

    def clocks(self) -> FrozenSet[str]:
        return frozenset({self.clock})

    def __repr__(self) -> str:
        return f"({self.clock} ≤ {self.bound})"


@dataclass(frozen=True)
class Ge(ClockConstraint):
    """``c ≤ x``."""

    clock: str
    bound: Number

    def evaluate(self, valuation: Mapping[str, Number]) -> bool:
        return valuation[self.clock] >= self.bound

    def clocks(self) -> FrozenSet[str]:
        return frozenset({self.clock})

    def __repr__(self) -> str:
        return f"({self.bound} ≤ {self.clock})"


@dataclass(frozen=True)
class Not(ClockConstraint):
    """``¬d``."""

    inner: ClockConstraint

    def evaluate(self, valuation: Mapping[str, Number]) -> bool:
        return not self.inner.evaluate(valuation)

    def clocks(self) -> FrozenSet[str]:
        return self.inner.clocks()

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


@dataclass(frozen=True)
class And(ClockConstraint):
    """``d₁ ∧ d₂``."""

    left: ClockConstraint
    right: ClockConstraint

    def evaluate(self, valuation: Mapping[str, Number]) -> bool:
        return self.left.evaluate(valuation) and self.right.evaluate(valuation)

    def clocks(self) -> FrozenSet[str]:
        return self.left.clocks() | self.right.clocks()

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


# -- derived forms (compile to the primitive grammar) --------------------

def lt(clock: str, bound: Number) -> ClockConstraint:
    """``x < c``  ≡  ``x ≤ c ∧ ¬(c ≤ x)``."""
    return And(Le(clock, bound), Not(Ge(clock, bound)))


def gt(clock: str, bound: Number) -> ClockConstraint:
    """``x > c``  ≡  ``c ≤ x ∧ ¬(x ≤ c)``."""
    return And(Ge(clock, bound), Not(Le(clock, bound)))


def eq(clock: str, bound: Number) -> ClockConstraint:
    """``x = c``  ≡  ``x ≤ c ∧ c ≤ x``."""
    return And(Le(clock, bound), Ge(clock, bound))


def Or(left: ClockConstraint, right: ClockConstraint) -> ClockConstraint:
    """``d₁ ∨ d₂``  ≡  ``¬(¬d₁ ∧ ¬d₂)`` (De Morgan, stays in Φ(X))."""
    return Not(And(Not(left), Not(right)))


class ClockValuation(Dict[str, Number]):
    """ν : C → time with the two evolutions a TBA run performs.

    Per the run rule (paper eq. (1)): between consecutive input symbols
    all clocks advance by the inter-arrival gap, then the transition's
    reset set is zeroed.
    """

    @classmethod
    def zero(cls, clocks: Iterable[str]) -> "ClockValuation":
        """ν₀ with every clock at 0 (initial condition of eq. (1))."""
        return cls({c: 0 for c in clocks})

    def advanced(self, delta: Number) -> "ClockValuation":
        """The valuation ν + δ (uniform elapse); non-destructive."""
        if delta < 0:
            raise ValueError(f"time cannot flow backwards (delta={delta!r})")
        return ClockValuation({c: v + delta for c, v in self.items()})

    def reset(self, clocks: Iterable[str]) -> "ClockValuation":
        """Copy with the given clocks zeroed (transition reset set l)."""
        out = ClockValuation(self)
        for c in clocks:
            if c not in out:
                raise KeyError(f"reset of unknown clock {c!r}")
            out[c] = 0
        return out
