"""Shared resources for kernel processes: stores, channels, resources.

These are the communication substrate for the paper's explicit
parallel/distributed model (Section 6): processes exchange messages
through :class:`Channel` objects, which is exactly the "communicate
with each other by messages" assumption of that section.  The
:class:`Resource` type supports contention experiments (e.g. the
real-time database transaction manager in :mod:`repro.rtdb`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, List, Optional, TypeVar

from .events import Event, Priority, SimulationError
from .simulator import Simulator

__all__ = ["Store", "Channel", "Resource", "ResourceRequest"]

T = TypeVar("T")


class Store(Generic[T]):
    """An unbounded-or-bounded FIFO buffer of items.

    ``put`` blocks while the store is full (bounded case); ``get``
    blocks while it is empty.  FIFO service order on both sides keeps
    simulations deterministic.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, T]] = deque()

    def put(self, item: T) -> Event:
        """Event that fires once ``item`` has been deposited."""
        ev = self.sim.event(name="store.put")
        if self.capacity is None or len(self.items) < self.capacity:
            self._deposit(item)
            ev.succeed(priority=Priority.HIGH)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = self.sim.event(name="store.get")
        if self.items:
            ev.succeed(self.items.popleft(), priority=Priority.HIGH)
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def _deposit(self, item: T) -> None:
        if self._getters:
            self._getters.popleft().succeed(item, priority=Priority.HIGH)
        else:
            self.items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self.items) < self.capacity):
            ev, item = self._putters.popleft()
            self._deposit(item)
            ev.succeed(priority=Priority.HIGH)

    def __len__(self) -> int:
        return len(self.items)


class Channel(Store[T]):
    """A message channel: a Store with optional per-message latency.

    A channel with ``latency=d`` delivers each message ``d`` time units
    after the put — the one-chronon message hop of Section 5.2.1
    ("transmitting a message takes one time unit") is ``latency=1``.
    """

    def __init__(self, sim: Simulator, latency: Any = 0, capacity: Optional[int] = None):
        super().__init__(sim, capacity=capacity)
        if latency < 0:
            raise SimulationError(f"negative channel latency {latency!r}")
        self.latency = latency

    def put(self, item: T) -> Event:
        if self.latency == 0:
            return super().put(item)
        done = self.sim.event(name="channel.put")

        def _deliver(_ev: Event) -> None:
            self._deposit(item)
            done.succeed(priority=Priority.HIGH)

        self.sim.timeout(self.latency).add_callback(_deliver)
        return done


class ResourceRequest(Event):
    """The event handed out by :meth:`Resource.request`.

    Also usable as a context token: pass it back to
    :meth:`Resource.release` when done.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim, name="resource.request")
        self.resource = resource


class Resource:
    """A counted resource with FIFO or priority-free semantics.

    ``capacity`` concurrent holders are admitted; further requests
    queue.  Used by the RTDB transaction scheduler and by contention
    ablations.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self._waiting: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        """Event firing once a slot is granted."""
        req = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req, priority=Priority.HIGH)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: ResourceRequest) -> None:
        """Return a granted slot; admits the next waiter, if any."""
        try:
            self.users.remove(req)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource") from None
        if self._waiting:
            nxt = self._waiting.popleft()
            self.users.append(nxt)
            nxt.succeed(nxt, priority=Priority.HIGH)
