"""Discrete-event simulation kernel.

The substrate every other subsystem runs on: a deterministic,
generator-based event simulator with discrete (integer) time by
default, message channels, counted resources, and the clock/constraint
machinery of Section 2.1.
"""

from .clock import (
    And,
    Clock,
    ClockConstraint,
    ClockValuation,
    Ge,
    Le,
    Not,
    Or,
    TrueConstraint,
    eq,
    gt,
    lt,
)
from .events import (
    AllOf,
    AnyOf,
    Event,
    EventQueue,
    EventState,
    Interrupt,
    Priority,
    SimulationError,
    Timeout,
)
from .resources import Channel, Resource, ResourceRequest, Store
from .trace import TraceRecord, Tracer
from .simulator import Process, ProcessDied, Simulator, StopSimulation

__all__ = [
    "Simulator",
    "Process",
    "ProcessDied",
    "StopSimulation",
    "Event",
    "EventQueue",
    "EventState",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Priority",
    "SimulationError",
    "Store",
    "Channel",
    "Resource",
    "ResourceRequest",
    "Clock",
    "ClockConstraint",
    "ClockValuation",
    "Le",
    "Ge",
    "Not",
    "And",
    "Or",
    "TrueConstraint",
    "lt",
    "gt",
    "eq",
    "Tracer",
    "TraceRecord",
]
