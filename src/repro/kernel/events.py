"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-list architecture: every future
state change is an :class:`Event` held in an :class:`EventQueue` keyed
by ``(time, priority, sequence)``.  Processes (see
:mod:`repro.kernel.simulator`) are generators that yield events; the
simulator resumes a process when the event it waits on is triggered.

Time is *discrete* by default, following the paper's Definition 3.1
("we consider [time] to be discrete, since in essence the time
perceived by a computer is discrete as well").  The queue itself is
agnostic to the numeric type, so dense-time experiments (e.g. the
Alur-Dill comparison in :mod:`repro.automata.timed`) can reuse it.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, Callable, Iterable, List, Optional, Tuple

__all__ = [
    "EventState",
    "Priority",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "EventQueue",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations.

    Examples: scheduling an event in the past, triggering an event
    twice, or running a simulator whose event list is corrupted.
    """


class Interrupt(Exception):
    """Thrown *into* a process generator to interrupt its current wait.

    The ``cause`` attribute carries an arbitrary payload supplied by
    the interrupter (for instance, a deadline monitor cancelling a
    worker in the Section 4.1 acceptor).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class EventState(IntEnum):
    """Lifecycle of an :class:`Event`."""

    PENDING = 0  #: created, not yet scheduled to fire
    SCHEDULED = 1  #: in the event queue with a firing time
    TRIGGERED = 2  #: fired; callbacks have run or are running
    FAILED = 3  #: fired exceptionally; value is an exception


class Priority(IntEnum):
    """Tie-breaking priorities for events scheduled at the same time.

    Lower values run first.  ``URGENT`` is used by the kernel itself
    (e.g. interrupt delivery), ``HIGH`` by infrastructure such as input
    tapes making symbols available *before* user processes inspect the
    tape at the same instant, ``NORMAL`` by ordinary process wakeups.
    """

    URGENT = 0
    HIGH = 1
    NORMAL = 2
    LOW = 3


class Event:
    """A one-shot occurrence that processes may wait on.

    An event is *triggered* at most once, with a value (``succeed``) or
    an exception (``fail``).  Callbacks attached before triggering run
    when the simulator pops the event; callbacks attached afterwards
    run immediately.
    """

    __slots__ = ("sim", "callbacks", "_value", "_state", "name")

    def __init__(self, sim: "Any", name: str = ""):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._state = EventState.PENDING
        self.name = name

    # -- introspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._state in (EventState.TRIGGERED, EventState.FAILED)

    @property
    def ok(self) -> bool:
        """True iff the event fired successfully."""
        return self._state == EventState.TRIGGERED

    @property
    def value(self) -> Any:
        """The value the event fired with.

        Raises :class:`SimulationError` if the event has not fired.
        """
        if not self.triggered:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: Any = 0, priority: Priority = Priority.NORMAL) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._state != EventState.PENDING:
            raise SimulationError(f"event {self!r} already triggered/scheduled")
        self._value = value
        self._state = EventState.SCHEDULED
        self.sim.schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exception: BaseException, delay: Any = 0, priority: Priority = Priority.NORMAL) -> "Event":
        """Schedule this event to fire exceptionally after ``delay``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._state != EventState.PENDING:
            raise SimulationError(f"event {self!r} already triggered/scheduled")
        self._value = exception
        self._state = EventState.SCHEDULED
        self.sim.schedule(self, delay=delay, priority=priority, failed=True)
        return self

    # -- kernel hooks ---------------------------------------------------
    def _mark(self, failed: bool) -> None:
        self._state = EventState.FAILED if failed else EventState.TRIGGERED

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (or now, if it has)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.name or self.__class__.__name__
        return f"<{tag} state={self._state.name}>"


class Timeout(Event):
    """An event that fires after a fixed delay; the workhorse wait."""

    __slots__ = ("delay",)

    def __init__(self, sim: Any, delay: Any, value: Any = None, priority: Priority = Priority.NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        self._value = value
        self._state = EventState.SCHEDULED
        sim.schedule(self, delay=delay, priority=priority)


class _Condition(Event):
    """Base for AnyOf / AllOf composite waits."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: Any, events: Iterable[Event]):
        super().__init__(sim)
        self.events: Tuple[Event, ...] = tuple(events)
        self._done = 0
        if not self.events:
            # An empty condition is vacuously satisfied.
            self.succeed(value={})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered or self._state == EventState.SCHEDULED:
            return
        if not ev.ok:
            self.fail(ev.value, priority=Priority.URGENT)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(
                value={e: e.value for e in self.events if e.triggered and e.ok},
                priority=Priority.URGENT,
            )

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any child event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Fires once all child events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= len(self.events)


class EventQueue:
    """A priority queue of ``(time, priority, seq, event, failed)``.

    ``seq`` is a monotone counter giving FIFO order among equal
    ``(time, priority)`` entries — determinism matters for reproducible
    benchmarks and for the paper's Definition 3.5 tie-breaking idiom.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, int, int, Event, bool]] = []
        self._seq = itertools.count()

    def push(self, time: Any, priority: int, event: Event, failed: bool = False) -> None:
        heapq.heappush(self._heap, (time, int(priority), next(self._seq), event, failed))

    def pop(self) -> Tuple[Any, Event, bool]:
        time, _prio, _seq, event, failed = heapq.heappop(self._heap)
        return time, event, failed

    def peek_time(self) -> Any:
        """Firing time of the earliest scheduled event."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
