"""Execution tracing for the simulation kernel.

A :class:`Tracer` hooks a :class:`~repro.kernel.simulator.Simulator`
and records every dispatched event as (time, event name, ok).  Useful
for debugging acceptors ("why did P_m never fire?"), for the examples'
narrative output, and for regression tests on event *ordering* — the
kernel's determinism guarantee is exactly reproducible traces.

Tracing is opt-in and zero-cost when absent (the simulator checks a
single attribute).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import hooks as _obs
from .simulator import Simulator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One dispatched event."""

    time: Any
    name: str
    ok: bool
    seq: int


class Tracer:
    """Records dispatched events from one simulator.

    Parameters
    ----------
    sim:
        The simulator to attach to (one tracer per simulator).
    name_filter:
        Optional predicate on event names; non-matching events are not
        recorded (they still execute, of course).
    limit:
        Recording stops (silently) after this many records — a guard
        against tracing an unbounded run into memory exhaustion.
    """

    def __init__(
        self,
        sim: Simulator,
        name_filter: Optional[Callable[[str], bool]] = None,
        limit: int = 100_000,
    ):
        if getattr(sim, "_tracer", None) is not None:
            raise RuntimeError("simulator already has a tracer attached")
        self.sim = sim
        self.records: List[TraceRecord] = []
        self.name_filter = name_filter
        self.limit = limit
        self._seq = 0
        self.dropped = 0
        sim._tracer = self  # type: ignore[attr-defined]

    # called by Simulator.step
    def record(self, time: Any, name: str, ok: bool) -> None:
        self._seq += 1
        if self.name_filter is not None and not self.name_filter(name):
            return
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        h = _obs.HOOKS
        if h is not None:
            h.kernel_trace_record()
        self.records.append(TraceRecord(time, name, ok, self._seq))

    # -- queries --------------------------------------------------------
    def events_at(self, time: Any) -> List[TraceRecord]:
        return [r for r in self.records if r.time == time]

    def timeline(self) -> List[Tuple[Any, str]]:
        return [(r.time, r.name) for r in self.records]

    def counts(self) -> Dict[str, int]:
        return dict(Counter(r.name for r in self.records))

    def first(self, name: str) -> Optional[TraceRecord]:
        for r in self.records:
            if r.name == name:
                return r
        return None

    def detach(self) -> None:
        """Stop tracing (the simulator keeps running untraced)."""
        if getattr(self.sim, "_tracer", None) is self:
            self.sim._tracer = None  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return len(self.records)
