"""The rt-PROC hierarchy experiment — the Section 3.2 open question.

"Given any number k of processors, is there a well-behaved timed
ω-language that can be accepted by a k-processor real-time algorithm
but cannot be accepted by a (k−1)-processor one?"

The witness family executed here is the **k-stream echo language**
L_k: the input delivers k symbols *every chronon* (one per stream),
and acceptance requires each symbol to be processed within a fixed
per-symbol deadline D.  One processor processes one symbol per chronon
(the Definition 3.3 machine granularity), so:

* p ≥ k processors keep every queue at O(1) and meet every deadline;
* p ≤ k−1 processors fall behind at rate k−p symbols/chronon; the
  backlog exceeds any deadline D after ≈ D·p/(k−p) chronons and the
  run fails — for *every* D, i.e. for every (k−1)-processor machine on
  this workload shape.

This is experimental evidence (on this family, with this machine
granularity), not a proof — exactly the status the paper assigns the
question.  The E13 benchmark sweeps k and p and prints the
success/failure matrix plus first-failure times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..words.timedword import TimedWord

__all__ = ["StreamEchoResult", "stream_word", "run_stream_echo", "hierarchy_matrix"]


def stream_word(k: int, horizon_hint: int = 0) -> TimedWord:
    """The L_k input: k symbols per chronon, stream-tagged, forever.

    A lasso word: loop = [(stream 1, t), …, (stream k, t)], shift 1 —
    well-behaved by construction.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    loop = [((("s", j), 1)) for j in range(1, k + 1)]
    return TimedWord.lasso(prefix=[], loop=loop, shift=1)


@dataclass
class StreamEchoResult:
    """Outcome of one (k streams, p processors) run."""

    k: int
    p: int
    deadline: int
    horizon: int
    success: bool
    first_miss: Optional[int]
    max_backlog: int
    processed: int

    def __repr__(self) -> str:  # pragma: no cover
        s = "OK" if self.success else f"MISS@{self.first_miss}"
        return f"StreamEcho(k={self.k}, p={self.p}, {s}, backlog≤{self.max_backlog})"


def run_stream_echo(
    k: int,
    p: int,
    deadline: int = 8,
    horizon: int = 2_000,
) -> StreamEchoResult:
    """Simulate p unit-rate processors against the k-stream input.

    Deterministic discrete simulation: each chronon k symbols arrive
    (stamped with their arrival time); each of the p processors then
    consumes one queued symbol.  A symbol not consumed within
    ``deadline`` chronons of arrival is a miss (the real-time
    requirement fails).
    """
    if k <= 0 or p <= 0:
        raise ValueError("k and p must be positive")
    queue: List[int] = []  # arrival times, FIFO
    first_miss: Optional[int] = None
    max_backlog = 0
    processed = 0
    for now in range(1, horizon + 1):
        queue.extend([now] * k)
        for _ in range(p):
            if queue:
                arrived = queue.pop(0)
                processed += 1
                if now - arrived > deadline and first_miss is None:
                    first_miss = now
        # any still-queued symbol past its deadline is also a miss
        if first_miss is None and queue and now - queue[0] > deadline:
            first_miss = now
        max_backlog = max(max_backlog, len(queue))
        if first_miss is not None:
            break
    return StreamEchoResult(
        k=k,
        p=p,
        deadline=deadline,
        horizon=horizon,
        success=first_miss is None,
        first_miss=first_miss,
        max_backlog=max_backlog,
        processed=processed,
    )


def hierarchy_matrix(
    k_max: int, deadline: int = 8, horizon: int = 2_000
) -> Dict[Tuple[int, int], StreamEchoResult]:
    """The full (k, p) success matrix for k, p ≤ k_max.

    The hierarchy evidence is the diagonal split: success ⟺ p ≥ k.
    """
    return {
        (k, p): run_stream_echo(k, p, deadline=deadline, horizon=horizon)
        for k in range(1, k_max + 1)
        for p in range(1, k_max + 1)
    }


def predicted_first_miss(k: int, p: int, deadline: int) -> Optional[int]:
    """Closed-form first-miss time for p < k.

    Symbol i (arrival order) arrives at chronon ≈ i/k and is processed
    at ≈ i/p, so its wait is i·(k−p)/(k·p); the first miss is the first
    symbol with wait > D, i.e. i* ≈ D·k·p/(k−p), processed at chronon
    t* = i*/p + 2 = D·k/(k−p) + 2 (the +2 covers the arrive-then-serve
    phases of the discrete loop).  None when p ≥ k (no miss ever).
    """
    if p >= k:
        return None
    return max(1, (deadline * k) // (k - p) + 2)
