"""Resource accounting helpers for the rt-classes experiments.

:func:`measure_space_curve` sweeps an instance generator over sizes and
records the acceptor's peak working storage; :func:`classify_growth`
does a crude-but-honest growth-rate classification (constant /
logarithmic / linear / superlinear) by least-squares fits on
transformed axes — enough to label a measured curve with the matching
rt-SPACE class in reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from .. import engine
from ..machine.rtalgorithm import RealTimeAlgorithm
from ..words.timedword import TimedWord

__all__ = ["SpaceCurve", "measure_space_curve", "classify_growth"]


@dataclass
class SpaceCurve:
    sizes: List[int]
    peaks: List[int]
    label: str

    def points(self) -> List[Tuple[int, int]]:
        return list(zip(self.sizes, self.peaks))


def measure_space_curve(
    acceptor_factory: Callable[[], RealTimeAlgorithm],
    instance_for: Callable[[int], TimedWord],
    sizes: Sequence[int],
    horizon: int = 50_000,
) -> SpaceCurve:
    """Peak working-storage cells as a function of instance size."""
    peaks: List[int] = []
    for n in sizes:
        acceptor = acceptor_factory()
        report = engine.decide(acceptor, instance_for(n), horizon=horizon)
        peaks.append(report.space_peak)
    curve = SpaceCurve(sizes=list(sizes), peaks=peaks, label="")
    curve.label = classify_growth(curve.sizes, curve.peaks)
    return curve


def _residual(xs: List[float], ys: List[float]) -> float:
    """Least-squares residual of y ≈ a·x + b."""
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        return sum((y - my) ** 2 for y in ys)
    a = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
    b = my - a * mx
    return sum((y - (a * x + b)) ** 2 for x, y in zip(xs, ys))


def classify_growth(sizes: Sequence[int], values: Sequence[int]) -> str:
    """Label a measured curve: constant / O(log n) / O(n) / superlinear.

    Picks the transform under which a linear fit has the smallest
    normalized residual; constant wins when the values barely move.
    """
    if len(sizes) < 3:
        return "insufficient data"
    ys = [float(v) for v in values]
    spread = max(ys) - min(ys)
    if spread <= 2:
        return "O(1)"
    xs_lin = [float(n) for n in sizes]
    xs_log = [math.log2(n + 2) for n in sizes]
    norm = sum(y * y for y in ys) or 1.0
    fits = {
        "O(log n)": _residual(xs_log, ys) / norm,
        "O(n)": _residual(xs_lin, ys) / norm,
    }
    # superlinear: y/x still growing strongly
    ratios = [y / x for x, y in zip(xs_lin, ys)]
    if ratios[-1] > 2.0 * max(ratios[0], 1e-9):
        return "superlinear"
    return min(fits, key=fits.get)  # type: ignore[arg-type]
