"""Real-time complexity classes — the Section 3.2 / Section 7 programme.

The paper proposes resource-bounded classes of well-behaved timed
ω-languages, prefixed "rt-": rt-SPACE(f) (working storage bounded by
f of the input size) and rt-PROC(f) (number of processors bounded by
f), with the usual derived classes (rt-LOGSPACE, rt-PSPACE,
rt-LOGPROC, rt-PPROC, …).

No complexity class is "executable" as such; what is executable — and
what this module provides — is *certified membership on instance
families*: run an acceptor under a hard resource meter across a sweep
of instance sizes and check that (a) every decision matches the
language oracle and (b) the meter never trips.  That is exactly the
evidence the E13/E14 experiments report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from .. import engine
from ..machine.rtalgorithm import (
    RealTimeAlgorithm,
    SpaceLimitExceeded,
    )
from ..words.timedword import TimedWord

__all__ = [
    "ResourceBound",
    "LOGSPACE",
    "LINSPACE",
    "POLYSPACE",
    "CONST",
    "MembershipEvidence",
    "rt_space_membership",
]


@dataclass(frozen=True)
class ResourceBound:
    """A named bound f : input size → allowed resource units."""

    name: str
    fn: Callable[[int], int]

    def __call__(self, n: int) -> int:
        return max(1, int(self.fn(n)))


#: Standard bounds for the derived classes.
CONST = ResourceBound("O(1)", lambda n: 16)
LOGSPACE = ResourceBound("O(log n)", lambda n: 4 * max(1, math.ceil(math.log2(n + 2))))
LINSPACE = ResourceBound("O(n)", lambda n: 4 * (n + 1))
POLYSPACE = ResourceBound("O(n^2)", lambda n: 4 * (n + 1) ** 2)


@dataclass
class MembershipEvidence:
    """Outcome of a certified-membership sweep."""

    bound: str
    sizes: List[int]
    peaks: List[int]
    limits: List[int]
    decisions_correct: bool
    within_bound: bool
    failures: List[str]

    @property
    def holds(self) -> bool:
        return self.decisions_correct and self.within_bound


def rt_space_membership(
    acceptor_factory: Callable[[], RealTimeAlgorithm],
    instances: Sequence[Tuple[int, TimedWord, bool]],
    bound: ResourceBound,
    horizon: int = 50_000,
) -> MembershipEvidence:
    """Certify rt-SPACE(bound) membership on an instance family.

    ``instances`` is a list of (size n, word, expected ∈ L).  For each,
    the acceptor runs with ``space_limit = bound(n)``; evidence records
    whether every decision matched and no space limit tripped.
    """
    sizes: List[int] = []
    peaks: List[int] = []
    limits: List[int] = []
    failures: List[str] = []
    decisions_ok = True
    within = True
    for n, word, expected in instances:
        acceptor = acceptor_factory()
        acceptor.space_limit = bound(n)
        sizes.append(n)
        limits.append(bound(n))
        try:
            report = engine.decide(acceptor, word, horizon=horizon)
        except SpaceLimitExceeded as exc:
            within = False
            peaks.append(bound(n) + 1)
            failures.append(f"n={n}: {exc}")
            continue
        peaks.append(report.space_peak)
        if report.accepted != expected:
            decisions_ok = False
            failures.append(
                f"n={n}: decided {report.verdict.value}, expected {'∈' if expected else '∉'} L"
            )
    return MembershipEvidence(
        bound=bound.name,
        sizes=sizes,
        peaks=peaks,
        limits=limits,
        decisions_correct=decisions_ok,
        within_bound=within,
        failures=failures,
    )
