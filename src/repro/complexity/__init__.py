"""The rt-complexity programme — Sections 3.2 and 7."""

from .accounting import SpaceCurve, classify_growth, measure_space_curve
from .classes import (
    CONST,
    LINSPACE,
    LOGSPACE,
    POLYSPACE,
    MembershipEvidence,
    ResourceBound,
    rt_space_membership,
)
from .hierarchy import (
    StreamEchoResult,
    hierarchy_matrix,
    predicted_first_miss,
    run_stream_echo,
    stream_word,
)

__all__ = [
    "ResourceBound",
    "CONST",
    "LOGSPACE",
    "LINSPACE",
    "POLYSPACE",
    "MembershipEvidence",
    "rt_space_membership",
    "StreamEchoResult",
    "stream_word",
    "run_stream_echo",
    "hierarchy_matrix",
    "predicted_first_miss",
    "SpaceCurve",
    "measure_space_curve",
    "classify_growth",
]
