"""A DREAM-style position-based router (Basagni et al. [11]).

DREAM's premise — cited by the paper for the general mobility case —
is that "the only thing known by any node is its current position":
nodes disseminate their own coordinates, and data is forwarded in the
*direction* of the destination's last known position.

Simplifications (documented per DESIGN.md): location updates are
periodic fixed-radius beacons rather than distance-effect-scaled ones,
and the directional flood is realized as greedy geographic forwarding
(closest-to-destination neighbour) with a one-shot local flood as
recovery when no neighbour makes progress.  The position-based cost
shape — control traffic proportional to beacon rate, data overhead near
path length — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..geometry import Position, distance
from ..messages import Message
from .base import DataPacket, RoutingProtocol

__all__ = ["DreamRouter"]


@dataclass(frozen=True)
class LocationBeacon:
    origin: int
    position: Position
    stamped: int
    hops_left: int  # beacon propagation scope


@dataclass(frozen=True)
class GeoData:
    """Data wrapper carrying the destination's believed position."""

    packet: DataPacket
    dest_position: Position
    recovery: bool = False  # True while in local-flood recovery


class DreamRouter(RoutingProtocol):
    name = "dream"

    def __init__(self, beacon_period: int = 20, beacon_scope: int = 3, max_hops: int = 32):
        super().__init__()
        self.beacon_period = beacon_period
        self.beacon_scope = beacon_scope
        self.max_hops = max_hops
        self.locations: Dict[int, Tuple[Position, int]] = {}
        self._seen_beacons: Set[Tuple[int, int]] = set()
        self._seen_recovery: Set[int] = set()

    # -- beacons ----------------------------------------------------------
    def start(self) -> None:
        self.every(self.beacon_period, self._beacon, jitter_offset=self.node % self.beacon_period)

    def _beacon(self) -> None:
        self.send_control(
            LocationBeacon(self.node, self.my_position(), self.now, self.beacon_scope)
        )

    # -- neighbour discovery through the location table --------------------
    def _neighbours(self) -> List[int]:
        assert self.network is not None
        return [n for n in self.network.range.neighbours(self.node, self.now)]

    # -- data ------------------------------------------------------------------
    def originate(self, message: Message) -> None:
        known = self.locations.get(message.dst)
        if known is None:
            # No position known: fall back to a scoped flood carrying
            # our best guess (own position — the recovery path).
            self._recover(DataPacket(message, hops=0))
            return
        self._forward(GeoData(DataPacket(message, hops=0), known[0]))

    def on_packet(self, payload: Any, sender: int, now: int) -> None:
        if isinstance(payload, LocationBeacon):
            self._on_beacon(payload)
        elif isinstance(payload, GeoData):
            self._on_geodata(payload)

    def _on_beacon(self, beacon: LocationBeacon) -> None:
        key = (beacon.origin, beacon.stamped)
        if key in self._seen_beacons or beacon.origin == self.node:
            return
        self._seen_beacons.add(key)
        current = self.locations.get(beacon.origin)
        if current is None or current[1] < beacon.stamped:
            self.locations[beacon.origin] = (beacon.position, beacon.stamped)
        if beacon.hops_left > 1:
            self.send_control(
                LocationBeacon(
                    beacon.origin, beacon.position, beacon.stamped, beacon.hops_left - 1
                )
            )

    def _on_geodata(self, geo: GeoData) -> None:
        packet = geo.packet
        if packet.message.dst == self.node:
            self.deliver(packet)
            return
        if packet.hops + 1 >= self.max_hops:
            return
        if geo.recovery:
            # Recovery flood: rebroadcast once.
            if packet.message.uid in self._seen_recovery:
                return
            self._seen_recovery.add(packet.message.uid)
            # If we now know a position, switch back to greedy mode.
            known = self.locations.get(packet.message.dst)
            bumped = DataPacket(packet.message, hops=packet.hops + 1)
            if known is not None:
                self._forward(GeoData(bumped, known[0]))
            else:
                self.send_data_geo(GeoData(bumped, geo.dest_position, recovery=True), None)
            return
        self._forward(GeoData(DataPacket(packet.message, hops=packet.hops + 1), geo.dest_position))

    def _forward(self, geo: GeoData) -> None:
        """Greedy geographic step toward the destination's position."""
        assert self.network is not None
        dest_pos = geo.dest_position
        here = self.my_position()
        best: Optional[int] = None
        best_d = distance(here, dest_pos)
        for n in self._neighbours():
            d = distance(self.network.range.trajectories[n](self.now), dest_pos)
            if d < best_d:
                best, best_d = n, d
        if best is not None:
            self.send_data_geo(geo, best)
        else:
            self._recover(geo.packet)

    def _recover(self, packet: DataPacket) -> None:
        """Local-flood recovery when greedy forwarding is stuck."""
        if packet.message.uid in self._seen_recovery:
            return
        self._seen_recovery.add(packet.message.uid)
        self.send_data_geo(GeoData(packet, self.my_position(), recovery=True), None)

    def send_data_geo(self, geo: GeoData, next_hop: Optional[int]) -> None:
        assert self.network is not None
        self.network.transmit(
            self.node,
            geo,
            kind="data",
            intended=next_hop,
            message_uid=geo.packet.message.uid,
        )
