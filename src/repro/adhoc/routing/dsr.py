"""A DSR-style reactive source-routing router.

Dynamic Source Routing (the strongest performer in the Broch et al.
comparison [12] at high mobility): routes are discovered *on demand* by
flooding a route request (RREQ) that accumulates the path it traversed;
the destination answers with a route reply (RREP) carrying the full
source route back; data packets then carry the explicit hop list.
Discovered routes are cached.  Reactive cost structure: zero control
traffic while idle, a burst per discovery — the other end of E11's
overhead ordering.

Simplifications (documented per DESIGN.md): RREPs are returned over the
reversed discovered path (bidirectional links — true in the disk
model); no promiscuous route shortening; a failed forward triggers one
route re-discovery at the source on retry rather than a route-error
unicast chain.  The reactive shape is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..messages import Message
from .base import DataPacket, RoutingProtocol

__all__ = ["DsrRouter"]


@dataclass(frozen=True)
class RouteRequest:
    request_id: int
    origin: int
    target: int
    path: Tuple[int, ...]  # nodes traversed so far, origin first


@dataclass(frozen=True)
class RouteReply:
    request_id: int
    origin: int
    target: int
    route: Tuple[int, ...]  # full path origin … target
    back_path: Tuple[int, ...]  # remaining hops back to the origin


class DsrRouter(RoutingProtocol):
    name = "dsr"

    def __init__(self, max_path: int = 32, request_retry: int = 30, queue_limit: int = 64):
        super().__init__()
        self.max_path = max_path
        self.request_retry = request_retry
        self.route_cache: Dict[int, Tuple[int, ...]] = {}
        self._next_request = 0
        self._seen_requests: Set[Tuple[int, int]] = set()
        self._pending: Dict[int, List[Message]] = {}
        self.queue_limit = queue_limit

    # -- origination ------------------------------------------------------
    def originate(self, message: Message) -> None:
        route = self.route_cache.get(message.dst)
        if route is not None:
            self._send_along(message, route, hops=0)
            return
        self._enqueue(message)
        self._discover(message.dst)

    def _enqueue(self, message: Message) -> None:
        bucket = self._pending.setdefault(message.dst, [])
        if len(bucket) < self.queue_limit:
            bucket.append(message)

    def _discover(self, target: int) -> None:
        self._next_request += 1
        req = RouteRequest(
            request_id=self._next_request,
            origin=self.node,
            target=target,
            path=(self.node,),
        )
        self._seen_requests.add((self.node, req.request_id))
        self.send_control(req)
        # Retry while undelivered traffic remains and no route appeared.
        def retry() -> None:
            if self._pending.get(target) and target not in self.route_cache:
                self._discover(target)

        self.after(self.request_retry, retry)

    # -- packet handling -----------------------------------------------------
    def on_packet(self, payload: Any, sender: int, now: int) -> None:
        if isinstance(payload, RouteRequest):
            self._on_rreq(payload)
        elif isinstance(payload, RouteReply):
            self._on_rrep(payload)
        elif isinstance(payload, DataPacket):
            self._on_data(payload)

    def _on_rreq(self, req: RouteRequest) -> None:
        key = (req.origin, req.request_id)
        if key in self._seen_requests or self.node in req.path:
            return
        self._seen_requests.add(key)
        path = req.path + (self.node,)
        if req.target == self.node:
            # Answer with the full route, unwinding along the path.
            route = path
            back = tuple(reversed(path))[1:]
            reply = RouteReply(req.request_id, req.origin, req.target, route, back)
            self._forward_rrep(reply)
            return
        if len(path) >= self.max_path:
            return
        self.send_control(RouteRequest(req.request_id, req.origin, req.target, path))

    def _forward_rrep(self, reply: RouteReply) -> None:
        if not reply.back_path:
            return
        next_hop = reply.back_path[0]
        self.send_control(
            RouteReply(
                reply.request_id,
                reply.origin,
                reply.target,
                reply.route,
                reply.back_path[1:],
            ),
            intended=next_hop,
        )

    def _on_rrep(self, reply: RouteReply) -> None:
        # Cache the suffix of the route from this node to the target.
        if self.node in reply.route:
            at = reply.route.index(self.node)
            self.route_cache[reply.target] = reply.route[at:]
        if reply.origin == self.node:
            self._drain(reply.target)
            return
        self._forward_rrep(reply)

    def _drain(self, target: int) -> None:
        route = self.route_cache.get(target)
        if route is None:
            return
        for message in self._pending.pop(target, []):
            self._send_along(message, route, hops=0)

    def _send_along(self, message: Message, route: Tuple[int, ...], hops: int) -> None:
        # route[0] is this node; route[1] the next hop.
        if len(route) < 2:
            return
        self.send_data(
            DataPacket(message, hops=hops, route=route[1:]), next_hop=route[1]
        )

    def _on_data(self, packet: DataPacket) -> None:
        if packet.message.dst == self.node:
            self.deliver(packet)
            return
        route = packet.route or ()
        # route[0] is this node (just consumed); forward to route[1].
        if len(route) < 2 or route[0] != self.node:
            return
        self.send_data(
            DataPacket(packet.message, hops=packet.hops + 1, route=route[1:]),
            next_hop=route[1],
        )
