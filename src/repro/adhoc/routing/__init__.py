"""Routing protocols for the Section 5.2 ad hoc network model."""

from .aodv import AodvRouter
from .base import DataPacket, RoutingProtocol
from .dream import DreamRouter
from .dsdv import DsdvRouter
from .dsr import DsrRouter
from .flooding import FloodingRouter

__all__ = [
    "RoutingProtocol",
    "DataPacket",
    "FloodingRouter",
    "AodvRouter",
    "DsdvRouter",
    "DsrRouter",
    "DreamRouter",
]
