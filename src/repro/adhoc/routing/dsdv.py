"""A DSDV-style proactive distance-vector router.

Destination-Sequenced Distance Vector (one of the protocols the Broch
et al. comparison [12] evaluates): every node periodically broadcasts
its full routing table, entries carry per-destination sequence numbers
so fresher information displaces stale routes, and data packets follow
the next-hop chain.  Proactive cost structure: control overhead is paid
continuously whether or not anybody sends data — the property E11's
overhead ordering exercises.

Simplifications versus full DSDV (documented per DESIGN.md): no
incremental dumps, no settling-time damping; broken next-hops are
discovered by the periodic exchange only.  These do not change the
proactive cost shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..messages import Message
from .base import DataPacket, RoutingProtocol

__all__ = ["DsdvRouter"]


@dataclass(frozen=True)
class RouteEntry:
    destination: int
    next_hop: int
    metric: int  # hops
    seqno: int  # destination-generated sequence number


@dataclass(frozen=True)
class TableDump:
    """The periodic full-table broadcast (an rt message)."""

    origin: int
    entries: Tuple[RouteEntry, ...]


class DsdvRouter(RoutingProtocol):
    name = "dsdv"

    def __init__(self, beacon_period: int = 15, max_metric: int = 32, queue_limit: int = 64):
        super().__init__()
        self.beacon_period = beacon_period
        self.max_metric = max_metric
        self.table: Dict[int, RouteEntry] = {}
        self._own_seq = 0
        self._pending: List[DataPacket] = []
        self.queue_limit = queue_limit

    # -- protocol ------------------------------------------------------
    def start(self) -> None:
        self.table[self.node] = RouteEntry(self.node, self.node, 0, 0)
        # Deterministic de-synchronisation: offset beacons by node id.
        self.every(self.beacon_period, self._beacon, jitter_offset=self.node % self.beacon_period)

    def _beacon(self) -> None:
        self._own_seq += 2  # even seqnos = reachable (DSDV convention)
        self.table[self.node] = RouteEntry(self.node, self.node, 0, self._own_seq)
        self.send_control(TableDump(self.node, tuple(self.table.values())))

    def _better(self, new: RouteEntry, old: Optional[RouteEntry]) -> bool:
        if old is None:
            return True
        if new.seqno != old.seqno:
            return new.seqno > old.seqno
        return new.metric < old.metric

    def on_packet(self, payload: Any, sender: int, now: int) -> None:
        if isinstance(payload, TableDump):
            for entry in payload.entries:
                if entry.destination == self.node:
                    continue
                candidate = RouteEntry(
                    destination=entry.destination,
                    next_hop=sender,
                    metric=entry.metric + 1,
                    seqno=entry.seqno,
                )
                if candidate.metric <= self.max_metric and self._better(
                    candidate, self.table.get(entry.destination)
                ):
                    self.table[entry.destination] = candidate
            self._drain_pending()
            return
        if isinstance(payload, DataPacket):
            if payload.message.dst == self.node:
                self.deliver(payload)
                return
            # Only the intended next hop forwards (others merely hear it).
            self._forward(payload)

    def _forward(self, packet: DataPacket) -> None:
        if packet.hops + 1 >= self.max_metric:
            return
        entry = self.table.get(packet.message.dst)
        if entry is None:
            if len(self._pending) < self.queue_limit:
                self._pending.append(packet)
            return
        self.send_data(
            DataPacket(packet.message, hops=packet.hops + 1), next_hop=entry.next_hop
        )

    def originate(self, message: Message) -> None:
        entry = self.table.get(message.dst)
        if entry is None:
            if len(self._pending) < self.queue_limit:
                self._pending.append(DataPacket(message, hops=-1))
            return
        self.send_data(DataPacket(message, hops=0), next_hop=entry.next_hop)

    def _drain_pending(self) -> None:
        still: List[DataPacket] = []
        for packet in self._pending:
            entry = self.table.get(packet.message.dst)
            if entry is None:
                still.append(packet)
            else:
                self.send_data(
                    DataPacket(packet.message, hops=packet.hops + 1),
                    next_hop=entry.next_hop,
                )
        self._pending = still
