"""Flooding: the baseline router.

Every data packet is rebroadcast once by every node that hears it (duplicate
suppression by message uid), up to a TTL.  Flooding finds a shortest
path whenever any path exists — at maximal overhead — which anchors one
end of the Broch-style comparison (E11): near-optimal path length,
worst-case routing overhead.
"""

from __future__ import annotations

from typing import Any, Set

from ..messages import Message
from .base import DataPacket, RoutingProtocol

__all__ = ["FloodingRouter"]


class FloodingRouter(RoutingProtocol):
    name = "flooding"

    def __init__(self, ttl: int = 32):
        super().__init__()
        self.ttl = ttl
        self._seen: Set[int] = set()

    def originate(self, message: Message) -> None:
        self._seen.add(message.uid)
        self.send_data(DataPacket(message, hops=0), next_hop=None)

    def on_packet(self, payload: Any, sender: int, now: int) -> None:
        if not isinstance(payload, DataPacket):
            return
        msg = payload.message
        if msg.uid in self._seen:
            return
        self._seen.add(msg.uid)
        if msg.dst == self.node:
            self.deliver(payload)
            return
        if payload.hops + 1 >= self.ttl:
            return
        self.send_data(DataPacket(msg, hops=payload.hops + 1), next_hop=None)
