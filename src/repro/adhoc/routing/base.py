"""Routing-protocol interface — Section 5.2.5.

The paper's constraints on a routing algorithm: the router is n
independent algorithms that "can communicate only by messages exchanged
between them", and a node "is unaware of the properties of another
node, unless it receives a message from (or about) that node".  The
:class:`RoutingProtocol` interface enforces that shape: a router sees
only its own node id, its own position (via the network's range
predicate applied to itself), packets it hears, and whatever it chooses
to transmit.

Observability (see ``docs/observability.md``): when
:mod:`repro.obs.hooks` are installed, the base-class helpers report the
Section 5.2.6 overhead quantities every concrete router is compared
by — ``adhoc.data_sent`` / ``adhoc.control_sent`` counters labeled by
protocol (control transmissions are the ``g`` in the paper's ``f+g``
routing-overhead measure), ``adhoc.delivered`` (end-to-end message
deliveries), ``adhoc.delivery_latency`` (histogram of ``t'_f − t_1``,
origination to delivery), and ``adhoc.delivery_hops`` (histogram of the
hop count ``f`` actually paid per delivered message).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ...kernel.events import Event
from ...obs import hooks as _obs
from ..messages import Message
from ..network import AdhocNetwork

__all__ = ["RoutingProtocol", "DataPacket"]


@dataclass(frozen=True)
class DataPacket:
    """The payload wrapper all protocols use for application data.

    ``route`` is used by source-routing protocols (the remaining hop
    list); ``hops`` counts hops so far for TTL/optimality accounting.
    """

    message: Message
    hops: int = 0
    route: Optional[tuple] = None


class RoutingProtocol:
    """Base router: per-node state + the three protocol entry points."""

    #: protocol name for reports
    name = "base"

    def __init__(self) -> None:
        self.network: Optional[AdhocNetwork] = None
        self.node: int = -1

    # -- wiring -----------------------------------------------------------
    def bind(self, network: AdhocNetwork, node: int) -> None:
        self.network = network
        self.node = node

    @property
    def sim(self):
        assert self.network is not None
        return self.network.sim

    @property
    def now(self) -> int:
        return self.sim.now

    def my_position(self):
        """A node may know its *own* current position (the [11]
        assumption DREAM builds on)."""
        assert self.network is not None
        return self.network.range.trajectories[self.node](self.now)

    # -- protocol entry points ------------------------------------------------
    def start(self) -> None:
        """Called once at network start; spawn periodic processes here."""

    def originate(self, message: Message) -> None:
        """The application asks this node to send ``message``."""
        raise NotImplementedError

    def on_packet(self, payload: Any, sender: int, now: int) -> None:
        """A packet transmitted by a neighbour has been heard."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------------
    def send_data(self, packet: DataPacket, next_hop: Optional[int]) -> None:
        """Transmit a data packet (unicast to ``next_hop`` or flood)."""
        assert self.network is not None
        h = _obs.HOOKS
        if h is not None:
            h.count("adhoc.data_sent", protocol=self.name)
        self.network.transmit(
            self.node,
            packet,
            kind="data",
            intended=next_hop,
            message_uid=packet.message.uid,
        )

    def send_control(self, payload: Any, intended: Optional[int] = None) -> None:
        """Transmit a routing/control packet (an rt_j of the model)."""
        assert self.network is not None
        h = _obs.HOOKS
        if h is not None:
            h.count("adhoc.control_sent", protocol=self.name)
        self.network.transmit(self.node, payload, kind="control", intended=intended)

    def deliver(self, packet: DataPacket) -> None:
        """This node is the end-to-end destination: hand up."""
        assert self.network is not None
        h = _obs.HOOKS
        if h is not None:
            h.count("adhoc.delivered", protocol=self.name)
            h.observe("adhoc.delivery_latency", self.now - packet.message.created_at)
            h.observe("adhoc.delivery_hops", packet.hops)
        self.network.deliver_to_application(packet.message, self.now)

    def every(self, period: int, fn, jitter_offset: int = 0) -> None:
        """Run ``fn()`` every ``period`` chronons (protocol timers)."""
        assert self.network is not None

        def ticker() -> Generator[Event, Any, None]:
            if jitter_offset:
                yield self.sim.timeout(jitter_offset)
            while True:
                fn()
                yield self.sim.timeout(period)

        self.sim.process(ticker(), name=f"{self.name}:{self.node}:timer")

    def after(self, delay: int, fn) -> None:
        """Run ``fn()`` once after ``delay`` chronons."""

        def once() -> Generator[Event, Any, None]:
            yield self.sim.timeout(delay)
            fn()

        self.sim.process(once(), name=f"{self.name}:{self.node}:after")
