"""An AODV-style reactive hop-by-hop router.

Ad hoc On-demand Distance Vector (the fourth protocol of the Broch et
al. comparison [12]): like DSR, routes are discovered on demand with a
RREQ flood — but instead of source routes, discovery installs
*per-destination next-hop state* at every node the reply traverses
(plus reverse routes toward the originator installed by the request).
Data packets then carry no route; each node forwards on its own table.

Simplifications versus full AODV (documented per DESIGN.md): no route
lifetimes/HELLO messages, no route-error propagation (a broken path is
repaired by the originator's periodic retry), destination-sequence
numbers simplified to request freshness.  The on-demand hop-by-hop cost
shape is preserved: zero idle control traffic, discovery bursts, and
per-node forwarding state instead of per-packet routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..messages import Message
from .base import DataPacket, RoutingProtocol

__all__ = ["AodvRouter"]


@dataclass(frozen=True)
class Rreq:
    request_id: int
    origin: int
    target: int
    hops: int  # distance from the origin so far


@dataclass(frozen=True)
class Rrep:
    request_id: int
    origin: int
    target: int
    hops_to_target: int  # from the forwarding node


@dataclass(frozen=True)
class RouteState:
    next_hop: int
    hops: int
    freshness: int  # request id that installed the route


class AodvRouter(RoutingProtocol):
    name = "aodv"

    def __init__(self, max_hops: int = 32, request_retry: int = 30, queue_limit: int = 64):
        super().__init__()
        self.max_hops = max_hops
        self.request_retry = request_retry
        self.queue_limit = queue_limit
        self.routes: Dict[int, RouteState] = {}
        self._next_request = 0
        self._seen_requests: Set[Tuple[int, int]] = set()
        self._pending: Dict[int, List[Message]] = {}

    # -- origination ------------------------------------------------------
    def originate(self, message: Message) -> None:
        route = self.routes.get(message.dst)
        if route is not None:
            self.send_data(DataPacket(message, hops=0), next_hop=route.next_hop)
            return
        bucket = self._pending.setdefault(message.dst, [])
        if len(bucket) < self.queue_limit:
            bucket.append(message)
        self._discover(message.dst)

    def _discover(self, target: int) -> None:
        self._next_request += 1
        req = Rreq(self._next_request, self.node, target, hops=0)
        self._seen_requests.add((self.node, req.request_id))
        self.send_control(req)

        def retry() -> None:
            if self._pending.get(target) and target not in self.routes:
                self._discover(target)

        self.after(self.request_retry, retry)

    # -- packet handling ------------------------------------------------------
    def on_packet(self, payload: Any, sender: int, now: int) -> None:
        if isinstance(payload, Rreq):
            self._on_rreq(payload, sender)
        elif isinstance(payload, Rrep):
            self._on_rrep(payload, sender)
        elif isinstance(payload, DataPacket):
            self._on_data(payload)

    def _install(self, destination: int, next_hop: int, hops: int, freshness: int) -> None:
        """Install a route if fresher or shorter than what we hold."""
        current = self.routes.get(destination)
        if (
            current is None
            or freshness > current.freshness
            or (freshness == current.freshness and hops < current.hops)
        ):
            self.routes[destination] = RouteState(next_hop, hops, freshness)

    def _on_rreq(self, req: Rreq, sender: int) -> None:
        key = (req.origin, req.request_id)
        if key in self._seen_requests or req.origin == self.node:
            return
        self._seen_requests.add(key)
        # reverse route toward the originator (through the sender)
        self._install(req.origin, sender, req.hops + 1, req.request_id)
        if req.target == self.node:
            # answer: unicast a reply back along the reverse route
            self.send_control(
                Rrep(req.request_id, req.origin, req.target, hops_to_target=0),
                intended=sender,
            )
            return
        if req.hops + 1 >= self.max_hops:
            return
        self.send_control(Rreq(req.request_id, req.origin, req.target, req.hops + 1))

    def _on_rrep(self, rep: Rrep, sender: int) -> None:
        # forward route toward the target (through the sender)
        self._install(rep.target, sender, rep.hops_to_target + 1, rep.request_id)
        if rep.origin == self.node:
            self._drain(rep.target)
            return
        back = self.routes.get(rep.origin)
        if back is None:
            return  # reverse route evaporated; originator will retry
        self.send_control(
            Rrep(rep.request_id, rep.origin, rep.target, rep.hops_to_target + 1),
            intended=back.next_hop,
        )

    def _drain(self, target: int) -> None:
        route = self.routes.get(target)
        if route is None:
            return
        for message in self._pending.pop(target, []):
            self.send_data(DataPacket(message, hops=0), next_hop=route.next_hop)

    def _on_data(self, packet: DataPacket) -> None:
        if packet.message.dst == self.node:
            self.deliver(packet)
            return
        if packet.hops + 1 >= self.max_hops:
            return
        route = self.routes.get(packet.message.dst)
        if route is None:
            return  # no forwarding state: drop (originator retries)
        self.send_data(
            DataPacket(packet.message, hops=packet.hops + 1),
            next_hop=route.next_hop,
        )
