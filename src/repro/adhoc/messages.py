"""Messages, one-hop transmissions, and receive events — Section 5.2.3.

The paper distinguishes:

* the original **message** u with source s, destination d, body b,
  generated at time t;
* the **one-hop messages** u₁ … u_f the routing process generates
  ("these are one-hop messages that contain the same information as
  the original message");
* **routing-table messages** rt₁ … rt_g exchanged by the protocol;
* **receive events** r_u recording the arrival at the intended one-hop
  destination at t′ = t + 1.

The encodings m_u and r_u (Section 5.2.3) are built from these records
in :mod:`repro.adhoc.encode`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["Message", "HopRecord", "ReceiveRecord", "TraceLog"]

_ids = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """An end-to-end message u: source s, destination d, body b, time t."""

    src: int
    dst: int
    body: Any
    created_at: int
    uid: int = field(default_factory=lambda: next(_ids))


@dataclass(frozen=True)
class HopRecord:
    """One one-hop transmission: the m_{u_i} of the routing trace.

    ``kind`` is "data" for the u_i chain carrying the original body and
    "control" for the rt_j protocol messages; ``message_uid`` ties data
    hops back to the end-to-end message.
    """

    sent_at: int  # t_i
    src: int  # s_i
    dst: int  # d_i (the intended one-hop receiver; 0 = broadcast)
    body: Any  # b_i
    kind: str  # "data" | "control"
    message_uid: Optional[int] = None
    hop_id: int = field(default_factory=lambda: next(_ids))

    @property
    def received_at(self) -> int:
        """t′_i = t_i + 1 (Section 5.2.1's unit-time transmission)."""
        return self.sent_at + 1


@dataclass(frozen=True)
class ReceiveRecord:
    """The r_u event: the hop was actually heard by its destination."""

    hop_id: int
    sent_at: int
    src: int
    dst: int
    received_at: int


class TraceLog:
    """Everything a simulation emitted, in event order.

    This is the raw material for the routing-problem words w ∈ R_{n,u}
    and for the Broch-style metrics.
    """

    def __init__(self) -> None:
        self.hops: List[HopRecord] = []
        self.receives: List[ReceiveRecord] = []
        self.delivered: List[Tuple[int, int]] = []  # (message uid, time)

    def record_hop(self, hop: HopRecord) -> None:
        self.hops.append(hop)

    def record_receive(self, hop: HopRecord, receiver: int) -> None:
        self.receives.append(
            ReceiveRecord(
                hop_id=hop.hop_id,
                sent_at=hop.sent_at,
                src=hop.src,
                dst=receiver,
                received_at=hop.received_at,
            )
        )

    def record_delivery(self, message: Message, at: int) -> None:
        self.delivered.append((message.uid, at))

    def data_hops(self, message_uid: Optional[int] = None) -> List[HopRecord]:
        return [
            h
            for h in self.hops
            if h.kind == "data" and (message_uid is None or h.message_uid == message_uid)
        ]

    def control_hops(self) -> List[HopRecord]:
        return [h for h in self.hops if h.kind == "control"]

    def delivery_time(self, message_uid: int) -> Optional[int]:
        for uid, at in self.delivered:
            if uid == message_uid:
                return at
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TraceLog(hops={len(self.hops)}, receives={len(self.receives)}, "
            f"delivered={len(self.delivered)})"
        )
