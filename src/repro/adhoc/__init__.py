"""Ad hoc networks — Section 5.2 of the paper."""

from .encode import (
    NodeView,
    RouteValidation,
    decide_route,
    distributed_views,
    node_view,
    extract_route,
    message_word,
    network_word,
    node_word,
    receive_word,
    route_acceptor,
    routing_word,
    validate_route,
)
from .geometry import DiskRange, Position, RangePredicate, Trajectory, distance
from .messages import HopRecord, Message, ReceiveRecord, TraceLog
from .metrics import (
    ScenarioMetrics,
    compute_metrics,
    delivery_ratio,
    path_optimality,
    routing_overhead,
    shortest_path_length,
)
from .mobility import (
    Arena,
    ConstantVelocityMobility,
    RandomWaypointMobility,
    StationaryMobility,
)
from .network import AdhocNetwork
from .routing import AodvRouter, DataPacket, DreamRouter, DsdvRouter, DsrRouter, FloodingRouter, RoutingProtocol
from .scenario import Scenario, ScenarioRun, run_scenario

__all__ = [
    "Position",
    "distance",
    "Trajectory",
    "RangePredicate",
    "DiskRange",
    "Arena",
    "StationaryMobility",
    "ConstantVelocityMobility",
    "RandomWaypointMobility",
    "Message",
    "HopRecord",
    "ReceiveRecord",
    "TraceLog",
    "AdhocNetwork",
    "RoutingProtocol",
    "DataPacket",
    "FloodingRouter",
    "AodvRouter",
    "DsdvRouter",
    "DsrRouter",
    "DreamRouter",
    "node_word",
    "message_word",
    "receive_word",
    "network_word",
    "routing_word",
    "extract_route",
    "validate_route",
    "route_acceptor",
    "decide_route",
    "RouteValidation",
    "NodeView",
    "node_view",
    "distributed_views",
    "routing_overhead",
    "path_optimality",
    "delivery_ratio",
    "shortest_path_length",
    "compute_metrics",
    "ScenarioMetrics",
    "Scenario",
    "ScenarioRun",
    "run_scenario",
]
