"""Mobility models — Section 5.2.2.

The paper notes that constant velocity "is made for simulation
purposes" [12] while the general case exposes only the current
position [11]; all models here expose exactly the general interface —
a :data:`~repro.adhoc.geometry.Trajectory` giving p_i(t) — so nothing
downstream can peek at velocities.

* :class:`StationaryMobility` — fixed positions (connectivity sanity
  tests);
* :class:`ConstantVelocityMobility` — straight lines reflected off the
  arena walls (the [12] simplification);
* :class:`RandomWaypointMobility` — the Broch et al. model our E11
  benchmark sweeps: pick a uniform waypoint, move toward it at a
  uniform speed, pause ``pause_time``, repeat.  Pause time is the
  mobility knob: 0 = constant motion, large = nearly static.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .geometry import Position, Trajectory

__all__ = [
    "Arena",
    "StationaryMobility",
    "ConstantVelocityMobility",
    "RandomWaypointMobility",
]


@dataclass(frozen=True)
class Arena:
    """A rectangular arena [0, width] × [0, height]."""

    width: float = 1500.0
    height: float = 300.0  # the Broch et al. 1500m × 300m site


class StationaryMobility:
    """Nodes never move."""

    def __init__(self, positions: Dict[int, Position]):
        self.positions = dict(positions)

    def trajectory(self, node: int) -> Trajectory:
        p = self.positions[node]
        return lambda t: p

    def trajectories(self) -> Dict[int, Trajectory]:
        return {n: self.trajectory(n) for n in self.positions}


class ConstantVelocityMobility:
    """p(t) = p₀ + v·t, reflected at the arena boundary."""

    def __init__(self, arena: Arena, starts: Dict[int, Position], velocities: Dict[int, Tuple[float, float]]):
        self.arena = arena
        self.starts = dict(starts)
        self.velocities = dict(velocities)

    @staticmethod
    def _reflect(value: float, limit: float) -> float:
        """Fold an unconstrained coordinate back into [0, limit]."""
        if limit <= 0:
            return 0.0
        period = 2 * limit
        value %= period
        return value if value <= limit else period - value

    def trajectory(self, node: int) -> Trajectory:
        p0 = self.starts[node]
        vx, vy = self.velocities[node]
        arena = self.arena

        def traj(t: int) -> Position:
            return Position(
                self._reflect(p0.x + vx * t, arena.width),
                self._reflect(p0.y + vy * t, arena.height),
            )

        return traj

    def trajectories(self) -> Dict[int, Trajectory]:
        return {n: self.trajectory(n) for n in self.starts}


class RandomWaypointMobility:
    """The random-waypoint model of the Broch et al. evaluation [12].

    Each node independently: picks a uniform destination in the arena,
    moves there at a speed uniform in [min_speed, max_speed], pauses
    for ``pause_time`` chronons, repeats.  Trajectories are
    deterministic given the seed; segments are generated lazily and
    cached so that p(t) is O(log segments) after the first evaluation.
    """

    def __init__(
        self,
        arena: Arena,
        n_nodes: int,
        pause_time: int = 0,
        min_speed: float = 1.0,
        max_speed: float = 20.0,
        seed: int = 0,
    ):
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        if max_speed < min_speed or min_speed <= 0:
            raise ValueError("speeds must satisfy 0 < min ≤ max")
        self.arena = arena
        self.n_nodes = n_nodes
        self.pause_time = pause_time
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.seed = seed
        # Per node: list of (start_time, end_time, from, to) move/pause
        # segments, extended on demand.
        self._segments: Dict[int, List[Tuple[float, float, Position, Position]]] = {}
        self._rngs: Dict[int, random.Random] = {}

    def _rng(self, node: int) -> random.Random:
        if node not in self._rngs:
            self._rngs[node] = random.Random(f"{self.seed}:{node}")
        return self._rngs[node]

    def _uniform_point(self, rng: random.Random) -> Position:
        return Position(rng.uniform(0, self.arena.width), rng.uniform(0, self.arena.height))

    def _extend(self, node: int, until: float) -> None:
        rng = self._rng(node)
        segs = self._segments.setdefault(node, [])
        if not segs:
            p0 = self._uniform_point(rng)
            segs.append((0.0, 0.0, p0, p0))  # degenerate anchor
        while segs[-1][1] <= until:
            t_end = segs[-1][1]
            here = segs[-1][3]
            target = self._uniform_point(rng)
            speed = rng.uniform(self.min_speed, self.max_speed)
            travel = math.hypot(target.x - here.x, target.y - here.y) / speed
            segs.append((t_end, t_end + travel, here, target))
            if self.pause_time > 0:
                arrive = t_end + travel
                segs.append((arrive, arrive + self.pause_time, target, target))

    def position(self, node: int, t: int) -> Position:
        if t < 0:
            raise ValueError("negative time")
        self._extend(node, t)
        segs = self._segments[node]
        # binary search for the segment containing t
        lo, hi = 0, len(segs) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if segs[mid][1] < t:
                lo = mid + 1
            else:
                hi = mid
        t0, t1, a, b = segs[lo]
        if t1 == t0:
            return b
        frac = min(1.0, max(0.0, (t - t0) / (t1 - t0)))
        return Position(a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac)

    def trajectory(self, node: int) -> Trajectory:
        return lambda t: self.position(node, t)

    def trajectories(self) -> Dict[int, Trajectory]:
        return {n: self.trajectory(n) for n in range(1, self.n_nodes + 1)}
