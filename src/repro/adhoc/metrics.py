"""Performance measures for routing runs — Section 5.2.4 / [12].

The paper maps the Broch et al. measures onto the R_{n,u} model:

* **routing overhead** — "the total number of messages transmitted":
  f + g, i.e. data hops plus control hops in our trace;
* **path optimality** — "the difference between the number of hops a
  message took … versus the length of the shortest possible path";
  the shortest possible path is computed on the connectivity graph at
  origination time;
* **message delivery ratio** — delivered / originated (the R′ view,
  with "lost" meaning delivery time beyond the horizon T).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .encode import extract_route
from .geometry import DiskRange
from .messages import Message, TraceLog

__all__ = [
    "routing_overhead",
    "shortest_path_length",
    "path_optimality",
    "delivery_ratio",
    "ScenarioMetrics",
    "compute_metrics",
]


def routing_overhead(trace: TraceLog) -> int:
    """f + g: every transmission counts, data and control alike."""
    return len(trace.hops)


def shortest_path_length(range_pred: DiskRange, src: int, dst: int, t: int, max_hops: int = 64) -> Optional[int]:
    """BFS hop distance on the directed connectivity graph at time t."""
    if src == dst:
        return 0
    seen = {src}
    frontier = deque([(src, 0)])
    while frontier:
        node, d = frontier.popleft()
        if d >= max_hops:
            continue
        for nxt in range_pred.neighbours(node, t):
            if nxt == dst:
                return d + 1
            if nxt not in seen:
                seen.add(nxt)
                frontier.append((nxt, d + 1))
    return None


def path_optimality(
    range_pred: DiskRange, trace: TraceLog, message: Message
) -> Optional[int]:
    """(hops taken) − (shortest possible) for a delivered message.

    The shortest possible path is measured on the connectivity graph at
    the moment the first data hop left the source (for reactive
    protocols this is after route discovery; measuring at creation time
    would compare against a graph the packet never traversed).  None
    when the message was not delivered or no path existed then.
    """
    chain = extract_route(trace, message)
    if not chain:
        return None
    optimal = shortest_path_length(
        range_pred, message.src, message.dst, chain[0].sent_at
    )
    if optimal is None or optimal == 0:
        return None
    return len(chain) - optimal


def delivery_ratio(trace: TraceLog, messages: Sequence[Message]) -> float:
    """Delivered fraction of the originated messages."""
    if not messages:
        return 1.0
    delivered = sum(1 for m in messages if trace.delivery_time(m.uid) is not None)
    return delivered / len(messages)


@dataclass
class ScenarioMetrics:
    """Aggregate metrics for one simulated scenario."""

    protocol: str
    n_nodes: int
    pause_time: int
    messages: int
    delivered: int
    overhead: int
    control_hops: int
    data_hops: int
    mean_path_excess: Optional[float]
    mean_latency: Optional[float]

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.messages if self.messages else 1.0

    def row(self) -> Dict[str, object]:
        """A printable benchmark row."""
        return {
            "protocol": self.protocol,
            "pause": self.pause_time,
            "delivery%": round(100 * self.delivery_ratio, 1),
            "overhead": self.overhead,
            "ctl": self.control_hops,
            "data": self.data_hops,
            "path_excess": (
                round(self.mean_path_excess, 2) if self.mean_path_excess is not None else "—"
            ),
            "latency": (
                round(self.mean_latency, 1) if self.mean_latency is not None else "—"
            ),
        }


def compute_metrics(
    protocol: str,
    range_pred: DiskRange,
    trace: TraceLog,
    messages: Sequence[Message],
    pause_time: int,
) -> ScenarioMetrics:
    """Collect the Broch-style metric set from one finished run."""
    delivered = [m for m in messages if trace.delivery_time(m.uid) is not None]
    excesses: List[int] = []
    latencies: List[int] = []
    for m in delivered:
        ex = path_optimality(range_pred, trace, m)
        if ex is not None:
            excesses.append(ex)
        dt = trace.delivery_time(m.uid)
        if dt is not None:
            latencies.append(dt - m.created_at)
    return ScenarioMetrics(
        protocol=protocol,
        n_nodes=len(range_pred.trajectories),
        pause_time=pause_time,
        messages=len(messages),
        delivered=len(delivered),
        overhead=routing_overhead(trace),
        control_hops=len(trace.control_hops()),
        data_hops=len(trace.data_hops()),
        mean_path_excess=(sum(excesses) / len(excesses)) if excesses else None,
        mean_latency=(sum(latencies) / len(latencies)) if latencies else None,
    )
