"""Positions, trajectories, and the range predicate — Section 5.2.1/5.2.2.

The paper deliberately leaves ``range(n₁, n₂, t)`` abstract ("such a
computation depends on the characteristics of the particular
application … as well as on the geographical characteristic of the
area between the two nodes").  We provide the standard disk model plus
an obstacle hook, both honouring the signature: a predicate over
(sender, receiver, time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = ["Position", "distance", "Trajectory", "RangePredicate", "DiskRange"]


@dataclass(frozen=True)
class Position:
    """A point in the plane (metres, arbitrarily)."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y


def distance(a: Position, b: Position) -> float:
    return math.hypot(a.x - b.x, a.y - b.y)


#: A trajectory maps a chronon to the node's position at that instant.
Trajectory = Callable[[int], Position]


class RangePredicate:
    """range(n₁, n₂, t): is n₂ in n₁'s transmission range at time t?"""

    def __call__(self, n1: int, n2: int, t: int) -> bool:  # pragma: no cover
        raise NotImplementedError


class DiskRange(RangePredicate):
    """The disk model: n₂ hears n₁ iff their distance at t is within
    n₁'s radio radius, optionally blocked by an obstacle predicate.

    ``radii`` maps node id → transmission radius (the per-node
    invariant characteristic q_i of Section 5.2.2); ``trajectories``
    maps node id → trajectory.
    """

    def __init__(
        self,
        trajectories: Dict[int, Trajectory],
        radii: Dict[int, float],
        obstacle: Optional[Callable[[Position, Position], bool]] = None,
    ):
        self.trajectories = trajectories
        self.radii = radii
        self.obstacle = obstacle

    def positions_at(self, t: int) -> Dict[int, Position]:
        return {nid: traj(t) for nid, traj in self.trajectories.items()}

    def __call__(self, n1: int, n2: int, t: int) -> bool:
        if n1 == n2:
            return False
        p1 = self.trajectories[n1](t)
        p2 = self.trajectories[n2](t)
        if distance(p1, p2) > self.radii[n1]:
            return False
        if self.obstacle is not None and self.obstacle(p1, p2):
            return False
        return True

    def neighbours(self, n1: int, t: int) -> Tuple[int, ...]:
        """All nodes in n₁'s range at t (deterministic id order)."""
        return tuple(
            n2 for n2 in sorted(self.trajectories) if self(n1, n2, t)
        )
