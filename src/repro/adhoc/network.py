"""The event-driven radio network — Sections 5.2.1–5.2.2.

Transmission takes exactly one chronon (the paper's granularity:
"if a message is emitted … at some time t and received … at time t′,
then t′ = t + 1").  A transmission at t reaches every node n₂ with
``range(sender, n₂, t)`` true; deliveries fire at t + 1 through the
kernel.  Every transmission and reception is appended to the
:class:`~repro.adhoc.messages.TraceLog`, from which the routing-problem
words and the Broch-style metrics are computed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..kernel.events import Event, Priority
from ..kernel.simulator import Simulator
from ..obs import hooks as _obs
from .geometry import DiskRange
from .messages import HopRecord, Message, TraceLog

if TYPE_CHECKING:  # pragma: no cover
    from .routing.base import RoutingProtocol

__all__ = ["AdhocNetwork"]


class AdhocNetwork:
    """n mobile nodes, a range predicate, and one router per node.

    ``loss_rate`` injects per-frame radio loss: each in-range hearer
    independently drops the frame with this probability (seeded, so
    runs stay reproducible).  Lost frames are recorded as transmitted
    (the sender paid for them) but produce no receive event — the
    failure-injection surface the delivery-ratio experiments use.
    """

    def __init__(
        self,
        sim: Simulator,
        range_pred: DiskRange,
        node_ids: List[int],
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.range = range_pred
        self.node_ids = sorted(node_ids)
        self.routers: Dict[int, "RoutingProtocol"] = {}
        self.trace = TraceLog()
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.frames_dropped = 0
        self._started = False

    # -- wiring ---------------------------------------------------------
    def attach(self, node: int, router: "RoutingProtocol") -> None:
        if node not in self.node_ids:
            raise ValueError(f"unknown node {node}")
        self.routers[node] = router
        router.bind(self, node)

    def start(self) -> None:
        """Start every router's background behaviour (beacons etc.)."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        for node in self.node_ids:
            self.routers[node].start()

    # -- the radio --------------------------------------------------------
    def transmit(
        self,
        sender: int,
        payload: Any,
        kind: str,
        intended: Optional[int] = None,
        message_uid: Optional[int] = None,
    ) -> HopRecord:
        """Broadcast ``payload`` from ``sender`` at the current instant.

        ``intended`` marks the one-hop destination for unicast
        semantics: the radio medium is broadcast, but the link layer
        filters — only the intended receiver's router sees the packet,
        and the r_u receive record is written for it (matching the
        Section 5.2.3 encoding).  ``intended=None`` is a true
        broadcast: every hearer receives (dst recorded as 0 by
        convention).
        """
        now = self.sim.now
        hop = HopRecord(
            sent_at=now,
            src=sender,
            dst=intended if intended is not None else 0,
            body=payload,
            kind=kind,
            message_uid=message_uid,
        )
        self.trace.record_hop(hop)
        h = _obs.HOOKS
        if h is not None:
            h.count("adhoc.frames_transmitted", kind=kind)
        hearers = [n for n in self.range.neighbours(sender, now) if n != sender]
        for hearer in hearers:
            if intended is not None and hearer != intended:
                continue  # link-layer filtering of unicast frames
            if self.loss_rate and self._loss_rng.random() < self.loss_rate:
                self.frames_dropped += 1
                if h is not None:
                    h.count("adhoc.frames_dropped")
                continue  # injected radio loss: frame never heard
            if h is not None:
                h.count("adhoc.frames_heard")
            self.trace.record_receive(hop, hearer)
            self._schedule_delivery(hearer, sender, payload, hop)
        return hop

    def _schedule_delivery(self, receiver: int, sender: int, payload: Any, hop: HopRecord) -> None:
        def deliver(_ev: Event) -> None:
            router = self.routers.get(receiver)
            if router is not None:
                router.on_packet(payload, sender, self.sim.now)

        self.sim.timeout(1, priority=Priority.HIGH).add_callback(deliver)

    # -- application layer ---------------------------------------------------
    def originate(self, message: Message) -> None:
        """Inject an end-to-end message at its source's router."""
        router = self.routers[message.src]
        router.originate(message)

    def deliver_to_application(self, message: Message, at: int) -> None:
        """A router calls this when the end-to-end destination got u."""
        if self.trace.delivery_time(message.uid) is None:
            self.trace.record_delivery(message, at)

    # -- views ------------------------------------------------------------------
    def connectivity_snapshot(self, t: int) -> Dict[int, List[int]]:
        """Adjacency (directed, by sender range) at chronon t."""
        return {n: list(self.range.neighbours(n, t)) for n in self.node_ids}
