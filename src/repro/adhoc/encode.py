"""Sections 5.2.2–5.2.4: nodes, messages, and the routing problem as
timed ω-words.

Encodings (Section 5.2.2): with e an injective string encoding and
$, @ ∉ Σ,

    enc(i, i)  =  $e(i)$                    (the node's label)
    enc(i, π)  =  $e(i)@e(π)$               (any other property)

A node i is the word h_i = (q_i)(∏_t p_i(t)) with the invariant
characteristics and initial position at τ = 0 and position block t at
τ = t.  A message u is m_u = $e(t)@e(s)@e(d)@e(b)$ at τ = t; a receive
event is r_u = $e(t)@e(s)@e(d)$ at τ = t′.

The routing problem R_{n,u} (Section 5.2.4) is the language of words
h₁…h_n m_{u₁} r_{u₁} … m_{u_f} r_{u_f} m_{rt₁} r_{rt₁} … whose data-hop
chain satisfies:

1.  b₁ = … = b_f = b,  s₁ = s,  d_f = d,  t₁ = t;
2.  for 1 ≤ i ≤ f−1:  d_i = s_{i+1},  t′_i = t_{i+1},  and
    range(s_i, d_i, t_i) holds;
3.  t′_f is finite.

:func:`validate_route` executes that definition against a simulation
trace; :func:`routing_word` builds the corresponding timed ω-word.
R′_{n,u} (lossy delivery) is :func:`validate_route` with
``require_delivery=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from .. import engine
from ..obs import hooks as _obs
from ..words.concat import concat, concat_many
from ..words.timedword import Pair, TimedWord
from .geometry import DiskRange, Trajectory
from .messages import HopRecord, Message, TraceLog

__all__ = [
    "node_word",
    "message_word",
    "receive_word",
    "network_word",
    "routing_word",
    "RouteValidation",
    "extract_route",
    "validate_route",
    "route_acceptor",
    "decide_route",
    "NodeView",
    "node_view",
    "distributed_views",
]


def _e(value: Any) -> List[str]:
    """The injective character encoding e(·)."""
    return list(str(value))


def _enc_property(node: int, prop: Any) -> List[str]:
    """enc(i, π) = $e(i)@e(π)$."""
    return ["$", *_e(node), "@", *_e(prop), "$"]


def node_word(node: int, invariants: Any, trajectory: Trajectory) -> TimedWord:
    """h_i: invariant characteristics q_i and p_i(0) at τ=0, then the
    successive positions labelled with their time values."""

    def pos_block(t: int) -> List[str]:
        p = trajectory(t)
        return _enc_property(node, f"({p.x:.1f},{p.y:.1f})")

    q_block = _enc_property(node, f"q:{invariants}")
    head = [(s, 0) for s in q_block] + [(s, 0) for s in pos_block(0)]

    blocks: List[List[Pair]] = [head]
    offsets = [0, len(head)]

    def ensure(i: int) -> None:
        while len(blocks) <= i:
            t = len(blocks)  # block index == chronon
            b = [(s, t) for s in pos_block(t)]
            blocks.append(b)
            offsets.append(offsets[-1] + len(b))

    def fn(j: int) -> Pair:
        import bisect

        ensure(0)
        while offsets[len(blocks)] <= j:
            ensure(len(blocks))
        i = bisect.bisect_right(offsets, j) - 1
        return blocks[i][j - offsets[i]]

    return TimedWord.functional(fn)


def message_word(hop: HopRecord) -> TimedWord:
    """m_u = $e(t)@e(s)@e(d)@e(b)$ with every symbol at τ = t."""
    syms = [
        "$",
        *_e(hop.sent_at),
        "@",
        *_e(hop.src),
        "@",
        *_e(hop.dst),
        "@",
        *_e(hop.body if not hasattr(hop.body, "message") else hop.body),
        "$",
    ]
    return TimedWord.finite([(s, hop.sent_at) for s in syms])


def receive_word(hop: HopRecord) -> TimedWord:
    """r_u = $e(t)@e(s)@e(d)$ with every symbol at τ = t′ = t + 1."""
    syms = ["$", *_e(hop.sent_at), "@", *_e(hop.src), "@", *_e(hop.dst), "$"]
    return TimedWord.finite([(s, hop.received_at) for s in syms])


def network_word(
    range_pred: DiskRange, invariants: Any = "radio"
) -> TimedWord:
    """a_n = h₁ h₂ … h_n: the n-node network with no messages."""
    words = [
        node_word(n, invariants, range_pred.trajectories[n])
        for n in sorted(range_pred.trajectories)
    ]
    return concat_many(words)


def routing_word(
    range_pred: DiskRange,
    trace: TraceLog,
    max_hops: Optional[int] = None,
    invariants: Any = "radio",
) -> TimedWord:
    """w = h₁…h_n m_{u₁} r_{u₁} … — the word a routing run denotes.

    Hops are taken from the trace in event order; ``max_hops`` bounds
    the embedded transmissions (traces are finite anyway).
    """
    word = network_word(range_pred, invariants)
    hops = trace.hops if max_hops is None else trace.hops[:max_hops]
    for hop in hops:
        word = concat(word, message_word(hop))
        word = concat(word, receive_word(hop))
    return word


# ----------------------------------------------------------------------
# Section 5.2.5: the distributed per-node decomposition H_i = 𝓛_i 𝓡_i
# ----------------------------------------------------------------------

@dataclass
class NodeView:
    """One node's knowledge of the routing instance (Section 5.2.5).

    "The component H_i contains only those messages that are sent by
    the corresponding node, and those messages that are received by the
    node.  Besides this information, no knowledge about the external
    world exists."
    """

    node: int
    local: TimedWord  # 𝓛_i: h_i + the m-words of messages sent by i
    remote: TimedWord  # 𝓡_i: the r-words of messages received by i
    word: TimedWord  # H_i = 𝓛_i · 𝓡_i
    sent_hops: List[HopRecord] = field(default_factory=list)
    received_hops: List[HopRecord] = field(default_factory=list)


def node_view(
    range_pred: DiskRange,
    trace: TraceLog,
    node: int,
    invariants: Any = "radio",
    max_hops: Optional[int] = None,
) -> NodeView:
    """Build H_i = 𝓛_i 𝓡_i for one node from a simulation trace.

    𝓛_i (eq. 11): the node word h_i concatenated with m_{u} for every
    hop whose *source* is i.  𝓡_i (eq. 12): the r_{u} words for every
    hop some node sent *to* i (the union of the M_{l,i} sets — we read
    them from the receive records, which carry exactly that relation).
    """
    hops = trace.hops if max_hops is None else trace.hops[:max_hops]
    hop_ids = {h.hop_id for h in hops}
    sent = [h for h in hops if h.src == node]
    received_ids = {
        r.hop_id for r in trace.receives if r.dst == node and r.hop_id in hop_ids
    }
    received = [h for h in hops if h.hop_id in received_ids]

    local = node_word(node, invariants, range_pred.trajectories[node])
    for h in sent:
        local = concat(local, message_word(h))
    if received:
        remote = concat_many([receive_word(h) for h in received])
    else:
        remote = TimedWord.finite([])
    word = concat(local, remote)
    return NodeView(
        node=node,
        local=local,
        remote=remote,
        word=word,
        sent_hops=sent,
        received_hops=received,
    )


def distributed_views(
    range_pred: DiskRange,
    trace: TraceLog,
    invariants: Any = "radio",
    max_hops: Optional[int] = None,
) -> List[NodeView]:
    """(H_1, …, H_n): the Section 5.2.5 model of a whole routing run."""
    return [
        node_view(range_pred, trace, node, invariants, max_hops)
        for node in sorted(range_pred.trajectories)
    ]


# ----------------------------------------------------------------------
# the routing-problem validator (the executable R_{n,u})
# ----------------------------------------------------------------------

@dataclass
class RouteValidation:
    """Outcome of checking a trace against R_{n,u}."""

    in_language: bool
    delivered: bool
    chain: List[HopRecord] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def f(self) -> int:
        """Number of one-hop data messages on the delivery chain."""
        return len(self.chain)


def extract_route(trace: TraceLog, message: Message) -> List[HopRecord]:
    """Reconstruct the causal hop chain that delivered ``message``.

    Works backward from the delivery: the last hop is one whose
    receiver set includes the destination; each predecessor is a hop
    whose receiver set includes the successor's sender and whose
    receive time is no later than the successor's send time (latest
    such hop wins, keeping the chain tight).  Returns [] if the message
    was never delivered.
    """
    delivered_at = trace.delivery_time(message.uid)
    if delivered_at is None:
        return []
    hops = trace.data_hops(message.uid)
    receivers = {}  # hop_id -> set of receivers
    for r in trace.receives:
        receivers.setdefault(r.hop_id, set()).add(r.dst)

    def heard_by(hop: HopRecord, node: int) -> bool:
        return node in receivers.get(hop.hop_id, set())

    # last hop: received by the destination, consistent with delivery time
    last: Optional[HopRecord] = None
    for h in hops:
        if heard_by(h, message.dst) and h.received_at <= delivered_at:
            if last is None or h.received_at > last.received_at:
                last = h
    if last is None:
        return []
    chain = [last]
    while chain[0].src != message.src or chain[0].sent_at > message.created_at:
        current = chain[0]
        pred: Optional[HopRecord] = None
        for h in hops:
            if h is current:
                continue
            if heard_by(h, current.src) and h.received_at <= current.sent_at:
                if pred is None or h.received_at > pred.received_at:
                    pred = h
        if pred is None:
            break
        if pred in chain:  # defensive: no cycles
            break
        chain.insert(0, pred)
    return chain


def validate_route(
    range_pred: DiskRange,
    trace: TraceLog,
    message: Message,
    require_delivery: bool = True,
    strict_relay: bool = True,
) -> RouteValidation:
    """Check the Section 5.2.4 conditions on a trace.

    ``strict_relay=True`` enforces the paper's exact timing — t₁ = t
    (condition 1) and t′_i = t_{i+1} (condition 2); ``False`` relaxes
    both to inequalities (t₁ ≥ t, t′_i ≤ t_{i+1}), accommodating
    protocols that queue packets, e.g. behind a reactive route
    discovery.  ``require_delivery=False`` gives R′_{n,u}: lost
    messages allowed.
    """
    violations: List[str] = []
    chain = extract_route(trace, message)
    delivered = trace.delivery_time(message.uid) is not None

    if not delivered:
        if require_delivery:
            violations.append("t'_f is not finite: message never delivered (cond. 3)")
        return RouteValidation(
            in_language=not require_delivery,
            delivered=False,
            chain=[],
            violations=violations,
        )

    if not chain:
        violations.append("no causal hop chain found for a delivered message")
        return RouteValidation(False, True, [], violations)

    # condition 1
    if chain[0].src != message.src:
        violations.append(f"s₁={chain[0].src} ≠ s={message.src} (cond. 1)")
    if strict_relay and chain[0].sent_at != message.created_at:
        violations.append(
            f"t₁={chain[0].sent_at} ≠ t={message.created_at} (cond. 1, strict)"
        )
    elif chain[0].sent_at < message.created_at:
        violations.append("first hop sent before the message existed (causality)")
    # bodies: every data hop carries the same end-to-end message
    for h in chain:
        if h.message_uid != message.uid:
            violations.append(f"hop {h.hop_id} body differs (cond. 1)")

    # condition 2: the chain links and the range predicate
    receivers = {}
    for r in trace.receives:
        receivers.setdefault(r.hop_id, set()).add(r.dst)
    for i in range(len(chain) - 1):
        cur, nxt = chain[i], chain[i + 1]
        if nxt.src not in receivers.get(cur.hop_id, set()):
            violations.append(f"d_{i+1} ≠ s_{i+2}: chain broken (cond. 2)")
        if strict_relay and cur.received_at != nxt.sent_at:
            violations.append(
                f"t'_{i+1}={cur.received_at} ≠ t_{i+2}={nxt.sent_at} (cond. 2, strict)"
            )
        elif cur.received_at > nxt.sent_at:
            violations.append(f"hop {i+2} sent before hop {i+1} received (causality)")
    for i, h in enumerate(chain):
        # range(s_i, d_i, t_i): validated against the actual receiver
        receiver = chain[i + 1].src if i + 1 < len(chain) else message.dst
        if not range_pred(h.src, receiver, h.sent_at):
            violations.append(
                f"range(s_{i+1}={h.src}, d_{i+1}={receiver}, t_{i+1}={h.sent_at}) false (cond. 2)"
            )

    # condition 1 tail: d_f = d
    if message.dst not in receivers.get(chain[-1].hop_id, set()):
        violations.append(f"d_f does not include d={message.dst} (cond. 1)")

    return RouteValidation(
        in_language=not violations,
        delivered=True,
        chain=chain,
        violations=violations,
    )


def route_acceptor(
    range_pred: DiskRange,
    trace: TraceLog,
    require_delivery: bool = True,
    strict_relay: bool = True,
) -> "engine.FunctionAcceptor":
    """R_{n,u} as an engine acceptor.

    The word *is* the message here (the trace already denotes the run);
    each judgement executes :func:`validate_route` and reports the
    chain length as the f-count, with the violations as evidence.
    """

    def judge(message: Message, horizon: int) -> engine.DecisionReport:
        v = validate_route(
            range_pred,
            trace,
            message,
            require_delivery=require_delivery,
            strict_relay=strict_relay,
        )
        report = engine.DecisionReport(
            verdict=engine.Verdict.ACCEPT if v.in_language else engine.Verdict.REJECT,
            f_count=v.f,
            horizon=horizon,
        )
        report.evidence["delivered"] = v.delivered
        report.evidence["violations"] = list(v.violations)
        return report

    name = "R'_{n,u}" if not require_delivery else "R_{n,u}"
    return engine.FunctionAcceptor(judge, name=name)


@_obs.spanned(
    "adhoc.decide_route",
    args=lambda range_pred, trace, message, require_delivery=True, strict_relay=True: {
        "message": message.uid,
        "strict": strict_relay,
    },
)
def decide_route(
    range_pred: DiskRange,
    trace: TraceLog,
    message: Message,
    require_delivery: bool = True,
    strict_relay: bool = True,
) -> "engine.DecisionReport":
    """Membership of a routed message in R_{n,u}, through the engine."""
    acceptor = route_acceptor(
        range_pred, trace, require_delivery=require_delivery, strict_relay=strict_relay
    )
    return engine.decide(acceptor, message)
