"""Scenario driver: build, run, and measure one ad hoc network setup.

This is the harness the E10/E11 benchmarks call: a random-waypoint
arena in the Broch et al. style, a routing protocol per node, a Poisson
-ish workload of end-to-end messages between random pairs, and the
metric collection of :mod:`repro.adhoc.metrics`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..kernel.simulator import Simulator
from ..obs import hooks as _obs
from .geometry import DiskRange, Position
from .messages import Message
from .metrics import ScenarioMetrics, compute_metrics
from .mobility import Arena, RandomWaypointMobility, StationaryMobility
from .network import AdhocNetwork
from .routing.base import RoutingProtocol

__all__ = ["Scenario", "ScenarioRun", "run_scenario"]


@dataclass
class Scenario:
    """Parameters of one run (defaults follow Broch et al. loosely)."""

    n_nodes: int = 20
    arena: Arena = Arena(1000.0, 300.0)
    radio_range: float = 250.0
    pause_time: int = 0
    min_speed: float = 1.0
    max_speed: float = 20.0
    n_messages: int = 10
    message_window: Tuple[int, int] = (20, 120)
    horizon: int = 400
    seed: int = 0
    stationary: bool = False
    loss_rate: float = 0.0  # injected per-frame radio loss


@dataclass
class ScenarioRun:
    """A finished run: the network objects plus the measured metrics."""

    scenario: Scenario
    network: AdhocNetwork
    range_pred: DiskRange
    messages: List[Message]
    metrics: ScenarioMetrics


def run_scenario(
    protocol_factory: Callable[[], RoutingProtocol],
    scenario: Scenario,
) -> ScenarioRun:
    """Simulate one scenario under one protocol and measure it."""
    h = _obs.HOOKS
    if h is None:
        return _run_scenario(protocol_factory, scenario)
    probe = protocol_factory()
    with h.span(
        "adhoc.scenario",
        protocol=probe.name,
        n_nodes=scenario.n_nodes,
        horizon=scenario.horizon,
    ):
        run = _run_scenario(protocol_factory, scenario)
    h.count("adhoc.scenarios", protocol=run.metrics.protocol)
    h.count("adhoc.messages_originated", len(run.messages), protocol=run.metrics.protocol)
    return run


def _run_scenario(
    protocol_factory: Callable[[], RoutingProtocol],
    scenario: Scenario,
) -> ScenarioRun:
    rng = random.Random(scenario.seed)
    node_ids = list(range(1, scenario.n_nodes + 1))

    if scenario.stationary:
        positions = {
            n: Position(
                rng.uniform(0, scenario.arena.width),
                rng.uniform(0, scenario.arena.height),
            )
            for n in node_ids
        }
        mobility = StationaryMobility(positions)
        trajectories = mobility.trajectories()
    else:
        waypoint = RandomWaypointMobility(
            scenario.arena,
            scenario.n_nodes,
            pause_time=scenario.pause_time,
            min_speed=scenario.min_speed,
            max_speed=scenario.max_speed,
            seed=scenario.seed,
        )
        trajectories = waypoint.trajectories()

    range_pred = DiskRange(
        trajectories, radii={n: scenario.radio_range for n in node_ids}
    )
    sim = Simulator()
    network = AdhocNetwork(
        sim, range_pred, node_ids,
        loss_rate=scenario.loss_rate, loss_seed=scenario.seed,
    )
    protocol_name = ""
    for n in node_ids:
        router = protocol_factory()
        protocol_name = router.name
        network.attach(n, router)
    network.start()

    # workload: n_messages between random distinct pairs, uniform times
    messages: List[Message] = []
    lo, hi = scenario.message_window

    def injector():
        last_t = 0
        plan = sorted(
            (rng.randint(lo, min(hi, scenario.horizon - 1)) for _ in range(scenario.n_messages))
        )
        for i, t in enumerate(plan):
            if t > last_t:
                yield sim.timeout(t - last_t)
                last_t = t
            src = rng.choice(node_ids)
            dst = rng.choice([n for n in node_ids if n != src])
            msg = Message(src=src, dst=dst, body=f"payload-{i}", created_at=sim.now)
            messages.append(msg)
            network.originate(msg)

    sim.process(injector(), name="workload")
    sim.run(until=scenario.horizon)

    metrics = compute_metrics(
        protocol_name, range_pred, network.trace, messages, scenario.pause_time
    )
    return ScenarioRun(
        scenario=scenario,
        network=network,
        range_pred=range_pred,
        messages=messages,
        metrics=metrics,
    )
