"""The Section 4.2 timed ω-word construction and its acceptor.

Word shape (paper, Section 4.2): with m = |o| and n the beforehand
amount,

    σ₁…σ_m = o,  σ_{m+1}…σ_{m+n} = ι₁…ι_n,   τ = 0 for all of them;
    then for i ≥ 0:  σ_{i₀+2i} = c  (a marker),  σ_{i₀+2i+1} = the next
    datum, with τ(datum) = its arrival time t_j under the law and
    τ(marker) = t_j − 1.

The marker c arriving one chronon *before* each datum is what lets the
monitor P_m detect the paper's termination window: P_m accepts when
P_w has processed p data, the marker preceding datum p+1 has **not**
arrived yet, and the computed partial solution matches the proposed
one.

Because arrival laws are polynomial, these words are genuinely
non-periodic — they use the functional :class:`TimedWord`
representation, and acceptance is decided operationally (the acceptor
reaches its absorbing verdict in finite time on every successful
instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from .. import engine
from ..kernel.events import Event
from ..kernel.resources import Store
from ..machine.monitor import WorkerMonitorAcceptor, WorkerSignal
from ..machine.rtalgorithm import Context, DecisionReport, Verdict
from ..obs import hooks as _obs
from ..words.timedword import Pair, TimedWord
from .arrival import ArrivalLaw
from .dalgorithm import OnlineSolver

__all__ = [
    "MARKER",
    "DataAccInstance",
    "encode_dataacc",
    "dataacc_acceptor",
    "decide_dataacc",
    "make_instance",
]

MARKER = "c"


@dataclass(frozen=True)
class DataAccInstance:
    """One d-algorithm instance: law + data source + proposed output.

    ``proposed_output`` is the solution the ω-word proposes; per the
    paper it should be the partial solution at the (unique) successful
    termination point for the instance to belong to L(Π).
    """

    law: ArrivalLaw
    data: Callable[[int], Any]  # 1-based datum values
    proposed_output: Tuple


def encode_dataacc(instance: DataAccInstance) -> TimedWord:
    """Build the (functional) timed ω-word of Section 4.2."""
    law = instance.law
    n = law.n
    o = instance.proposed_output
    m = len(o)
    header: List[Pair] = [(("O", y), 0) for y in o]
    header += [(("I", instance.data(j)), 0) for j in range(1, n + 1)]

    def fn(i: int) -> Pair:
        if i < m + n:
            return header[i]
        # Tail: pairs (marker, datum) for data j = n+1, n+2, …
        rel = i - (m + n)
        pair_idx, which = divmod(rel, 2)
        j = n + 1 + pair_idx
        t_j = law.arrival_time(j)
        if which == 0:
            # The marker precedes its datum by one chronon, clamped so
            # the word stays monotone when several data share a chronon
            # (the previous datum then sits at t_j already).
            prev_t = law.arrival_time(j - 1) if j - 1 > n else 0
            return (MARKER, max(0, t_j - 1, prev_t))
        return (("I", instance.data(j)), t_j)

    return TimedWord.functional(fn)


def dataacc_acceptor(solver_factory: Callable[[], OnlineSolver]) -> WorkerMonitorAcceptor:
    """The Section 4.2 acceptor for L(Π) over an online solver.

    P_w consumes data in arrival order, emitting a signal after each
    datum (the paper: "it emits some special signal to P_m each time it
    finishes the processing of one input data"; being on-line, at the
    p-th signal it holds the partial solution for ι₁…ι_p).  P_m accepts
    at the first signal after which no further marker/datum has arrived,
    comparing the partial solution against the proposed one.
    """

    def worker(ctx: Context, signals: Store) -> Generator[Event, Any, None]:
        solver = solver_factory()
        solver.reset()
        proposed: List[Any] = []
        started = False
        while True:
            sym, _t = yield ctx.input.read()
            if isinstance(sym, tuple) and sym[0] == "O":
                proposed.append(sym[1])
                continue
            if sym == MARKER:
                continue
            assert isinstance(sym, tuple) and sym[0] == "I", f"unexpected {sym!r}"
            started = True
            cost = max(1, solver.cost(sym[1]))
            yield ctx.timeout(cost)
            solver.consume(sym[1])
            yield signals.put(
                WorkerSignal(
                    "datum-processed",
                    payload=(tuple(proposed), solver.solution()),
                )
            )

    def monitor_decision(ctx: Context, sig: WorkerSignal) -> Optional[Verdict]:
        if sig.kind != "datum-processed":
            return None
        proposed, partial = sig.payload
        # The termination window: every arrived datum has been consumed
        # (the worker signals synchronously after consuming, so pending
        # input on the tape means the window is not open) and the next
        # marker has not arrived.  The worker reads markers off the
        # tape too, so "nothing unread on the tape" is exactly the test.
        if ctx.input.peek_pending():
            return None  # unread symbols exist: not the window
        if ctx.input.current_symbol() == MARKER:
            # A marker was the last arrival: the next datum is due one
            # chronon from its stamp — the window is closed.
            return None
        if partial == proposed:
            return Verdict.ACCEPT
        return Verdict.REJECT

    return WorkerMonitorAcceptor(worker, monitor_decision, name="L(d-alg)")


@_obs.spanned(
    "dataacc.decide",
    args=lambda instance, solver_factory, horizon=100_000: {"horizon": horizon},
)
def decide_dataacc(
    instance: DataAccInstance,
    solver_factory: Callable[[], OnlineSolver],
    horizon: int = 100_000,
) -> DecisionReport:
    """Judge one d-algorithm instance through the engine.

    The acceptor's finite control depends only on ``solver_factory``,
    so it is cached across instances; each run still gets a fresh
    simulator.
    """
    acceptor = engine.cached_acceptor(
        ("dataacc", id(solver_factory)),
        lambda: dataacc_acceptor(solver_factory),
        solver_factory,
    )
    return engine.decide(acceptor, encode_dataacc(instance), horizon=horizon)


def make_instance(
    law: ArrivalLaw,
    data: Callable[[int], Any],
    solver_factory: Callable[[], OnlineSolver],
    horizon: int = 100_000,
    truthful: bool = True,
) -> Optional[DataAccInstance]:
    """Construct an instance whose proposed output is (or is not) the
    true partial solution at the successful termination point.

    Runs the reference d-algorithm simulation to find the termination
    point p; returns None if the run diverges within ``horizon`` (the
    non-terminating regime has no successful instances).
    """
    from .dalgorithm import run_dalgorithm

    # lead=1 matches the acceptor's marker-based termination window.
    result = run_dalgorithm(solver_factory(), law, data, horizon=horizon, lead=1)
    if not result.terminated:
        return None
    solution = result.solution
    if not truthful:
        solution = tuple(solution) + ("#bogus#",)
    return DataAccInstance(law=law, data=data, proposed_output=tuple(solution))
