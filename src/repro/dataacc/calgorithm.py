"""Correcting algorithms (c-algorithms) — the Section 4.2 variant.

c-algorithms [16, 26, 27] are "similar with d-algorithms, except that
data that arrive during the computation consist in *corrections* to the
initial input rather than new input".  A correction is a pair
(index, new_value) replacing one cell of the initial input; the
algorithm maintains the solution of the *corrected* input and
terminates when all issued corrections have been applied before the
next one arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from ..kernel.events import Event
from ..kernel.simulator import Simulator
from .arrival import ArrivalLaw

__all__ = ["Correction", "CorrectingSolver", "CorrectingSortSolver", "CRunResult", "run_calgorithm"]


@dataclass(frozen=True)
class Correction:
    """Replace input cell ``index`` with ``value``."""

    index: int
    value: Any


class CorrectingSolver:
    """Maintains the solution of an input vector under corrections."""

    def initialize(self, data: Sequence[Any]) -> None:
        raise NotImplementedError

    def apply(self, correction: Correction) -> None:
        raise NotImplementedError

    def solution(self) -> Tuple:
        raise NotImplementedError

    def init_cost(self, data: Sequence[Any]) -> int:
        """Chronons for the initial solve."""
        return max(1, len(data))

    def cost(self, correction: Correction) -> int:
        """Chronons to apply one correction (≥ 1)."""
        return 1


class CorrectingSortSolver(CorrectingSolver):
    """Sorting under corrections.

    The naive full re-sort would cost Θ(n log n) per correction; the
    correcting algorithm instead removes the stale value and inserts
    the new one (two O(log n + n) array operations), which is the
    c-algorithm advantage the literature analyses.
    """

    def __init__(self, cost_per_correction: int = 1):
        self._data: List[Any] = []
        self._sorted: List[Any] = []
        self.cost_per_correction = cost_per_correction

    def initialize(self, data: Sequence[Any]) -> None:
        self._data = list(data)
        self._sorted = sorted(data)

    def apply(self, correction: Correction) -> None:
        import bisect

        old = self._data[correction.index]
        self._data[correction.index] = correction.value
        pos = bisect.bisect_left(self._sorted, old)
        assert self._sorted[pos] == old
        self._sorted.pop(pos)
        bisect.insort(self._sorted, correction.value)

    def solution(self) -> Tuple:
        return tuple(self._sorted)

    def cost(self, correction: Correction) -> int:
        return self.cost_per_correction


@dataclass
class CRunResult:
    """Outcome of a c-algorithm run."""

    terminated: bool
    termination_time: Optional[int]
    corrections_applied: int
    solution: Tuple
    horizon: int


def run_calgorithm(
    solver: CorrectingSolver,
    initial_data: Sequence[Any],
    law: ArrivalLaw,
    corrections: Callable[[int], Correction],
    horizon: int = 100_000,
) -> CRunResult:
    """Simulate a c-algorithm until termination or ``horizon``.

    The arrival law counts cumulative *corrections* past the initial
    batch: correction j arrives at the earliest t with
    ``law.amount(t) − law.n ≥ j`` (the beforehand amount is the initial
    input itself, available at 0).
    """
    from collections import deque

    sim = Simulator()
    queue: deque = deque()
    state = {"arrived": 0, "applied": 0, "done_at": None}
    wakeup: List[Event] = [sim.event("correction-arrived")]
    # see run_dalgorithm: corrections beyond the horizon's processing
    # capacity cannot matter, so the feed is capped for divergent laws
    arrival_cap = horizon + 2

    def correction_time(j: int) -> int:
        return law.arrival_time(law.n + j)

    def arrivals() -> Generator[Event, Any, None]:
        j = 1
        while state["arrived"] < arrival_cap:
            t = correction_time(j)
            if t > horizon:
                return
            if t > sim.now:
                yield sim.timeout(t - sim.now)
            while correction_time(j) == sim.now and state["arrived"] < arrival_cap:
                queue.append(corrections(j))
                state["arrived"] += 1
                j += 1
            ev = wakeup[0]
            wakeup[0] = sim.event("correction-arrived")
            if not ev.triggered:
                ev.succeed()

    def pending_now() -> int:
        return (law.amount(sim.now) - law.n) - state["applied"]

    def worker() -> Generator[Event, Any, None]:
        cost0 = max(1, solver.init_cost(initial_data))
        yield sim.timeout(cost0)
        solver.initialize(initial_data)
        while True:
            if queue:
                corr = queue.popleft()
                yield sim.timeout(max(1, solver.cost(corr)))
                solver.apply(corr)
                state["applied"] += 1
            if not queue and pending_now() <= 0:
                state["done_at"] = sim.now
                return
            if not queue:
                yield wakeup[0]

    sim.process(arrivals(), name="corrections")
    sim.process(worker(), name="c-worker")
    sim.run(until=horizon)

    return CRunResult(
        terminated=state["done_at"] is not None,
        termination_time=state["done_at"],
        corrections_applied=state["applied"],
        solution=solver.solution() if state["done_at"] is not None else (),
        horizon=horizon,
    )
