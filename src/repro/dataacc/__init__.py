"""The data-accumulating paradigm — Section 4.2 of the paper."""

from .arrival import ArrivalLaw, PolynomialArrivalLaw, arrival_schedule, termination_time
from .calgorithm import (
    Correction,
    CorrectingSolver,
    CorrectingSortSolver,
    CRunResult,
    run_calgorithm,
)
from .dalgorithm import (
    DRunResult,
    InsertionSortSolver,
    OnlineSolver,
    PrefixSumSolver,
    RunningMinSolver,
    run_dalgorithm,
)
from .encode import (
    MARKER,
    DataAccInstance,
    dataacc_acceptor,
    decide_dataacc,
    encode_dataacc,
    make_instance,
)
from .cencode import (
    CAlgInstance,
    calgorithm_acceptor,
    decide_calgorithm,
    encode_calgorithm,
    make_c_instance,
)
from .shovelers import (
    ParallelDRunResult,
    minimum_processors,
    parallel_termination_time,
    run_parallel_dalgorithm,
    strict_parallel_termination_time,
)

__all__ = [
    "ArrivalLaw",
    "PolynomialArrivalLaw",
    "termination_time",
    "arrival_schedule",
    "OnlineSolver",
    "InsertionSortSolver",
    "RunningMinSolver",
    "PrefixSumSolver",
    "DRunResult",
    "run_dalgorithm",
    "Correction",
    "CorrectingSolver",
    "CorrectingSortSolver",
    "CRunResult",
    "run_calgorithm",
    "MARKER",
    "DataAccInstance",
    "encode_dataacc",
    "dataacc_acceptor",
    "decide_dataacc",
    "make_instance",
    "ParallelDRunResult",
    "run_parallel_dalgorithm",
    "parallel_termination_time",
    "minimum_processors",
    "strict_parallel_termination_time",
    "CAlgInstance",
    "encode_calgorithm",
    "calgorithm_acceptor",
    "decide_calgorithm",
    "make_c_instance",
]
