"""The p-shovelers problem — Luccio & Pagli [26, 27], the paper's
bridge between §4.2 (data accumulation) and §7 (parallel real-time
power).

"Recall here that it has been already established that a parallel
approach can make the difference between success and failure" — the
canonical witness is the p-shovelers problem: p workers shovel a pile
that keeps growing under an arrival law.  A p-worker d-algorithm
processes p items per c chronons, so it terminates at the smallest t
with p·t/c ≥ f(n, t); for the paper's law family that means

    β < 1                    — any p ≥ 1 suffices;
    β = 1                    — termination ⟺ p > c·k·n^γ;
    β > 1                    — no finite p suffices asymptotically.

:func:`minimum_processors` computes the exact threshold; the simulator
:func:`run_parallel_dalgorithm` realizes it on the kernel with p
independent worker processes sharing the arrival queue, and experiment
E17 sweeps the two against each other.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from ..kernel.events import Event
from ..kernel.simulator import Simulator
from .arrival import ArrivalLaw, PolynomialArrivalLaw
from .dalgorithm import OnlineSolver

__all__ = [
    "ParallelDRunResult",
    "run_parallel_dalgorithm",
    "parallel_termination_time",
    "strict_parallel_termination_time",
    "minimum_processors",
]


@dataclass
class ParallelDRunResult:
    """Outcome of a p-worker d-algorithm run."""

    p: int
    terminated: bool
    termination_time: Optional[int]
    items_processed: int
    per_worker: List[int]
    horizon: int

    @property
    def speedup_basis(self) -> Optional[int]:
        return self.termination_time

    def __repr__(self) -> str:  # pragma: no cover
        tag = f"t={self.termination_time}" if self.terminated else "DIVERGED"
        return f"ParallelDRunResult(p={self.p}, {tag}, items={self.items_processed})"


def parallel_termination_time(
    law: ArrivalLaw, c: float, p: int, horizon: int = 1_000_000
) -> Optional[int]:
    """The *fluid* catch-up time: smallest t with p·t/c ≥ f(n, t).

    This is the Luccio–Pagli capacity analysis — the instant at which
    p shovelers have had enough aggregate capacity to clear everything
    arrived.  The paper's *strict* termination ("all the currently
    arrived data have been processed **before another datum arrives**")
    additionally needs an arrival-free instant at catch-up; see
    :func:`strict_parallel_termination_time` for the exact discrete
    semantics the simulator realizes.  The two agree whenever the law
    has arrival gaps (e.g. β < 1, or β = 1 with k·n^γ < 1), and differ
    for gap-free laws (β = 1, k·n^γ ≥ 1: fluid catch-up can exist while
    strict termination never happens).
    """
    if c <= 0 or p <= 0:
        raise ValueError("cost and processor count must be positive")
    for t in range(horizon + 1):
        if p * t >= c * law.amount(t):
            if t > 0 or law.amount(0) == 0:
                return t
    return None


def strict_parallel_termination_time(
    law: ArrivalLaw, p: int, horizon: int = 1_000_000
) -> Optional[int]:
    """Exact discrete termination for unit-cost shovelers.

    Mirrors the event order of :func:`run_parallel_dalgorithm` (for
    solvers with cost 1): at each chronon, arrivals are delivered
    first, then workers finish the items they popped the previous
    chronon, check the paper's termination condition, and pop up to p
    new items.  Termination happens at the first chronon where a
    finishing worker sees an empty pile and no same-instant arrival
    outstanding.
    """
    if p <= 0:
        raise ValueError("processor count must be positive")
    pile = 0
    serving = 0
    processed = 0
    prev_amount = 0
    for t in range(horizon + 1):
        amount = law.amount(t)
        pile += amount - prev_amount
        prev_amount = amount
        processed += serving
        if serving > 0 and pile == 0 and amount <= processed:
            return t
        serving = min(p, pile)
        pile -= serving
    return None


def minimum_processors(
    law: PolynomialArrivalLaw, c: float, p_max: int = 4096, horizon: int = 200_000
) -> Optional[int]:
    """The least p achieving *fluid* catch-up (see
    :func:`parallel_termination_time`).

    For β = 1 the closed form is p = ⌊c·k·n^γ⌋ + 1; for β < 1 it is 1;
    for β > 1 an *early crossing* may still exist (the pile can be
    cleared before the superlinear law takes off — e.g. n=4, k=1, β=2
    crosses at t=2 with p=4) — searched numerically.  Returns None if
    no p ≤ p_max works.
    """
    if law.beta < 1:
        return 1
    if law.beta == 1:
        closed = int(math.floor(c * law.rate_coefficient())) + 1
        # guard against floor/float dust at the boundary
        for p in (max(1, closed - 1), closed, closed + 1):
            if parallel_termination_time(law, c, p, horizon) is not None:
                return p
        return None
    for p in range(1, p_max + 1):
        if parallel_termination_time(law, c, p, horizon) is not None:
            return p
    return None


def run_parallel_dalgorithm(
    solver_factory: Callable[[], OnlineSolver],
    law: ArrivalLaw,
    data: Callable[[int], Any],
    p: int,
    horizon: int = 100_000,
) -> ParallelDRunResult:
    """Simulate p shovelers against one arrival stream.

    Workers share a FIFO pile; each consumes one item per its solver's
    cost.  Termination per the paper: every arrived item processed and
    no new arrival outstanding.  One solver instance per worker (the
    partial solutions are per-worker; merging them is the usual
    O(p)-cost epilogue and does not affect termination detection).
    """
    if p <= 0:
        raise ValueError("need at least one shoveler")
    sim = Simulator()
    solvers = [solver_factory() for _ in range(p)]
    for s in solvers:
        s.reset()
    pile: deque = deque()
    state = {"arrived": 0, "processed": 0, "done_at": None}
    per_worker = [0] * p
    wakeup: List[Event] = [sim.event("pile")]
    arrival_cap = p * horizon + 2  # p workers process ≤ p·horizon items

    def arrivals() -> Generator[Event, Any, None]:
        j = 1
        while state["arrived"] < arrival_cap:
            t = law.arrival_time(j)
            if t > horizon:
                return
            if t > sim.now:
                yield sim.timeout(t - sim.now)
            while law.arrival_time(j) == sim.now and state["arrived"] < arrival_cap:
                pile.append(data(j))
                state["arrived"] += 1
                j += 1
            ev = wakeup[0]
            wakeup[0] = sim.event("pile")
            if not ev.triggered:
                ev.succeed()

    def worker(wid: int) -> Generator[Event, Any, None]:
        solver = solvers[wid]
        while True:
            if state["done_at"] is not None:
                return
            if pile:
                item = pile.popleft()
                yield sim.timeout(max(1, solver.cost(item)))
                solver.consume(item)
                state["processed"] += 1
                per_worker[wid] += 1
                if not pile and law.amount(sim.now) <= state["processed"]:
                    state["done_at"] = sim.now
                    return
            else:
                yield wakeup[0]

    sim.process(arrivals(), name="arrivals")
    for wid in range(p):
        sim.process(worker(wid), name=f"shoveler-{wid}")
    sim.run(until=horizon)

    return ParallelDRunResult(
        p=p,
        terminated=state["done_at"] is not None,
        termination_time=state["done_at"],
        items_processed=state["processed"],
        per_worker=per_worker,
        horizon=horizon,
    )
