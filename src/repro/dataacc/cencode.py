"""The c-algorithm timed ω-word construction and acceptor.

Section 4.2 closes with: "Other related paradigms, like c-algorithms …
can be easily modeled using the same technique."  This module executes
that sentence: the word carries the initial input at time 0 and then a
marker-announced stream of *corrections* (index, value) instead of new
data; the acceptor's worker maintains the corrected solution and the
monitor applies the same termination-window test as the d-algorithm
acceptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from .. import engine
from ..kernel.events import Event
from ..kernel.resources import Store
from ..machine.monitor import WorkerMonitorAcceptor, WorkerSignal
from ..machine.rtalgorithm import Context, DecisionReport, Verdict
from ..obs import hooks as _obs
from ..words.timedword import Pair, TimedWord
from .arrival import ArrivalLaw
from .calgorithm import Correction, CorrectingSolver
from .encode import MARKER

__all__ = [
    "CAlgInstance",
    "encode_calgorithm",
    "calgorithm_acceptor",
    "decide_calgorithm",
    "make_c_instance",
]


@dataclass(frozen=True)
class CAlgInstance:
    """A c-algorithm instance: initial data, law, corrections, proposal."""

    law: ArrivalLaw
    initial_data: Tuple[Any, ...]
    corrections: Callable[[int], Correction]  # 1-based
    proposed_output: Tuple


def encode_calgorithm(instance: CAlgInstance) -> TimedWord:
    """σ = o ι at time 0, then (marker, correction) pairs.

    Corrections are encoded as ("C", index, value) symbols; correction
    j arrives at the law's (n + j)-th arrival time, announced one
    chronon early by the marker (clamped monotone, as for d-words).
    """
    law = instance.law
    n = len(instance.initial_data)
    o = instance.proposed_output
    m = len(o)
    header: List[Pair] = [(("O", y), 0) for y in o]
    header += [(("I", v), 0) for v in instance.initial_data]

    def correction_time(j: int) -> int:
        return law.arrival_time(law.n + j)

    def fn(i: int) -> Pair:
        if i < m + n:
            return header[i]
        rel = i - (m + n)
        pair_idx, which = divmod(rel, 2)
        j = 1 + pair_idx
        t_j = correction_time(j)
        if which == 0:
            prev_t = correction_time(j - 1) if j > 1 else 0
            return (MARKER, max(0, t_j - 1, prev_t))
        corr = instance.corrections(j)
        return (("C", corr.index, corr.value), t_j)

    return TimedWord.functional(fn)


def calgorithm_acceptor(
    solver_factory: Callable[[], CorrectingSolver],
) -> WorkerMonitorAcceptor:
    """The c-algorithm acceptor, mirroring the d-algorithm one.

    The worker performs the initial solve (paying its cost), then
    applies corrections as they arrive, signalling after each; the
    monitor accepts in the first termination window where the corrected
    solution matches the proposal.
    """

    def worker(ctx: Context, signals: Store) -> Generator[Event, Any, None]:
        solver = solver_factory()
        proposed: List[Any] = []
        initial: List[Any] = []
        initialized = False
        while True:
            sym, _t = yield ctx.input.read()
            if isinstance(sym, tuple) and sym[0] == "O":
                proposed.append(sym[1])
                continue
            if isinstance(sym, tuple) and sym[0] == "I":
                initial.append(sym[1])
                continue
            if not initialized:
                # first non-header symbol: do the initial solve now
                cost = max(1, solver.init_cost(initial))
                yield ctx.timeout(cost)
                solver.initialize(initial)
                initialized = True
                yield signals.put(
                    WorkerSignal("state", payload=(tuple(proposed), solver.solution()))
                )
            if sym == MARKER:
                continue
            assert isinstance(sym, tuple) and sym[0] == "C", f"unexpected {sym!r}"
            corr = Correction(sym[1], sym[2])
            yield ctx.timeout(max(1, solver.cost(corr)))
            solver.apply(corr)
            yield signals.put(
                WorkerSignal("state", payload=(tuple(proposed), solver.solution()))
            )

    def monitor_decision(ctx: Context, sig: WorkerSignal) -> Optional[Verdict]:
        if sig.kind != "state":
            return None
        proposed, solution = sig.payload
        if ctx.input.peek_pending():
            return None
        if ctx.input.current_symbol() == MARKER:
            return None
        if solution == proposed:
            return Verdict.ACCEPT
        return Verdict.REJECT

    return WorkerMonitorAcceptor(worker, monitor_decision, name="L(c-alg)")


@_obs.spanned(
    "dataacc.decide_c",
    args=lambda instance, solver_factory, horizon=100_000: {"horizon": horizon},
)
def decide_calgorithm(
    instance: CAlgInstance,
    solver_factory: Callable[[], CorrectingSolver],
    horizon: int = 100_000,
) -> DecisionReport:
    """Judge one c-algorithm instance through the engine (cached
    acceptor, fresh simulator per run)."""
    acceptor = engine.cached_acceptor(
        ("dataacc-c", id(solver_factory)),
        lambda: calgorithm_acceptor(solver_factory),
        solver_factory,
    )
    return engine.decide(acceptor, encode_calgorithm(instance), horizon=horizon)


def make_c_instance(
    law: ArrivalLaw,
    initial_data: Sequence[Any],
    corrections: Callable[[int], Correction],
    solver_factory: Callable[[], CorrectingSolver],
    horizon: int = 100_000,
    truthful: bool = True,
) -> Optional[CAlgInstance]:
    """Build an instance whose proposal is the solution at the
    acceptor's termination point (found by dry-running the acceptor's
    own semantics via the kernel c-algorithm runner with the marker
    lead folded in through a +1 arrival shift)."""


    # Dry-run the acceptor semantics directly: simulate the acceptor's
    # worker/monitor discipline on the encoded word with a bogus
    # proposal and observe where the window opens and what the solution
    # is there.
    probe = CAlgInstance(
        law=law,
        initial_data=tuple(initial_data),
        corrections=corrections,
        proposed_output=("#probe#",),
    )
    word = encode_calgorithm(probe)
    captured: List[Tuple] = []

    def solver_capture() -> CorrectingSolver:
        return solver_factory()

    # run the acceptor; it will reject (proposal is bogus) exactly at
    # the first window, carrying the true solution in the signal — we
    # re-create that by monkey-holding the last solution seen.
    acceptor = calgorithm_acceptor(solver_capture)

    original_decision = acceptor.monitor_decision

    def capturing_decision(ctx: Context, sig: WorkerSignal):
        verdict = original_decision(ctx, sig)
        if verdict is not None and sig.kind == "state":
            captured.append(sig.payload[1])
        return verdict

    acceptor.monitor_decision = capturing_decision
    engine.decide(acceptor, word, horizon=horizon)
    if not captured:
        return None  # no termination window within the horizon
    solution = captured[0]
    if not truthful:
        solution = tuple(solution) + ("#bogus#",)
    return CAlgInstance(
        law=law,
        initial_data=tuple(initial_data),
        corrections=corrections,
        proposed_output=tuple(solution),
    )
