"""Data-accumulating algorithms (d-algorithms) — Section 4.2.

A d-algorithm works on a virtually endless input stream and terminates
"when all the currently arrived data have been processed before another
datum arrives".  Every d-algorithm is an *on-line* algorithm [15]: after
processing p items it holds a valid partial solution for ι₁ … ι_p.

This module runs d-algorithms on the simulation kernel: an arrival
process feeds data per an :class:`~repro.dataacc.arrival.ArrivalLaw`;
the worker consumes them at its cost model; the run records the
termination instant (or hits the horizon, diagnosing divergence — the
non-terminating regime of the arrival-law analysis).

Three classic online solvers are provided (insertion sort, running
selection/minimum, prefix sums); each maintains the invariant that its
state is the exact solution of the consumed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

import bisect

from ..kernel.events import Event
from ..kernel.simulator import Simulator
from .arrival import ArrivalLaw

__all__ = [
    "OnlineSolver",
    "InsertionSortSolver",
    "RunningMinSolver",
    "PrefixSumSolver",
    "DRunResult",
    "run_dalgorithm",
]


class OnlineSolver:
    """An online algorithm: consume items one at a time, hold a valid
    partial solution throughout."""

    def reset(self) -> None:
        raise NotImplementedError

    def consume(self, item: Any) -> None:
        raise NotImplementedError

    def solution(self) -> Tuple:
        """The solution for the prefix consumed so far."""
        raise NotImplementedError

    def cost(self, item: Any) -> int:
        """Chronons needed to consume ``item`` (≥ 1)."""
        return 1


class InsertionSortSolver(OnlineSolver):
    """Online sorting: the partial solution is the sorted prefix."""

    def __init__(self, cost_per_item: int = 1):
        self._sorted: List[Any] = []
        self.cost_per_item = cost_per_item

    def reset(self) -> None:
        self._sorted = []

    def consume(self, item: Any) -> None:
        bisect.insort(self._sorted, item)

    def solution(self) -> Tuple:
        return tuple(self._sorted)

    def cost(self, item: Any) -> int:
        return self.cost_per_item


class RunningMinSolver(OnlineSolver):
    """Online selection: the partial solution is the minimum so far."""

    def __init__(self, cost_per_item: int = 1):
        self._min: Optional[Any] = None
        self.cost_per_item = cost_per_item

    def reset(self) -> None:
        self._min = None

    def consume(self, item: Any) -> None:
        if self._min is None or item < self._min:
            self._min = item

    def solution(self) -> Tuple:
        return () if self._min is None else (self._min,)

    def cost(self, item: Any) -> int:
        return self.cost_per_item


class PrefixSumSolver(OnlineSolver):
    """Online aggregation: the partial solution is the running sum."""

    def __init__(self, cost_per_item: int = 1):
        self._sum = 0
        self.cost_per_item = cost_per_item

    def reset(self) -> None:
        self._sum = 0

    def consume(self, item: Any) -> None:
        self._sum += item

    def solution(self) -> Tuple:
        return (self._sum,)

    def cost(self, item: Any) -> int:
        return self.cost_per_item


@dataclass
class DRunResult:
    """Outcome of one d-algorithm run."""

    terminated: bool
    termination_time: Optional[int]
    items_processed: int
    solution: Tuple
    horizon: int
    idle_chronons: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        if self.terminated:
            return (
                f"DRunResult(t={self.termination_time}, p={self.items_processed})"
            )
        return f"DRunResult(DIVERGED within {self.horizon}, p={self.items_processed})"


def run_dalgorithm(
    solver: OnlineSolver,
    law: ArrivalLaw,
    data: Callable[[int], Any],
    horizon: int = 100_000,
    lead: int = 0,
) -> DRunResult:
    """Simulate a d-algorithm until termination or ``horizon``.

    ``data(j)`` supplies the value of the j-th datum (1-based);
    arrivals follow ``law``.  Termination is detected per the paper:
    the worker has consumed every arrived item and no further item has
    arrived.  ``lead`` widens the look-ahead: termination additionally
    requires that no datum arrives within ``lead`` chronons — the
    Section 4.2 word encoding announces each datum with a marker one
    chronon early, so its acceptor corresponds to ``lead=1``.
    """
    from collections import deque

    sim = Simulator()
    solver.reset()
    queue: deque = deque()
    state = {
        "arrived": 0,
        "processed": 0,
        "done_at": None,
        "idle": 0,
    }
    wakeup: List[Event] = [sim.event("data-arrived")]
    # The worker consumes at most one datum per chronon, so at most
    # `horizon` data can ever be processed.  Once more than that has
    # arrived, termination within the horizon is impossible (the
    # termination test compares law.amount against `processed`, which
    # is law-based, so cutting the feed cannot fake a termination) —
    # stop generating and keep divergent runs O(horizon).
    arrival_cap = horizon + 2

    def arrivals() -> Generator[Event, Any, None]:
        j = 1
        while state["arrived"] < arrival_cap:
            t = law.arrival_time(j)
            if t > horizon:
                return
            if t > sim.now:
                yield sim.timeout(t - sim.now)
            # Deliver every datum scheduled for this instant.
            while law.arrival_time(j) == sim.now and state["arrived"] < arrival_cap:
                queue.append(data(j))
                state["arrived"] += 1
                j += 1
            ev = wakeup[0]
            wakeup[0] = sim.event("data-arrived")
            if not ev.triggered:
                ev.succeed()

    def worker() -> Generator[Event, Any, None]:
        while True:
            if queue:
                item = queue.popleft()
                cost = max(1, solver.cost(item))
                yield sim.timeout(cost)
                solver.consume(item)
                state["processed"] += 1
                # Termination test (paper): every *currently arrived*
                # datum is processed and no further one arrives at this
                # very instant.  law.amount covers same-instant arrivals
                # the arrival process has not enqueued yet.
                if not queue and law.amount(sim.now + lead) <= state["processed"]:
                    state["done_at"] = sim.now
                    return
            else:
                before = sim.now
                yield wakeup[0]
                state["idle"] += sim.now - before

    sim.process(arrivals(), name="arrivals")
    worker_proc = sim.process(worker(), name="d-worker")
    sim.run(until=horizon)

    terminated = state["done_at"] is not None
    return DRunResult(
        terminated=terminated,
        termination_time=state["done_at"],
        items_processed=state["processed"],
        solution=solver.solution(),
        horizon=horizon,
        idle_chronons=state["idle"],
    )
