"""Data arrival laws — Section 4.2, eq. (4).

A d-algorithm's input is a virtually endless stream whose cumulative
size at time t is given by the *data arrival law* f(n, t); the family
the paper (and the d-algorithm literature it cites [14, 15, 26, 27])
uses as the running example is

    f(n, t) = n + k · n^γ · t^β                                   (4)

with k, γ, β positive constants and n the amount of data available
beforehand.  This module provides the law, its inverse (arrival time of
the j-th datum), and the termination analysis for linear-work online
algorithms: a d-algorithm processing one datum per c chronons finishes
at the smallest t with t ≥ c·f(n, t) — and such a t exists iff the
processing rate outpaces the arrival rate, which for family (4) means

    β < 1,  or  (β = 1 and c·k·n^γ < 1).

(For β > 1 the arrival law eventually dominates *every* linear
processor; an early crossing can still exist for tiny t, which the
numeric solver finds when it does.)
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import List, Optional

__all__ = ["ArrivalLaw", "PolynomialArrivalLaw", "termination_time"]


class ArrivalLaw:
    """Abstract cumulative arrival law f(n, t)."""

    n: int

    def amount(self, t: int) -> int:
        """⌊f(n, t)⌋ — total data items that have arrived by time t."""
        raise NotImplementedError

    def arrival_time(self, j: int) -> int:
        """Earliest t with amount(t) ≥ j (the j-th datum's timestamp).

        ``j`` is 1-based; data with j ≤ n are the beforehand batch at
        t = 0.  Found by doubling + binary search on the monotone
        ``amount``.
        """
        if j <= self.amount(0):
            return 0
        lo, hi = 0, 1
        while self.amount(hi) < j:
            lo, hi = hi, hi * 2
            if hi > 2**62:
                raise OverflowError(f"datum {j} never arrives under {self!r}")
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.amount(mid) >= j:
                hi = mid
            else:
                lo = mid
        return hi


@dataclass(frozen=True)
class PolynomialArrivalLaw(ArrivalLaw):
    """The paper's family: f(n, t) = n + k·n^γ·t^β."""

    n: int
    k: float = 1.0
    gamma: float = 0.0
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("initial amount n must be non-negative")
        if self.k <= 0 or self.beta <= 0 or self.gamma < 0:
            raise ValueError("arrival law requires k, β > 0 and γ ≥ 0")

    def amount(self, t: int) -> int:
        if t < 0:
            raise ValueError("negative time")
        return self.n + int(self.k * (self.n**self.gamma) * (t**self.beta))

    def rate_coefficient(self) -> float:
        """k·n^γ — the instantaneous rate multiplier."""
        return self.k * (self.n**self.gamma)

    def terminates_asymptotically(self, c: float) -> bool:
        """Closed-form termination test for a c-chronon-per-datum worker.

        The published characterization for family (4): processing
        capacity t/c outgrows f(n, t) iff β < 1, or β = 1 with
        c·k·n^γ < 1.  (β > 1 may still admit a small-t crossing; use
        :func:`termination_time` for the exact answer.)
        """
        if self.beta < 1:
            return True
        if self.beta == 1:
            return c * self.rate_coefficient() < 1
        return False


def termination_time(law: ArrivalLaw, c: float, horizon: int = 1_000_000) -> Optional[int]:
    """The d-algorithm completion time: smallest t with t ≥ c·f(n, t).

    "The computation terminates when all the currently arrived data
    have been processed before another datum arrives."  A worker that
    starts at 0 and spends c per datum is idle-free until it catches
    up, so it has processed ⌊t/c⌋ items by time t; the first t where
    that covers f(n, t) is the termination instant.  Returns None if no
    crossing occurs within ``horizon``.
    """
    if c <= 0:
        raise ValueError("processing cost must be positive")
    for t in range(horizon + 1):
        if t >= c * law.amount(t):
            # t = 0 only counts when nothing is pending at the start.
            if t > 0 or law.amount(0) == 0:
                return t
    return None


def arrival_schedule(law: ArrivalLaw, count: int) -> List[int]:
    """Timestamps of data j = 1 … count (the t_j of Section 4.2)."""
    return [law.arrival_time(j) for j in range(1, count + 1)]
