"""repro — Reproduction of Bruda & Akl, "Real-Time Computation: A
Formal Definition and its Applications" (IPPS 2001).

The package implements the paper's formal model — *well-behaved timed
ω-languages* and their acceptors (*real-time algorithms*) — together
with every substrate the paper's applications require:

``repro.kernel``
    Deterministic discrete-event simulation kernel (integer chronons),
    clocks, and the Φ(X) clock-constraint algebra of Section 2.1.
``repro.words``
    Time sequences, timed ω-words (finite / lasso / functional),
    Definition 3.5 concatenation, Kleene closure, and the Theorem 3.3
    language operations.
``repro.automata``
    Finite automata, Büchi/Muller ω-automata, timed Büchi automata,
    and the Theorem 3.1 non-regularity machinery.
``repro.machine``
    The Definition 3.3/3.4 acceptor: timed input tape, write-only
    output tape, metered working storage, and the two-process
    worker/monitor harness of Section 4.
``repro.engine``
    The unified decision layer every domain judges through: the shared
    Verdict/DecisionReport vocabulary, pluggable decision strategies
    (the E14 lasso-exact / long-prefix-empirical pair), batched
    ``decide_many`` fan-out, and the compiled-acceptor cache.
``repro.deadlines``
    Computing with deadlines (Section 4.1): firm/soft/no-deadline
    instance encodings and the L(Π) acceptor.
``repro.dataacc``
    The data-accumulating paradigm (Section 4.2): arrival laws,
    d-algorithms, c-algorithms, termination analysis.
``repro.rtdb``
    Real-time database systems (Section 5.1): relational model and
    algebra, active rules, temporal objects, RTDB instances, and the
    recognition-problem languages L_aq / L_pq of Definition 5.1.
``repro.adhoc``
    Ad hoc networks (Section 5.2): mobility, the range predicate,
    an event-driven radio network, routing protocols, and the routing
    problem language R_{n,u}.
``repro.parallel``
    The explicit parallel/distributed model of Section 6 (per-process
    words c_k l_k r_k, PCGS-style systems, the PRAM special case).
``repro.complexity``
    The rt-SPACE / rt-PROC complexity-class programme of Sections
    3.2 and 7, including the processor-hierarchy experiments.
``repro.stream``
    The online monitoring runtime: incremental three-valued monitors
    over live event streams, session multiplexing with bounded buffers
    and backpressure, domain source adapters, and checkpoint/restore.
``repro.obs``
    The unified observability layer: named metrics, nestable timing
    spans, Chrome-trace/metrics exporters, and the pluggable hooks the
    kernel, machine, RTDB, and ad hoc layers report through.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    adhoc,
    automata,
    complexity,
    dataacc,
    deadlines,
    engine,
    kernel,
    machine,
    obs,
    parallel,
    rtdb,
    stream,
    words,
)

__all__ = [
    "kernel",
    "words",
    "automata",
    "machine",
    "engine",
    "deadlines",
    "dataacc",
    "rtdb",
    "adhoc",
    "parallel",
    "complexity",
    "stream",
    "obs",
    "__version__",
]
