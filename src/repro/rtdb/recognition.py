"""The classical recognition problem — Section 5.1.1, eq. (5).

For a query q the recognition problem is the language

    { enc(I) $ enc(u)  |  u ∈ q(I) }                               (5)

over a suitable encoding enc of instances and tuples.  Data complexity
of q is the conventional complexity of this language; the real-time
variant (Definition 5.1) replaces these classical words with timed
ω-words — see :mod:`repro.rtdb.encode`.

The encoding here is the canonical one used throughout the package:
atomic symbols tagged by origin so the alphabets stay disjoint (the
paper's standing assumption in Section 4).

Observability (see ``docs/observability.md``): when
:mod:`repro.obs.hooks` are installed, this module reports the
quantities a Section 5.1 recognizer is judged by —
``rtdb.words_encoded`` / ``rtdb.words_decoded`` (counters over eq. (5)
words built and parsed), ``rtdb.word_symbols`` (histogram of |enc(I)$
enc(u)|, the input-size parameter of data complexity), and
``rtdb.recognitions`` labeled ``outcome=hit|miss|malformed`` (membership
verdicts of :func:`recognizes`), each membership test wrapped in an
``rtdb.recognize`` span.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..obs import hooks as _obs
from .algebra import Query
from .relational import DatabaseInstance, DatabaseSchema

__all__ = [
    "SEP",
    "enc_instance",
    "enc_tuple",
    "recognition_word",
    "decode_recognition_word",
    "recognizes",
]

#: The special symbol $ of eq. (5); not in the codomain of enc.
SEP = "$"


def _enc_atom(value: Any) -> List[Any]:
    """Encode one constant as tagged character symbols."""
    return [("db", ch) for ch in repr(value)] + [("db", ",")]


def enc_tuple(values: Sequence[Any], relation: str = "") -> List[Any]:
    """enc(u): the tuple's relation name then its constants."""
    out: List[Any] = [("db", ch) for ch in relation] + [("db", "(")]
    for v in values:
        out.extend(_enc_atom(v))
    out.append(("db", ")"))
    return out


def enc_instance(db: DatabaseInstance) -> List[Any]:
    """enc(I): relations in name order, rows in canonical order."""
    out: List[Any] = []
    for name in sorted(db.relations):
        for row in db[name]:
            out.extend(enc_tuple(row.values, relation=name))
    return out


def recognition_word(db: DatabaseInstance, candidate: Tuple[Any, ...]) -> List[Any]:
    """The classical word enc(I)$enc(u)."""
    word = enc_instance(db) + [SEP] + enc_tuple(candidate)
    h = _obs.HOOKS
    if h is not None:
        h.count("rtdb.words_encoded")
        h.observe("rtdb.word_symbols", len(word))
    return word


def decode_recognition_word(
    word: Sequence[Any], schema: DatabaseSchema
) -> Tuple[DatabaseInstance, Tuple[Any, ...]]:
    """Invert :func:`recognition_word` (used by the recognizer and to
    property-test the encoding round-trip)."""
    try:
        sep_at = list(word).index(SEP)
    except ValueError as exc:
        raise ValueError("word has no $ separator") from exc
    db_part, tup_part = list(word[:sep_at]), list(word[sep_at + 1 :])

    def chars(symbols: Sequence[Any]) -> str:
        out = []
        for s in symbols:
            if not (isinstance(s, tuple) and len(s) == 2 and s[0] == "db"):
                raise ValueError(f"non-db symbol {s!r} in encoding")
            out.append(s[1])
        return "".join(out)

    def parse_tuples(text: str) -> List[Tuple[str, Tuple[Any, ...]]]:
        result: List[Tuple[str, Tuple[Any, ...]]] = []
        i = 0
        while i < len(text):
            open_at = text.index("(", i)
            close_at = text.index(")", open_at)
            rel = text[i:open_at]
            body = text[open_at + 1 : close_at]
            values = tuple(
                eval(tok)  # noqa: S307 - inverse of repr on constants
                for tok in body.split(",")
                if tok
            )
            result.append((rel, values))
            i = close_at + 1
        return result

    db = DatabaseInstance(schema)
    for rel, values in parse_tuples(chars(db_part)):
        db.insert(rel, values)
    tuples = parse_tuples(chars(tup_part))
    if len(tuples) != 1:
        raise ValueError("candidate part must encode exactly one tuple")
    h = _obs.HOOKS
    if h is not None:
        h.count("rtdb.words_decoded")
    return db, tuples[0][1]


def recognizes(query: Query, schema: DatabaseSchema, word: Sequence[Any]) -> bool:
    """Membership of a classical word in the eq. (5) language of q."""
    h = _obs.HOOKS
    if h is None:
        return _recognizes(query, schema, word) == "hit"
    with h.spans.span("rtdb.recognize", symbols=len(word)):
        outcome = _recognizes(query, schema, word)
    h.count("rtdb.recognitions", outcome=outcome)
    return outcome == "hit"


def _recognizes(query: Query, schema: DatabaseSchema, word: Sequence[Any]) -> str:
    try:
        db, candidate = decode_recognition_word(word, schema)
    except (ValueError, KeyError):
        return "malformed"
    result = query.evaluate(db)
    hit = any(row.values == candidate for row in result)
    return "hit" if hit else "miss"
