"""Image / derived / invariant objects — Section 5.1.2, after the
HRDM-derived data model of Vrbsky [34].

* **Image objects** hold information "obtained directly from the
  external environment"; each carries its most recent sampling time and
  an archival history of snapshots.
* **Derived objects** are computed from image (and other) objects; the
  timestamp of a derived object is "the oldest valid time of the data
  objects used to derive it".
* **Invariant objects** are constant with time (timestamp = current
  time under the temporal reading).

Consistency (Section 5.1.2): age a(x) = now − t_x, dispersion
d(x, y) = |t_x − t_y|; a set Y is *absolutely consistent* when every
age is ≤ T_a and *relatively consistent* when every pairwise dispersion
is ≤ T_r.
"""

from __future__ import annotations


from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DataObject",
    "ImageObject",
    "DerivedObject",
    "InvariantObject",
    "age",
    "dispersion",
    "absolutely_consistent",
    "relatively_consistent",
]


class DataObject:
    """Base: every object has a name, a value, and a timestamp t_x."""

    name: str

    def value(self) -> Any:
        raise NotImplementedError

    def timestamp(self, now: int) -> int:
        """t_x (``now`` is needed only by invariant objects)."""
        raise NotImplementedError


class ImageObject(DataObject):
    """An externally sampled value with archival snapshots.

    ``sample(value, t)`` records a new reading; ``history`` keeps the
    archival variants I₁ … I_{n−1} available ("archival sets of image
    objects are typically maintained, so that different snapshots at
    different points in time are available").
    """

    def __init__(self, name: str, period: int = 1, initial: Any = None):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.name = name
        self.period = period  # the t_k of Section 5.1.3
        self._history: List[Tuple[int, Any]] = []
        if initial is not None:
            self._history.append((0, initial))

    def sample(self, value: Any, t: int) -> None:
        if self._history and t < self._history[-1][0]:
            raise ValueError("samples must arrive in time order")
        self._history.append((t, value))

    def value(self) -> Any:
        if not self._history:
            raise ValueError(f"image object {self.name} never sampled")
        return self._history[-1][1]

    def value_at(self, t: int) -> Any:
        """The snapshot in force at time t (latest sample ≤ t)."""
        best: Optional[Any] = None
        for ts, v in self._history:
            if ts <= t:
                best = v
            else:
                break
        if best is None:
            raise ValueError(f"image object {self.name} has no sample ≤ {t}")
        return best

    def timestamp(self, now: int = 0) -> int:
        if not self._history:
            raise ValueError(f"image object {self.name} never sampled")
        return self._history[-1][0]

    @property
    def history(self) -> List[Tuple[int, Any]]:
        return list(self._history)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ImageObject({self.name}, samples={len(self._history)})"


class DerivedObject(DataObject):
    """A value computed from source objects.

    The derivation is re-evaluated on demand (or eagerly by the rule
    engine); its timestamp is the **oldest** source timestamp, per the
    paper.
    """

    def __init__(self, name: str, sources: Sequence[DataObject], fn: Callable[..., Any]):
        if not sources:
            raise ValueError("a derived object needs at least one source")
        self.name = name
        self.sources = list(sources)
        self.fn = fn
        self._cached: Optional[Any] = None
        self._cached_at: Optional[int] = None

    def recompute(self, now: int) -> Any:
        self._cached = self.fn(*(s.value() for s in self.sources))
        self._cached_at = now
        return self._cached

    def value(self) -> Any:
        if self._cached is None:
            return self.fn(*(s.value() for s in self.sources))
        return self._cached

    def timestamp(self, now: int = 0) -> int:
        return min(s.timestamp(now) for s in self.sources)

    def staleness(self, now: int) -> int:
        """Chronons since the cached value was computed (∞-ish if never)."""
        return now - self._cached_at if self._cached_at is not None else now + 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"DerivedObject({self.name} ← {[s.name for s in self.sources]})"


class InvariantObject(DataObject):
    """A value constant with time; as temporal data its timestamp is
    always the current time."""

    def __init__(self, name: str, value: Any):
        self.name = name
        self._value = value

    def value(self) -> Any:
        return self._value

    def timestamp(self, now: int = 0) -> int:
        return now

    def __repr__(self) -> str:  # pragma: no cover
        return f"InvariantObject({self.name}={self._value!r})"


# ----------------------------------------------------------------------
# consistency predicates
# ----------------------------------------------------------------------

def age(obj: DataObject, now: int) -> int:
    """a(x) = now − t_x."""
    return now - obj.timestamp(now)


def dispersion(x: DataObject, y: DataObject, now: int) -> int:
    """d(x, y) = |t_x − t_y|."""
    return abs(x.timestamp(now) - y.timestamp(now))


def absolutely_consistent(objects: Iterable[DataObject], now: int, threshold: int) -> bool:
    """∀x ∈ Y: a(x) ≤ T_a."""
    return all(age(o, now) <= threshold for o in objects)


def relatively_consistent(objects: Iterable[DataObject], now: int, threshold: int) -> bool:
    """∀x, y ∈ Y: d(x, y) ≤ T_r."""
    objs = list(objects)
    return all(
        dispersion(objs[i], objs[j], now) <= threshold
        for i in range(len(objs))
        for j in range(i + 1, len(objs))
    )
