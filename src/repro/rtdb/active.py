"""Active databases: ECA rules and execution models — Section 5.1.2.

A rule has the form **on** event **if** condition **then** action.
Events may be external phenomena or internal (e.g. tuple insertion);
conditions may read event attributes or database content; actions are
arbitrary routines that may raise further events ("an action may in
turn generate other events and hence trigger other rules").

The execution-model dimension the paper highlights is the **firing
mode** of each rule:

* ``IMMEDIATE``  — fired as soon as its event and condition hold;
* ``DEFERRED``   — delayed until the final state (end of the current
  transaction) is reached;
* ``CONCURRENT`` — a separate process is spawned for the action and
  executed concurrently (on the simulation kernel).

The paper also floats a mixed policy — "immediate firing on the rules
that update the image objects … but a deferred firing for the derived
objects" — which :mod:`repro.rtdb.instance` wires up as its default.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..kernel.events import Event as KernelEvent
from ..kernel.simulator import Simulator

__all__ = ["FiringMode", "DBEvent", "Rule", "RuleEngine", "Transaction"]


class FiringMode(Enum):
    IMMEDIATE = "immediate"
    DEFERRED = "deferred"
    CONCURRENT = "concurrent"


@dataclass(frozen=True)
class DBEvent:
    """An event with a kind and attribute payload.

    Kinds are free-form strings: "external:MonthChange",
    "insert:Schedules", "sample:o_k", ….  "Events may have attributes
    that are passed to the system."
    """

    kind: str
    attributes: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        return dict(self.attributes).get(key, default)

    @staticmethod
    def make(kind: str, **attrs: Any) -> "DBEvent":
        return DBEvent(kind, tuple(sorted(attrs.items())))


@dataclass
class Rule:
    """on ``event_kind`` if ``condition`` then ``action``.

    ``condition(event, context)`` → bool;
    ``action(event, context)`` → optional list of new DBEvents;
    ``context`` is whatever the engine owner passes (typically the
    RTDB instance).  ``duration`` models the action's cost in chronons
    (relevant for the concurrent mode and for deadline experiments).
    """

    name: str
    event_kind: str
    condition: Callable[[DBEvent, Any], bool]
    action: Callable[[DBEvent, Any], Optional[List[DBEvent]]]
    mode: FiringMode = FiringMode.IMMEDIATE
    duration: int = 0


class Transaction:
    """A unit of work delimiting the deferred-firing boundary."""

    def __init__(self, name: str = "txn"):
        self.name = name
        self.deferred: List[Tuple[Rule, DBEvent]] = []
        self.fired: List[Tuple[str, str]] = []  # (rule, mode) log


class RuleEngine:
    """Forward-chaining rule application over the kernel.

    ``raise_event`` dispatches an event against the rule base under the
    currently open transaction.  Immediate rules run synchronously (and
    may cascade); deferred rules queue until :meth:`commit`; concurrent
    rules spawn kernel processes that take ``rule.duration`` chronons.

    A cascade limit guards against non-terminating rule chains — a real
    hazard the active-database literature flags.
    """

    def __init__(self, sim: Simulator, context: Any = None, cascade_limit: int = 1000):
        self.sim = sim
        self.context = context
        self.rules: List[Rule] = []
        self.cascade_limit = cascade_limit
        self.current_txn: Optional[Transaction] = None
        self.log: List[Tuple[int, str, str]] = []  # (time, rule, event kind)

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    # -- transactions ---------------------------------------------------
    def begin(self, name: str = "txn") -> Transaction:
        if self.current_txn is not None:
            raise RuntimeError("nested transactions are not modeled")
        self.current_txn = Transaction(name)
        return self.current_txn

    def commit(self) -> List[KernelEvent]:
        """Fire all deferred rules; returns processes for concurrent
        actions spawned during the flush (so callers may wait)."""
        txn = self.current_txn
        if txn is None:
            raise RuntimeError("commit without begin")
        self.current_txn = None
        spawned: List[KernelEvent] = []
        # Deferred actions run against the final state, in queue order.
        for rule, event in txn.deferred:
            spawned.extend(self._run_action(rule, event, cascade_depth=0))
        return spawned

    # -- dispatch -----------------------------------------------------------
    def raise_event(self, event: DBEvent, cascade_depth: int = 0) -> List[KernelEvent]:
        """Dispatch one event; returns concurrent-action processes."""
        if cascade_depth > self.cascade_limit:
            raise RuntimeError(f"rule cascade exceeded {self.cascade_limit}")
        spawned: List[KernelEvent] = []
        for rule in self.rules:
            if rule.event_kind != event.kind:
                continue
            if not rule.condition(event, self.context):
                continue
            if rule.mode is FiringMode.IMMEDIATE:
                spawned.extend(self._run_action(rule, event, cascade_depth))
            elif rule.mode is FiringMode.DEFERRED:
                if self.current_txn is None:
                    # No transaction open: deferred degrades to immediate
                    # (the "final state" is now).
                    spawned.extend(self._run_action(rule, event, cascade_depth))
                else:
                    self.current_txn.deferred.append((rule, event))
            else:  # CONCURRENT
                spawned.append(
                    self.sim.process(
                        self._concurrent_action(rule, event), name=f"rule:{rule.name}"
                    )
                )
        return spawned

    def _run_action(self, rule: Rule, event: DBEvent, cascade_depth: int) -> List[KernelEvent]:
        self.log.append((self.sim.now, rule.name, event.kind))
        new_events = rule.action(event, self.context) or []
        spawned: List[KernelEvent] = []
        for ev in new_events:
            spawned.extend(self.raise_event(ev, cascade_depth + 1))
        return spawned

    def _concurrent_action(self, rule: Rule, event: DBEvent) -> Generator[KernelEvent, Any, None]:
        if rule.duration > 0:
            yield self.sim.timeout(rule.duration)
        self.log.append((self.sim.now, rule.name, event.kind))
        for ev in rule.action(event, self.context) or []:
            self.raise_event(ev, cascade_depth=1)
        if False:  # pragma: no cover - keep generator type without extra yields
            yield

    def firings_of(self, rule_name: str) -> List[Tuple[int, str, str]]:
        return [entry for entry in self.log if entry[1] == rule_name]
