"""Real-time database systems — Section 5.1 of the paper."""

from .active import DBEvent, FiringMode, Rule, RuleEngine, Transaction
from .approximate import (
    AnytimeEvaluator,
    ApproximateAnswer,
    NonMonotoneQueryError,
)
from .algebra import (
    Difference,
    NaturalJoin,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
    figure2_query,
)
from .encode import (
    SEP,
    aq_word,
    db0_word,
    db_B_word,
    dbk_word,
    enc_query_header,
    enc_value_block,
    lemma51_bound,
    pq_word,
)
from .instance import ConsistencyReport, RealTimeDatabase, SamplingSource
from .objects import (
    DataObject,
    DerivedObject,
    ImageObject,
    InvariantObject,
    absolutely_consistent,
    age,
    dispersion,
    relatively_consistent,
)
from .queries import (
    ObjectState,
    QueryRegistry,
    RecognitionInstance,
    decide_aperiodic,
    rtdb_acceptor,
    serve_periodic,
)
from .recognition import (
    decode_recognition_word,
    enc_instance,
    enc_tuple,
    recognition_word,
    recognizes,
)
from .relational import (
    DatabaseInstance,
    DatabaseSchema,
    RelationInstance,
    RelationSchema,
    Row,
    SchemaError,
    ngc_example,
)
from .temporal import Interval, Lifespan, TemporalRelation
from .transactions import (
    Policy,
    ScheduleOutcome,
    Transaction,
    TransactionResult,
    TransactionScheduler,
    run_workload,
)

__all__ = [
    # relational
    "RelationSchema",
    "DatabaseSchema",
    "RelationInstance",
    "DatabaseInstance",
    "Row",
    "SchemaError",
    "ngc_example",
    # algebra
    "Query",
    "Relation",
    "Selection",
    "Projection",
    "NaturalJoin",
    "Rename",
    "Union",
    "Difference",
    "Product",
    "figure2_query",
    # recognition
    "recognition_word",
    "decode_recognition_word",
    "enc_instance",
    "enc_tuple",
    "recognizes",
    # active
    "FiringMode",
    "DBEvent",
    "Rule",
    "RuleEngine",
    "Transaction",
    # temporal
    "Interval",
    "Lifespan",
    "TemporalRelation",
    # transactions
    "Policy",
    "Transaction",
    "TransactionResult",
    "TransactionScheduler",
    "ScheduleOutcome",
    "run_workload",
    # objects
    "DataObject",
    "ImageObject",
    "DerivedObject",
    "InvariantObject",
    "age",
    "dispersion",
    "absolutely_consistent",
    "relatively_consistent",
    # instance
    "RealTimeDatabase",
    "SamplingSource",
    "ConsistencyReport",
    # encode
    "SEP",
    "db0_word",
    "dbk_word",
    "db_B_word",
    "aq_word",
    "pq_word",
    "lemma51_bound",
    "enc_value_block",
    "enc_query_header",
    # queries
    "QueryRegistry",
    "ObjectState",
    "RecognitionInstance",
    "rtdb_acceptor",
    "decide_aperiodic",
    "serve_periodic",
]
