"""Real-time queries and the Definition 5.1 recognition languages.

L_aq = { db_B · aq_[q,s,t]     | s ∈ q(B) }        (eq.  (9))
L_pq = { db_B · pq_[q,s,t,t_p] | s ∈ q(B) }        (eq. (10))

The acceptor generalizes Section 4.1's P_w/P_m pair to the database
setting.  The worker parses the merged stream back into database state
(invariants, derived-object wiring, image samples) and query headers;
on each query issue it evaluates q against the current state — paying a
configurable evaluation cost — and checks whether the candidate tuple
is in the answer.  The monitor applies the deadline logic through the
per-query markers (wq, t) / (dq, t).

Fixed-vs-variable split (data complexity, Section 5.1.1): the *query
functions* and *derivation functions* are part of the acceptor's finite
control (registries passed at construction); the *data* — object values
over time, issue times, candidates — all flow through the ω-word.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Set, Tuple

from .. import engine
from ..deadlines.spec import DeadlineSpec
from ..kernel.events import Event
from ..kernel.resources import Store
from ..machine.monitor import WorkerMonitorAcceptor, WorkerSignal
from ..machine.rtalgorithm import Context, DecisionReport, Verdict
from ..obs import hooks as _obs
from ..words.concat import concat
from ..words.timedword import TimedWord
from .encode import SEP, aq_word, db_B_word, pq_word

__all__ = [
    "QueryRegistry",
    "ObjectState",
    "rtdb_acceptor",
    "RecognitionInstance",
    "decide_aperiodic",
    "serve_periodic",
]

#: A query function: database state → set of answer tuples.
QueryFn = Callable[["ObjectState"], Set[Tuple[Any, ...]]]


@dataclass
class ObjectState:
    """The database state the worker reconstructs from the stream."""

    invariants: Dict[str, Any] = field(default_factory=dict)
    derived_sources: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    images: Dict[str, Any] = field(default_factory=dict)
    image_stamp: Dict[str, int] = field(default_factory=dict)

    def value(self, name: str, derivations: Dict[str, Callable[..., Any]]) -> Any:
        if name in self.invariants:
            return self.invariants[name]
        if name in self.images:
            return self.images[name]
        if name in self.derived_sources:
            fn = derivations[name]
            return fn(*(self.value(s, derivations) for s in self.derived_sources[name]))
        raise KeyError(name)


@dataclass
class QueryRegistry:
    """The acceptor's finite-control knowledge: query and derivation
    functions by name, plus the evaluation cost model."""

    queries: Dict[str, QueryFn]
    derivations: Dict[str, Callable[..., Any]] = field(default_factory=dict)
    eval_cost: Callable[[str, "ObjectState"], int] = lambda name, st: 1


def _parse_db_text(state: ObjectState, text: str, stamp: int, phase: List[int]) -> None:
    """Digest one $-terminated db block.

    Phase 0: invariant blocks until the bare $$; phase 1: derived
    wiring until the next bare $; phase 2: image samples forever.
    """
    if not text:
        phase[0] = min(2, phase[0] + 1)
        return
    if phase[0] < 2 and "<-" in text:
        name, srcs = text.split("<-", 1)
        state.derived_sources[name] = tuple(s for s in srcs.split(",") if s)
        return
    name, _, value_repr = text.partition("=")
    value = ast.literal_eval(value_repr)
    if phase[0] == 0:
        state.invariants[name] = value
    else:
        state.images[name] = value
        state.image_stamp[name] = stamp


@dataclass(frozen=True)
class _PendingQuery:
    name: str
    candidate: Tuple[Any, ...]
    issued_at: int
    min_acceptable: Optional[int]


def rtdb_acceptor(registry: QueryRegistry, periodic: bool = False) -> WorkerMonitorAcceptor:
    """The Definition 5.1 acceptor (aperiodic or periodic flavour).

    Aperiodic: on the (single) query's completion, apply the Section
    4.1 deadline logic; accept → s_f (f forever).

    Periodic: each successfully served invocation emits one f; the
    first failed invocation imposes s_r.  |o(A,w)|_f = ω then holds iff
    every invocation succeeds — the eq. (10) membership.
    """

    def worker(ctx: Context, signals: Store) -> Generator[Event, Any, None]:
        state = ObjectState()
        phase = [0]
        db_buf: List[str] = []
        q_buf: List[str] = []
        q_fields: List[str] = []
        pending_min: Optional[int] = None
        last_stamp = 0
        while True:
            sym, t = yield ctx.input.read()
            last_stamp = t
            if isinstance(sym, tuple) and sym[0] == "db":
                db_buf.append(sym[1])
                continue
            if isinstance(sym, tuple) and sym[0] == "q":
                q_buf.append(sym[1])
                continue
            if isinstance(sym, int) and not isinstance(sym, bool):
                # min-acceptable header of a deadline query (ints inside
                # the post-deadline marker stream are *preceded* by dq
                # and consumed below, so a bare int here is a header).
                pending_min = sym
                continue
            if isinstance(sym, tuple) and sym[0] in ("wq", "dq"):
                continue  # markers are the monitor's business
            if sym == SEP:
                if db_buf or (phase[0] < 2 and not q_buf):
                    _parse_db_text(state, "".join(db_buf), t, phase)
                    db_buf.clear()
                    continue
                # query field terminated
                q_fields.append("".join(q_buf))
                q_buf.clear()
                if len(q_fields) < 2:
                    continue
                cand_repr, q_spec = q_fields[0], q_fields[1]
                q_fields.clear()
                qname, _, issued = q_spec.partition("@")
                pending = _PendingQuery(
                    name=qname,
                    candidate=tuple(ast.literal_eval(cand_repr)),
                    issued_at=int(issued),
                    min_acceptable=pending_min,
                )
                pending_min = None
                # evaluate the query (paying its cost)
                cost = max(0, registry.eval_cost(pending.name, state))
                if cost:
                    yield ctx.timeout(cost)
                qfn = registry.queries[pending.name]
                answer = qfn(state)
                ok = pending.candidate in answer
                h = _obs.HOOKS
                if h is not None:
                    h.count("rtdb.queries_evaluated", query=pending.name)
                    h.observe("rtdb.query_cost", cost)
                yield signals.put(WorkerSignal("query-done", payload=(pending, ok)))
                continue
            raise ValueError(f"unexpected symbol {sym!r} on the tape")

    served = {"count": 0}

    def monitor_decision(ctx: Context, sig: WorkerSignal) -> Optional[Verdict]:
        if sig.kind != "query-done":
            return None
        pending, ok = sig.payload
        # Deadline logic via this query's markers.
        dq = ("dq", pending.issued_at)
        history = ctx.input.arrived_history()
        deadline_passed = any(s == dq for s, _t in history)
        if deadline_passed:
            assert pending.min_acceptable is not None
            usefulness = _current_usefulness_after(history, dq)
            if usefulness is None or usefulness < pending.min_acceptable:
                ok = False
        if not periodic:
            return Verdict.ACCEPT if ok else Verdict.REJECT
        if not ok:
            return Verdict.REJECT
        served["count"] += 1
        h = _obs.HOOKS
        if h is not None:
            h.count("rtdb.invocations_served")
            h.observe("rtdb.service_latency", ctx.sim.now - pending.issued_at)
        if ctx.output.can_write():
            ctx.emit_f()
        return None  # keep serving

    return WorkerMonitorAcceptor(worker, monitor_decision, name="L_pq" if periodic else "L_aq")


def _current_usefulness_after(history: List[Tuple[Any, int]], dq: Any) -> Optional[int]:
    """Latest int symbol following the first occurrence of this dq."""
    seen_dq = False
    latest: Optional[int] = None
    for s, _t in history:
        if s == dq:
            seen_dq = True
            continue
        if seen_dq and isinstance(s, int) and not isinstance(s, bool):
            latest = s
    return latest


# ----------------------------------------------------------------------
# instance builders + judges (the experiment drivers)
# ----------------------------------------------------------------------

@dataclass
class RecognitionInstance:
    """One L_aq / L_pq instance: database description + query."""

    invariants: Dict[str, Any]
    derived: Dict[str, Sequence[str]]
    images: Dict[str, Tuple[int, Callable[[int], Any]]]
    query_name: str
    issue_time: int
    spec: DeadlineSpec

    def database_word(self) -> TimedWord:
        return db_B_word(self.invariants, self.derived, self.images)

    def aperiodic_word(self, candidate: Tuple[Any, ...]) -> TimedWord:
        return concat(
            self.database_word(),
            aq_word(self.query_name, candidate, self.issue_time, self.spec),
        )

    def periodic_word(
        self, candidates: Callable[[int], Tuple[Any, ...]], period: int
    ) -> TimedWord:
        return concat(
            self.database_word(),
            pq_word(
                self.query_name,
                candidates,
                self.issue_time,
                period,
                spec_for=lambda i: self.spec,
            ),
        )


def _acceptor_for(registry: QueryRegistry, periodic: bool) -> WorkerMonitorAcceptor:
    """The (cached) Definition 5.1 acceptor for one registry/flavour.

    The acceptor's finite control is a pure function of the registry,
    so repeated judgements against the same registry reuse it; every
    run still gets a fresh :class:`~repro.kernel.simulator.Simulator`.
    """
    return engine.cached_acceptor(
        ("rtdb", id(registry), periodic),
        lambda: rtdb_acceptor(registry, periodic=periodic),
        registry,
    )


@_obs.spanned(
    "rtdb.decide_aperiodic",
    args=lambda registry, instance, candidate, horizon=20_000: {
        "query": instance.query_name,
        "horizon": horizon,
    },
)
def decide_aperiodic(
    registry: QueryRegistry,
    instance: RecognitionInstance,
    candidate: Tuple[Any, ...],
    horizon: int = 20_000,
) -> DecisionReport:
    """Membership of db_B·aq in L_aq, through the engine's lasso-exact
    strategy (the acceptor always declares an absorbing verdict)."""
    h = _obs.HOOKS
    if h is not None:
        h.count("rtdb.acceptor_runs", language="L_aq")
    word = instance.aperiodic_word(candidate)
    return engine.decide(
        _acceptor_for(registry, periodic=False), word, horizon=horizon
    )


@_obs.spanned(
    "rtdb.serve_periodic",
    args=lambda registry, instance, candidates, period, horizon: {
        "query": instance.query_name,
        "period": period,
        "horizon": horizon,
    },
)
def serve_periodic(
    registry: QueryRegistry,
    instance: RecognitionInstance,
    candidates: Callable[[int], Tuple[Any, ...]],
    period: int,
    horizon: int,
) -> DecisionReport:
    """Run the periodic acceptor for ``horizon`` chronons; the f-count
    is the number of successfully served invocations (engine ``f-rate``
    strategy: raw verdict, empirical f-count)."""
    h = _obs.HOOKS
    if h is not None:
        h.count("rtdb.acceptor_runs", language="L_pq")
    word = instance.periodic_word(candidates, period)
    return engine.decide(
        _acceptor_for(registry, periodic=True),
        word,
        horizon=horizon,
        strategy="f-rate",
    )
