"""Relational algebra queries — Section 5.1.1.

A query is a partial mapping from inst(**R**) to inst(S) for fixed
schemas.  The AST here covers selection, projection, natural join,
rename, union, difference and cartesian product — enough to express the
paper's example query ("which artist is exhibited in which city in
November", Figure 2) and anything the recognition benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from .relational import (
    DatabaseInstance,
    RelationInstance,
    RelationSchema,
    SchemaError,
)

__all__ = [
    "Query",
    "Relation",
    "Selection",
    "Projection",
    "NaturalJoin",
    "Rename",
    "Union",
    "Difference",
    "Product",
    "figure2_query",
]


class Query:
    """Abstract relational-algebra expression."""

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        raise NotImplementedError

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        raise NotImplementedError

    def __call__(self, db: DatabaseInstance) -> RelationInstance:
        return self.evaluate(db)


def _rows_as_dicts(rel: RelationInstance) -> List[Dict[str, Any]]:
    return [row.as_dict(rel.schema) for row in rel]


def _from_dicts(name: str, sort: Tuple[str, ...], dicts: Sequence[Dict[str, Any]]) -> RelationInstance:
    schema = RelationSchema(name, sort)
    out = RelationInstance(schema)
    for d in dicts:
        out.add(tuple(d[a] for a in sort))
    return out


@dataclass(frozen=True)
class Relation(Query):
    """A base relation of the database."""

    name: str

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        return db[self.name].schema

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return db[self.name].copy()


@dataclass(frozen=True)
class Selection(Query):
    """σ_{attr op const}: keep rows satisfying a simple comparison.

    ``op`` ∈ {"=", "!=", "<", "<=", ">", ">=", "contains"}.
    """

    source: Query
    attribute: str
    op: str
    constant: Any

    _OPS: Any = None

    def _test(self, value: Any) -> bool:
        if self.op == "=":
            return value == self.constant
        if self.op == "!=":
            return value != self.constant
        if self.op == "<":
            return value < self.constant
        if self.op == "<=":
            return value <= self.constant
        if self.op == ">":
            return value > self.constant
        if self.op == ">=":
            return value >= self.constant
        if self.op == "contains":
            return self.constant in value
        raise SchemaError(f"unknown selection operator {self.op!r}")

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        return self.source.output_schema(db)

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        src = self.source.evaluate(db)
        if self.attribute not in src.schema.sort:
            raise SchemaError(f"selection on unknown attribute {self.attribute!r}")
        idx = src.schema.sort.index(self.attribute)
        out = RelationInstance(src.schema)
        for row in src:
            if self._test(row[idx]):
                out.add(row.values)
        return out


@dataclass(frozen=True)
class Projection(Query):
    """π_{attrs}: project onto a sub-sort (set semantics)."""

    source: Query
    attributes: Tuple[str, ...]

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        src = self.source.output_schema(db)
        missing = set(self.attributes) - set(src.sort)
        if missing:
            raise SchemaError(f"projection on unknown attributes {missing}")
        return RelationSchema(f"π({src.name})", tuple(self.attributes))

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        src = self.source.evaluate(db)
        schema = self.output_schema(db)
        indices = [src.schema.sort.index(a) for a in self.attributes]
        out = RelationInstance(schema)
        for row in src:
            out.add(tuple(row[i] for i in indices))
        return out


@dataclass(frozen=True)
class NaturalJoin(Query):
    """⋈: join on all shared attributes."""

    left: Query
    right: Query

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        ls = self.left.output_schema(db)
        rs = self.right.output_schema(db)
        sort = ls.sort + tuple(a for a in rs.sort if a not in ls.sort)
        return RelationSchema(f"({ls.name}⋈{rs.name})", sort)

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        shared = [a for a in left.schema.sort if a in right.schema.sort]
        schema = self.output_schema(db)
        out = RelationInstance(schema)
        # hash join on the shared attributes
        key_r: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for rd in _rows_as_dicts(right):
            key_r.setdefault(tuple(rd[a] for a in shared), []).append(rd)
        for ld in _rows_as_dicts(left):
            for rd in key_r.get(tuple(ld[a] for a in shared), ()):
                merged = {**rd, **ld}
                out.add(tuple(merged[a] for a in schema.sort))
        return out


@dataclass(frozen=True)
class Rename(Query):
    """ρ: rename attributes via a mapping (given as item pairs)."""

    source: Query
    mapping: Tuple[Tuple[str, str], ...]

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        src = self.source.output_schema(db)
        m = dict(self.mapping)
        return RelationSchema(f"ρ({src.name})", tuple(m.get(a, a) for a in src.sort))

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        src = self.source.evaluate(db)
        out = RelationInstance(self.output_schema(db))
        for row in src:
            out.add(row.values)
        return out


class _SetOp(Query):
    """Common machinery for union/difference (sort compatibility)."""

    op_name = "?"

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        ls = self.left.output_schema(db)
        rs = self.right.output_schema(db)
        if ls.sort != rs.sort:
            raise SchemaError(f"{self.op_name} of incompatible sorts {ls.sort} / {rs.sort}")
        return RelationSchema(f"({ls.name}{self.op_name}{rs.name})", ls.sort)

    def _combine(self, lvals: set, rvals: set) -> set:
        raise NotImplementedError

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        schema = self.output_schema(db)
        lvals = {row.values for row in left}
        rvals = {row.values for row in right}
        out = RelationInstance(schema)
        for values in self._combine(lvals, rvals):
            out.add(values)
        return out


class Union(_SetOp):
    """∪ on union-compatible queries."""

    op_name = "∪"

    def _combine(self, lvals: set, rvals: set) -> set:
        return lvals | rvals


class Difference(_SetOp):
    """− on union-compatible queries."""

    op_name = "−"

    def _combine(self, lvals: set, rvals: set) -> set:
        return lvals - rvals


@dataclass(frozen=True)
class Product(Query):
    """×: cartesian product (sorts must be disjoint)."""

    left: Query
    right: Query

    def output_schema(self, db: DatabaseInstance) -> RelationSchema:
        ls = self.left.output_schema(db)
        rs = self.right.output_schema(db)
        if set(ls.sort) & set(rs.sort):
            raise SchemaError("product requires disjoint sorts (rename first)")
        return RelationSchema(f"({ls.name}×{rs.name})", ls.sort + rs.sort)

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        out = RelationInstance(self.output_schema(db))
        for l in left:
            for r in right:
                out.add(l.values + r.values)
        return out


def figure2_query() -> Query:
    """The paper's example: "which artist is exhibited in which city in
    November" — π_{Artist, City}(σ_{Date contains 'November'}
    (Exhibitions ⋈ Schedules)).  On Figure 1 it returns Figure 2.
    """
    join = NaturalJoin(Relation("Exhibitions"), Relation("Schedules"))
    nov = Selection(join, "Date", "contains", "November")
    return Projection(nov, ("Artist", "City"))
