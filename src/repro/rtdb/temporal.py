"""Temporal databases — Section 5.1.2.

Time is linear and discrete (chronons ≅ ℕ); a temporal database is
conceptually a sequence of snapshots I_t, represented compactly by
*timestamps*: each object carries a **lifespan**, a finite union of
intervals over the temporal domain.  "These intervals are closed under
union, intersection and complementation, and form therefore a boolean
algebra" — :class:`Lifespan` implements exactly that algebra, with a
right-open-at-infinity interval for "valid from t on" and degenerate
single-point intervals for single instants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .relational import RelationSchema

__all__ = ["Interval", "Lifespan", "TemporalRelation", "TimeStructure", "TimeDensity"]

#: Marker for an unbounded right endpoint.
INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] of chronons (hi may be ∞).

    A degenerate interval lo == hi represents a single instant (the
    paper: "a single instance of time is represented by a degenerated
    interval").
    """

    lo: int
    hi: float  # int or INF

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError("chronons are non-negative")
        if self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __contains__(self, t: int) -> bool:
        return self.lo <= t <= self.hi

    @property
    def is_instant(self) -> bool:
        return self.hi == self.lo

    def overlaps_or_adjacent(self, other: "Interval") -> bool:
        """Mergeable in discrete time: gap of < 1 chronon."""
        return self.lo <= other.hi + 1 and other.lo <= self.hi + 1


class Lifespan:
    """A finite union of intervals, normalized sorted-disjoint.

    Supports the boolean algebra: |, &, complement (within [0, ∞)),
    and the derived difference.  All operations return normalized
    lifespans; :meth:`normalized` merging uses discrete adjacency
    (``[0,2] ∪ [3,5] = [0,5]``).
    """

    def __init__(self, intervals: Iterable[Interval] = ()):
        self.intervals: Tuple[Interval, ...] = self._normalize(list(intervals))

    # -- constructors ---------------------------------------------------
    @staticmethod
    def empty() -> "Lifespan":
        return Lifespan()

    @staticmethod
    def instant(t: int) -> "Lifespan":
        return Lifespan([Interval(t, t)])

    @staticmethod
    def from_(t: int) -> "Lifespan":
        """Valid from t onwards."""
        return Lifespan([Interval(t, INF)])

    @staticmethod
    def between(lo: int, hi: int) -> "Lifespan":
        return Lifespan([Interval(lo, hi)])

    @staticmethod
    def always() -> "Lifespan":
        return Lifespan([Interval(0, INF)])

    # -- algebra -----------------------------------------------------------
    @staticmethod
    def _normalize(intervals: List[Interval]) -> Tuple[Interval, ...]:
        if not intervals:
            return ()
        intervals = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
        merged: List[Interval] = [intervals[0]]
        for iv in intervals[1:]:
            last = merged[-1]
            if last.overlaps_or_adjacent(iv):
                merged[-1] = Interval(min(last.lo, iv.lo), max(last.hi, iv.hi))
            else:
                merged.append(iv)
        return tuple(merged)

    def __or__(self, other: "Lifespan") -> "Lifespan":
        return Lifespan(self.intervals + other.intervals)

    def complement(self) -> "Lifespan":
        """[0, ∞) minus this lifespan."""
        out: List[Interval] = []
        cursor = 0
        for iv in self.intervals:
            if iv.lo > cursor:
                out.append(Interval(cursor, iv.lo - 1))
            if iv.hi is INF:
                return Lifespan(out)
            cursor = int(iv.hi) + 1
        out.append(Interval(cursor, INF))
        return Lifespan(out)

    def __and__(self, other: "Lifespan") -> "Lifespan":
        # De Morgan through the complement keeps one code path honest;
        # a direct sweep is clearer *and* faster, so do it directly.
        out: List[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                lo = max(a.lo, b.lo)
                hi = min(a.hi, b.hi)
                if lo <= hi:
                    out.append(Interval(lo, hi))
        return Lifespan(out)

    def __sub__(self, other: "Lifespan") -> "Lifespan":
        return self & other.complement()

    # -- queries -----------------------------------------------------------
    def __contains__(self, t: int) -> bool:
        return any(t in iv for iv in self.intervals)

    def is_empty(self) -> bool:
        return not self.intervals

    def earliest(self) -> Optional[int]:
        return self.intervals[0].lo if self.intervals else None

    def duration(self) -> float:
        """Total chronons covered (∞ if unbounded)."""
        total = 0.0
        for iv in self.intervals:
            if iv.hi is INF:
                return INF
            total += iv.hi - iv.lo + 1
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lifespan):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:  # pragma: no cover
        if not self.intervals:
            return "Lifespan(∅)"
        parts = ", ".join(
            f"[{iv.lo},{'∞' if iv.hi is INF else int(iv.hi)}]" for iv in self.intervals
        )
        return f"Lifespan({parts})"


class TemporalRelation:
    """A relation whose rows carry lifespans (timestamping at tuple
    level, the common case in Section 5.1.2).

    ``snapshot(t)`` materializes the paper's I_t view: the plain
    relation instance of rows alive at t.
    """

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self._rows: Dict[Tuple[Any, ...], Lifespan] = {}

    def assert_row(self, values: Tuple[Any, ...], lifespan: Lifespan) -> None:
        """Record that ``values`` holds during ``lifespan`` (merged with
        any previously recorded validity)."""
        self.schema.validate(tuple(values))
        key = tuple(values)
        self._rows[key] = self._rows.get(key, Lifespan.empty()) | lifespan

    def retract_row(self, values: Tuple[Any, ...], span: Lifespan) -> None:
        key = tuple(values)
        if key in self._rows:
            remaining = self._rows[key] - span
            if remaining.is_empty():
                del self._rows[key]
            else:
                self._rows[key] = remaining

    def lifespan_of(self, values: Tuple[Any, ...]) -> Lifespan:
        return self._rows.get(tuple(values), Lifespan.empty())

    def snapshot(self, t: int) -> List[Tuple[Any, ...]]:
        """I_t: the rows alive at chronon t."""
        return sorted(
            (v for v, ls in self._rows.items() if t in ls), key=lambda v: tuple(map(repr, v))
        )

    def rows_with_spans(self) -> List[Tuple[Tuple[Any, ...], Lifespan]]:
        return sorted(self._rows.items(), key=lambda kv: tuple(map(repr, kv[0])))

    def __len__(self) -> int:
        return len(self._rows)


class TimeStructure:
    """Metadata choices of Section 5.1.2, recorded for documentation
    and validated where it matters (we only execute linear discrete
    time, the paper's model of choice for real-time databases)."""

    LINEAR = "linear"
    BRANCHING = "branching"


class TimeDensity:
    CONTINUOUS = "continuous"  # ≅ ℝ
    DENSE = "dense"  # ≅ ℚ
    DISCRETE = "discrete"  # ≅ ℕ — the executable model
