"""Real-time database instances — Section 5.1.2.

A real-time database instance is B = (I₁, I₂, …, I_n, D, V): the most
recent set of image objects I_n with its archival variants, the set D
of derived objects, and the set V of invariant ones.  "It is enough to
keep archival copies of the image objects, since the other objects are
either invariant with time, or their values can be derived."

:class:`RealTimeDatabase` additionally *runs*: sampling processes on
the simulation kernel read each image object every ``period`` chronons
(generating the events the active layer reacts to), and the default
rule wiring follows the paper's suggested mixed policy — immediate
firing for image-object updates, deferred firing for derived-object
recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable, List

from ..kernel.events import Event
from ..kernel.simulator import Simulator
from .active import DBEvent, FiringMode, Rule, RuleEngine
from .objects import (
    DataObject,
    DerivedObject,
    ImageObject,
    InvariantObject,
    absolutely_consistent,
    age,
    relatively_consistent,
)

__all__ = ["RealTimeDatabase", "SamplingSource", "ConsistencyReport"]

#: A sampling source: maps (object name, chronon) to the sampled value.
SamplingSource = Callable[[str, int], Any]


@dataclass
class ConsistencyReport:
    """Outcome of one consistency evaluation at a given instant."""

    at: int
    absolute: bool
    relative: bool
    derived_fresh: bool

    @property
    def consistent(self) -> bool:
        return self.absolute and self.relative and self.derived_fresh


class RealTimeDatabase:
    """B = (I₁ … I_n, D, V) running on a simulation kernel.

    Parameters
    ----------
    sim:
        The kernel to run sampling on.
    source:
        External world: ``source(name, t)`` is the reading of image
        object ``name`` at chronon t.
    derived_mode:
        Firing mode for derived recomputation (the paper floats
        deferred as the interesting choice; immediate and concurrent
        are available for the ablation).
    """

    def __init__(
        self,
        sim: Simulator,
        source: SamplingSource,
        derived_mode: FiringMode = FiringMode.DEFERRED,
    ):
        self.sim = sim
        self.source = source
        self.images: Dict[str, ImageObject] = {}
        self.derived: Dict[str, DerivedObject] = {}
        self.invariants: Dict[str, InvariantObject] = {}
        self.engine = RuleEngine(sim, context=self)
        self.derived_mode = derived_mode
        self._samplers_started = False

    # -- construction ---------------------------------------------------
    def add_image(self, name: str, period: int, initial: Any = None) -> ImageObject:
        obj = ImageObject(name, period=period, initial=initial)
        self.images[name] = obj
        # The paper: immediate firing for image objects is implied,
        # "since it is assumed that the valid and transaction times are
        # close to each other".
        self.engine.add_rule(
            Rule(
                name=f"store:{name}",
                event_kind=f"sample:{name}",
                condition=lambda ev, db: True,
                action=self._make_store_action(name),
                mode=FiringMode.IMMEDIATE,
            )
        )
        return obj

    def _make_store_action(self, name: str):
        def action(event: DBEvent, db: "RealTimeDatabase") -> List[DBEvent]:
            db.images[name].sample(event.attr("value"), event.attr("t"))
            # Storing a new image value triggers derived refresh events.
            return [
                DBEvent.make(f"refresh:{d.name}", cause=name)
                for d in db.derived.values()
                if any(s.name == name for s in d.sources)
            ]

        return action

    def add_derived(self, name: str, source_names: Iterable[str], fn: Callable[..., Any]) -> DerivedObject:
        sources: List[DataObject] = [self._lookup(sn) for sn in source_names]
        obj = DerivedObject(name, sources, fn)
        self.derived[name] = obj

        def refresh(event: DBEvent, db: "RealTimeDatabase") -> None:
            try:
                db.derived[name].recompute(db.sim.now)
            except ValueError:
                # Some source image object has no sample yet (start-up
                # transient: samplers at the same instant run in order);
                # the refresh triggered by that source will recompute.
                pass

        self.engine.add_rule(
            Rule(
                name=f"derive:{name}",
                event_kind=f"refresh:{name}",
                condition=lambda ev, db: True,
                action=refresh,
                mode=self.derived_mode,
            )
        )
        return obj

    def add_invariant(self, name: str, value: Any) -> InvariantObject:
        obj = InvariantObject(name, value)
        self.invariants[name] = obj
        return obj

    def _lookup(self, name: str) -> DataObject:
        for pool in (self.images, self.derived, self.invariants):
            if name in pool:
                return pool[name]
        raise KeyError(f"unknown object {name!r}")

    # -- running -----------------------------------------------------------
    def start_sampling(self, horizon: int) -> None:
        """Spawn one sampling process per image object.

        Each period the external world is read, a ``sample:<name>``
        event is raised inside a transaction (so deferred derived
        refreshes flush at the period boundary — the paper's mixed
        policy), and the engine cascades.
        """
        if self._samplers_started:
            raise RuntimeError("sampling already started")
        self._samplers_started = True
        for name, obj in self.images.items():
            self.sim.process(self._sampler(name, obj.period, horizon), name=f"sample:{name}")

    def _sampler(self, name: str, period: int, horizon: int) -> Generator[Event, Any, None]:
        t = 0
        while t <= horizon:
            value = self.source(name, t)
            self.engine.begin(f"sample:{name}@{t}")
            self.engine.raise_event(DBEvent.make(f"sample:{name}", value=value, t=t))
            self.engine.commit()
            t += period
            if t <= horizon:
                yield self.sim.timeout(period)

    # -- views --------------------------------------------------------------
    def all_objects(self) -> List[DataObject]:
        return (
            list(self.images.values())
            + list(self.derived.values())
            + list(self.invariants.values())
        )

    def archival_snapshot(self, t: int) -> Dict[str, Any]:
        """The image-object snapshot I_t (values in force at t)."""
        return {name: obj.value_at(t) for name, obj in self.images.items()}

    def check_consistency(self, absolute_threshold: int, relative_threshold: int) -> ConsistencyReport:
        """Absolute/relative consistency of B at the current instant.

        The database "has absolute consistency if I_n is absolutely
        consistent and the ages of data objects used to derive the
        derived objects are less than the specified threshold".
        """
        now = self.sim.now
        imgs = list(self.images.values())
        absolute = absolutely_consistent(imgs, now, absolute_threshold)
        derived_fresh = all(
            age(src, now) <= absolute_threshold
            for d in self.derived.values()
            for src in d.sources
            if not isinstance(src, InvariantObject)
        )
        relative = relatively_consistent(imgs, now, relative_threshold)
        return ConsistencyReport(
            at=now, absolute=absolute, relative=relative, derived_fresh=derived_fresh
        )
