"""Transaction scheduling under deadlines — the §5.1.2 contention
dimension (after Lehr, Kim & Son [24], the paper's deadline citation).

"The transactions must be timely, that is, they must complete within
their time constraints (deadlines)."  This module runs transactions
with firm/soft deadlines against a contended database lock on the
simulation kernel, under three scheduling policies:

* **FIFO** — arrival order (the contention-oblivious baseline);
* **EDF** — earliest deadline first (the classic real-time policy);
* **LSF** — least slack first (deadline − remaining work).

The miss-rate comparison across load factors is the E16 ablation bench
(an extension experiment; see DESIGN.md §5).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..deadlines.spec import DeadlineKind
from ..kernel.events import Event
from ..kernel.simulator import Simulator

__all__ = ["Policy", "Transaction", "TransactionResult", "TransactionScheduler", "ScheduleOutcome"]


class Policy(Enum):
    FIFO = "fifo"
    EDF = "edf"  # earliest deadline first
    LSF = "lsf"  # least slack first


@dataclass(frozen=True)
class Transaction:
    """One unit of timed work against the database.

    ``deadline`` is absolute; ``kind`` distinguishes firm transactions
    (late completion is worthless and counted as a miss) from soft ones
    (late completion is recorded with its tardiness).
    """

    name: str
    release: int  # arrival time
    work: int  # chronons of lock-holding work
    deadline: int  # absolute deadline
    kind: DeadlineKind = DeadlineKind.FIRM

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("work must be positive")
        if self.deadline <= self.release:
            raise ValueError("deadline must fall after release")


@dataclass
class TransactionResult:
    transaction: Transaction
    started: Optional[int]
    finished: Optional[int]

    @property
    def completed(self) -> bool:
        return self.finished is not None

    @property
    def met_deadline(self) -> bool:
        return self.completed and self.finished <= self.transaction.deadline

    @property
    def tardiness(self) -> int:
        """Chronons past the deadline (0 when met or never finished)."""
        if not self.completed:
            return 0
        return max(0, self.finished - self.transaction.deadline)


@dataclass
class ScheduleOutcome:
    policy: Policy
    results: List[TransactionResult]

    @property
    def miss_count(self) -> int:
        return sum(1 for r in self.results if not r.met_deadline)

    @property
    def miss_rate(self) -> float:
        return self.miss_count / len(self.results) if self.results else 0.0

    @property
    def mean_tardiness(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.tardiness for r in self.results) / len(self.results)


class TransactionScheduler:
    """A single-lock transaction manager on the kernel.

    Transactions queue for the database lock; the scheduler picks the
    next holder by policy whenever the lock frees.  Work is
    non-preemptive once granted (the common RTDB locking model).
    Firm transactions whose deadline has already passed when the lock
    becomes available are *aborted* rather than run ("a computation
    that exceeds the deadline is useless").
    """

    def __init__(self, sim: Simulator, policy: Policy = Policy.EDF):
        self.sim = sim
        self.policy = policy
        self._counter = itertools.count()
        self._ready: List[Tuple[Any, int, Transaction]] = []  # heap
        self._results: Dict[str, TransactionResult] = {}
        self._lock_busy = False
        self._wakeup: Optional[Event] = None

    # -- priority keys ------------------------------------------------------
    def _key(self, txn: Transaction) -> Any:
        if self.policy is Policy.FIFO:
            return txn.release
        if self.policy is Policy.EDF:
            return txn.deadline
        # LSF: slack = deadline − now − remaining work
        return txn.deadline - self.sim.now - txn.work

    # -- submission ------------------------------------------------------------
    def submit(self, txn: Transaction) -> None:
        """Register a transaction; it arrives at its release time."""
        if txn.name in self._results:
            raise ValueError(f"duplicate transaction name {txn.name!r}")
        self._results[txn.name] = TransactionResult(txn, None, None)
        self.sim.process(self._arrival(txn), name=f"txn:{txn.name}")

    def _arrival(self, txn: Transaction) -> Generator[Event, Any, None]:
        if txn.release > self.sim.now:
            yield self.sim.timeout(txn.release - self.sim.now)
        heapq.heappush(self._ready, (self._key(txn), next(self._counter), txn))
        self._kick()

    # -- the dispatcher -----------------------------------------------------------
    def _kick(self) -> None:
        if self._lock_busy or not self._ready:
            return
        self.sim.process(self._dispatch(), name="txn-dispatch")

    def _dispatch(self) -> Generator[Event, Any, None]:
        if self._lock_busy:
            return
        self._lock_busy = True
        try:
            while self._ready:
                # LSF keys drift with time: re-heapify on each grant.
                if self.policy is Policy.LSF:
                    entries = [(self._key(t), c, t) for _k, c, t in self._ready]
                    heapq.heapify(entries)
                    self._ready = entries
                _key, _c, txn = heapq.heappop(self._ready)
                result = self._results[txn.name]
                if (
                    txn.kind is DeadlineKind.FIRM
                    and self.sim.now >= txn.deadline
                ):
                    # late firm transaction: abort (useless work)
                    continue
                result.started = self.sim.now
                yield self.sim.timeout(txn.work)
                result.finished = self.sim.now
        finally:
            self._lock_busy = False

    # -- results ---------------------------------------------------------------------
    def outcome(self) -> ScheduleOutcome:
        return ScheduleOutcome(
            policy=self.policy, results=list(self._results.values())
        )


def run_workload(
    policy: Policy, transactions: List[Transaction], horizon: int = 100_000
) -> ScheduleOutcome:
    """Convenience driver: schedule a workload to completion."""
    sim = Simulator()
    sched = TransactionScheduler(sim, policy)
    for txn in transactions:
        sched.submit(txn)
    sim.run(until=horizon)
    return sched.outcome()
