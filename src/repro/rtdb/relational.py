"""The relational model — Section 5.1.1, after Abiteboul–Hull–Vianu [2].

Attributes come from a countably infinite set **att**, constants from
the disjoint underlying domain **dom**; a relation is a name plus an
ordered sort of attributes; instances are finite sets of tuples.  The
module ends with :func:`ngc_example`, the National Gallery of Canada
database of the paper's Figure 1, used verbatim by experiment E1/E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

__all__ = [
    "RelationSchema",
    "DatabaseSchema",
    "Row",
    "RelationInstance",
    "DatabaseInstance",
    "SchemaError",
    "ngc_example",
]


class SchemaError(ValueError):
    """A tuple/instance violates its schema."""


@dataclass(frozen=True)
class RelationSchema:
    """A relation name with its ordered sort of attributes.

    ``arity(R) = |sort(R)|`` (paper, Section 5.1.1).  ``domains`` is the
    optional Dom mapping restricting per-attribute values.
    """

    name: str
    sort: Tuple[str, ...]
    domains: Optional[Mapping[str, FrozenSet[Any]]] = None

    def __post_init__(self) -> None:
        if len(set(self.sort)) != len(self.sort):
            raise SchemaError(f"duplicate attributes in sort of {self.name}")

    @property
    def arity(self) -> int:
        return len(self.sort)

    def validate(self, values: Tuple[Any, ...]) -> None:
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple of arity {len(values)} over {self.name} (arity {self.arity})"
            )
        if self.domains:
            for attr, v in zip(self.sort, values):
                dom = self.domains.get(attr)
                if dom is not None and v not in dom:
                    raise SchemaError(f"{v!r} ∉ Dom({attr}) in {self.name}")


@dataclass(frozen=True)
class Row:
    """A tuple R(a₁, …, a_n) over a relation schema."""

    relation: str
    values: Tuple[Any, ...]

    def as_dict(self, schema: RelationSchema) -> Dict[str, Any]:
        return dict(zip(schema.sort, self.values))

    def __getitem__(self, i: int) -> Any:
        return self.values[i]


class RelationInstance:
    """A finite set of tuples over one relation schema."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Tuple[Any, ...]] = ()):
        self.schema = schema
        self._rows: Set[Row] = set()
        for values in rows:
            self.add(values)

    def add(self, values: Tuple[Any, ...]) -> Row:
        self.schema.validate(tuple(values))
        row = Row(self.schema.name, tuple(values))
        self._rows.add(row)
        return row

    def discard(self, values: Tuple[Any, ...]) -> None:
        self._rows.discard(Row(self.schema.name, tuple(values)))

    def rows(self) -> FrozenSet[Row]:
        return frozenset(self._rows)

    def __contains__(self, values: Tuple[Any, ...]) -> bool:
        return Row(self.schema.name, tuple(values)) in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=lambda r: tuple(map(repr, r.values))))

    def copy(self) -> "RelationInstance":
        out = RelationInstance(self.schema)
        out._rows = set(self._rows)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationInstance):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover
        return f"RelationInstance({self.schema.name}, {len(self)} rows)"


class DatabaseSchema:
    """A non-empty finite set **R** of relation schemas."""

    def __init__(self, relations: Iterable[RelationSchema]):
        self.relations: Dict[str, RelationSchema] = {}
        for r in relations:
            if r.name in self.relations:
                raise SchemaError(f"duplicate relation name {r.name}")
            self.relations[r.name] = r
        if not self.relations:
            raise SchemaError("a database schema is non-empty")

    def __getitem__(self, name: str) -> RelationSchema:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def names(self) -> List[str]:
        return sorted(self.relations)


class DatabaseInstance:
    """An instance **I** over **R**: a relation instance per schema."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.relations: Dict[str, RelationInstance] = {
            name: RelationInstance(rs) for name, rs in schema.relations.items()
        }

    def __getitem__(self, name: str) -> RelationInstance:
        return self.relations[name]

    def insert(self, relation: str, values: Tuple[Any, ...]) -> Row:
        return self.relations[relation].add(values)

    def delete(self, relation: str, values: Tuple[Any, ...]) -> None:
        self.relations[relation].discard(values)

    def total_rows(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def copy(self) -> "DatabaseInstance":
        out = DatabaseInstance(self.schema)
        for name, rel in self.relations.items():
            out.relations[name] = rel.copy()
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self.relations == other.relations

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{n}:{len(r)}" for n, r in sorted(self.relations.items()))
        return f"DatabaseInstance({parts})"


# ----------------------------------------------------------------------
# Figure 1: the National Gallery of Canada example database
# ----------------------------------------------------------------------

def ngc_example() -> DatabaseInstance:
    """The paper's Figure 1 database instance, verbatim.

    Schema NGC = {Exhibitions, Schedules} with
    sort(Exhibitions) = (Title, Description, Artist) and
    sort(Schedules) = (City, Title, Date); the Exhibitions instance has
    6 tuples and the Schedules instance 3.
    """
    exhibitions = RelationSchema("Exhibitions", ("Title", "Description", "Artist"))
    schedules = RelationSchema("Schedules", ("City", "Title", "Date"))
    db = DatabaseInstance(DatabaseSchema([exhibitions, schedules]))
    for row in [
        ("Terre Sauvage", "Canadian Landscape Paintings", "Thompson"),
        ("Terre Sauvage", "Canadian Landscape Paintings", "Harris"),
        ("Terre Sauvage", "Canadian Landscape Paintings", "MacDonald"),
        ("Painter of the Soil", "Works on Paper", "Schaefer"),
        ("Sorrowful Images", "Early Nederlandish Devotional Diptychs", "Aelbrecht"),
        ("Sorrowful Images", "Early Nederlandish Devotional Diptychs", "Dieric"),
    ]:
        db.insert("Exhibitions", row)
    for row in [
        ("Mexico City", "Terre Sauvage", "October 1999"),
        ("St. Catharines", "Painter of the Soil", "November 1999"),
        ("Hamilton", "Sorrowful Images", "November 1999"),
    ]:
        db.insert("Schedules", row)
    return db
